/// \file
/// Live metrics: always-on counters, gauges, and log-linear HDR-style
/// histograms, periodically exported as an append-only JSONL heartbeat.
///
/// The trace/counters layer (counters.hpp, trace.hpp) is post-hoc: it
/// accumulates while armed and is read once at exit.  Campaigns (PR 7)
/// and serving runs (PR 9) made the interesting traffic long-running and
/// multi-process — a run is a black box until it dies.  This registry is
/// the live complement: recording is ALWAYS on (a few relaxed atomics
/// per event; there is no per-nonzero call site, only per-job / per-trial
/// ones), and a background exporter thread — armed via
///   PASTA_METRICS=<path>[,interval_ms]
/// — snapshots the registry every interval into `path` as one JSON
/// object per line (fsync'd per snapshot), so `tail -f` and
/// scripts/metrics_summary.py can watch a run mid-flight and a torn
/// final line (SIGKILL mid-write) never corrupts earlier heartbeats.
///
/// Histograms are log-linear with 32 sub-buckets per octave: values
/// below 64 are exact, larger values land in a bucket whose width is at
/// most value/32, so any reported percentile is within ~3.125% relative
/// error of the exact sorted-sample percentile (plus half a unit for the
/// integer buckets).  Storage is O(buckets) — 1920 slots covers the full
/// uint64 range — which is what lets bench_serving keep per-job latency
/// percentiles over millions of jobs without the unbounded vectors it
/// used before.  Recording is lock-free after a shard's first touch:
/// each histogram keeps 16 lazily-installed shards, threads hash onto a
/// shard, and shards are summed on read — the counters.hpp discipline.
///
/// The snapshot schema (parse_snapshot_line / merge_snapshots round-trip
/// it) is what the campaign supervisor aggregates across shards: sum
/// counters, merge histograms, max gauges.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace pasta::obs::metrics {

/// Sub-bucket resolution: 2^5 = 32 buckets per power of two, giving a
/// worst-case bucket width of value/32 (~3.125% relative error).
inline constexpr int kSubBits = 5;

/// Dense bucket count covering all of uint64: values < 64 are exact
/// (indices 0..63), and each of the 58 remaining octaves contributes 32
/// buckets: 64 + 58*32 = 1920.
inline constexpr std::size_t kHistBuckets = 1920;

/// Bucket index for a recorded value (monotone in v).
inline std::size_t
bucket_index(std::uint64_t v)
{
    if (v < 64)
        return static_cast<std::size_t>(v);
    const int b = std::bit_width(v) - 1;  // 63 - clz; b >= 6 here
    return static_cast<std::size_t>(b - kSubBits) * 32 +
           static_cast<std::size_t>(v >> (b - kSubBits));
}

/// Inclusive lower edge of bucket `idx`.
inline std::uint64_t
bucket_lower(std::size_t idx)
{
    if (idx < 64)
        return idx;
    const std::size_t hi = idx >> 5;        // octave group, >= 2
    const int b = static_cast<int>(hi) + 4; // exponent of the octave
    const std::uint64_t m = idx - (hi - 1) * 32;  // mantissa in [32, 64)
    return m << (b - kSubBits);
}

/// Width of bucket `idx` (1 for the exact range).
inline std::uint64_t
bucket_width(std::size_t idx)
{
    if (idx < 64)
        return 1;
    const std::size_t hi = idx >> 5;
    return std::uint64_t{1} << (static_cast<int>(hi) + 4 - kSubBits);
}

/// One histogram read out of the registry (or parsed back from JSONL):
/// sparse nonzero buckets sorted by index, plus the moments needed for
/// means and exact-extreme reporting.  This is the mergeable unit the
/// campaign aggregator sums across shards.
struct HistSample {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;  ///< exact smallest recorded value (0 if empty)
    std::uint64_t max = 0;  ///< exact largest recorded value
    std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;

    double mean() const
    {
        return count ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
    }

    /// Value at quantile q in [0,1]: the representative (midpoint; exact
    /// for the unit-width buckets) of the bucket holding sample number
    /// max(1, ceil(q*count)) — the same rank convention as indexing a
    /// sorted sample vector at ceil(q*n)-1, so the estimate is always
    /// inside the bucket that contains the exact percentile.
    double percentile(double q) const;

    /// Accumulates `other` into this sample (commutative, associative).
    void merge_from(const HistSample& other);
};

/// A concurrent log-linear histogram.  record() is wait-free after the
/// calling thread's shard exists (relaxed adds plus two CAS extreme
/// updates); snapshot() sums the shards.
class Histogram {
  public:
    explicit Histogram(std::string name);
    ~Histogram();
    Histogram(const Histogram&) = delete;
    Histogram& operator=(const Histogram&) = delete;

    const std::string& name() const { return name_; }

    void record(std::uint64_t v);
    HistSample snapshot() const;
    void reset();

  private:
    static constexpr std::size_t kShards = 16;

    struct Shard;
    Shard& shard_for_thread();

    std::string name_;
    std::atomic<Shard*> shards_[kShards] = {};
};

/// The histogram registered under `name`, created on first use; the
/// reference stays valid for the life of the process so hot call sites
/// (the serving scheduler, bench loops) can cache it.
Histogram& histogram(const std::string& name);

/// counter += v (monotone event counts: jobs done, trials ok, ...).
void counter_add(const std::string& name, std::uint64_t v);

/// gauge = v (instantaneous levels: resident cache bytes, ...).
void gauge_set(const std::string& name, double v);

/// gauge = max(gauge, v) (high-water marks: queue depth, mem peak, ...).
void gauge_max(const std::string& name, double v);

/// histogram(name).record(v) — one registry lookup per call; cache the
/// Histogram& instead when recording per-job.
void hist_record(const std::string& name, std::uint64_t v);

/// Point-in-time copy of the registry, plus the heartbeat envelope
/// (wall-clock stamp, per-exporter sequence number, source label).
struct MetricsSnapshot {
    double ts = 0.0;        ///< unix seconds (system clock)
    std::uint64_t seq = 0;  ///< per-exporter snapshot ordinal
    std::string source;     ///< who exported: "bench", shard id, ...
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistSample> hists;

    std::uint64_t counter(const std::string& name) const;
    double gauge(const std::string& name) const;
    const HistSample* hist(const std::string& name) const;
};

/// Copies every counter, gauge, and histogram (relaxed loads; exact once
/// recording threads are quiescent).  ts/seq/source are left default.
MetricsSnapshot snapshot_metrics();

/// Zeroes every metric (names stay registered).  Test plumbing.
void reset_metrics();

/// Serializes one snapshot as a single JSON line (no trailing newline):
///   {"ts":...,"seq":N,"source":"...","counters":{...},"gauges":{...},
///    "hists":{"name":{"count":..,"sum":..,"min":..,"max":..,
///             "buckets":[[idx,count],...]}}}
std::string snapshot_to_json(const MetricsSnapshot& snap);

/// Parses one heartbeat line.  Returns false (leaving `out` untouched)
/// on malformed input — torn tails from a killed writer are expected and
/// must not abort aggregation.  Unknown keys are skipped.
bool parse_snapshot_line(const std::string& line, MetricsSnapshot& out);

/// Reads the LAST parseable snapshot of a heartbeat file (the newest
/// complete state of that exporter).  False when none parses.
bool load_last_snapshot(const std::string& path, MetricsSnapshot& out);

/// Campaign-wide aggregate: counters summed, gauges maxed, histograms
/// merged.  ts is the max input ts, seq the max seq, source taken from
/// the caller.
MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& snaps,
                                const std::string& source);

/// Exporter arming, parsed from PASTA_METRICS=<path>[,interval_ms].
struct ExporterOptions {
    std::string path;        ///< empty = disarmed
    double interval_s = 1.0; ///< heartbeat period

    bool armed() const { return !path.empty(); }

    /// Strict parse of PASTA_METRICS; unset/empty means disarmed, a
    /// malformed interval throws PastaError.
    static ExporterOptions from_env();
};

/// Starts the background exporter: an immediate first snapshot, then one
/// per interval, appended+fsync'd to opts.path.  Stops any previously
/// running exporter first.  Each tick refreshes the governor gauges
/// (mem.reserved, mem.peak) and obs.spans_dropped before snapshotting.
/// Returns false when disarmed or the file cannot be opened.
bool start_exporter(const ExporterOptions& opts, const std::string& source);

/// start_exporter(ExporterOptions::from_env(), source); false when
/// PASTA_METRICS is unset.
bool arm_from_env(const std::string& source);

/// Stops the exporter thread after writing one final snapshot.  Safe to
/// call when no exporter runs.  Forking callers must stop the exporter
/// before fork() so children never inherit its thread mid-write.
void stop_exporter();

/// True while an exporter thread is running in this process.
bool exporter_running();

}  // namespace pasta::obs::metrics
