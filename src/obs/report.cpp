#include "obs/report.hpp"

#include <algorithm>
#include <sstream>

#include "roofline/roofline.hpp"

namespace pasta::obs {

double
delta_suffix_sum(const CountersSnapshot& before,
                 const CountersSnapshot& after, const std::string& suffix)
{
    double sum = 0;
    for (const auto& c : after.counters) {
        if (c.name.size() < suffix.size() ||
            c.name.compare(c.name.size() - suffix.size(), suffix.size(),
                           suffix) != 0)
            continue;
        const CounterSample* prev = before.find(c.name);
        const std::uint64_t base = prev ? prev->total : 0;
        if (c.total > base)
            sum += static_cast<double>(c.total - base);
    }
    return sum;
}

double
worker_imbalance(const CounterSample& sample)
{
    std::uint64_t max_items = 0;
    std::uint64_t total = 0;
    int active = 0;
    for (std::uint64_t w : sample.worker) {
        if (w == 0)
            continue;
        max_items = std::max(max_items, w);
        total += w;
        ++active;
    }
    if (active == 0 || total == 0)
        return 0.0;
    const double mean =
        static_cast<double>(total) / static_cast<double>(active);
    return static_cast<double>(max_items) / mean;
}

double
roofline_pct(double measured_gflops, double ai, const MachineSpec& spec)
{
    if (measured_gflops <= 0 || ai <= 0)
        return 0.0;
    const double roof = roofline_performance_gflops(spec, ai);
    return roof > 0 ? 100.0 * measured_gflops / roof : 0.0;
}

std::string
render_counter_report(const CountersSnapshot& snap)
{
    std::ostringstream out;
    out << "counters:\n";
    for (const auto& c : snap.counters) {
        out << "  " << c.name << "  total=" << c.total;
        if (c.max_value > 0)
            out << "  max=" << c.max_value;
        if (!c.worker.empty()) {
            const double imb = worker_imbalance(c);
            out << "  workers=" << c.worker.size();
            if (imb > 0) {
                out.precision(3);
                out << "  imbalance=" << imb;
            }
        }
        if (c.overflow > 0)
            out << "  overflow=" << c.overflow;
        out << "\n";
    }
    out << "labels:\n";
    for (const auto& l : snap.labels) {
        out << "  " << l.key << " = " << l.last << "  (";
        bool first = true;
        for (const auto& [value, n] : l.counts) {
            if (!first)
                out << ", ";
            first = false;
            out << value << " x" << n;
        }
        out << ")\n";
    }
    return out.str();
}

}  // namespace pasta::obs
