#include "obs/trace.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/error.hpp"
#include "common/log.hpp"

namespace pasta::obs {

namespace detail {

std::atomic<int> g_mode{-1};

int
mode_slow()
{
    const int env = static_cast<int>(mode_from_env());
    g_mode.store(env, std::memory_order_relaxed);
    return env;
}

}  // namespace detail

TraceMode
mode_from_env()
{
    const char* s = std::getenv("PASTA_TRACE");
    if (!s || !*s)
        return TraceMode::kOff;
    if (std::strcmp(s, "off") == 0)
        return TraceMode::kOff;
    if (std::strcmp(s, "counters") == 0)
        return TraceMode::kCounters;
    if (std::strcmp(s, "spans") == 0)
        return TraceMode::kSpans;
    if (std::strcmp(s, "full") == 0)
        return TraceMode::kFull;
    PASTA_CHECK_MSG(false, "PASTA_TRACE='"
                               << s
                               << "' must be off, counters, spans, or full");
    return TraceMode::kOff;  // unreachable
}

void
set_mode(TraceMode mode)
{
    detail::g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

const char*
mode_name(TraceMode mode)
{
    switch (mode) {
      case TraceMode::kOff: return "off";
      case TraceMode::kCounters: return "counters";
      case TraceMode::kSpans: return "spans";
      case TraceMode::kFull: return "full";
    }
    return "?";
}

namespace {

/// Per-thread ring capacity.  16384 events x 72 bytes ≈ 1.2 MB, allocated
/// lazily on a thread's first recorded span (never with tracing off).
constexpr std::size_t kSpanCapacity = 16384;

/// One completed span as stored in a ring buffer: fixed-size, no heap.
struct SpanEvent {
    char name[kSpanNameCapacity];
    std::uint64_t begin_ns;
    std::uint64_t dur_ns;
    std::int32_t depth;
};

/// Per-thread buffer.  `count` is written with release order after the
/// event slot is filled so a host-side collector never reads a torn
/// event; everything else is owned by the recording thread.
struct ThreadBuffer {
    int tid = 0;
    int depth = 0;
    std::atomic<std::size_t> count{0};
    std::atomic<std::uint64_t> dropped{0};
    std::vector<SpanEvent> events;
};

std::mutex g_registry_mutex;
std::vector<std::unique_ptr<ThreadBuffer>>&
registry()
{
    static std::vector<std::unique_ptr<ThreadBuffer>> buffers;
    return buffers;
}

/// The calling thread's buffer; registered (under the registry mutex) on
/// first use, lock-free afterwards.  The registry owns the buffer so
/// collected spans survive thread exit.
ThreadBuffer&
local_buffer()
{
    thread_local ThreadBuffer* buf = nullptr;
    if (!buf) {
        auto owned = std::make_unique<ThreadBuffer>();
        std::lock_guard<std::mutex> lock(g_registry_mutex);
        owned->tid = static_cast<int>(registry().size());
        registry().push_back(std::move(owned));
        buf = registry().back().get();
    }
    return *buf;
}

/// Nanoseconds since the process trace epoch (first call), on the same
/// steady clock as the harness watchdog.
std::uint64_t
now_ns()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

/// Minimal JSON string escaping for span names (ASCII identifiers plus
/// the occasional '/' and space from trial labels).
void
write_escaped(std::FILE* f, const std::string& s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            std::fputc('\\', f);
        if (static_cast<unsigned char>(c) >= 0x20)
            std::fputc(c, f);
    }
}

/// One warning per process the first time an export sees dropped spans;
/// the per-export metadata block still carries the exact count.
void
warn_dropped_once(std::uint64_t dropped, const std::string& path)
{
    static std::atomic<bool> warned{false};
    if (dropped > 0 && !warned.exchange(true)) {
        PASTA_LOG_WARN << dropped << " span(s) dropped (ring buffer "
                       << "full); the trace in " << path
                       << " is missing the latest phases";
    }
}

}  // namespace

void
SpanScope::open(const char* name)
{
    if (!spans_enabled())
        return;
    armed_ = true;
    std::strncpy(name_, name, kSpanNameCapacity - 1);
    name_[kSpanNameCapacity - 1] = '\0';
    depth_ = local_buffer().depth++;
    begin_ns_ = now_ns();
}

SpanScope::SpanScope(const char* name)
{
    open(name);
}

SpanScope::SpanScope(const std::string& name)
{
    open(name.c_str());
}

SpanScope::~SpanScope()
{
    if (!armed_)
        return;
    const std::uint64_t end_ns = now_ns();
    ThreadBuffer& buf = local_buffer();
    --buf.depth;
    const std::size_t n = buf.count.load(std::memory_order_relaxed);
    if (n >= kSpanCapacity) {
        buf.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    if (buf.events.empty())
        buf.events.resize(kSpanCapacity);
    SpanEvent& ev = buf.events[n];
    std::memcpy(ev.name, name_, kSpanNameCapacity);
    ev.begin_ns = begin_ns_;
    ev.dur_ns = end_ns - begin_ns_;
    ev.depth = depth_;
    buf.count.store(n + 1, std::memory_order_release);
}

std::uint64_t
trace_now_ns()
{
    return now_ns();
}

std::int64_t
trace_wall_offset_us()
{
    const std::int64_t wall_us = std::chrono::duration_cast<
                                     std::chrono::microseconds>(
                                     std::chrono::system_clock::now()
                                         .time_since_epoch())
                                     .count();
    const std::int64_t mono_us = static_cast<std::int64_t>(now_ns() / 1000);
    return wall_us - mono_us;
}

void
record_span(const char* name, std::uint64_t begin_ns, std::uint64_t dur_ns,
            int depth)
{
    if (!spans_enabled())
        return;
    ThreadBuffer& buf = local_buffer();
    const std::size_t n = buf.count.load(std::memory_order_relaxed);
    if (n >= kSpanCapacity) {
        buf.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    if (buf.events.empty())
        buf.events.resize(kSpanCapacity);
    SpanEvent& ev = buf.events[n];
    std::strncpy(ev.name, name, kSpanNameCapacity - 1);
    ev.name[kSpanNameCapacity - 1] = '\0';
    ev.begin_ns = begin_ns;
    ev.dur_ns = dur_ns;
    ev.depth = depth;
    buf.count.store(n + 1, std::memory_order_release);
}

std::vector<SpanRecord>
collect_spans()
{
    std::vector<SpanRecord> out;
    std::lock_guard<std::mutex> lock(g_registry_mutex);
    for (const auto& buf : registry()) {
        const std::size_t n = buf->count.load(std::memory_order_acquire);
        for (std::size_t i = 0; i < n; ++i) {
            const SpanEvent& ev = buf->events[i];
            SpanRecord rec;
            rec.name = ev.name;
            rec.tid = buf->tid;
            rec.depth = ev.depth;
            rec.ts_us = static_cast<double>(ev.begin_ns) * 1e-3;
            rec.dur_us = static_cast<double>(ev.dur_ns) * 1e-3;
            out.push_back(std::move(rec));
        }
    }
    return out;
}

std::uint64_t
spans_dropped()
{
    std::uint64_t total = 0;
    std::lock_guard<std::mutex> lock(g_registry_mutex);
    for (const auto& buf : registry())
        total += buf->dropped.load(std::memory_order_relaxed);
    return total;
}

void
reset_spans()
{
    std::lock_guard<std::mutex> lock(g_registry_mutex);
    for (const auto& buf : registry()) {
        buf->count.store(0, std::memory_order_relaxed);
        buf->dropped.store(0, std::memory_order_relaxed);
    }
}

bool
write_chrome_trace(const std::string& path)
{
    const std::vector<SpanRecord> spans = collect_spans();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
        PASTA_LOG_WARN << "cannot write trace " << path;
        return false;
    }
    std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", f);
    bool first = true;
    for (const auto& s : spans) {
        if (!first)
            std::fputc(',', f);
        first = false;
        std::fputs("\n{\"name\":\"", f);
        write_escaped(f, s.name);
        std::fprintf(f,
                     "\",\"cat\":\"pasta\",\"ph\":\"X\",\"ts\":%.3f,"
                     "\"dur\":%.3f,\"pid\":1,\"tid\":%d,"
                     "\"args\":{\"depth\":%d}}",
                     s.ts_us, s.dur_us, s.tid, s.depth);
    }
    const std::uint64_t dropped = spans_dropped();
    if (dropped > 0) {
        if (!first)
            std::fputc(',', f);
        std::fprintf(f,
                     "\n{\"name\":\"spans_dropped\",\"ph\":\"C\","
                     "\"ts\":0,\"pid\":1,\"tid\":0,"
                     "\"args\":{\"count\":%llu}}",
                     static_cast<unsigned long long>(dropped));
    }
    // Viewers ignore unknown top-level keys; merge_chrome_traces reads
    // this block for pid tracks and clock alignment.
    std::fprintf(f,
                 "\n],\"pastaMeta\":{\"pid\":%lld,"
                 "\"monoToEpochUs\":%lld,\"spansDropped\":%llu}}\n",
                 static_cast<long long>(::getpid()),
                 static_cast<long long>(trace_wall_offset_us()),
                 static_cast<unsigned long long>(dropped));
    std::fclose(f);
    warn_dropped_once(dropped, path);
    PASTA_LOG_INFO << "wrote " << path << " (" << spans.size()
                   << " spans" << (dropped ? ", some dropped" : "") << ")";
    return true;
}

bool
write_spans_jsonl(const std::string& path)
{
    const std::vector<SpanRecord> spans = collect_spans();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
        PASTA_LOG_WARN << "cannot write span stream " << path;
        return false;
    }
    const std::uint64_t dropped = spans_dropped();
    std::fprintf(f,
                 "{\"pastaMeta\":{\"pid\":%lld,\"monoToEpochUs\":%lld,"
                 "\"spansDropped\":%llu}}\n",
                 static_cast<long long>(::getpid()),
                 static_cast<long long>(trace_wall_offset_us()),
                 static_cast<unsigned long long>(dropped));
    for (const auto& s : spans) {
        std::fputs("{\"name\":\"", f);
        write_escaped(f, s.name);
        std::fprintf(f,
                     "\",\"tid\":%d,\"depth\":%d,\"ts_us\":%.3f,"
                     "\"dur_us\":%.3f}\n",
                     s.tid, s.depth, s.ts_us, s.dur_us);
    }
    std::fclose(f);
    warn_dropped_once(dropped, path);
    PASTA_LOG_INFO << "wrote " << path << " (" << spans.size() << " spans)";
    return true;
}

namespace {

/// pastaMeta fields scraped from one write_chrome_trace output.
struct ParsedMeta {
    long long pid = -1;
    long long mono_to_epoch_us = 0;
    unsigned long long dropped = 0;
    bool present = false;
};

ParsedMeta
scrape_meta(const std::string& text)
{
    ParsedMeta meta;
    const std::size_t at = text.find("\"pastaMeta\":{");
    if (at == std::string::npos)
        return meta;
    const auto field = [&](const char* key) -> long long {
        const std::size_t k = text.find(key, at);
        if (k == std::string::npos)
            return 0;
        return std::strtoll(text.c_str() + k + std::strlen(key), nullptr,
                            10);
    };
    meta.pid = field("\"pid\":");
    meta.mono_to_epoch_us = field("\"monoToEpochUs\":");
    meta.dropped = static_cast<unsigned long long>(
        field("\"spansDropped\":"));
    meta.present = true;
    return meta;
}

/// Rewrites the first `"<key>":<number>` occurrence in an event line.
/// Safe on this writer's output: key patterns include an unescaped
/// quote, which can never be produced by the name escaper.
bool
rewrite_number_field(std::string& line, const char* pattern, double value,
                     bool integral)
{
    const std::size_t at = line.find(pattern);
    if (at == std::string::npos)
        return false;
    const std::size_t val_at = at + std::strlen(pattern);
    std::size_t val_end = val_at;
    while (val_end < line.size() &&
           (std::isdigit(static_cast<unsigned char>(line[val_end])) ||
            line[val_end] == '.' || line[val_end] == '-' ||
            line[val_end] == '+' || line[val_end] == 'e' ||
            line[val_end] == 'E'))
        ++val_end;
    char buf[40];
    if (integral)
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(value));
    else
        std::snprintf(buf, sizeof buf, "%.3f", value);
    line.replace(val_at, val_end - val_at, buf);
    return true;
}

}  // namespace

bool
merge_chrome_traces(const std::vector<TraceMergeInput>& inputs,
                    const std::string& out_path)
{
    struct Loaded {
        ParsedMeta meta;
        std::string label;
        std::vector<std::string> events;  // raw event lines, comma-free
    };
    std::vector<Loaded> traces;
    long long min_offset = 0;
    bool have_offset = false;
    int synthetic_pid = 1000000;  // above any real pid range
    for (const auto& input : inputs) {
        std::ifstream in(input.path);
        if (!in.good()) {
            PASTA_LOG_WARN << "merge: cannot read " << input.path
                           << "; skipping";
            continue;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        const std::string text = buf.str();
        Loaded loaded;
        loaded.meta = scrape_meta(text);
        loaded.label = input.label;
        if (!loaded.meta.present)
            loaded.meta.pid = ++synthetic_pid;
        // Event lines are the writer's own format: one object per line
        // inside the traceEvents array, trailing comma on all but last.
        std::istringstream lines(text);
        std::string line;
        while (std::getline(lines, line)) {
            if (line.rfind("{\"name\":", 0) != 0)
                continue;
            while (!line.empty() &&
                   (line.back() == ',' || line.back() == ' '))
                line.pop_back();
            loaded.events.push_back(std::move(line));
        }
        if (loaded.meta.present &&
            (!have_offset || loaded.meta.mono_to_epoch_us < min_offset)) {
            min_offset = loaded.meta.mono_to_epoch_us;
            have_offset = true;
        }
        traces.push_back(std::move(loaded));
    }
    if (traces.empty()) {
        PASTA_LOG_WARN << "merge: no readable traces for " << out_path;
        return false;
    }

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (!f) {
        PASTA_LOG_WARN << "cannot write merged trace " << out_path;
        return false;
    }
    std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", f);
    bool first = true;
    unsigned long long dropped_total = 0;
    std::size_t events_total = 0;
    for (auto& trace : traces) {
        dropped_total += trace.meta.dropped;
        if (!first)
            std::fputc(',', f);
        first = false;
        std::fprintf(f,
                     "\n{\"name\":\"process_name\",\"ph\":\"M\","
                     "\"pid\":%lld,\"tid\":0,\"args\":{\"name\":\"",
                     trace.meta.pid);
        write_escaped(f, trace.label);
        std::fputs("\"}}", f);
        const double shift =
            trace.meta.present
                ? static_cast<double>(trace.meta.mono_to_epoch_us -
                                      min_offset)
                : 0.0;
        for (std::string& line : trace.events) {
            const std::size_t ts_at = line.find("\"ts\":");
            if (ts_at != std::string::npos) {
                const double ts = std::strtod(
                    line.c_str() + ts_at + 5, nullptr);
                rewrite_number_field(line, "\"ts\":", ts + shift, false);
            }
            rewrite_number_field(
                line, "\"pid\":",
                static_cast<double>(trace.meta.pid), true);
            std::fputc(',', f);
            std::fputc('\n', f);
            std::fputs(line.c_str(), f);
            ++events_total;
        }
    }
    std::fprintf(f,
                 "\n],\"pastaMeta\":{\"pid\":%lld,"
                 "\"monoToEpochUs\":%lld,\"spansDropped\":%llu,"
                 "\"merged\":%zu}}\n",
                 static_cast<long long>(::getpid()), min_offset,
                 dropped_total, traces.size());
    std::fclose(f);
    PASTA_LOG_INFO << "wrote " << out_path << " (" << events_total
                   << " events from " << traces.size() << " trace(s))";
    return true;
}

}  // namespace pasta::obs
