#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "common/error.hpp"
#include "common/log.hpp"

namespace pasta::obs {

namespace detail {

std::atomic<int> g_mode{-1};

int
mode_slow()
{
    const int env = static_cast<int>(mode_from_env());
    g_mode.store(env, std::memory_order_relaxed);
    return env;
}

}  // namespace detail

TraceMode
mode_from_env()
{
    const char* s = std::getenv("PASTA_TRACE");
    if (!s || !*s)
        return TraceMode::kOff;
    if (std::strcmp(s, "off") == 0)
        return TraceMode::kOff;
    if (std::strcmp(s, "counters") == 0)
        return TraceMode::kCounters;
    if (std::strcmp(s, "spans") == 0)
        return TraceMode::kSpans;
    if (std::strcmp(s, "full") == 0)
        return TraceMode::kFull;
    PASTA_CHECK_MSG(false, "PASTA_TRACE='"
                               << s
                               << "' must be off, counters, spans, or full");
    return TraceMode::kOff;  // unreachable
}

void
set_mode(TraceMode mode)
{
    detail::g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

const char*
mode_name(TraceMode mode)
{
    switch (mode) {
      case TraceMode::kOff: return "off";
      case TraceMode::kCounters: return "counters";
      case TraceMode::kSpans: return "spans";
      case TraceMode::kFull: return "full";
    }
    return "?";
}

namespace {

/// Per-thread ring capacity.  16384 events x 72 bytes ≈ 1.2 MB, allocated
/// lazily on a thread's first recorded span (never with tracing off).
constexpr std::size_t kSpanCapacity = 16384;

/// One completed span as stored in a ring buffer: fixed-size, no heap.
struct SpanEvent {
    char name[kSpanNameCapacity];
    std::uint64_t begin_ns;
    std::uint64_t dur_ns;
    std::int32_t depth;
};

/// Per-thread buffer.  `count` is written with release order after the
/// event slot is filled so a host-side collector never reads a torn
/// event; everything else is owned by the recording thread.
struct ThreadBuffer {
    int tid = 0;
    int depth = 0;
    std::atomic<std::size_t> count{0};
    std::atomic<std::uint64_t> dropped{0};
    std::vector<SpanEvent> events;
};

std::mutex g_registry_mutex;
std::vector<std::unique_ptr<ThreadBuffer>>&
registry()
{
    static std::vector<std::unique_ptr<ThreadBuffer>> buffers;
    return buffers;
}

/// The calling thread's buffer; registered (under the registry mutex) on
/// first use, lock-free afterwards.  The registry owns the buffer so
/// collected spans survive thread exit.
ThreadBuffer&
local_buffer()
{
    thread_local ThreadBuffer* buf = nullptr;
    if (!buf) {
        auto owned = std::make_unique<ThreadBuffer>();
        std::lock_guard<std::mutex> lock(g_registry_mutex);
        owned->tid = static_cast<int>(registry().size());
        registry().push_back(std::move(owned));
        buf = registry().back().get();
    }
    return *buf;
}

/// Nanoseconds since the process trace epoch (first call), on the same
/// steady clock as the harness watchdog.
std::uint64_t
now_ns()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

/// Minimal JSON string escaping for span names (ASCII identifiers plus
/// the occasional '/' and space from trial labels).
void
write_escaped(std::FILE* f, const std::string& s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            std::fputc('\\', f);
        if (static_cast<unsigned char>(c) >= 0x20)
            std::fputc(c, f);
    }
}

}  // namespace

void
SpanScope::open(const char* name)
{
    if (!spans_enabled())
        return;
    armed_ = true;
    std::strncpy(name_, name, kSpanNameCapacity - 1);
    name_[kSpanNameCapacity - 1] = '\0';
    depth_ = local_buffer().depth++;
    begin_ns_ = now_ns();
}

SpanScope::SpanScope(const char* name)
{
    open(name);
}

SpanScope::SpanScope(const std::string& name)
{
    open(name.c_str());
}

SpanScope::~SpanScope()
{
    if (!armed_)
        return;
    const std::uint64_t end_ns = now_ns();
    ThreadBuffer& buf = local_buffer();
    --buf.depth;
    const std::size_t n = buf.count.load(std::memory_order_relaxed);
    if (n >= kSpanCapacity) {
        buf.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    if (buf.events.empty())
        buf.events.resize(kSpanCapacity);
    SpanEvent& ev = buf.events[n];
    std::memcpy(ev.name, name_, kSpanNameCapacity);
    ev.begin_ns = begin_ns_;
    ev.dur_ns = end_ns - begin_ns_;
    ev.depth = depth_;
    buf.count.store(n + 1, std::memory_order_release);
}

std::uint64_t
trace_now_ns()
{
    return now_ns();
}

void
record_span(const char* name, std::uint64_t begin_ns, std::uint64_t dur_ns,
            int depth)
{
    if (!spans_enabled())
        return;
    ThreadBuffer& buf = local_buffer();
    const std::size_t n = buf.count.load(std::memory_order_relaxed);
    if (n >= kSpanCapacity) {
        buf.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    if (buf.events.empty())
        buf.events.resize(kSpanCapacity);
    SpanEvent& ev = buf.events[n];
    std::strncpy(ev.name, name, kSpanNameCapacity - 1);
    ev.name[kSpanNameCapacity - 1] = '\0';
    ev.begin_ns = begin_ns;
    ev.dur_ns = dur_ns;
    ev.depth = depth;
    buf.count.store(n + 1, std::memory_order_release);
}

std::vector<SpanRecord>
collect_spans()
{
    std::vector<SpanRecord> out;
    std::lock_guard<std::mutex> lock(g_registry_mutex);
    for (const auto& buf : registry()) {
        const std::size_t n = buf->count.load(std::memory_order_acquire);
        for (std::size_t i = 0; i < n; ++i) {
            const SpanEvent& ev = buf->events[i];
            SpanRecord rec;
            rec.name = ev.name;
            rec.tid = buf->tid;
            rec.depth = ev.depth;
            rec.ts_us = static_cast<double>(ev.begin_ns) * 1e-3;
            rec.dur_us = static_cast<double>(ev.dur_ns) * 1e-3;
            out.push_back(std::move(rec));
        }
    }
    return out;
}

std::uint64_t
spans_dropped()
{
    std::uint64_t total = 0;
    std::lock_guard<std::mutex> lock(g_registry_mutex);
    for (const auto& buf : registry())
        total += buf->dropped.load(std::memory_order_relaxed);
    return total;
}

void
reset_spans()
{
    std::lock_guard<std::mutex> lock(g_registry_mutex);
    for (const auto& buf : registry()) {
        buf->count.store(0, std::memory_order_relaxed);
        buf->dropped.store(0, std::memory_order_relaxed);
    }
}

bool
write_chrome_trace(const std::string& path)
{
    const std::vector<SpanRecord> spans = collect_spans();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
        PASTA_LOG_WARN << "cannot write trace " << path;
        return false;
    }
    std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", f);
    bool first = true;
    for (const auto& s : spans) {
        if (!first)
            std::fputc(',', f);
        first = false;
        std::fputs("\n{\"name\":\"", f);
        write_escaped(f, s.name);
        std::fprintf(f,
                     "\",\"cat\":\"pasta\",\"ph\":\"X\",\"ts\":%.3f,"
                     "\"dur\":%.3f,\"pid\":1,\"tid\":%d,"
                     "\"args\":{\"depth\":%d}}",
                     s.ts_us, s.dur_us, s.tid, s.depth);
    }
    const std::uint64_t dropped = spans_dropped();
    if (dropped > 0) {
        if (!first)
            std::fputc(',', f);
        std::fprintf(f,
                     "\n{\"name\":\"spans_dropped\",\"ph\":\"C\","
                     "\"ts\":0,\"pid\":1,\"tid\":0,"
                     "\"args\":{\"count\":%llu}}",
                     static_cast<unsigned long long>(dropped));
    }
    std::fputs("\n]}\n", f);
    std::fclose(f);
    PASTA_LOG_INFO << "wrote " << path << " (" << spans.size()
                   << " spans" << (dropped ? ", some dropped" : "") << ")";
    return true;
}

bool
write_spans_jsonl(const std::string& path)
{
    const std::vector<SpanRecord> spans = collect_spans();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
        PASTA_LOG_WARN << "cannot write span stream " << path;
        return false;
    }
    for (const auto& s : spans) {
        std::fputs("{\"name\":\"", f);
        write_escaped(f, s.name);
        std::fprintf(f,
                     "\",\"tid\":%d,\"depth\":%d,\"ts_us\":%.3f,"
                     "\"dur_us\":%.3f}\n",
                     s.tid, s.depth, s.ts_us, s.dur_us);
    }
    std::fclose(f);
    PASTA_LOG_INFO << "wrote " << path << " (" << spans.size() << " spans)";
    return true;
}

}  // namespace pasta::obs
