#include "obs/metrics.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/membudget.hpp"
#include "obs/trace.hpp"

namespace pasta::obs::metrics {

// ---------------------------------------------------------------------------
// Histogram

/// One shard: a dense atomic bucket array plus moments.  ~15 KiB; shards
/// are installed lazily so idle histograms cost one pointer array.
struct Histogram::Shard {
    std::atomic<std::uint64_t> buckets[kHistBuckets] = {};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
};

Histogram::Histogram(std::string name) : name_(std::move(name)) {}

Histogram::~Histogram()
{
    for (auto& slot : shards_)
        delete slot.load(std::memory_order_acquire);
}

Histogram::Shard&
Histogram::shard_for_thread()
{
    const std::size_t idx =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
    Shard* shard = shards_[idx].load(std::memory_order_acquire);
    if (shard == nullptr) {
        Shard* fresh = new Shard();
        if (shards_[idx].compare_exchange_strong(shard, fresh,
                                                 std::memory_order_acq_rel))
            return *fresh;
        delete fresh;  // another thread won the install race
    }
    return *shard;
}

void
Histogram::record(std::uint64_t v)
{
    Shard& s = shard_for_thread();
    s.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = s.min.load(std::memory_order_relaxed);
    while (v < cur &&
           !s.min.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = s.max.load(std::memory_order_relaxed);
    while (v > cur &&
           !s.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

HistSample
Histogram::snapshot() const
{
    std::vector<std::uint64_t> dense(kHistBuckets, 0);
    HistSample out;
    std::uint64_t lo = ~std::uint64_t{0};
    for (const auto& slot : shards_) {
        const Shard* s = slot.load(std::memory_order_acquire);
        if (!s)
            continue;
        for (std::size_t i = 0; i < kHistBuckets; ++i)
            dense[i] += s->buckets[i].load(std::memory_order_relaxed);
        out.count += s->count.load(std::memory_order_relaxed);
        out.sum += s->sum.load(std::memory_order_relaxed);
        const std::uint64_t smin = s->min.load(std::memory_order_relaxed);
        if (smin < lo)
            lo = smin;
        const std::uint64_t smax = s->max.load(std::memory_order_relaxed);
        if (smax > out.max)
            out.max = smax;
    }
    out.min = out.count ? lo : 0;
    for (std::size_t i = 0; i < kHistBuckets; ++i)
        if (dense[i])
            out.buckets.emplace_back(static_cast<std::uint32_t>(i), dense[i]);
    return out;
}

void
Histogram::reset()
{
    for (auto& slot : shards_) {
        Shard* s = slot.load(std::memory_order_acquire);
        if (!s)
            continue;
        for (auto& b : s->buckets)
            b.store(0, std::memory_order_relaxed);
        s->count.store(0, std::memory_order_relaxed);
        s->sum.store(0, std::memory_order_relaxed);
        s->min.store(~std::uint64_t{0}, std::memory_order_relaxed);
        s->max.store(0, std::memory_order_relaxed);
    }
}

double
HistSample::percentile(double q) const
{
    if (count == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    if (rank < 1)
        rank = 1;
    if (rank > count)
        rank = count;
    std::uint64_t cum = 0;
    for (const auto& [idx, c] : buckets) {
        cum += c;
        if (cum >= rank) {
            const std::uint64_t lower = bucket_lower(idx);
            const std::uint64_t width = bucket_width(idx);
            return width == 1 ? static_cast<double>(lower)
                              : static_cast<double>(lower) +
                                    static_cast<double>(width) / 2.0;
        }
    }
    return static_cast<double>(max);  // unreachable with consistent counts
}

void
HistSample::merge_from(const HistSample& other)
{
    if (other.count == 0)
        return;
    if (count == 0 || other.min < min)
        min = other.min;
    if (other.max > max)
        max = other.max;
    count += other.count;
    sum += other.sum;
    // Merge two sorted sparse bucket lists.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> merged;
    merged.reserve(buckets.size() + other.buckets.size());
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < buckets.size() || b < other.buckets.size()) {
        if (b >= other.buckets.size() ||
            (a < buckets.size() && buckets[a].first < other.buckets[b].first))
            merged.push_back(buckets[a++]);
        else if (a >= buckets.size() ||
                 other.buckets[b].first < buckets[a].first)
            merged.push_back(other.buckets[b++]);
        else {
            merged.emplace_back(buckets[a].first,
                                buckets[a].second + other.buckets[b].second);
            ++a;
            ++b;
        }
    }
    buckets = std::move(merged);
}

// ---------------------------------------------------------------------------
// Registry

namespace {

std::mutex g_metrics_mutex;

// unique_ptr values keep addresses stable across map growth, so cached
// references survive registry mutation (the counters.cpp discipline).
std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>>&
counter_map()
{
    static std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>>
        m;
    return m;
}

std::map<std::string, std::unique_ptr<std::atomic<double>>>&
gauge_map()
{
    static std::map<std::string, std::unique_ptr<std::atomic<double>>> m;
    return m;
}

std::map<std::string, std::unique_ptr<Histogram>>&
hist_map()
{
    static std::map<std::string, std::unique_ptr<Histogram>> m;
    return m;
}

std::atomic<std::uint64_t>&
counter_cell(const std::string& name)
{
    std::lock_guard<std::mutex> lock(g_metrics_mutex);
    auto& slot = counter_map()[name];
    if (!slot)
        slot = std::make_unique<std::atomic<std::uint64_t>>(0);
    return *slot;
}

std::atomic<double>&
gauge_cell(const std::string& name)
{
    std::lock_guard<std::mutex> lock(g_metrics_mutex);
    auto& slot = gauge_map()[name];
    if (!slot)
        slot = std::make_unique<std::atomic<double>>(0.0);
    return *slot;
}

}  // namespace

Histogram&
histogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(g_metrics_mutex);
    auto& slot = hist_map()[name];
    if (!slot)
        slot = std::make_unique<Histogram>(name);
    return *slot;
}

void
counter_add(const std::string& name, std::uint64_t v)
{
    counter_cell(name).fetch_add(v, std::memory_order_relaxed);
}

void
gauge_set(const std::string& name, double v)
{
    gauge_cell(name).store(v, std::memory_order_relaxed);
}

void
gauge_max(const std::string& name, double v)
{
    std::atomic<double>& cell = gauge_cell(name);
    double cur = cell.load(std::memory_order_relaxed);
    while (v > cur &&
           !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

void
hist_record(const std::string& name, std::uint64_t v)
{
    histogram(name).record(v);
}

MetricsSnapshot
snapshot_metrics()
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(g_metrics_mutex);
    for (const auto& [name, cell] : counter_map())
        snap.counters[name] = cell->load(std::memory_order_relaxed);
    for (const auto& [name, cell] : gauge_map())
        snap.gauges[name] = cell->load(std::memory_order_relaxed);
    for (const auto& [name, hist] : hist_map())
        snap.hists[name] = hist->snapshot();
    return snap;
}

void
reset_metrics()
{
    std::lock_guard<std::mutex> lock(g_metrics_mutex);
    for (auto& [name, cell] : counter_map())
        cell->store(0, std::memory_order_relaxed);
    for (auto& [name, cell] : gauge_map())
        cell->store(0.0, std::memory_order_relaxed);
    for (auto& [name, hist] : hist_map())
        hist->reset();
}

std::uint64_t
MetricsSnapshot::counter(const std::string& name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

double
MetricsSnapshot::gauge(const std::string& name) const
{
    auto it = gauges.find(name);
    return it == gauges.end() ? 0.0 : it->second;
}

const HistSample*
MetricsSnapshot::hist(const std::string& name) const
{
    auto it = hists.find(name);
    return it == hists.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// JSONL serialization

namespace {

void
append_escaped(std::string& out, const std::string& s)
{
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out += c;
        }
    }
}

void
append_double(std::string& out, double v)
{
    if (!std::isfinite(v))
        v = 0.0;  // JSON has no inf/nan; a zeroed gauge beats a torn line
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

void
append_u64(std::string& out, std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
}

}  // namespace

std::string
snapshot_to_json(const MetricsSnapshot& snap)
{
    std::string out;
    out.reserve(1024);
    out += "{\"ts\":";
    append_double(out, snap.ts);
    out += ",\"seq\":";
    append_u64(out, snap.seq);
    out += ",\"source\":\"";
    append_escaped(out, snap.source);
    out += "\",\"counters\":{";
    bool first = true;
    for (const auto& [name, v] : snap.counters) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        append_escaped(out, name);
        out += "\":";
        append_u64(out, v);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, v] : snap.gauges) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        append_escaped(out, name);
        out += "\":";
        append_double(out, v);
    }
    out += "},\"hists\":{";
    first = true;
    for (const auto& [name, h] : snap.hists) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        append_escaped(out, name);
        out += "\":{\"count\":";
        append_u64(out, h.count);
        out += ",\"sum\":";
        append_u64(out, h.sum);
        out += ",\"min\":";
        append_u64(out, h.min);
        out += ",\"max\":";
        append_u64(out, h.max);
        out += ",\"buckets\":[";
        bool bfirst = true;
        for (const auto& [idx, c] : h.buckets) {
            if (!bfirst)
                out += ',';
            bfirst = false;
            out += '[';
            append_u64(out, idx);
            out += ',';
            append_u64(out, c);
            out += ']';
        }
        out += "]}";
    }
    out += "}}";
    return out;
}

// ---------------------------------------------------------------------------
// JSONL parsing: a minimal recursive-descent parser.  The journal's flat
// key:value parser cannot represent the nested hists, hence this one.
// Unknown keys are skipped so newer writers stay readable.

namespace {

struct Cursor {
    const char* p;
    const char* end;

    bool eof() const { return p >= end; }
    char peek() const { return eof() ? '\0' : *p; }
    void ws()
    {
        while (!eof() && (*p == ' ' || *p == '\t' || *p == '\r' ||
                          *p == '\n'))
            ++p;
    }
    bool consume(char c)
    {
        ws();
        if (peek() != c)
            return false;
        ++p;
        return true;
    }
};

bool skip_value(Cursor& c);

bool
parse_string(Cursor& c, std::string& out)
{
    if (!c.consume('"'))
        return false;
    out.clear();
    while (!c.eof()) {
        const char ch = *c.p++;
        if (ch == '"')
            return true;
        if (ch == '\\') {
            if (c.eof())
                return false;
            const char esc = *c.p++;
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case 'r': out += '\r'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'u': {
                if (c.end - c.p < 4)
                    return false;
                char hex[5] = {c.p[0], c.p[1], c.p[2], c.p[3], '\0'};
                char* hend = nullptr;
                const long code = std::strtol(hex, &hend, 16);
                if (hend != hex + 4)
                    return false;
                c.p += 4;
                // Control-range escapes are all this writer emits;
                // anything else degrades to '?' rather than failing.
                out += code < 0x80 ? static_cast<char>(code) : '?';
                break;
            }
            default: return false;
            }
        } else {
            out += ch;
        }
    }
    return false;  // unterminated
}

/// Lexes one number token (json number grammar, loosely) into `tok`.
bool
parse_number_token(Cursor& c, std::string& tok)
{
    c.ws();
    tok.clear();
    if (c.peek() == '-') {
        tok += '-';
        ++c.p;
    }
    if (!std::isdigit(static_cast<unsigned char>(c.peek())))
        return false;
    while (!c.eof() &&
           (std::isdigit(static_cast<unsigned char>(*c.p)) || *c.p == '.' ||
            *c.p == 'e' || *c.p == 'E' || *c.p == '+' || *c.p == '-'))
        tok += *c.p++;
    return true;
}

bool
parse_double(Cursor& c, double& out)
{
    std::string tok;
    if (!parse_number_token(c, tok))
        return false;
    char* end = nullptr;
    out = std::strtod(tok.c_str(), &end);
    return end == tok.c_str() + tok.size();
}

bool
parse_u64(Cursor& c, std::uint64_t& out)
{
    std::string tok;
    if (!parse_number_token(c, tok))
        return false;
    if (tok.find_first_of(".eE-") != std::string::npos) {
        // Tolerate a float-formatted count (foreign writer): truncate.
        char* end = nullptr;
        const double d = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size() || d < 0)
            return false;
        out = static_cast<std::uint64_t>(d);
        return true;
    }
    char* end = nullptr;
    out = std::strtoull(tok.c_str(), &end, 10);
    return end == tok.c_str() + tok.size();
}

bool
skip_object(Cursor& c)
{
    if (!c.consume('{'))
        return false;
    if (c.consume('}'))
        return true;
    do {
        std::string key;
        if (!parse_string(c, key) || !c.consume(':') || !skip_value(c))
            return false;
    } while (c.consume(','));
    return c.consume('}');
}

bool
skip_array(Cursor& c)
{
    if (!c.consume('['))
        return false;
    if (c.consume(']'))
        return true;
    do {
        if (!skip_value(c))
            return false;
    } while (c.consume(','));
    return c.consume(']');
}

bool
skip_value(Cursor& c)
{
    c.ws();
    const char ch = c.peek();
    if (ch == '{')
        return skip_object(c);
    if (ch == '[')
        return skip_array(c);
    if (ch == '"') {
        std::string s;
        return parse_string(c, s);
    }
    if (ch == 't' || ch == 'f' || ch == 'n') {
        const char* words[] = {"true", "false", "null"};
        for (const char* w : words) {
            const std::size_t len = std::strlen(w);
            if (static_cast<std::size_t>(c.end - c.p) >= len &&
                std::strncmp(c.p, w, len) == 0) {
                c.p += len;
                return true;
            }
        }
        return false;
    }
    double d;
    return parse_double(c, d);
}

bool
parse_counter_obj(Cursor& c, std::map<std::string, std::uint64_t>& out)
{
    if (!c.consume('{'))
        return false;
    if (c.consume('}'))
        return true;
    do {
        std::string key;
        std::uint64_t v;
        if (!parse_string(c, key) || !c.consume(':') || !parse_u64(c, v))
            return false;
        out[key] = v;
    } while (c.consume(','));
    return c.consume('}');
}

bool
parse_gauge_obj(Cursor& c, std::map<std::string, double>& out)
{
    if (!c.consume('{'))
        return false;
    if (c.consume('}'))
        return true;
    do {
        std::string key;
        double v;
        if (!parse_string(c, key) || !c.consume(':') || !parse_double(c, v))
            return false;
        out[key] = v;
    } while (c.consume(','));
    return c.consume('}');
}

bool
parse_hist_obj(Cursor& c, HistSample& out)
{
    if (!c.consume('{'))
        return false;
    if (c.consume('}'))
        return true;
    do {
        std::string key;
        if (!parse_string(c, key) || !c.consume(':'))
            return false;
        if (key == "count") {
            if (!parse_u64(c, out.count))
                return false;
        } else if (key == "sum") {
            if (!parse_u64(c, out.sum))
                return false;
        } else if (key == "min") {
            if (!parse_u64(c, out.min))
                return false;
        } else if (key == "max") {
            if (!parse_u64(c, out.max))
                return false;
        } else if (key == "buckets") {
            if (!c.consume('['))
                return false;
            if (!c.consume(']')) {
                do {
                    std::uint64_t idx;
                    std::uint64_t cnt;
                    if (!c.consume('[') || !parse_u64(c, idx) ||
                        !c.consume(',') || !parse_u64(c, cnt) ||
                        !c.consume(']'))
                        return false;
                    if (idx >= kHistBuckets)
                        return false;
                    out.buckets.emplace_back(
                        static_cast<std::uint32_t>(idx), cnt);
                } while (c.consume(','));
                if (!c.consume(']'))
                    return false;
            }
        } else {
            if (!skip_value(c))
                return false;
        }
    } while (c.consume(','));
    return c.consume('}');
}

bool
parse_hists_obj(Cursor& c, std::map<std::string, HistSample>& out)
{
    if (!c.consume('{'))
        return false;
    if (c.consume('}'))
        return true;
    do {
        std::string key;
        HistSample h;
        if (!parse_string(c, key) || !c.consume(':') ||
            !parse_hist_obj(c, h))
            return false;
        out[key] = std::move(h);
    } while (c.consume(','));
    return c.consume('}');
}

}  // namespace

bool
parse_snapshot_line(const std::string& line, MetricsSnapshot& out)
{
    Cursor c{line.data(), line.data() + line.size()};
    MetricsSnapshot snap;
    if (!c.consume('{'))
        return false;
    if (!c.consume('}')) {
        do {
            std::string key;
            if (!parse_string(c, key) || !c.consume(':'))
                return false;
            bool ok = true;
            if (key == "ts")
                ok = parse_double(c, snap.ts);
            else if (key == "seq")
                ok = parse_u64(c, snap.seq);
            else if (key == "source")
                ok = parse_string(c, snap.source);
            else if (key == "counters")
                ok = parse_counter_obj(c, snap.counters);
            else if (key == "gauges")
                ok = parse_gauge_obj(c, snap.gauges);
            else if (key == "hists")
                ok = parse_hists_obj(c, snap.hists);
            else
                ok = skip_value(c);
            if (!ok)
                return false;
        } while (c.consume(','));
        if (!c.consume('}'))
            return false;
    }
    c.ws();
    if (!c.eof())
        return false;
    out = std::move(snap);
    return true;
}

bool
load_last_snapshot(const std::string& path, MetricsSnapshot& out)
{
    std::ifstream in(path);
    if (!in.good())
        return false;
    bool found = false;
    std::string line;
    MetricsSnapshot snap;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        MetricsSnapshot parsed;
        if (parse_snapshot_line(line, parsed)) {
            snap = std::move(parsed);
            found = true;
        }
        // Unparseable lines (torn tail of a SIGKILL'd writer) are
        // skipped; the last complete heartbeat wins.
    }
    if (found)
        out = std::move(snap);
    return found;
}

MetricsSnapshot
merge_snapshots(const std::vector<MetricsSnapshot>& snaps,
                const std::string& source)
{
    MetricsSnapshot out;
    out.source = source;
    for (const auto& s : snaps) {
        if (s.ts > out.ts)
            out.ts = s.ts;
        if (s.seq > out.seq)
            out.seq = s.seq;
        for (const auto& [name, v] : s.counters)
            out.counters[name] += v;
        for (const auto& [name, v] : s.gauges) {
            auto [it, inserted] = out.gauges.emplace(name, v);
            if (!inserted && v > it->second)
                it->second = v;
        }
        for (const auto& [name, h] : s.hists)
            out.hists[name].merge_from(h);
    }
    return out;
}

// ---------------------------------------------------------------------------
// Exporter

ExporterOptions
ExporterOptions::from_env()
{
    ExporterOptions opts;
    const char* s = std::getenv("PASTA_METRICS");
    if (!s || !*s)
        return opts;
    const std::string spec(s);
    const std::size_t comma = spec.rfind(',');
    if (comma == std::string::npos) {
        opts.path = spec;
        return opts;
    }
    opts.path = spec.substr(0, comma);
    const std::string ms = spec.substr(comma + 1);
    char* end = nullptr;
    const long v = std::strtol(ms.c_str(), &end, 10);
    PASTA_CHECK_MSG(end == ms.c_str() + ms.size() && *ms.c_str() != '\0' &&
                        v >= 1 && v <= 3600000,
                    "PASTA_METRICS='" << spec
                                      << "': interval_ms must be an integer "
                                         "in [1, 3600000]");
    PASTA_CHECK_MSG(!opts.path.empty(),
                    "PASTA_METRICS='" << spec << "': empty path");
    opts.interval_s = static_cast<double>(v) / 1000.0;
    return opts;
}

namespace {

double
wall_now_s()
{
    return std::chrono::duration<double>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

/// Exporter state: one background thread per process, guarded by a
/// start/stop mutex.  The heartbeat fd stays open across snapshots; each
/// snapshot is one O_APPEND write (atomic enough for concurrent
/// appenders sharing a path) followed by one fsync.
struct ExporterState {
    std::thread thread;
    std::mutex mutex;  // protects stop + wakes the ticker
    std::condition_variable cv;
    bool stop = false;
    int fd = -1;
    std::uint64_t seq = 0;
    ExporterOptions opts;
    std::string source;

    /// Refreshes the pulled gauges and appends one snapshot line.
    void emit()
    {
        gauge_set("mem.reserved",
                  static_cast<double>(membudget::MemGovernor::instance().reserved()));
        gauge_set("mem.peak",
                  static_cast<double>(membudget::MemGovernor::instance().peak()));
        gauge_set("obs.spans_dropped",
                  static_cast<double>(obs::spans_dropped()));
        MetricsSnapshot snap = snapshot_metrics();
        snap.ts = wall_now_s();
        snap.seq = ++seq;  // 1-based: "seq 0" stays "never exported"
        snap.source = source;
        std::string line = snapshot_to_json(snap);
        line += '\n';
        ssize_t off = 0;
        while (off < static_cast<ssize_t>(line.size())) {
            const ssize_t n = ::write(fd, line.data() + off,
                                      line.size() - static_cast<size_t>(off));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                PASTA_LOG_WARN << "metrics exporter: write to "
                               << opts.path << " failed: "
                               << std::strerror(errno);
                return;
            }
            off += n;
        }
        ::fsync(fd);
    }

    void run()
    {
        emit();  // immediate first heartbeat: arm-to-first-line is ~0
        std::unique_lock<std::mutex> lock(mutex);
        const auto interval = std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(opts.interval_s));
        while (!stop) {
            cv.wait_for(lock, interval, [this] { return stop; });
            if (stop)
                break;
            lock.unlock();
            emit();
            lock.lock();
        }
    }
};

std::mutex g_exporter_mutex;
std::unique_ptr<ExporterState> g_exporter;

}  // namespace

bool
start_exporter(const ExporterOptions& opts, const std::string& source)
{
    stop_exporter();
    if (!opts.armed())
        return false;
    const int fd = ::open(opts.path.c_str(),
                          O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (fd < 0) {
        PASTA_LOG_WARN << "metrics exporter: cannot open " << opts.path
                       << ": " << std::strerror(errno);
        return false;
    }
    std::lock_guard<std::mutex> lock(g_exporter_mutex);
    auto state = std::make_unique<ExporterState>();
    state->fd = fd;
    state->opts = opts;
    state->source = source;
    ExporterState* raw = state.get();
    state->thread = std::thread([raw] { raw->run(); });
    g_exporter = std::move(state);
    return true;
}

bool
arm_from_env(const std::string& source)
{
    const ExporterOptions opts = ExporterOptions::from_env();
    if (!opts.armed())
        return false;
    return start_exporter(opts, source);
}

void
stop_exporter()
{
    std::unique_ptr<ExporterState> state;
    {
        std::lock_guard<std::mutex> lock(g_exporter_mutex);
        state = std::move(g_exporter);
    }
    if (!state)
        return;
    {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->stop = true;
    }
    state->cv.notify_all();
    state->thread.join();
    state->emit();  // final snapshot: the run's authoritative totals
    ::close(state->fd);
}

bool
exporter_running()
{
    std::lock_guard<std::mutex> lock(g_exporter_mutex);
    return g_exporter != nullptr;
}

}  // namespace pasta::obs::metrics
