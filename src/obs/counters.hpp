/// \file
/// Counter registry: named, process-wide counters and labels fed by the
/// kernels, the merge/sort engines, the conversions, and the simulated
/// GPU when PASTA_TRACE is counters or full.
///
/// The paper explains performance through machine balance and arithmetic
/// intensity (§V); this registry is where the suite's code deposits the
/// model-derived quantities that analysis needs — flops, bytes moved,
/// atomics issued, radix passes, per-worker work items — plus the
/// decisions it made (MTTKRP variant, merge path, sort fallback) as
/// string labels.  Counters are keyed by dotted names ("mttkrp.flops",
/// "gpusim.bytes"); the ".flops"/".bytes" suffix convention is what the
/// bench harness sums per trial to derive arithmetic intensity.
///
/// Recording is gated exactly like spans: every mutating entry point
/// checks counters_enabled() first, so with PASTA_TRACE=off the whole
/// registry is one relaxed atomic load and a predicted branch per call
/// site.  When armed, updates are relaxed atomic adds (or a CAS loop for
/// maxima) — safe from any thread, including inside parallel regions.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace pasta::obs {

/// Per-worker slots kept by each counter for load-imbalance reporting.
/// Matches the suite's practical ceiling on parallel_for workers.
inline constexpr int kMaxWorkers = 64;

/// One named counter: a running total, a high-water mark, and optional
/// per-worker totals.  All mutators are no-ops unless counters are armed.
class Counter {
  public:
    explicit Counter(std::string name);
    Counter(const Counter&) = delete;
    Counter& operator=(const Counter&) = delete;

    const std::string& name() const { return name_; }

    /// total += v.
    void add(std::uint64_t v)
    {
        if (counters_enabled())
            total_.fetch_add(v, std::memory_order_relaxed);
    }

    /// total += v, worker slot += v (worker from pasta::worker_id()).
    /// Workers at or beyond kMaxWorkers spill into a shared overflow
    /// cell — counted, not dropped — so oversubscribed runs keep exact
    /// totals and the imbalance report can say how much work went
    /// unattributed.  Negative workers stay total-only.
    void add_worker(int worker, std::uint64_t v)
    {
        if (!counters_enabled())
            return;
        total_.fetch_add(v, std::memory_order_relaxed);
        if (worker >= 0 && worker < kMaxWorkers)
            worker_[static_cast<std::size_t>(worker)].fetch_add(
                v, std::memory_order_relaxed);
        else if (worker >= kMaxWorkers)
            overflow_.fetch_add(v, std::memory_order_relaxed);
    }

    /// max = max(max, v); the total is untouched, so high-water counters
    /// (memory peaks, occupancy) never pollute suffix sums.
    void record_max(std::uint64_t v);

    std::uint64_t total() const
    {
        return total_.load(std::memory_order_relaxed);
    }
    std::uint64_t max_value() const
    {
        return max_.load(std::memory_order_relaxed);
    }

    /// Work attributed to workers >= kMaxWorkers (shared spill cell).
    std::uint64_t overflow() const
    {
        return overflow_.load(std::memory_order_relaxed);
    }

    /// Per-worker totals with trailing zero slots trimmed.
    std::vector<std::uint64_t> worker_totals() const;

    void reset();

  private:
    std::string name_;
    std::atomic<std::uint64_t> total_{0};
    std::atomic<std::uint64_t> max_{0};
    std::atomic<std::uint64_t> overflow_{0};
    std::array<std::atomic<std::uint64_t>, kMaxWorkers> worker_;
};

/// The counter registered under `name`, created on first use.  The
/// reference stays valid for the life of the process; hot call sites may
/// cache it.  Takes a registry mutex — cheap at per-kernel-invocation
/// frequency, not meant for per-nonzero calls.
Counter& counter(const std::string& name);

/// Convenience wrappers: one enabled-check, then the registry.  These are
/// the intended call-site spelling for code that records once or a few
/// times per kernel invocation.
inline void
add(const char* name, std::uint64_t v)
{
    if (counters_enabled())
        counter(name).add(v);
}

inline void
add_worker(const char* name, int worker, std::uint64_t v)
{
    if (counters_enabled())
        counter(name).add_worker(worker, v);
}

inline void
record_max(const char* name, std::uint64_t v)
{
    if (counters_enabled())
        counter(name).record_max(v);
}

/// Records the decision label `value` under `key` ("mttkrp.variant" ->
/// "hicoo-owner"): remembers the last value and counts how many times
/// each distinct value was set.  Gated like counters.
void set_label(const std::string& key, const std::string& value);

/// Last value set under `key`; "" when never set (or counters disarmed).
std::string last_label(const std::string& key);

/// One counter resolved out of the registry.
struct CounterSample {
    std::string name;
    std::uint64_t total = 0;
    std::uint64_t max_value = 0;
    std::uint64_t overflow = 0;  ///< spill from workers >= kMaxWorkers
    std::vector<std::uint64_t> worker;  ///< per-worker totals, trimmed
};

/// One label key with its last value and per-value occurrence counts.
struct LabelSample {
    std::string key;
    std::string last;
    std::vector<std::pair<std::string, std::uint64_t>> counts;
};

/// Point-in-time copy of the whole registry, for delta accounting around
/// a trial and for reports.  Lookups return zero/empty when absent.
struct CountersSnapshot {
    std::vector<CounterSample> counters;
    std::vector<LabelSample> labels;

    const CounterSample* find(const std::string& name) const;
    double value(const std::string& name) const;
    std::uint64_t max_of(const std::string& name) const;
    std::string label(const std::string& key) const;
};

/// Copies every counter and label (call anywhere; values are relaxed
/// loads, exact once recording threads are quiescent).
CountersSnapshot snapshot_counters();

/// Zeroes all counters and forgets all labels (names stay registered).
void reset_counters();

}  // namespace pasta::obs
