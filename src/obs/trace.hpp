/// \file
/// Phase-scoped tracing: zero-overhead-when-off spans recorded lock-free
/// into per-thread ring buffers, exportable as Chrome-trace JSON.
///
/// The suite's performance story (paper §V, Observations 1-4) is told in
/// phases — sort, convert, plan, kernel — and the PASTA suite paper
/// stresses that a benchmark must expose *where* the time goes, not just
/// the total.  This layer provides `PASTA_SPAN("convert.hicoo")`: an RAII
/// scope that records {name, thread, nesting depth, steady-clock begin,
/// duration} when tracing is armed and compiles down to one relaxed
/// atomic load and a predicted branch when it is not — the same
/// discipline as PASTA_LOG, so instrumented kernels stay on their timing
/// baselines with tracing off.
///
/// Arming comes from the PASTA_TRACE environment variable:
///   off       nothing recorded (default; the timing path is untouched)
///   counters  counter registry armed (see counters.hpp), spans off
///   spans     spans armed, counters off
///   full      both
///
/// Recording is lock-free after a thread's first span: each thread owns a
/// fixed-capacity ring buffer registered once under a mutex; a span is a
/// bounded memcpy plus a release store of the count.  When a buffer
/// fills, further spans on that thread are dropped and counted (earliest
/// phases — the interesting suite structure — are kept).  Collection and
/// export are host-side operations meant to run outside parallel regions.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pasta::obs {

/// Runtime instrumentation mode (PASTA_TRACE).
enum class TraceMode { kOff = 0, kCounters = 1, kSpans = 2, kFull = 3 };

/// Parses PASTA_TRACE; unset or empty means kOff, anything other than
/// off/counters/spans/full throws PastaError.
TraceMode mode_from_env();

/// Overrides the cached mode (tests and drivers).
void set_mode(TraceMode mode);

/// Human-readable mode name ("off", "counters", "spans", "full").
const char* mode_name(TraceMode mode);

namespace detail {

/// Cached mode as an int; -1 = not yet read from the environment.
extern std::atomic<int> g_mode;

/// Reads PASTA_TRACE, caches it, and returns the mode as an int.
int mode_slow();

}  // namespace detail

/// The cached process-wide mode (reads the environment on first call).
inline TraceMode
current_mode()
{
    int m = detail::g_mode.load(std::memory_order_relaxed);
    if (m < 0)
        m = detail::mode_slow();
    return static_cast<TraceMode>(m);
}

/// True when PASTA_SPAN scopes record events (spans or full).
inline bool
spans_enabled()
{
    const TraceMode m = current_mode();
    return m == TraceMode::kSpans || m == TraceMode::kFull;
}

/// True when the counter registry accumulates (counters or full).
inline bool
counters_enabled()
{
    const TraceMode m = current_mode();
    return m == TraceMode::kCounters || m == TraceMode::kFull;
}

/// Span names are stored inline in the ring buffer (no allocation on the
/// record path); longer names are truncated.
inline constexpr std::size_t kSpanNameCapacity = 48;

/// RAII phase scope.  Construction snapshots the steady clock and the
/// thread's nesting depth; destruction records one completed event into
/// the calling thread's ring buffer.  Does nothing (beyond one mode
/// check) when spans are disarmed.
class SpanScope {
  public:
    explicit SpanScope(const char* name);
    explicit SpanScope(const std::string& name);
    SpanScope(const SpanScope&) = delete;
    SpanScope& operator=(const SpanScope&) = delete;
    ~SpanScope();

  private:
    void open(const char* name);

    bool armed_ = false;
    int depth_ = 0;
    std::uint64_t begin_ns_ = 0;
    char name_[kSpanNameCapacity];
};

/// Nanoseconds since the process trace epoch on the span clock (the
/// epoch is pinned at first use).  Cheap enough to call with tracing
/// off; the serving scheduler stamps job lifecycle times with it so a
/// queue-wait span can be recorded after the fact.
std::uint64_t trace_now_ns();

/// Records one already-completed span directly into the calling
///// thread's ring buffer: the escape hatch for durations measured
/// outside an RAII scope (a job's queue wait ends on a different
/// timeline than any C++ scope).  `begin_ns` must come from
/// trace_now_ns().  No-op (one mode check) when spans are disarmed.
void record_span(const char* name, std::uint64_t begin_ns,
                 std::uint64_t dur_ns, int depth = 0);

/// One collected span, resolved for export/analysis.
struct SpanRecord {
    std::string name;
    int tid = 0;    ///< registration-order thread id, stable per thread
    int depth = 0;  ///< nesting depth at entry (0 = top level)
    double ts_us = 0;   ///< begin, microseconds since the trace epoch
    double dur_us = 0;  ///< duration, microseconds
};

/// Snapshot of every thread's recorded spans (call outside parallel
/// regions; recording threads must be quiescent for an exact snapshot).
std::vector<SpanRecord> collect_spans();

/// Spans dropped because a thread's ring buffer filled.
std::uint64_t spans_dropped();

/// Clears all recorded spans (buffers and thread ids stay registered).
void reset_spans();

/// Microseconds to ADD to a span's ts_us (trace-epoch microseconds) to
/// land on the unix epoch, captured at call time.  Every export stamps
/// this into its metadata block, which is the clock-alignment contract:
/// two traces from different processes (different steady-clock epochs)
/// merge onto one timeline by shifting each trace by its own offset.
std::int64_t trace_wall_offset_us();

/// Writes the collected spans as Chrome trace-event JSON ("X" complete
/// events, ts/dur in microseconds) loadable in Perfetto or
/// chrome://tracing.  A top-level "pastaMeta" block carries the writer's
/// pid, trace_wall_offset_us(), and spans_dropped() (viewers ignore
/// unknown top-level keys); a one-shot warning is logged when spans were
/// dropped, so ring overflow can't masquerade as a quiet phase.
/// Returns false (logging a warning) when the file cannot be written.
bool write_chrome_trace(const std::string& path);

/// Writes the collected spans as JSONL: one "pastaMeta" header line
/// (pid, clock offset, dropped count), then one flat object per span:
///   {"name":"convert.hicoo","tid":0,"depth":1,"ts_us":12.5,"dur_us":3.1}
bool write_spans_jsonl(const std::string& path);

/// One per-process trace to merge into a campaign-wide timeline.
struct TraceMergeInput {
    std::string path;   ///< a write_chrome_trace output
    std::string label;  ///< process-track name ("shard 3", "supervisor")
};

/// Merges per-process Chrome traces into one clock-aligned timeline:
/// each input's events are shifted by its pastaMeta clock offset
/// (relative to the earliest input epoch) and moved onto that writer's
/// own pid track, with a "process_name" metadata event carrying the
/// label.  Inputs without a pastaMeta block (foreign traces) are merged
/// unshifted on a synthetic pid.  Unreadable inputs are skipped with a
/// warning; returns false when none could be read or the output cannot
/// be written.
bool merge_chrome_traces(const std::vector<TraceMergeInput>& inputs,
                         const std::string& out_path);

#define PASTA_OBS_CONCAT2(a, b) a##b
#define PASTA_OBS_CONCAT(a, b) PASTA_OBS_CONCAT2(a, b)

/// Statement form: `PASTA_SPAN("convert.hicoo");` opens a span covering
/// the rest of the enclosing scope.
#define PASTA_SPAN(name)                                                     \
    ::pasta::obs::SpanScope PASTA_OBS_CONCAT(pasta_span_, __LINE__)(name)

}  // namespace pasta::obs
