#include "obs/counters.hpp"

#include <map>
#include <memory>
#include <mutex>

namespace pasta::obs {

Counter::Counter(std::string name) : name_(std::move(name))
{
    for (auto& w : worker_)
        w.store(0, std::memory_order_relaxed);
}

void
Counter::record_max(std::uint64_t v)
{
    if (!counters_enabled())
        return;
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

std::vector<std::uint64_t>
Counter::worker_totals() const
{
    std::size_t used = 0;
    for (std::size_t w = 0; w < worker_.size(); ++w)
        if (worker_[w].load(std::memory_order_relaxed) != 0)
            used = w + 1;
    std::vector<std::uint64_t> out(used);
    for (std::size_t w = 0; w < used; ++w)
        out[w] = worker_[w].load(std::memory_order_relaxed);
    return out;
}

void
Counter::reset()
{
    total_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    overflow_.store(0, std::memory_order_relaxed);
    for (auto& w : worker_)
        w.store(0, std::memory_order_relaxed);
}

namespace {

/// Occurrence history for one label key.
struct LabelState {
    std::string last;
    std::map<std::string, std::uint64_t> counts;
};

std::mutex g_counters_mutex;

/// unique_ptr values keep Counter addresses stable across rehash-free
/// map growth, so counter() references outlive registry mutation.
std::map<std::string, std::unique_ptr<Counter>>&
counter_map()
{
    static std::map<std::string, std::unique_ptr<Counter>> m;
    return m;
}

std::map<std::string, LabelState>&
label_map()
{
    static std::map<std::string, LabelState> m;
    return m;
}

}  // namespace

Counter&
counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(g_counters_mutex);
    auto& slot = counter_map()[name];
    if (!slot)
        slot = std::make_unique<Counter>(name);
    return *slot;
}

void
set_label(const std::string& key, const std::string& value)
{
    if (!counters_enabled())
        return;
    std::lock_guard<std::mutex> lock(g_counters_mutex);
    LabelState& state = label_map()[key];
    state.last = value;
    ++state.counts[value];
}

std::string
last_label(const std::string& key)
{
    std::lock_guard<std::mutex> lock(g_counters_mutex);
    auto it = label_map().find(key);
    return it == label_map().end() ? std::string() : it->second.last;
}

const CounterSample*
CountersSnapshot::find(const std::string& name) const
{
    for (const auto& c : counters)
        if (c.name == name)
            return &c;
    return nullptr;
}

double
CountersSnapshot::value(const std::string& name) const
{
    const CounterSample* c = find(name);
    return c ? static_cast<double>(c->total) : 0.0;
}

std::uint64_t
CountersSnapshot::max_of(const std::string& name) const
{
    const CounterSample* c = find(name);
    return c ? c->max_value : 0;
}

std::string
CountersSnapshot::label(const std::string& key) const
{
    for (const auto& l : labels)
        if (l.key == key)
            return l.last;
    return std::string();
}

CountersSnapshot
snapshot_counters()
{
    CountersSnapshot snap;
    std::lock_guard<std::mutex> lock(g_counters_mutex);
    for (const auto& [name, c] : counter_map()) {
        CounterSample s;
        s.name = name;
        s.total = c->total();
        s.max_value = c->max_value();
        s.overflow = c->overflow();
        s.worker = c->worker_totals();
        snap.counters.push_back(std::move(s));
    }
    for (const auto& [key, state] : label_map()) {
        LabelSample l;
        l.key = key;
        l.last = state.last;
        l.counts.assign(state.counts.begin(), state.counts.end());
        snap.labels.push_back(std::move(l));
    }
    return snap;
}

void
reset_counters()
{
    std::lock_guard<std::mutex> lock(g_counters_mutex);
    for (auto& [name, c] : counter_map())
        c->reset();
    label_map().clear();
}

}  // namespace pasta::obs
