/// \file
/// Efficiency reporting: joins counter-registry telemetry with measured
/// runtimes and the Roofline machine model (paper §V-C).
///
/// The bench harness snapshots the registry around each trial; the deltas
/// give the trial's model-derived flops and bytes, whose ratio is the
/// counter-derived arithmetic intensity.  AI is a ratio, so it is
/// invariant to how many warmups/runs the trial performed — no
/// normalization by run counts is needed.  Combined with the measured
/// GFLOPS (from the Table I cost model and the timed seconds) it yields
/// the "% of roofline" column the suite CSVs carry.
#pragma once

#include <string>

#include "obs/counters.hpp"
#include "roofline/machine.hpp"

namespace pasta::obs {

/// Sum of (after - before) totals over every counter whose name ends in
/// `suffix` (".flops", ".bytes", ".atomics").  Counters absent from
/// `before` contribute their full `after` total.
double delta_suffix_sum(const CountersSnapshot& before,
                        const CountersSnapshot& after,
                        const std::string& suffix);

/// Load imbalance of one counter's per-worker totals: max/mean over the
/// slots that did any work (1.0 = perfectly balanced).  Returns 0 when
/// fewer than one worker recorded items.
double worker_imbalance(const CounterSample& sample);

/// Percent of the Roofline ceiling achieved: 100 x measured GFLOPS over
/// the platform's attainable performance at arithmetic intensity `ai`
/// (min of peak compute and ai x ERT-DRAM bandwidth).  Returns 0 when
/// any input is degenerate.
double roofline_pct(double measured_gflops, double ai,
                    const MachineSpec& spec);

/// Human-readable dump of a snapshot: counters with totals/maxima and
/// per-counter imbalance, then labels with occurrence counts.  Used by
/// drivers and tests; the machine-readable channel is the CSV/journal.
std::string render_counter_report(const CountersSnapshot& snap);

}  // namespace pasta::obs
