/// \file
/// Format-invariant validation layer (one checker per sparse format).
///
/// Every format the suite implements carries structural invariants —
/// sorted order, index bounds, block-pointer monotonicity and coverage,
/// dense-stripe volumes, no duplicate coordinates, finite values — that
/// the format-abstraction literature argues must be checked exactly at
/// conversion and deserialization boundaries.  The checkers here verify
/// those invariants and return a ValidationReport listing the first K
/// offending entries with their positions, not just a boolean, so a
/// corrupt tensor is diagnosable from the failure record alone.
///
/// The layer is armed through the PASTA_VALIDATE environment variable:
///   off      no checks (default; the timing path is untouched)
///   convert  validate every format after construction / conversion /
///            deserialization
///   kernel   differentially check each benchmark trial's output against
///            a serial COO oracle (see diff.hpp)
///   full     both, plus bounds-checked simulated GPU memory accesses
/// Validation failures throw ValidationError, which the PR-1 trial guard
/// records as a distinct "validation" failure class in the run journal
/// and failure CSVs instead of aborting the campaign.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace pasta {
class CooTensor;
class ScooTensor;
class HiCooTensor;
class GHiCooTensor;
class SHiCooTensor;
class CsfTensor;
struct CsfLevel;
class FcooTensor;
}  // namespace pasta

namespace pasta::validate {

/// Runtime validation mode (PASTA_VALIDATE).
enum class Mode { kOff, kConvert, kKernel, kFull };

/// Parses PASTA_VALIDATE; unset or empty means kOff, anything other than
/// off/convert/kernel/full throws PastaError.
Mode mode_from_env();

/// The cached process-wide mode (reads the environment on first call).
Mode current_mode();

/// Overrides the cached mode (tests and drivers).
void set_mode(Mode mode);

/// Human-readable mode name.
const char* mode_name(Mode mode);

/// True when structural checks run after conversions/deserialization.
bool convert_checks_enabled();

/// True when kernel outputs are diff-checked against oracles.
bool kernel_checks_enabled();

/// True only under PASTA_VALIDATE=full (arms GPU-sim bounds checking).
bool full_checks_enabled();

/// Thrown when a structural invariant or differential check fails.
/// Derives from PastaError so existing guards catch it, but the trial
/// harness classifies it separately: validation failures are
/// deterministic and therefore terminal (never retried).
class ValidationError : public PastaError {
  public:
    explicit ValidationError(const std::string& what) : PastaError(what) {}
};

/// One offending entry: which invariant, where, and what was seen.
struct Issue {
    std::string code;    ///< invariant id, e.g. "bptr.monotone"
    Size position = 0;   ///< entry/block/level position of the violation
    std::string detail;  ///< human-readable specifics (indices, values)
};

/// Outcome of one structural validation pass.
struct ValidationReport {
    /// Reports keep the first kMaxIssues offending entries; further
    /// violations are only counted.
    static constexpr Size kMaxIssues = 8;

    std::string format;          ///< checked format, e.g. "HiCOO"
    Size checked = 0;            ///< entries examined
    Size violations = 0;         ///< total violations found
    std::vector<Issue> issues;   ///< first kMaxIssues violations

    bool ok() const { return violations == 0; }

    /// Records a violation (keeps the first kMaxIssues).
    void add(std::string code, Size position, std::string detail);

    /// One-line result, listing the retained issues when failing.
    std::string summary() const;

    /// Throws ValidationError carrying summary() when !ok().
    void require() const;
};

/// Structural invariant checkers, one per format.
ValidationReport validate(const CooTensor& x);
ValidationReport validate(const ScooTensor& x);
ValidationReport validate(const HiCooTensor& x);
ValidationReport validate(const GHiCooTensor& x);
ValidationReport validate(const SHiCooTensor& x);
ValidationReport validate(const CsfTensor& x);
ValidationReport validate(const FcooTensor& x);

/// Raw-array HiCOO checker: the same invariants as validate(HiCooTensor)
/// over caller-held arrays.  Lets adversarial tests corrupt `bptr` and
/// friends directly, which the member API (correctly) cannot produce.
ValidationReport validate_hicoo_arrays(
    const std::vector<Index>& dims, unsigned block_bits,
    const std::vector<std::vector<BIndex>>& binds,
    const std::vector<Size>& bptr,
    const std::vector<std::vector<EIndex>>& einds,
    const std::vector<Value>& values);

/// Raw-array CSF checker (levels are caller-constructed).
ValidationReport validate_csf_arrays(const std::vector<Index>& dims,
                                     const std::vector<Size>& mode_order,
                                     const std::vector<CsfLevel>& levels,
                                     const std::vector<Value>& values);

/// Raw-array F-COO checker.
ValidationReport validate_fcoo_arrays(
    const std::vector<Index>& dims, Size mode,
    const std::vector<Value>& values,
    const std::vector<Index>& product_indices,
    const std::vector<std::uint8_t>& flags,
    const std::vector<Index>& fiber_of, const CooTensor& out_pattern);

}  // namespace pasta::validate
