/// \file
/// Differential oracle checking for the five benchmark kernels.
///
/// Each diff_* helper recomputes one kernel (TEW/TS/TTV/TTM/MTTKRP) with a
/// serial double-precision COO oracle and compares the benchmarked output
/// against it.  The tolerance is ULP-aware and scales with reduction
/// depth: a result accumulated from `terms` products in float is accepted
/// within eps32 * slack * (terms + 2) * sum|term| plus an absolute floor,
/// the standard deterministic forward-error bound for recursive summation
/// (Higham, Accuracy and Stability of Numerical Algorithms, §4.2), so
/// reassociation by OpenMP reductions, atomics, or the simulated GPU never
/// trips the check while a wrong index or dropped non-zero always does.
/// Sparse outputs are canonicalized (sorted, duplicates summed) before the
/// compare, and a coordinate absent on either side is treated as 0.
///
/// These checks run only under PASTA_VALIDATE=kernel|full (see
/// validate.hpp); failures throw ValidationError and surface as the
/// `validation` failure class in the trial journal.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "kernels/ops.hpp"
#include "validate/validate.hpp"

namespace pasta {
class DenseMatrix;
class DenseVector;
}  // namespace pasta

namespace pasta::validate {

/// One entry the oracle produced: the double-precision value plus the
/// error-bound bookkeeping (number of accumulated terms and the sum of
/// their magnitudes).
struct OracleEntry {
    double value = 0.0;
    double abs_sum = 0.0;
    Size terms = 0;
};

/// One tolerance violation: where, what the oracle says, what the kernel
/// produced, and the bound that was exceeded.
struct DiffMismatch {
    std::string where;     ///< coordinate, e.g. "(3,0,7)" or "out(5,2)"
    double expected = 0.0;
    double actual = 0.0;
    double error = 0.0;    ///< |expected - actual|
    double bound = 0.0;    ///< tolerance that was exceeded
};

/// Outcome of one differential check.
struct DiffReport {
    /// Reports keep the first kMaxMismatches violations.
    static constexpr Size kMaxMismatches = 8;

    std::string label;     ///< e.g. "TTV vs coo-serial oracle"
    Size compared = 0;     ///< output entries compared
    Size mismatched = 0;   ///< entries outside tolerance
    double max_excess = 0.0;  ///< worst error/bound ratio observed
    std::vector<DiffMismatch> mismatches;

    bool ok() const { return mismatched == 0; }

    /// Records a violation (keeps the first kMaxMismatches).
    void add(std::string where, double expected, double actual,
             double bound);

    /// One-line result, listing retained mismatches when failing.
    std::string summary() const;

    /// Throws ValidationError carrying summary() when !ok().
    void require() const;
};

/// Element-wise tensor (TEW): checks z[i] ~= x[i] op y[i] for n entries.
DiffReport diff_tew(EwOp op, const Value* x, const Value* y,
                    const Value* z, Size n);

/// General-pattern TEW (different shapes/patterns): recomputes the sorted
/// merge of x op y with a serial double-precision two-pointer oracle —
/// union semantics for add/sub, intersection for mul/div — and compares
/// the canonicalized `z` against it.  Covers every merged path (CPU
/// merged-64key/merged-cmp, HiCOO re-blocked, simulated-GPU two-phase).
DiffReport diff_tew_general(EwOp op, const CooTensor& x, const CooTensor& y,
                            const CooTensor& z);

/// Tensor-scalar (TS): checks out[i] ~= x[i] op s for n entries.
DiffReport diff_ts(TsOp op, const Value* x, Value s, const Value* out,
                   Size n);

/// TTV: checks `actual` against the serial COO oracle of x ×̄_mode v.
DiffReport diff_ttv(const CooTensor& x, const DenseVector& v, Size mode,
                    const CooTensor& actual);

/// TTM: checks `actual` (semi-sparse, dense mode `mode`) against the
/// serial COO oracle of x ×_mode U.
DiffReport diff_ttm(const CooTensor& x, const DenseMatrix& u, Size mode,
                    const ScooTensor& actual);

/// MTTKRP: checks the dense `actual` matrix against the serial COO oracle
/// for the given mode and factor list.
DiffReport diff_mttkrp(const CooTensor& x,
                       const std::vector<const DenseMatrix*>& factors,
                       Size mode, const DenseMatrix& actual);

}  // namespace pasta::validate
