#include "validate/validate.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <unordered_set>

#include "common/morton.hpp"
#include "core/block_math.hpp"
#include "core/coo_tensor.hpp"
#include "core/csf_tensor.hpp"
#include "core/fcoo_tensor.hpp"
#include "core/ghicoo_tensor.hpp"
#include "core/hicoo_tensor.hpp"
#include "core/scoo_tensor.hpp"
#include "core/shicoo_tensor.hpp"

namespace pasta::validate {

namespace {

/// -1 = not yet read from the environment.
std::atomic<int> g_mode{-1};

}  // namespace

Mode
mode_from_env()
{
    const char* s = std::getenv("PASTA_VALIDATE");
    if (!s || !*s)
        return Mode::kOff;
    if (std::strcmp(s, "off") == 0)
        return Mode::kOff;
    if (std::strcmp(s, "convert") == 0)
        return Mode::kConvert;
    if (std::strcmp(s, "kernel") == 0)
        return Mode::kKernel;
    if (std::strcmp(s, "full") == 0)
        return Mode::kFull;
    PASTA_CHECK_MSG(false, "PASTA_VALIDATE='"
                               << s
                               << "' must be off, convert, kernel, or full");
    return Mode::kOff;  // unreachable
}

Mode
current_mode()
{
    int m = g_mode.load(std::memory_order_relaxed);
    if (m < 0) {
        const Mode env = mode_from_env();
        g_mode.store(static_cast<int>(env), std::memory_order_relaxed);
        return env;
    }
    return static_cast<Mode>(m);
}

void
set_mode(Mode mode)
{
    g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

const char*
mode_name(Mode mode)
{
    switch (mode) {
      case Mode::kOff: return "off";
      case Mode::kConvert: return "convert";
      case Mode::kKernel: return "kernel";
      case Mode::kFull: return "full";
    }
    return "?";
}

bool
convert_checks_enabled()
{
    const Mode m = current_mode();
    return m == Mode::kConvert || m == Mode::kFull;
}

bool
kernel_checks_enabled()
{
    const Mode m = current_mode();
    return m == Mode::kKernel || m == Mode::kFull;
}

bool
full_checks_enabled()
{
    return current_mode() == Mode::kFull;
}

void
ValidationReport::add(std::string code, Size position, std::string detail)
{
    ++violations;
    if (issues.size() < kMaxIssues)
        issues.push_back({std::move(code), position, std::move(detail)});
}

std::string
ValidationReport::summary() const
{
    std::ostringstream oss;
    if (ok()) {
        oss << format << " valid (" << checked << " entries checked)";
        return oss.str();
    }
    oss << format << " invalid: " << violations << " violation(s) in "
        << checked << " entries;";
    for (Size i = 0; i < issues.size(); ++i) {
        const Issue& issue = issues[i];
        oss << (i ? "; " : " ") << issue.code << " at " << issue.position
            << " (" << issue.detail << ")";
    }
    if (violations > issues.size())
        oss << "; ... " << violations - issues.size() << " more";
    return oss.str();
}

void
ValidationReport::require() const
{
    if (!ok())
        throw ValidationError(summary());
}

namespace {

bool
finite(Value v)
{
    return std::isfinite(static_cast<double>(v));
}

/// Checks a value array for non-finite entries.
void
check_finite(ValidationReport& report, const std::vector<Value>& values)
{
    for (Size p = 0; p < values.size(); ++p) {
        if (!finite(values[p])) {
            std::ostringstream oss;
            oss << "value " << values[p];
            report.add("value.finite", p, oss.str());
        }
    }
}

std::string
index_detail(Index seen, Index limit, Size mode)
{
    std::ostringstream oss;
    oss << "index " << seen << " >= dim " << limit << " on mode " << mode;
    return oss.str();
}

/// Lexicographic comparison of coordinate `a` vs `b` of `x`.
int
coo_compare(const CooTensor& x, Size a, Size b)
{
    for (Size m = 0; m < x.order(); ++m) {
        if (x.index(m, a) != x.index(m, b))
            return x.index(m, a) < x.index(m, b) ? -1 : 1;
    }
    return 0;
}

/// Shared core of the HiCOO checks, parameterized over element access so
/// the raw-array entry point and the member-based overloads agree.
/// `bind(mode_slot, block)` / `eind(mode_slot, pos)` address `num_slots`
/// blocked dimension slots whose extents are `slot_dims`.  `tag(p, key)`
/// appends any extra per-entry identity to the duplicate-detection key
/// (gHiCOO entries also differ by their uncompressed raw coordinates).
template <typename BindFn, typename EindFn, typename TagFn>
void
check_blocked(ValidationReport& report, const std::vector<Index>& slot_dims,
              unsigned block_bits, Size num_blocks, Size entries,
              const std::vector<Size>& bptr, BindFn bind, EindFn eind,
              TagFn tag)
{
    const Size num_slots = slot_dims.size();
    const Index block_edge = Index{1} << block_bits;

    // bptr: starts at 0, strictly monotone (no empty blocks), covers all
    // entries.
    if (bptr.empty()) {
        if (entries != 0)
            report.add("bptr.coverage", 0, "empty bptr with entries");
    } else {
        if (bptr.size() != num_blocks + 1) {
            std::ostringstream oss;
            oss << "bptr length " << bptr.size() << " != blocks+1 "
                << num_blocks + 1;
            report.add("bptr.length", 0, oss.str());
            return;  // downstream indexing would be unsafe
        }
        if (bptr.front() != 0)
            report.add("bptr.start", 0, "bptr must start at 0");
        if (bptr.back() != entries) {
            std::ostringstream oss;
            oss << "bptr ends at " << bptr.back() << ", entries "
                << entries;
            report.add("bptr.coverage", num_blocks, oss.str());
        }
        for (Size b = 0; b < num_blocks; ++b) {
            if (bptr[b] >= bptr[b + 1]) {
                std::ostringstream oss;
                oss << "bptr[" << b << "]=" << bptr[b] << " >= bptr["
                    << b + 1 << "]=" << bptr[b + 1];
                report.add("bptr.monotone", b, oss.str());
            }
        }
    }

    // Block indices against the 64-bit-safe block count per slot.
    for (Size s = 0; s < num_slots; ++s) {
        const Size max_blocks = block_count(slot_dims[s], block_bits);
        for (Size b = 0; b < num_blocks; ++b) {
            if (static_cast<Size>(bind(s, b)) >= max_blocks) {
                std::ostringstream oss;
                oss << "block index " << bind(s, b) << " >= "
                    << max_blocks << " blocks of dim " << slot_dims[s]
                    << " on slot " << s;
                report.add("block.range", b, oss.str());
            }
        }
    }

    // Element indices below the block edge, reconstructed coordinates in
    // range, no duplicate coordinates inside a block, blocks Morton-
    // nondecreasing (adjacent equal keys must differ in block coords).
    const bool bptr_usable =
        bptr.size() == num_blocks + 1 && report.violations == 0;
    for (Size s = 0; s < num_slots; ++s) {
        for (Size p = 0; p < entries; ++p) {
            if (eind(s, p) >= block_edge) {
                std::ostringstream oss;
                oss << "element index " << static_cast<unsigned>(eind(s, p))
                    << " >= block edge " << block_edge << " on slot " << s;
                report.add("element.range", p, oss.str());
            }
        }
    }
    if (!bptr_usable)
        return;

    MortonKey prev_key{};
    std::vector<Index> block_coord(num_slots);
    std::unordered_set<std::string> in_block;
    std::string key;
    for (Size b = 0; b < num_blocks; ++b) {
        for (Size s = 0; s < num_slots; ++s)
            block_coord[s] = static_cast<Index>(bind(s, b));
        const MortonKey mkey = morton_encode(block_coord.data(), num_slots);
        if (b > 0) {
            if (mkey < prev_key) {
                report.add("block.morton", b,
                           "blocks not in Morton order");
            } else if (!(prev_key < mkey)) {
                // Equal keys: genuine with >4 modes (truncated encoding),
                // but identical block coordinates mean a split block.
                bool same = true;
                for (Size s = 0; s < num_slots && same; ++s)
                    same = block_coord[s] ==
                           static_cast<Index>(bind(s, b - 1));
                if (same)
                    report.add("block.duplicate", b,
                               "same block coordinates as previous block");
            }
        }
        prev_key = mkey;

        in_block.clear();
        for (Size p = bptr[b]; p < bptr[b + 1]; ++p) {
            key.clear();
            for (Size s = 0; s < num_slots; ++s) {
                const Index coord =
                    (static_cast<Index>(bind(s, b)) << block_bits) |
                    eind(s, p);
                if (coord >= slot_dims[s])
                    report.add("coordinate.range", p,
                               index_detail(coord, slot_dims[s], s));
                key.push_back(static_cast<char>(eind(s, p)));
            }
            tag(p, key);
            if (!in_block.insert(key).second)
                report.add("coordinate.duplicate", p,
                           "duplicate coordinate inside block " +
                               std::to_string(b));
        }
    }
}

/// check_blocked with no extra per-entry identity.
template <typename BindFn, typename EindFn>
void
check_blocked(ValidationReport& report, const std::vector<Index>& slot_dims,
              unsigned block_bits, Size num_blocks, Size entries,
              const std::vector<Size>& bptr, BindFn bind, EindFn eind)
{
    check_blocked(report, slot_dims, block_bits, num_blocks, entries, bptr,
                  bind, eind, [](Size, std::string&) {});
}

}  // namespace

ValidationReport
validate(const CooTensor& x)
{
    ValidationReport report;
    report.format = "COO";
    report.checked = x.nnz();
    for (Size m = 0; m < x.order(); ++m) {
        if (x.mode_indices(m).size() != x.nnz()) {
            std::ostringstream oss;
            oss << "mode " << m << " has " << x.mode_indices(m).size()
                << " indices, " << x.nnz() << " values";
            report.add("length", m, oss.str());
            return report;  // positions below would be unsafe
        }
    }
    for (Size m = 0; m < x.order(); ++m) {
        for (Size p = 0; p < x.nnz(); ++p) {
            if (x.index(m, p) >= x.dim(m))
                report.add("index.range", p,
                           index_detail(x.index(m, p), x.dim(m), m));
        }
    }
    for (Size p = 1; p < x.nnz(); ++p) {
        const int cmp = coo_compare(x, p - 1, p);
        if (cmp > 0)
            report.add("order.sorted", p,
                       "non-zeros not lexicographically sorted");
        else if (cmp == 0)
            report.add("coordinate.duplicate", p,
                       "duplicate coordinate (coalesce first)");
    }
    check_finite(report, x.values());
    return report;
}

ValidationReport
validate(const ScooTensor& x)
{
    ValidationReport report;
    report.format = "sCOO";
    report.checked = x.num_sparse();

    // Mode partition: sparse + dense modes, each ascending and disjoint,
    // must cover every mode exactly once.
    std::vector<int> seen(x.order(), 0);
    for (Size mode : x.sparse_modes())
        if (mode < x.order())
            ++seen[mode];
    for (Size mode : x.dense_modes())
        if (mode < x.order())
            ++seen[mode];
    for (Size m = 0; m < x.order(); ++m) {
        if (seen[m] != 1) {
            std::ostringstream oss;
            oss << "mode " << m << " covered " << seen[m]
                << " times by sparse+dense partition";
            report.add("modes.partition", m, oss.str());
        }
    }

    Size volume = 1;
    for (Size mode : x.dense_modes())
        volume *= x.dim(mode);
    if (x.stripe_volume() != volume) {
        std::ostringstream oss;
        oss << "stripe volume " << x.stripe_volume()
            << " != dense extent product " << volume;
        report.add("stripe.volume", 0, oss.str());
    }
    if (x.stripe_volume() != 0 &&
        x.values().size() != x.num_sparse() * x.stripe_volume()) {
        std::ostringstream oss;
        oss << x.values().size() << " values, expected "
            << x.num_sparse() * x.stripe_volume();
        report.add("stripe.length", 0, oss.str());
    }

    const Size ns = x.sparse_modes().size();
    for (Size s = 0; s < ns; ++s) {
        if (x.sparse_mode_indices(s).size() != x.num_sparse()) {
            std::ostringstream oss;
            oss << "slot " << s << " has "
                << x.sparse_mode_indices(s).size() << " indices, "
                << x.num_sparse() << " stripes";
            report.add("length", s, oss.str());
            return report;
        }
    }
    for (Size s = 0; s < ns; ++s) {
        const Index limit = x.dim(x.sparse_modes()[s]);
        for (Size p = 0; p < x.num_sparse(); ++p) {
            if (x.sparse_index(s, p) >= limit)
                report.add("index.range", p,
                           index_detail(x.sparse_index(s, p), limit,
                                        x.sparse_modes()[s]));
        }
    }
    for (Size p = 1; p < x.num_sparse(); ++p) {
        int cmp = 0;
        for (Size s = 0; s < ns && cmp == 0; ++s) {
            if (x.sparse_index(s, p - 1) != x.sparse_index(s, p))
                cmp = x.sparse_index(s, p - 1) < x.sparse_index(s, p) ? -1
                                                                      : 1;
        }
        if (cmp > 0)
            report.add("order.sorted", p,
                       "sparse coordinates not lexicographically sorted");
        else if (cmp == 0)
            report.add("coordinate.duplicate", p,
                       "duplicate sparse coordinate");
    }
    check_finite(report, x.values());
    return report;
}

ValidationReport
validate_hicoo_arrays(const std::vector<Index>& dims, unsigned block_bits,
                      const std::vector<std::vector<BIndex>>& binds,
                      const std::vector<Size>& bptr,
                      const std::vector<std::vector<EIndex>>& einds,
                      const std::vector<Value>& values)
{
    ValidationReport report;
    report.format = "HiCOO";
    report.checked = values.size();
    const Size n = dims.size();
    const Size nb = bptr.empty() ? 0 : bptr.size() - 1;
    if (binds.size() != n || einds.size() != n) {
        report.add("length", 0, "binds/einds mode count mismatch");
        return report;
    }
    for (Size m = 0; m < n; ++m) {
        if (binds[m].size() != nb) {
            std::ostringstream oss;
            oss << "mode " << m << " has " << binds[m].size()
                << " block indices, " << nb << " blocks";
            report.add("length", m, oss.str());
            return report;
        }
        if (einds[m].size() != values.size()) {
            std::ostringstream oss;
            oss << "mode " << m << " has " << einds[m].size()
                << " element indices, " << values.size() << " values";
            report.add("length", m, oss.str());
            return report;
        }
    }
    check_blocked(
        report, dims, block_bits, nb, values.size(), bptr,
        [&](Size s, Size b) { return binds[s][b]; },
        [&](Size s, Size p) { return einds[s][p]; });
    check_finite(report, values);
    return report;
}

ValidationReport
validate(const HiCooTensor& x)
{
    ValidationReport report;
    report.format = "HiCOO";
    report.checked = x.nnz();
    check_blocked(
        report, x.dims(), x.block_bits(), x.num_blocks(), x.nnz(),
        x.bptr(), [&](Size s, Size b) { return x.block_index(s, b); },
        [&](Size s, Size p) { return x.element_index(s, p); });
    check_finite(report, x.values());
    return report;
}

ValidationReport
validate(const GHiCooTensor& x)
{
    ValidationReport report;
    report.format = "gHiCOO";
    report.checked = x.nnz();

    // Blocked checks over the compressed modes only.
    const auto& comp = x.compressed_modes();
    std::vector<Index> comp_dims(comp.size());
    for (Size s = 0; s < comp.size(); ++s)
        comp_dims[s] = x.dim(comp[s]);
    check_blocked(
        report, comp_dims, x.block_bits(), x.num_blocks(), x.nnz(),
        x.bptr(),
        [&](Size s, Size b) { return x.block_index(comp[s], b); },
        [&](Size s, Size p) { return x.element_index(comp[s], p); },
        [&](Size p, std::string& key) {
            // Entries in one block are distinct only together with their
            // uncompressed raw coordinates.
            for (Size mode : x.uncompressed_modes()) {
                const Index raw = x.raw_index(mode, p);
                key.append(reinterpret_cast<const char*>(&raw),
                           sizeof(raw));
            }
        });

    // Uncompressed modes carry plain COO indices.
    for (Size mode : x.uncompressed_modes()) {
        for (Size p = 0; p < x.nnz(); ++p) {
            if (x.raw_index(mode, p) >= x.dim(mode))
                report.add("index.range", p,
                           index_detail(x.raw_index(mode, p), x.dim(mode),
                                        mode));
        }
    }
    check_finite(report, x.values());
    return report;
}

ValidationReport
validate(const SHiCooTensor& x)
{
    ValidationReport report;
    report.format = "sHiCOO";
    report.checked = x.num_sparse();

    Size volume = 1;
    for (Size mode : x.dense_modes())
        volume *= x.dim(mode);
    if (x.stripe_volume() != volume) {
        std::ostringstream oss;
        oss << "stripe volume " << x.stripe_volume()
            << " != dense extent product " << volume;
        report.add("stripe.volume", 0, oss.str());
    }
    if (x.stripe_volume() != 0 &&
        x.values().size() != x.num_sparse() * x.stripe_volume()) {
        std::ostringstream oss;
        oss << x.values().size() << " values, expected "
            << x.num_sparse() * x.stripe_volume();
        report.add("stripe.length", 0, oss.str());
    }

    const auto& sparse = x.sparse_modes();
    std::vector<Index> slot_dims(sparse.size());
    for (Size s = 0; s < sparse.size(); ++s)
        slot_dims[s] = x.dim(sparse[s]);
    check_blocked(
        report, slot_dims, x.block_bits(), x.num_blocks(), x.num_sparse(),
        x.bptr(), [&](Size s, Size b) { return x.block_index(s, b); },
        [&](Size s, Size p) { return x.element_index(s, p); });
    check_finite(report, x.values());
    return report;
}

ValidationReport
validate_csf_arrays(const std::vector<Index>& dims,
                    const std::vector<Size>& mode_order,
                    const std::vector<CsfLevel>& levels,
                    const std::vector<Value>& values)
{
    ValidationReport report;
    report.format = "CSF";
    report.checked = values.size();
    const Size n = dims.size();
    if (levels.size() != n || mode_order.size() != n) {
        report.add("length", 0, "level / mode-order count mismatch");
        return report;
    }
    for (Size m : mode_order) {
        if (m >= n) {
            report.add("modes.partition", m, "mode order entry out of range");
            return report;
        }
    }
    if (values.empty()) {
        check_finite(report, values);
        return report;
    }
    if (levels[n - 1].idx.size() != values.size()) {
        std::ostringstream oss;
        oss << levels[n - 1].idx.size() << " leaves, " << values.size()
            << " values";
        report.add("length", n - 1, oss.str());
        return report;
    }
    for (Size l = 0; l < n; ++l) {
        const Index limit = dims[mode_order[l]];
        for (Size i = 0; i < levels[l].idx.size(); ++i) {
            if (levels[l].idx[i] >= limit)
                report.add("index.range", i,
                           index_detail(levels[l].idx[i], limit,
                                        mode_order[l]));
        }
        if (l + 1 >= n)
            continue;
        const auto& ptr = levels[l].ptr;
        if (ptr.size() != levels[l].idx.size() + 1) {
            std::ostringstream oss;
            oss << "level " << l << " ptr length " << ptr.size()
                << " != nodes+1 " << levels[l].idx.size() + 1;
            report.add("ptr.length", l, oss.str());
            return report;
        }
        if (!ptr.empty() && ptr.front() != 0)
            report.add("ptr.start", l, "ptr must start at 0");
        if (!ptr.empty() && ptr.back() != levels[l + 1].idx.size()) {
            std::ostringstream oss;
            oss << "level " << l << " ptr ends at " << ptr.back()
                << ", next level has " << levels[l + 1].idx.size()
                << " nodes";
            report.add("ptr.coverage", l, oss.str());
        }
        for (Size i = 0; i + 1 < ptr.size(); ++i) {
            if (ptr[i] >= ptr[i + 1]) {
                std::ostringstream oss;
                oss << "level " << l << " node " << i << " is empty";
                report.add("ptr.monotone", i, oss.str());
            }
        }
    }
    // Sibling order: root indices strictly increase; below the root, the
    // children of each node strictly increase (prefix compression breaks
    // otherwise).
    for (Size i = 1; i < levels[0].idx.size(); ++i) {
        if (levels[0].idx[i - 1] >= levels[0].idx[i])
            report.add("order.sorted", i, "root indices not increasing");
    }
    for (Size l = 0; l + 1 < n; ++l) {
        const auto& ptr = levels[l].ptr;
        if (ptr.size() != levels[l].idx.size() + 1)
            continue;  // already reported
        const auto& child = levels[l + 1].idx;
        for (Size i = 0; i + 1 < ptr.size(); ++i) {
            for (Size c = ptr[i] + 1;
                 c < ptr[i + 1] && c < child.size(); ++c) {
                if (child[c - 1] >= child[c]) {
                    std::ostringstream oss;
                    oss << "children of level-" << l << " node " << i
                        << " not strictly increasing";
                    report.add("order.sorted", c, oss.str());
                }
            }
        }
    }
    check_finite(report, values);
    return report;
}

ValidationReport
validate(const CsfTensor& x)
{
    std::vector<CsfLevel> levels(x.num_levels());
    for (Size l = 0; l < x.num_levels(); ++l)
        levels[l] = x.level(l);
    return validate_csf_arrays(x.dims(), x.mode_order(), levels,
                               x.values());
}

ValidationReport
validate_fcoo_arrays(const std::vector<Index>& dims, Size mode,
                     const std::vector<Value>& values,
                     const std::vector<Index>& product_indices,
                     const std::vector<std::uint8_t>& flags,
                     const std::vector<Index>& fiber_of,
                     const CooTensor& out_pattern)
{
    ValidationReport report;
    report.format = "F-COO";
    report.checked = values.size();
    if (mode >= dims.size()) {
        report.add("modes.partition", mode, "product mode out of range");
        return report;
    }
    if (product_indices.size() != values.size() ||
        flags.size() != values.size() ||
        fiber_of.size() != values.size()) {
        report.add("length", 0,
                   "product-index/flag/fiber arrays must match nnz");
        return report;
    }
    for (Size p = 0; p < product_indices.size(); ++p) {
        if (product_indices[p] >= dims[mode])
            report.add("index.range", p,
                       index_detail(product_indices[p], dims[mode], mode));
    }
    if (!values.empty()) {
        if (flags[0] != 1)
            report.add("flags.start", 0,
                       "first non-zero must start a fiber");
        Size fibers = 0;
        for (Size p = 0; p < values.size(); ++p) {
            if (flags[p])
                ++fibers;
            if (static_cast<Size>(fiber_of[p]) + 1 != fibers) {
                std::ostringstream oss;
                oss << "fiber map says " << fiber_of[p] << ", flags say "
                    << (fibers == 0 ? 0 : fibers - 1);
                report.add("fibers.map", p, oss.str());
            }
        }
        if (fibers != out_pattern.nnz()) {
            std::ostringstream oss;
            oss << fibers << " flagged fibers, output pattern has "
                << out_pattern.nnz();
            report.add("fibers.count", 0, oss.str());
        }
    }
    check_finite(report, values);
    return report;
}

ValidationReport
validate(const FcooTensor& x)
{
    std::vector<Index> product(x.nnz());
    std::vector<std::uint8_t> flags(x.nnz());
    std::vector<Index> fiber_of(x.nnz());
    for (Size p = 0; p < x.nnz(); ++p) {
        product[p] = x.product_index(p);
        flags[p] = x.start_flag(p) ? 1 : 0;
        fiber_of[p] = x.fiber_of(p);
    }
    return validate_fcoo_arrays(x.dims(), x.mode(), x.values(), product,
                                flags, fiber_of, x.out_pattern());
}

}  // namespace pasta::validate
