#include "validate/diff.hpp"

#include <cmath>
#include <limits>
#include <map>
#include <sstream>

#include "core/coo_tensor.hpp"
#include "core/dense.hpp"
#include "core/scoo_tensor.hpp"

namespace pasta::validate {

namespace {

constexpr double kEps32 =
    static_cast<double>(std::numeric_limits<float>::epsilon());

/// Head-room multiplier on the forward-error bound: covers the oracle's
/// own (double) rounding, fused reassociation, and the float->double
/// comparison itself without admitting index-level mistakes, whose error
/// is O(1) rather than O(eps).
constexpr double kSlack = 16.0;

/// Tolerance for one accumulated output entry.
double
entry_bound(const OracleEntry& e, double floor)
{
    return kEps32 * kSlack * static_cast<double>(e.terms + 2) * e.abs_sum +
           floor;
}

/// Absolute floor shared by all entries of one output: scaled to the
/// largest oracle magnitude so exact zeros compare cleanly against
/// rounded-to-tiny float results.
double
abs_floor(double max_abs)
{
    return kEps32 * kSlack * max_abs;
}

void
check_entry(DiffReport& report, const std::string& where,
            const OracleEntry& e, double actual, double floor)
{
    ++report.compared;
    const double err = std::abs(e.value - actual);
    const double bound = entry_bound(e, floor);
    if (!std::isfinite(actual) || err > bound) {
        report.add(where, e.value, actual, bound);
        return;
    }
    if (bound > 0.0)
        report.max_excess = std::max(report.max_excess, err / bound);
}

std::string
coord_string(const Coordinate& c)
{
    std::ostringstream oss;
    oss << "(";
    for (Size m = 0; m < c.size(); ++m)
        oss << (m ? "," : "") << c[m];
    oss << ")";
    return oss.str();
}

using SparseOracle = std::map<Coordinate, OracleEntry>;

void
accumulate(SparseOracle& oracle, const Coordinate& coord, double term)
{
    OracleEntry& e = oracle[coord];
    e.value += term;
    e.abs_sum += std::abs(term);
    ++e.terms;
}

double
max_abs(const SparseOracle& oracle)
{
    double m = 0.0;
    for (const auto& [coord, e] : oracle)
        m = std::max(m, std::abs(e.value));
    return m;
}

/// Merge-joins the sorted oracle against a canonicalized (sorted,
/// coalesced) actual COO tensor; a coordinate absent on either side is
/// compared as 0 under the floor bound.
void
compare_sparse(DiffReport& report, const SparseOracle& oracle,
               const CooTensor& actual)
{
    const double floor = abs_floor(max_abs(oracle));
    auto it = oracle.begin();
    Size p = 0;
    Coordinate coord;
    while (it != oracle.end() || p < actual.nnz()) {
        int cmp;
        if (it == oracle.end())
            cmp = 1;
        else if (p == actual.nnz())
            cmp = -1;
        else {
            coord = actual.coordinate(p);
            cmp = it->first < coord ? -1 : (coord < it->first ? 1 : 0);
        }
        if (cmp == 0) {
            check_entry(report, coord_string(it->first), it->second,
                        static_cast<double>(actual.value(p)), floor);
            ++it;
            ++p;
        } else if (cmp < 0) {
            // Oracle entry the kernel never produced: compare against 0.
            check_entry(report, coord_string(it->first), it->second, 0.0,
                        floor);
            ++it;
        } else {
            // Kernel produced a coordinate the oracle does not have.
            OracleEntry zero;
            check_entry(report, coord_string(actual.coordinate(p)), zero,
                        static_cast<double>(actual.value(p)), floor);
            ++p;
        }
    }
}

CooTensor
canonicalized(const CooTensor& x)
{
    CooTensor c = x;
    c.sort_lexicographic();
    c.coalesce();
    return c;
}

}  // namespace

void
DiffReport::add(std::string where, double expected, double actual,
                double bound)
{
    ++mismatched;
    const double err = std::abs(expected - actual);
    if (bound > 0.0)
        max_excess = std::max(max_excess, err / bound);
    if (mismatches.size() < kMaxMismatches)
        mismatches.push_back({std::move(where), expected, actual, err,
                              bound});
}

std::string
DiffReport::summary() const
{
    std::ostringstream oss;
    if (ok()) {
        oss << label << " agrees (" << compared << " entries)";
        return oss.str();
    }
    oss << label << " diverges: " << mismatched << " of " << compared
        << " entries outside tolerance;";
    for (Size i = 0; i < mismatches.size(); ++i) {
        const DiffMismatch& m = mismatches[i];
        oss << (i ? "; " : " ") << m.where << " expected " << m.expected
            << " got " << m.actual << " (err " << m.error << " > bound "
            << m.bound << ")";
    }
    if (mismatched > mismatches.size())
        oss << "; ... " << mismatched - mismatches.size() << " more";
    return oss.str();
}

void
DiffReport::require() const
{
    if (!ok())
        throw ValidationError(summary());
}

DiffReport
diff_tew(EwOp op, const Value* x, const Value* y, const Value* z, Size n)
{
    DiffReport report;
    report.label = "TEW vs scalar oracle";
    double maxv = 0.0;
    for (Size i = 0; i < n; ++i)
        maxv = std::max(
            maxv, std::abs(static_cast<double>(apply_ew(op, x[i], y[i]))));
    const double floor = abs_floor(maxv);
    for (Size i = 0; i < n; ++i) {
        OracleEntry e;
        switch (op) {
          case EwOp::kAdd:
            e.value = static_cast<double>(x[i]) + static_cast<double>(y[i]);
            break;
          case EwOp::kSub:
            e.value = static_cast<double>(x[i]) - static_cast<double>(y[i]);
            break;
          case EwOp::kMul:
            e.value = static_cast<double>(x[i]) * static_cast<double>(y[i]);
            break;
          case EwOp::kDiv:
            e.value = static_cast<double>(x[i]) / static_cast<double>(y[i]);
            break;
        }
        e.abs_sum = std::abs(e.value);
        e.terms = 1;
        check_entry(report, "[" + std::to_string(i) + "]", e,
                    static_cast<double>(z[i]), floor);
    }
    return report;
}

DiffReport
diff_tew_general(EwOp op, const CooTensor& x, const CooTensor& y,
                 const CooTensor& z)
{
    DiffReport report;
    report.label = "TEW-general vs merge-serial oracle";
    const bool keep_unmatched = (op == EwOp::kAdd || op == EwOp::kSub);
    SparseOracle oracle;
    auto emit = [&](const Coordinate& coord, double a, double b) {
        double value = 0.0;
        switch (op) {
          case EwOp::kAdd: value = a + b; break;
          case EwOp::kSub: value = a - b; break;
          case EwOp::kMul: value = a * b; break;
          case EwOp::kDiv: value = a / b; break;
        }
        OracleEntry& e = oracle[coord];
        e.value = value;
        // Two operand magnitudes feed one output entry.
        e.abs_sum = std::abs(a) + std::abs(b);
        e.terms = 2;
    };
    // Serial two-pointer merge in double precision.
    Size a = 0;
    Size b = 0;
    while (a < x.nnz() && b < y.nnz()) {
        const Coordinate ca = x.coordinate(a);
        const Coordinate cb = y.coordinate(b);
        const int cmp = ca < cb ? -1 : (cb < ca ? 1 : 0);
        if (cmp < 0) {
            if (keep_unmatched)
                emit(ca, static_cast<double>(x.value(a)), 0.0);
            ++a;
        } else if (cmp > 0) {
            if (keep_unmatched)
                emit(cb, 0.0, static_cast<double>(y.value(b)));
            ++b;
        } else {
            emit(ca, static_cast<double>(x.value(a)),
                 static_cast<double>(y.value(b)));
            ++a;
            ++b;
        }
    }
    if (keep_unmatched) {
        for (; a < x.nnz(); ++a)
            emit(x.coordinate(a), static_cast<double>(x.value(a)), 0.0);
        for (; b < y.nnz(); ++b)
            emit(y.coordinate(b), 0.0, static_cast<double>(y.value(b)));
    }
    compare_sparse(report, oracle, canonicalized(z));
    return report;
}

DiffReport
diff_ts(TsOp op, const Value* x, Value s, const Value* out, Size n)
{
    DiffReport report;
    report.label = "TS vs scalar oracle";
    double maxv = 0.0;
    for (Size i = 0; i < n; ++i)
        maxv = std::max(
            maxv, std::abs(static_cast<double>(apply_ts(op, x[i], s))));
    const double floor = abs_floor(maxv);
    for (Size i = 0; i < n; ++i) {
        OracleEntry e;
        e.value = op == TsOp::kAdd
                      ? static_cast<double>(x[i]) + static_cast<double>(s)
                      : static_cast<double>(x[i]) * static_cast<double>(s);
        e.abs_sum = std::abs(e.value);
        e.terms = 1;
        check_entry(report, "[" + std::to_string(i) + "]", e,
                    static_cast<double>(out[i]), floor);
    }
    return report;
}

DiffReport
diff_ttv(const CooTensor& x, const DenseVector& v, Size mode,
         const CooTensor& actual)
{
    DiffReport report;
    report.label = "TTV vs coo-serial oracle";
    SparseOracle oracle;
    Coordinate out_coord(x.order() > 0 ? x.order() - 1 : 0);
    for (Size p = 0; p < x.nnz(); ++p) {
        Size o = 0;
        for (Size m = 0; m < x.order(); ++m) {
            if (m != mode)
                out_coord[o++] = x.index(m, p);
        }
        const double term =
            static_cast<double>(x.value(p)) *
            static_cast<double>(v[x.index(mode, p)]);
        accumulate(oracle, out_coord, term);
    }
    compare_sparse(report, oracle, canonicalized(actual));
    return report;
}

DiffReport
diff_ttm(const CooTensor& x, const DenseMatrix& u, Size mode,
         const ScooTensor& actual)
{
    DiffReport report;
    report.label = "TTM vs coo-serial oracle";
    const Size rank = u.cols();
    SparseOracle oracle;
    Coordinate out_coord(x.order());
    for (Size p = 0; p < x.nnz(); ++p) {
        for (Size m = 0; m < x.order(); ++m)
            out_coord[m] = x.index(m, p);
        const Index i = x.index(mode, p);
        for (Size r = 0; r < rank; ++r) {
            out_coord[mode] = static_cast<Index>(r);
            const double term = static_cast<double>(x.value(p)) *
                                static_cast<double>(u(i, r));
            accumulate(oracle, out_coord, term);
        }
    }
    compare_sparse(report, oracle, canonicalized(actual.to_coo()));
    return report;
}

DiffReport
diff_mttkrp(const CooTensor& x,
            const std::vector<const DenseMatrix*>& factors, Size mode,
            const DenseMatrix& actual)
{
    DiffReport report;
    report.label = "MTTKRP vs coo-serial oracle";
    const Size rank = actual.cols();
    const Size rows = actual.rows();
    std::vector<OracleEntry> oracle(rows * rank);
    for (Size p = 0; p < x.nnz(); ++p) {
        const Index i = x.index(mode, p);
        for (Size r = 0; r < rank; ++r) {
            double term = static_cast<double>(x.value(p));
            for (Size m = 0; m < x.order(); ++m) {
                if (m != mode)
                    term *= static_cast<double>(
                        (*factors[m])(x.index(m, p), r));
            }
            OracleEntry& e = oracle[i * rank + r];
            e.value += term;
            e.abs_sum += std::abs(term);
            ++e.terms;
        }
    }
    double maxv = 0.0;
    for (const OracleEntry& e : oracle)
        maxv = std::max(maxv, std::abs(e.value));
    const double floor = abs_floor(maxv);
    for (Size i = 0; i < rows; ++i) {
        for (Size r = 0; r < rank; ++r) {
            std::ostringstream oss;
            oss << "out(" << i << "," << r << ")";
            check_entry(report, oss.str(), oracle[i * rank + r],
                        static_cast<double>(actual(i, r)), floor);
        }
    }
    return report;
}

}  // namespace pasta::validate
