#include "roofline/ert.hpp"

#include <algorithm>
#include <vector>

#include "common/parallel.hpp"
#include "common/timer.hpp"

namespace pasta {

namespace {

/// Bytes moved per element for each STREAM kernel.
struct StreamKernel {
    const char* name;
    int bytes_per_elem;
};

constexpr StreamKernel kKernels[] = {
    {"copy", 8},   // read a, write b
    {"scale", 8},  // read a, write b
    {"add", 12},   // read a+b, write c
    {"triad", 12}, // read a+b, write c
};

/// Runs one kernel over n floats until ~`seconds` elapse; returns GB/s.
double
measure_kernel(const char* name, float* a, float* b, float* c, Size n,
               int bytes_per_elem, double seconds)
{
    const float s = 1.0001f;
    auto run_once = [&] {
        if (name[0] == 'c' && name[1] == 'o') {  // copy
            parallel_for_ranges(0, n, [&](Size first, Size last) {
                for (Size i = first; i < last; ++i)
                    b[i] = a[i];
            });
        } else if (name[0] == 's') {  // scale
            parallel_for_ranges(0, n, [&](Size first, Size last) {
                for (Size i = first; i < last; ++i)
                    b[i] = s * a[i];
            });
        } else if (name[0] == 'a') {  // add
            parallel_for_ranges(0, n, [&](Size first, Size last) {
                for (Size i = first; i < last; ++i)
                    c[i] = a[i] + b[i];
            });
        } else {  // triad
            parallel_for_ranges(0, n, [&](Size first, Size last) {
                for (Size i = first; i < last; ++i)
                    c[i] = a[i] + s * b[i];
            });
        }
    };
    run_once();  // warm up
    Timer timer;
    timer.start();
    Size reps = 0;
    do {
        run_once();
        ++reps;
    } while (timer.elapsed_seconds() < seconds);
    const double elapsed = timer.elapsed_seconds();
    const double bytes = static_cast<double>(reps) *
                         static_cast<double>(n) * bytes_per_elem;
    return bytes / elapsed / 1e9;
}

/// Register-blocked FMA chain estimating attainable peak FLOPS.
double
measure_flops(double seconds)
{
    constexpr Size kLanes = 16;
    volatile float sink = 0;
    float acc[kLanes];
    for (Size l = 0; l < kLanes; ++l)
        acc[l] = 1.0f + 1e-6f * static_cast<float>(l);
    const float m = 1.000001f;
    const float addend = 1e-9f;
    Timer timer;
    timer.start();
    Size iters = 0;
    do {
        for (int k = 0; k < 1024; ++k) {
#pragma omp simd
            for (Size l = 0; l < kLanes; ++l)
                acc[l] = acc[l] * m + addend;
        }
        iters += 1024;
    } while (timer.elapsed_seconds() < seconds);
    const double elapsed = timer.elapsed_seconds();
    for (Size l = 0; l < kLanes; ++l)
        sink = sink + acc[l];
    (void)sink;
    // 2 flops (mul + add) per lane per iteration.
    return 2.0 * static_cast<double>(kLanes) *
           static_cast<double>(iters) / elapsed / 1e9;
}

}  // namespace

ErtResult
run_ert(const ErtOptions& options)
{
    ErtResult result;
    std::vector<float> a(options.max_bytes / sizeof(float), 1.0f);
    std::vector<float> b(options.max_bytes / sizeof(float), 2.0f);
    std::vector<float> c(options.max_bytes / sizeof(float), 0.0f);

    for (std::size_t bytes = options.min_bytes; bytes <= options.max_bytes;
         bytes *= 4) {
        const Size n = bytes / sizeof(float);
        for (const auto& kernel : kKernels) {
            ErtSample sample;
            sample.kernel = kernel.name;
            sample.bytes = bytes;
            sample.bandwidth_gbs =
                measure_kernel(kernel.name, a.data(), b.data(), c.data(),
                               n, kernel.bytes_per_elem,
                               options.seconds_per_point);
            result.samples.push_back(sample);
            if (bytes <= options.llc_boundary_bytes)
                result.llc_bw_gbs =
                    std::max(result.llc_bw_gbs, sample.bandwidth_gbs);
            else
                result.dram_bw_gbs =
                    std::max(result.dram_bw_gbs, sample.bandwidth_gbs);
        }
    }
    result.peak_gflops = measure_flops(4 * options.seconds_per_point);
    // A machine where the "DRAM" sizes still fit in a huge cache can show
    // dram >= llc; clamp so the roofs stay ordered.
    result.llc_bw_gbs = std::max(result.llc_bw_gbs, result.dram_bw_gbs);
    return result;
}

MachineSpec
host_machine_spec(const ErtResult& ert)
{
    MachineSpec spec;
    spec.name = "host";
    spec.microarch = "measured";
    spec.cores = num_threads();
    spec.peak_sp_gflops = ert.peak_gflops;
    spec.mem_bw_gbs = ert.dram_bw_gbs;
    spec.ert_dram_gbs = ert.dram_bw_gbs;
    spec.ert_llc_gbs = ert.llc_bw_gbs;
    spec.is_gpu = false;
    return spec;
}

}  // namespace pasta
