/// \file
/// Platform descriptors (paper Table III) for Roofline construction.
///
/// The four paper platforms are modeled from their published parameters;
/// the host this suite actually runs on is characterized at runtime by
/// the ERT micro-kernels (ert.hpp) and wrapped in the same struct.
#pragma once

#include <string>
#include <vector>

namespace pasta {

/// One platform row of Table III plus the ERT-obtainable bandwidths the
/// paper derives from the Empirical Roofline Tool.
struct MachineSpec {
    std::string name;       ///< "Bluesky", "Wingtip", "DGX-1P", "DGX-1V"
    std::string microarch;  ///< "Skylake", "Haswell", "Pascal", "Volta"
    double freq_ghz = 0;
    int cores = 0;
    double peak_sp_gflops = 0;   ///< peak single-precision GFLOPS
    double llc_mb = 0;           ///< last-level cache, MB
    double mem_gb = 0;           ///< main/global memory size, GB
    double mem_bw_gbs = 0;       ///< theoretical peak bandwidth, GB/s
    double ert_dram_gbs = 0;     ///< obtainable DRAM/HBM bandwidth (ERT)
    double ert_llc_gbs = 0;      ///< obtainable LLC bandwidth (ERT)
    bool is_gpu = false;
};

/// Intel Xeon Gold 6126 node (Bluesky: 24 cores, 1.0 TFLOPS, 256 GB/s).
MachineSpec bluesky();

/// Intel Xeon E7-4850v3 node (Wingtip: 56 cores, 2.0 TFLOPS, 273 GB/s).
MachineSpec wingtip();

/// NVIDIA DGX-1P (Tesla P100: 10.6 TFLOPS, 732 GB/s).
MachineSpec dgx_1p();

/// NVIDIA DGX-1V (Tesla V100: 14.9 TFLOPS, 900 GB/s).
MachineSpec dgx_1v();

/// All four platforms in the paper's order.
std::vector<MachineSpec> paper_platforms();

/// Machine balance (paper §V-C): peak compute over obtainable DRAM
/// bandwidth, flops/byte.  Kernels whose arithmetic intensity sits below
/// this are bandwidth-bound on the platform.  Zero when the spec carries
/// no ERT bandwidth.
double machine_balance(const MachineSpec& spec);

}  // namespace pasta
