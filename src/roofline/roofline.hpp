/// \file
/// Roofline model arithmetic (paper §V-B, Fig. 3).
///
/// A roofline caps attainable performance at min(peak, OI x bandwidth).
/// The paper draws three roofs per platform — theoretical peak/DRAM,
/// ERT-DRAM, and ERT-LLC — and marks each kernel's operational intensity
/// on the ERT-DRAM roof; the resulting GFLOPS value is the red "Roofline
/// performance" line of Figs. 4-7.
#pragma once

#include <string>
#include <vector>

#include "roofline/machine.hpp"

namespace pasta {

/// Attainable GFLOPS at operational intensity `oi` under a `peak_gflops`
/// compute roof and a `bw_gbs` memory roof.
double attainable_gflops(double peak_gflops, double bw_gbs, double oi);

/// The paper's "Roofline performance" for a kernel: OI x ERT-DRAM
/// bandwidth, capped by peak (all kernels in Table I are memory-bound, so
/// the cap never binds in practice).
double roofline_performance_gflops(const MachineSpec& spec, double oi);

/// Operational intensity where the memory roof meets the compute roof.
double ridge_point(double peak_gflops, double bw_gbs);

/// One sampled point of a roofline curve.
struct RooflinePoint {
    double oi = 0;
    double gflops = 0;
};

/// Samples a roofline curve over a log-spaced OI range [oi_min, oi_max].
std::vector<RooflinePoint> sample_roofline(double peak_gflops,
                                           double bw_gbs, double oi_min,
                                           double oi_max,
                                           std::size_t points = 32);

}  // namespace pasta
