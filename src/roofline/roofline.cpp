#include "roofline/roofline.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pasta {

double
attainable_gflops(double peak_gflops, double bw_gbs, double oi)
{
    PASTA_CHECK_MSG(peak_gflops > 0 && bw_gbs > 0 && oi > 0,
                    "roofline inputs must be positive");
    return std::min(peak_gflops, bw_gbs * oi);
}

double
roofline_performance_gflops(const MachineSpec& spec, double oi)
{
    return attainable_gflops(spec.peak_sp_gflops, spec.ert_dram_gbs, oi);
}

double
ridge_point(double peak_gflops, double bw_gbs)
{
    PASTA_CHECK_MSG(peak_gflops > 0 && bw_gbs > 0,
                    "roofline inputs must be positive");
    return peak_gflops / bw_gbs;
}

std::vector<RooflinePoint>
sample_roofline(double peak_gflops, double bw_gbs, double oi_min,
                double oi_max, std::size_t points)
{
    PASTA_CHECK_MSG(oi_min > 0 && oi_max > oi_min, "bad OI range");
    PASTA_CHECK_MSG(points >= 2, "need at least 2 points");
    std::vector<RooflinePoint> curve(points);
    const double log_lo = std::log(oi_min);
    const double log_hi = std::log(oi_max);
    for (std::size_t i = 0; i < points; ++i) {
        const double t =
            static_cast<double>(i) / static_cast<double>(points - 1);
        const double oi = std::exp(log_lo + t * (log_hi - log_lo));
        curve[i] = {oi, attainable_gflops(peak_gflops, bw_gbs, oi)};
    }
    return curve;
}

}  // namespace pasta
