/// \file
/// Empirical Roofline Tool (ERT)-style micro-kernels (paper §V-B).
///
/// Characterizes the machine the suite runs on the way the paper's ERT
/// does: STREAM-like vector micro-kernels (copy, scale, add, triad) are
/// swept over working-set sizes; bandwidth at cache-resident sizes gives
/// the LLC roof, bandwidth at DRAM-resident sizes gives the DRAM roof,
/// and a register-blocked FMA kernel estimates attainable peak FLOPS.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "roofline/machine.hpp"

namespace pasta {

/// One micro-kernel measurement at one working-set size.
struct ErtSample {
    std::string kernel;        ///< "copy", "scale", "add", "triad"
    std::size_t bytes = 0;     ///< working-set size
    double bandwidth_gbs = 0;  ///< achieved bandwidth
};

/// Full ERT characterization of the host.
struct ErtResult {
    std::vector<ErtSample> samples;
    double dram_bw_gbs = 0;   ///< best bandwidth at DRAM-resident sizes
    double llc_bw_gbs = 0;    ///< best bandwidth at cache-resident sizes
    double peak_gflops = 0;   ///< attainable FLOPS from the FMA kernel
};

/// Options bounding the sweep (defaults keep the run under ~10 s).
struct ErtOptions {
    std::size_t min_bytes = 64 * 1024;
    std::size_t max_bytes = 256 * 1024 * 1024;
    std::size_t llc_boundary_bytes = 8 * 1024 * 1024;  ///< cache/DRAM split
    double seconds_per_point = 0.05;
};

/// Runs the ERT sweep on the current host.
ErtResult run_ert(const ErtOptions& options = {});

/// Wraps an ERT result as a MachineSpec for the measured host.
MachineSpec host_machine_spec(const ErtResult& ert);

}  // namespace pasta
