#include "roofline/machine.hpp"

namespace pasta {

// ERT-obtainable bandwidths are modeled as the typical achieved fraction
// of the theoretical peak (the paper plots ERT-DRAM below the theoretical
// line in Fig. 3): ~80% for DDR4 CPUs, ~85% for HBM2 GPUs; LLC bandwidth
// is a few times DRAM bandwidth on all four microarchitectures.

MachineSpec
bluesky()
{
    MachineSpec spec;
    spec.name = "Bluesky";
    spec.microarch = "Skylake";
    spec.freq_ghz = 2.60;
    spec.cores = 24;
    spec.peak_sp_gflops = 1000.0;
    spec.llc_mb = 19.0;
    spec.mem_gb = 196.0;
    spec.mem_bw_gbs = 256.0;
    spec.ert_dram_gbs = 205.0;
    spec.ert_llc_gbs = 720.0;
    spec.is_gpu = false;
    return spec;
}

MachineSpec
wingtip()
{
    MachineSpec spec;
    spec.name = "Wingtip";
    spec.microarch = "Haswell";
    spec.freq_ghz = 2.20;
    spec.cores = 56;
    spec.peak_sp_gflops = 2000.0;
    spec.llc_mb = 35.0;
    spec.mem_gb = 2114.0;
    spec.mem_bw_gbs = 273.0;
    // Four-socket NUMA: ERT-obtainable bandwidth suffers more than on the
    // two-socket Bluesky (paper Observation 3).
    spec.ert_dram_gbs = 190.0;
    spec.ert_llc_gbs = 900.0;
    spec.is_gpu = false;
    return spec;
}

MachineSpec
dgx_1p()
{
    MachineSpec spec;
    spec.name = "DGX-1P";
    spec.microarch = "Pascal";
    spec.freq_ghz = 1.48;
    spec.cores = 3584;
    spec.peak_sp_gflops = 10600.0;
    spec.llc_mb = 3.0;
    spec.mem_gb = 16.0;
    spec.mem_bw_gbs = 732.0;
    spec.ert_dram_gbs = 550.0;
    spec.ert_llc_gbs = 2000.0;
    spec.is_gpu = true;
    return spec;
}

MachineSpec
dgx_1v()
{
    MachineSpec spec;
    spec.name = "DGX-1V";
    spec.microarch = "Volta";
    spec.freq_ghz = 1.53;
    spec.cores = 5120;
    spec.peak_sp_gflops = 14900.0;
    spec.llc_mb = 6.0;
    spec.mem_gb = 16.0;
    spec.mem_bw_gbs = 900.0;
    spec.ert_dram_gbs = 790.0;
    spec.ert_llc_gbs = 2700.0;
    spec.is_gpu = true;
    return spec;
}

std::vector<MachineSpec>
paper_platforms()
{
    return {bluesky(), wingtip(), dgx_1p(), dgx_1v()};
}

double
machine_balance(const MachineSpec& spec)
{
    return spec.ert_dram_gbs > 0 ? spec.peak_sp_gflops / spec.ert_dram_gbs
                                 : 0.0;
}

}  // namespace pasta
