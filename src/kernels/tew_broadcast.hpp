/// \file
/// Element-wise operations between tensors of *different orders*
/// (paper §II-A: "more general cases ... for tensors in different tensor
/// orders and/or shapes").
///
/// The lower-order operand y is broadcast over the modes of x it does
/// not cover: `y_modes[k]` names the x-mode that y's mode k is aligned
/// with.  Only multiplication and division are supported — they preserve
/// x's sparsity pattern (0 * y = 0), so the output is predictable, which
/// is the property the paper's pre-processing relies on.  Addition with
/// broadcast would densify the free modes and is rejected.
///
/// Typical uses: scaling every slice of a data tensor by per-slice
/// weights, normalizing a relation tensor by entity frequencies.
#pragma once

#include <vector>

#include "core/coo_tensor.hpp"
#include "kernels/ops.hpp"

namespace pasta {

/// z = x op broadcast(y): y's mode k aligns with x's mode y_modes[k]
/// (strictly increasing, extents must match).  `op` must be kMul or
/// kDiv; division requires every referenced y entry to exist (missing
/// entries are zeros — dividing by them is reported as an error).
CooTensor tew_coo_broadcast(const CooTensor& x, const CooTensor& y,
                            const std::vector<Size>& y_modes, EwOp op);

}  // namespace pasta
