/// \file
/// Tensor-times-matrix (TTM / n-mode product, paper §II-D).
///
/// y = x ×_mode u with u in R^{I_mode x R} (the transposed convention of
/// the paper's footnote 2).  By the sparse-dense property the contracted
/// mode becomes dense with extent R, so the output is semi-sparse: sCOO for
/// the COO path, sHiCOO for the HiCOO path, one R-stripe per mode-`mode`
/// fiber of x.  The plan phase sorts, finds fibers, and pre-allocates the
/// output; the exec phase is the timed fiber-parallel rank-R accumulation.
#pragma once

#include "common/parallel.hpp"
#include "core/coo_tensor.hpp"
#include "core/dense.hpp"
#include "core/fibers.hpp"
#include "core/ghicoo_tensor.hpp"
#include "core/scoo_tensor.hpp"
#include "core/shicoo_tensor.hpp"

namespace pasta {

/// Pre-processed state of COO-TTM.
struct CooTtmPlan {
    Size mode = 0;          ///< contraction mode
    Size rank = 0;          ///< R, the matrix column count
    CooTensor sorted;       ///< input, fibers-last sorted
    FiberPartition fibers;  ///< mode-`mode` fibers
    ScooTensor out_pattern; ///< semi-sparse output with zeroed stripes
};

/// Builds the COO-TTM plan for contracting `mode` of `x` with an
/// I_mode x rank matrix.
CooTtmPlan ttm_plan_coo(const CooTensor& x, Size mode, Size rank);

/// COO-TTM-OMP timed kernel (fiber-parallel, simd over rank).
void ttm_exec_coo(const CooTtmPlan& plan, const DenseMatrix& u,
                  ScooTensor& out, Schedule schedule = Schedule::kDynamic);

/// Convenience one-shot COO-TTM.
ScooTensor ttm_coo(const CooTensor& x, const DenseMatrix& u, Size mode);

/// Pre-processed state of HiCOO-TTM.
struct HicooTtmPlan {
    Size mode = 0;
    Size rank = 0;
    GHiCooTensor input;       ///< product mode uncompressed (gHiCOO)
    std::vector<Size> fptr;   ///< fiber boundaries over input entries
    SHiCooTensor out_pattern; ///< semi-sparse HiCOO output
};

/// Builds the HiCOO-TTM plan.
HicooTtmPlan ttm_plan_hicoo(const CooTensor& x, Size mode, Size rank,
                            unsigned block_bits = 7);

/// HiCOO-TTM-OMP timed kernel.
void ttm_exec_hicoo(const HicooTtmPlan& plan, const DenseMatrix& u,
                    SHiCooTensor& out,
                    Schedule schedule = Schedule::kDynamic);

/// Convenience one-shot HiCOO-TTM.
SHiCooTensor ttm_hicoo(const CooTensor& x, const DenseMatrix& u, Size mode,
                       unsigned block_bits = 7);

}  // namespace pasta
