/// \file
/// Matricized tensor times Khatri-Rao product (MTTKRP, paper §II-E,
/// Algorithm 3).
///
/// For an Nth-order tensor x and factor matrices U^(m) in R^{I_m x R},
/// the mode-n MTTKRP updates row i_n of the output by
///   out(i_n, r) += x(i_1..i_N) * prod_{m != n} U^(m)(i_m, r).
/// The Khatri-Rao product is never materialized (paper §II-E): the kernel
/// fuses it into the sparse traversal.
///
/// Output-contention strategy.  The paper's reference kernels protect the
/// shared output matrix with atomics (the ParTI strategy); this suite
/// additionally provides atomic-free schedules and picks between them
/// automatically, because contention policy dominates MTTKRP throughput
/// (Nguyen et al., arXiv:2201.12523):
///   - COO: thread-private output copies merged by a race-free parallel
///     reduction (kPrivatized), chosen when the extra
///     threads x I_mode x R buffer is cheap relative to the per-non-zero
///     atomic traffic it eliminates;
///   - HiCOO: a block-owner partition (kBlockOwner) — blocks grouped by
///     block_index(mode), one thread per group, so no two threads ever
///     share an output tile.  The grouping is built once at conversion
///     and cached on the tensor (HiCooTensor::owner_schedule).
/// The explicit *_atomic entry points remain for ablations, and every
/// kernel returns the MttkrpVariant it executed so benchmark profiles can
/// report the crossover.
#pragma once

#include <vector>

#include "common/parallel.hpp"
#include "core/coo_tensor.hpp"
#include "core/dense.hpp"
#include "core/hicoo_tensor.hpp"

namespace pasta {

/// Factor matrix list: one DenseMatrix per tensor mode, all with R columns
/// and factors[m].rows() == x.dim(m).
using FactorList = std::vector<const DenseMatrix*>;

/// Validates factor shapes against `dims`; throws PastaError on mismatch.
/// Returns the common rank R.
Size check_factors(const std::vector<Index>& dims, const FactorList& factors);

/// Which output-contention strategy an MTTKRP call executed.
enum class MttkrpVariant {
    kAtomic,      ///< shared output, per-update omp atomic
    kPrivatized,  ///< per-thread private outputs + parallel reduction
    kBlockOwner,  ///< HiCOO owner-partitioned blocks, no atomics
};

/// Short stable name for profiles/benchmark labels ("atomic",
/// "privatized", "block-owner").
const char* mttkrp_variant_name(MttkrpVariant v);

/// The COO contention heuristic: privatize when the replicated output
/// (threads x dim_mode x rank) stays within budget and the non-zero
/// stream touches output rows densely enough to amortize the zero+reduce
/// sweep; atomics otherwise.  Exposed so benches can report the
/// crossover without running both variants.
MttkrpVariant mttkrp_coo_pick(Index dim_mode, Size nnz, Size rank);

/// COO-MTTKRP-OMP timed kernel: zeroes `out` (I_mode x R) then
/// accumulates.  Dispatches between the atomic and privatized schedules
/// via mttkrp_coo_pick; returns the variant it ran.
MttkrpVariant mttkrp_coo(const CooTensor& x, const FactorList& factors,
                         Size mode, DenseMatrix& out,
                         Schedule schedule = Schedule::kStatic);

/// Parallel-over-non-zeros COO MTTKRP with atomic output updates (the
/// paper's reference strategy), available directly for ablations.
/// Contiguous per-worker ranges fuse runs of equal output index into a
/// local accumulator flushed by one atomic set per run, so a stream
/// sorted with `mode` leading pays roughly one atomic set per distinct
/// output row instead of one per non-zero; the schedule argument is
/// accepted for signature compatibility but unused.
void mttkrp_coo_atomic(const CooTensor& x, const FactorList& factors,
                       Size mode, DenseMatrix& out,
                       Schedule schedule = Schedule::kStatic);

/// HiCOO-MTTKRP-OMP timed kernel (Algorithm 3): parallel over blocks.
/// Uses the cached block-owner schedule when it offers enough parallel
/// groups, atomics otherwise; returns the variant it ran.
MttkrpVariant mttkrp_hicoo(const HiCooTensor& x, const FactorList& factors,
                           Size mode, DenseMatrix& out,
                           Schedule schedule = Schedule::kDynamic);

/// Block-parallel HiCOO MTTKRP with atomic output updates, available
/// directly for ablations.
void mttkrp_hicoo_atomic(const HiCooTensor& x, const FactorList& factors,
                         Size mode, DenseMatrix& out,
                         Schedule schedule = Schedule::kDynamic);

/// Sequential COO-MTTKRP (no atomics), used as a deterministic baseline by
/// tests and by the single-thread crossover ablation.
void mttkrp_coo_seq(const CooTensor& x, const FactorList& factors, Size mode,
                    DenseMatrix& out);

/// Privatized COO-MTTKRP-OMP: each worker accumulates into a private
/// copy of the output matrix (indexed by worker id, so buffers can never
/// alias under any schedule), merged by a race-free parallel reduction.
/// Trades O(threads x I_mode x R) extra memory for atomic-free updates.
void mttkrp_coo_privatized(const CooTensor& x, const FactorList& factors,
                           Size mode, DenseMatrix& out);

}  // namespace pasta
