/// \file
/// Matricized tensor times Khatri-Rao product (MTTKRP, paper §II-E,
/// Algorithm 3).
///
/// For an Nth-order tensor x and factor matrices U^(m) in R^{I_m x R},
/// the mode-n MTTKRP updates row i_n of the output by
///   out(i_n, r) += x(i_1..i_N) * prod_{m != n} U^(m)(i_m, r).
/// The Khatri-Rao product is never materialized (paper §II-E): the kernel
/// fuses it into the sparse traversal.
///
/// COO-MTTKRP-OMP parallelizes over non-zeros and protects the output
/// rows with atomics (the ParTI strategy).  HiCOO-MTTKRP-OMP (Algorithm 3)
/// parallelizes over tensor blocks, addressing factor matrices through
/// per-block base pointers so that only 8-bit element offsets are decoded
/// in the inner loop.  Blocks sharing an output row block can still
/// collide, so the block kernel uses the same atomic update — the paper's
/// reference implementations deliberately avoid privatization and other
/// advanced tuning (§III-D).
#pragma once

#include <vector>

#include "common/parallel.hpp"
#include "core/coo_tensor.hpp"
#include "core/dense.hpp"
#include "core/hicoo_tensor.hpp"

namespace pasta {

/// Factor matrix list: one DenseMatrix per tensor mode, all with R columns
/// and factors[m].rows() == x.dim(m).
using FactorList = std::vector<const DenseMatrix*>;

/// Validates factor shapes against `dims`; throws PastaError on mismatch.
/// Returns the common rank R.
Size check_factors(const std::vector<Index>& dims, const FactorList& factors);

/// COO-MTTKRP-OMP timed kernel: zeroes `out` (I_mode x R) then accumulates.
/// Parallel over non-zeros with atomic output updates.
void mttkrp_coo(const CooTensor& x, const FactorList& factors, Size mode,
                DenseMatrix& out, Schedule schedule = Schedule::kStatic);

/// HiCOO-MTTKRP-OMP timed kernel (Algorithm 3): parallel over blocks.
void mttkrp_hicoo(const HiCooTensor& x, const FactorList& factors, Size mode,
                  DenseMatrix& out, Schedule schedule = Schedule::kDynamic);

/// Sequential COO-MTTKRP (no atomics), used as a deterministic baseline by
/// tests and by the single-thread crossover ablation.
void mttkrp_coo_seq(const CooTensor& x, const FactorList& factors, Size mode,
                    DenseMatrix& out);

/// Privatized COO-MTTKRP-OMP: each thread accumulates into a private
/// copy of the output matrix, reduced at the end — the lock-avoiding
/// strategy the paper's reference implementations deliberately omit
/// (§III-D: "advanced techniques such as privatization ... are not
/// adopted").  Provided as the ablation counterpart: it trades
/// O(threads x I_mode x R) extra memory for atomic-free updates.
void mttkrp_coo_privatized(const CooTensor& x, const FactorList& factors,
                           Size mode, DenseMatrix& out);

}  // namespace pasta
