/// \file
/// Shared operation descriptors for the five tensor kernels (paper §II).
#pragma once

#include "common/error.hpp"
#include "common/types.hpp"

namespace pasta {

/// Element-wise binary operations (TEW, paper §II-A).
enum class EwOp { kAdd, kSub, kMul, kDiv };

/// Tensor-scalar operations (TS, paper §II-B).  The suite implements TSA
/// and TSM; TSS and TSD are expressible through them (x - s = x + (-s),
/// x / s = x * (1/s)), mirroring the paper's choice.
enum class TsOp { kAdd, kMul };

/// Applies an EwOp to one pair of scalars.
inline Value
apply_ew(EwOp op, Value a, Value b)
{
    switch (op) {
      case EwOp::kAdd: return a + b;
      case EwOp::kSub: return a - b;
      case EwOp::kMul: return a * b;
      case EwOp::kDiv: return a / b;
    }
    return 0;
}

/// Applies a TsOp to a scalar pair.
inline Value
apply_ts(TsOp op, Value a, Value s)
{
    return op == TsOp::kAdd ? a + s : a * s;
}

/// Human-readable kernel-op names used by bench output.
const char* ew_op_name(EwOp op);
const char* ts_op_name(TsOp op);

}  // namespace pasta
