#include "kernels/tew.hpp"

#include "common/error.hpp"
#include "core/convert.hpp"
#include "obs/counters.hpp"
#include "simd/microkernels.hpp"

namespace pasta {

void
tew_values(EwOp op, const Value* x, const Value* y, Value* z, Size count)
{
    // Table I TEW model: one flop and three value streams per non-zero.
    obs::add("tew.flops", count);
    obs::add("tew.bytes", 12 * count);
    // Pure streaming: three sequential value arrays, no gathers, so no
    // software prefetch — the hardware stride prefetcher owns this one.
    const simd::Isa isa = simd::note_kernel();
    switch (op) {
      case EwOp::kAdd:
        parallel_for_ranges(0, count, [&](Size first, Size last) {
            simd::vadd(isa, z + first, x + first, y + first, last - first);
        });
        break;
      case EwOp::kSub:
        parallel_for_ranges(0, count, [&](Size first, Size last) {
            simd::vsub(isa, z + first, x + first, y + first, last - first);
        });
        break;
      case EwOp::kMul:
        parallel_for_ranges(0, count, [&](Size first, Size last) {
            simd::vhadamard(isa, z + first, x + first, y + first,
                            last - first);
        });
        break;
      case EwOp::kDiv:
        parallel_for_ranges(0, count, [&](Size first, Size last) {
            simd::vdiv(isa, z + first, x + first, y + first, last - first);
        });
        break;
    }
}

CooTensor
tew_coo(const CooTensor& x, const CooTensor& y, EwOp op)
{
    PASTA_CHECK_MSG(x.same_pattern(y),
                    "tew_coo requires identical non-zero patterns; use "
                    "tew_coo_general");
    // Pre-processing: the output pattern is the input pattern.
    CooTensor z = x;
    tew_values(op, x.values().data(), y.values().data(), z.values().data(),
               x.nnz());
    return z;
}

namespace {

/// Three-way lexicographic comparison of non-zeros a (in x) and b (in y).
int
compare_coords(const CooTensor& x, Size a, const CooTensor& y, Size b)
{
    for (Size m = 0; m < x.order(); ++m) {
        const Index ia = x.index(m, a);
        const Index ib = y.index(m, b);
        if (ia != ib)
            return ia < ib ? -1 : 1;
    }
    return 0;
}

}  // namespace

CooTensor
tew_coo_general(const CooTensor& x, const CooTensor& y, EwOp op,
                merge::MergePath* path_out)
{
    PASTA_CHECK_MSG(x.order() == y.order(),
                    "tew_coo_general requires equal tensor order");
    std::vector<Index> out_dims(x.order());
    for (Size m = 0; m < x.order(); ++m)
        out_dims[m] = std::max(x.dim(m), y.dim(m));
    const merge::MergeSemantics semantics =
        (op == EwOp::kAdd || op == EwOp::kSub)
            ? merge::MergeSemantics::kUnion
            : merge::MergeSemantics::kIntersect;
    // The value expressions match the serial reference exactly (no
    // reductions are involved), so the merged output is bit-identical to
    // it at every worker count.
    return merge::merge_materialize(
        x, y, std::move(out_dims), semantics,
        [&](Size a, Size b) { return apply_ew(op, x.value(a), y.value(b)); },
        [&](Size a) { return apply_ew(op, x.value(a), 0); },
        [&](Size b) { return apply_ew(op, 0, y.value(b)); }, path_out);
}

CooTensor
tew_coo_general_serial(const CooTensor& x, const CooTensor& y, EwOp op)
{
    PASTA_CHECK_MSG(x.order() == y.order(),
                    "tew_coo_general requires equal tensor order");
    std::vector<Index> out_dims(x.order());
    for (Size m = 0; m < x.order(); ++m)
        out_dims[m] = std::max(x.dim(m), y.dim(m));
    CooTensor z(out_dims);

    const bool keep_unmatched = (op == EwOp::kAdd || op == EwOp::kSub);
    Size a = 0;
    Size b = 0;
    Coordinate c(x.order());
    while (a < x.nnz() && b < y.nnz()) {
        const int cmp = compare_coords(x, a, y, b);
        if (cmp < 0) {
            if (keep_unmatched)
                z.append(x.coordinate(a), apply_ew(op, x.value(a), 0));
            ++a;
        } else if (cmp > 0) {
            if (keep_unmatched)
                z.append(y.coordinate(b), apply_ew(op, 0, y.value(b)));
            ++b;
        } else {
            z.append(x.coordinate(a), apply_ew(op, x.value(a), y.value(b)));
            ++a;
            ++b;
        }
    }
    if (keep_unmatched) {
        for (; a < x.nnz(); ++a)
            z.append(x.coordinate(a), apply_ew(op, x.value(a), 0));
        for (; b < y.nnz(); ++b)
            z.append(y.coordinate(b), apply_ew(op, 0, y.value(b)));
    }
    return z;
}

HiCooTensor
tew_hicoo(const HiCooTensor& x, const HiCooTensor& y, EwOp op)
{
    PASTA_CHECK_MSG(x.order() == y.order() && x.dims() == y.dims() &&
                        x.nnz() == y.nnz() &&
                        x.num_blocks() == y.num_blocks() &&
                        x.block_bits() == y.block_bits(),
                    "tew_hicoo requires identical HiCOO structure");
    HiCooTensor z = x;
    tew_values(op, x.values().data(), y.values().data(), z.values().data(),
               x.nnz());
    return z;
}

HiCooTensor
tew_hicoo_general(const HiCooTensor& x, const HiCooTensor& y, EwOp op,
                  unsigned block_bits, merge::MergePath* path_out)
{
    PASTA_CHECK_MSG(x.order() == y.order(),
                    "tew_hicoo_general requires equal tensor order");
    if (block_bits == 0)
        block_bits = x.block_bits();
    // Unpack to sorted COO keys (hicoo_to_coo emits lexicographic,
    // duplicate-free streams), merge on the parallel engine, re-block.
    const CooTensor cz =
        tew_coo_general(hicoo_to_coo(x), hicoo_to_coo(y), op, path_out);
    return coo_to_hicoo(cz, block_bits);
}

}  // namespace pasta
