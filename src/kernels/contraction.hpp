/// \file
/// General sparse tensor-tensor contraction (SpTC), a §VII suite
/// extension: "tensor contraction, a sparse tensor with a sparse
/// vector/matrix products".
///
/// C = A x_{modes_a, modes_b} B contracts each mode in `modes_a` of A
/// with the matching mode of `modes_b` of B (equal extents, pairwise).
/// The output's modes are A's free modes followed by B's free modes, in
/// their original orders; TTM/TTV are the special cases where B is dense,
/// so the sparse-sparse case is the one the suite lacked.
///
/// The implementation is a hash join: B is indexed by its contracted
/// coordinate, A is streamed, and output coordinates accumulate in a
/// hash map (duplicate contributions sum).
#pragma once

#include <vector>

#include "core/coo_tensor.hpp"

namespace pasta {

/// Contracts `modes_a` of `a` against `modes_b` of `b` (same length,
/// pairwise equal extents).  Throws PastaError on arity/extent mismatch
/// or when every mode of either tensor is contracted away on both sides
/// (full contraction to a scalar is returned as a 1-element order-1
/// tensor).
CooTensor contract(const CooTensor& a, const std::vector<Size>& modes_a,
                   const CooTensor& b, const std::vector<Size>& modes_b);

/// Inner (full) contraction of two same-shape tensors: sum of products
/// over matching coordinates.
double inner_product(const CooTensor& a, const CooTensor& b);

}  // namespace pasta
