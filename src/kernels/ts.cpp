#include "kernels/ts.hpp"

#include "common/parallel.hpp"
#include "obs/counters.hpp"

namespace pasta {

void
ts_values(TsOp op, const Value* x, Value* y, Size count, Value s)
{
    // Table I TS model: one flop and two value streams per non-zero.
    obs::add("ts.flops", count);
    obs::add("ts.bytes", 8 * count);
    if (op == TsOp::kAdd) {
        parallel_for_ranges(0, count, [&](Size first, Size last) {
            for (Size i = first; i < last; ++i)
                y[i] = x[i] + s;
        });
    } else {
        parallel_for_ranges(0, count, [&](Size first, Size last) {
            for (Size i = first; i < last; ++i)
                y[i] = x[i] * s;
        });
    }
}

CooTensor
ts_coo(const CooTensor& x, TsOp op, Value s)
{
    CooTensor y = x;  // pre-processing: pattern copy
    ts_values(op, x.values().data(), y.values().data(), x.nnz(), s);
    return y;
}

HiCooTensor
ts_hicoo(const HiCooTensor& x, TsOp op, Value s)
{
    HiCooTensor y = x;  // pre-processing: pattern copy
    ts_values(op, x.values().data(), y.values().data(), x.nnz(), s);
    return y;
}

}  // namespace pasta
