/// \file
/// CSF-based kernels (SPLATT-style), the suite extension the paper's §VII
/// schedules "in the near future".
///
/// CSF is mode-specific: a tree rooted at the output mode makes MTTKRP
/// race-free (every root owns its output row — no atomics, unlike
/// COO-MTTKRP-OMP) and prefix compression skips redundant factor-row
/// reloads along shared index prefixes.  TTV contracts the *leaf* mode,
/// where each level-(N-2) node owns one output non-zero.
#pragma once

#include "common/parallel.hpp"
#include "core/coo_tensor.hpp"
#include "core/csf_tensor.hpp"
#include "core/dense.hpp"
#include "kernels/mttkrp.hpp"

namespace pasta {

/// CSF-MTTKRP-OMP for the tree's root mode (x.mode_order()[0]).
/// Parallel over root nodes; no atomic operations are needed because
/// distinct roots update distinct output rows.  Throws when `mode` is not
/// the root mode — build the tree for the mode you need.
void mttkrp_csf(const CsfTensor& x, const FactorList& factors, Size mode,
                DenseMatrix& out, Schedule schedule = Schedule::kDynamic);

/// CSF-TTV-OMP contracting the tree's leaf mode
/// (x.mode_order().back()).  Returns the (N-1)-order result in COO.
/// Parallel over the next-to-leaf fibers.
CooTensor ttv_csf(const CsfTensor& x, const DenseVector& v, Size mode,
                  Schedule schedule = Schedule::kDynamic);

}  // namespace pasta
