#include "kernels/ttm.hpp"

#include "common/error.hpp"
#include "core/convert.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "simd/microkernels.hpp"

namespace pasta {

CooTtmPlan
ttm_plan_coo(const CooTensor& x, Size mode, Size rank)
{
    PASTA_CHECK_MSG(mode < x.order(), "mode " << mode << " out of range");
    PASTA_CHECK_MSG(x.order() >= 2, "TTM needs an order >= 2 tensor");
    PASTA_CHECK_MSG(rank > 0, "rank must be positive");

    PASTA_SPAN("plan.ttm_coo");
    CooTtmPlan plan;
    plan.mode = mode;
    plan.rank = rank;
    plan.sorted = x;
    plan.sorted.sort_fibers_last(mode);
    plan.fibers = compute_fibers(plan.sorted, mode);

    std::vector<Index> out_dims = x.dims();
    out_dims[mode] = static_cast<Index>(rank);
    plan.out_pattern = ScooTensor(out_dims, {mode});
    std::vector<const Index*> src;
    for (Size m = 0; m < x.order(); ++m)
        if (m != mode)
            src.push_back(plan.sorted.mode_indices(m).data());
    // Bulk stripe materialization: one stripe per fiber, sparse
    // coordinates filled in parallel from the fiber heads.
    const Size num_fibers = plan.fibers.num_fibers();
    ScooBulkFill out = plan.out_pattern.bulk_fill_stripes(num_fibers);
    const auto& fptr = plan.fibers.fptr;
    parallel_for_ranges(0, num_fibers, [&](Size first, Size last) {
        for (Size f = first; f < last; ++f) {
            const Size head = fptr[f];
            for (Size s = 0; s < src.size(); ++s)
                out.sparse[s][f] = src[s][head];
        }
    });
    return plan;
}

void
ttm_exec_coo(const CooTtmPlan& plan, const DenseMatrix& u, ScooTensor& out,
             Schedule schedule)
{
    PASTA_CHECK_MSG(u.rows() == plan.sorted.dim(plan.mode),
                    "matrix rows " << u.rows() << " != mode extent "
                                   << plan.sorted.dim(plan.mode));
    PASTA_CHECK_MSG(u.cols() == plan.rank, "matrix rank mismatch");
    PASTA_CHECK_MSG(out.num_sparse() == plan.fibers.num_fibers(),
                    "output stripe count mismatch");
    if (obs::counters_enabled()) {
        const Size m = plan.sorted.nnz();
        const Size mf = plan.fibers.num_fibers();
        const Size r = plan.rank;
        obs::counter("ttm.flops").add(2 * m * r);
        obs::counter("ttm.bytes").add(4 * m * r + 4 * mf * r + 8 * m +
                                      16 * mf);
    }
    const Value* xv = plan.sorted.values().data();
    const Index* kind = plan.sorted.mode_indices(plan.mode).data();
    const auto& fptr = plan.fibers.fptr;
    const Size rank = plan.rank;
    const simd::Isa isa = simd::note_kernel();
    const Size pf = simd::prefetch_distance();
    obs::Counter* prefetches = obs::counters_enabled()
                                   ? &obs::counter("simd.prefetch")
                                   : nullptr;
    parallel_for(
        0, plan.fibers.num_fibers(), schedule,
        [&](Size f) {
            Value* yb = out.stripe(f);
            simd::vfill(isa, yb, 0, rank);
            Size issued = 0;
            for (Size p = fptr[f]; p < fptr[f + 1]; ++p) {
                if (pf != 0 && p + pf < fptr[f + 1]) {
                    simd::prefetch_read(u.row(kind[p + pf]));
                    ++issued;
                }
                simd::vaxpy(isa, yb, xv[p], u.row(kind[p]), rank);
            }
            if (prefetches)
                prefetches->add(issued);
        },
        16);
}

ScooTensor
ttm_coo(const CooTensor& x, const DenseMatrix& u, Size mode)
{
    CooTtmPlan plan = ttm_plan_coo(x, mode, u.cols());
    ScooTensor out = plan.out_pattern;
    ttm_exec_coo(plan, u, out);
    return out;
}

HicooTtmPlan
ttm_plan_hicoo(const CooTensor& x, Size mode, Size rank,
               unsigned block_bits)
{
    PASTA_CHECK_MSG(mode < x.order(), "mode " << mode << " out of range");
    PASTA_CHECK_MSG(x.order() >= 2, "TTM needs an order >= 2 tensor");
    PASTA_CHECK_MSG(rank > 0, "rank must be positive");

    PASTA_SPAN("plan.ttm_hicoo");
    HicooTtmPlan plan;
    plan.mode = mode;
    plan.rank = rank;
    std::vector<bool> compressed(x.order(), true);
    compressed[mode] = false;
    plan.input = coo_to_ghicoo(x, compressed, block_bits);
    const GHiCooTensor& g = plan.input;

    std::vector<Index> out_dims = x.dims();
    out_dims[mode] = static_cast<Index>(rank);
    plan.out_pattern = SHiCooTensor(out_dims, {mode}, block_bits);

    std::vector<BIndex> out_block(g.compressed_modes().size());
    std::vector<EIndex> out_elem(g.compressed_modes().size());
    for (Size b = 0; b < g.num_blocks(); ++b) {
        Size s = 0;
        for (Size m : g.compressed_modes())
            out_block[s++] = g.block_index(m, b);
        plan.out_pattern.append_block(out_block.data());
        Size prev = kNoMode;
        for (Size p = g.bptr()[b]; p < g.bptr()[b + 1]; ++p) {
            bool boundary = (p == g.bptr()[b]);
            if (!boundary) {
                for (Size m : g.compressed_modes()) {
                    if (g.element_index(m, p) != g.element_index(m, prev)) {
                        boundary = true;
                        break;
                    }
                }
            }
            if (boundary) {
                plan.fptr.push_back(p);
                Size t = 0;
                for (Size m : g.compressed_modes())
                    out_elem[t++] = g.element_index(m, p);
                plan.out_pattern.append_entry(out_elem.data());
            }
            prev = p;
        }
    }
    plan.fptr.push_back(g.nnz());
    return plan;
}

void
ttm_exec_hicoo(const HicooTtmPlan& plan, const DenseMatrix& u,
               SHiCooTensor& out, Schedule schedule)
{
    const GHiCooTensor& g = plan.input;
    PASTA_CHECK_MSG(u.rows() == g.dim(plan.mode), "matrix rows mismatch");
    PASTA_CHECK_MSG(u.cols() == plan.rank, "matrix rank mismatch");
    const Size num_fibers = plan.fptr.size() - 1;
    PASTA_CHECK_MSG(out.num_sparse() == num_fibers,
                    "output stripe count mismatch");
    if (obs::counters_enabled()) {
        const Size m = g.nnz();
        const Size r = plan.rank;
        obs::counter("ttm.flops").add(2 * m * r);
        obs::counter("ttm.bytes").add(4 * m * r + 4 * num_fibers * r +
                                      8 * m + 8 * num_fibers);
    }
    const Value* xv = g.values().data();
    const Index* kind = g.raw_indices(plan.mode).data();
    const auto& fptr = plan.fptr;
    const Size rank = plan.rank;
    const simd::Isa isa = simd::note_kernel();
    const Size pf = simd::prefetch_distance();
    obs::Counter* prefetches = obs::counters_enabled()
                                   ? &obs::counter("simd.prefetch")
                                   : nullptr;
    parallel_for(
        0, num_fibers, schedule,
        [&](Size f) {
            Value* yb = out.stripe(f);
            simd::vfill(isa, yb, 0, rank);
            Size issued = 0;
            for (Size p = fptr[f]; p < fptr[f + 1]; ++p) {
                if (pf != 0 && p + pf < fptr[f + 1]) {
                    simd::prefetch_read(u.row(kind[p + pf]));
                    ++issued;
                }
                simd::vaxpy(isa, yb, xv[p], u.row(kind[p]), rank);
            }
            if (prefetches)
                prefetches->add(issued);
        },
        16);
}

SHiCooTensor
ttm_hicoo(const CooTensor& x, const DenseMatrix& u, Size mode,
          unsigned block_bits)
{
    HicooTtmPlan plan = ttm_plan_hicoo(x, mode, u.cols(), block_bits);
    SHiCooTensor out = plan.out_pattern;
    ttm_exec_hicoo(plan, u, out);
    return out;
}

}  // namespace pasta
