/// \file
/// Tensor element-wise operations (TEW, paper §II-A, §III-B/§III-D).
///
/// Two regimes, exactly as the paper describes:
///  * same-pattern: both inputs share order, shape, and non-zero pattern.
///    Pre-processing copies the pattern to the output; the timed kernel is
///    a single parallel sweep over the value arrays (OI 1/12: three value
///    streams per non-zero).
///  * general: inputs share the order but may differ in shape and pattern.
///    A sorted merge produces the output: union semantics for add/sub
///    (absent entries are zero), intersection semantics for mul (0 * y =
///    0) and div (defined only where the divisor is stored).  The merge
///    runs on the parallel merge engine (core/merge.hpp): merge-path
///    partition, then count/scan/fill into preallocated arrays.  The
///    engine reports which comparison path it ran (merged-64key packed
///    keys vs merged-cmp comparator) the way MTTKRP reports its variant.
#pragma once

#include "common/parallel.hpp"
#include "core/coo_tensor.hpp"
#include "core/hicoo_tensor.hpp"
#include "core/merge.hpp"
#include "kernels/ops.hpp"

namespace pasta {

/// Timed inner loop of same-pattern TEW: z[i] = x[i] op y[i] in parallel.
/// All three arrays have `count` elements.
void tew_values(EwOp op, const Value* x, const Value* y, Value* z,
                Size count);

/// COO-TEW-OMP, same-pattern fast path.  Throws when patterns differ.
CooTensor tew_coo(const CooTensor& x, const CooTensor& y, EwOp op);

/// COO-TEW for general inputs (different shapes/patterns): parallel
/// sorted merge.  Inputs must be lexicographically sorted and
/// duplicate-free; output dims are the element-wise max of the input
/// dims.  Output is bit-identical to tew_coo_general_serial for every
/// worker count.  `path_out`, when given, receives the comparison path
/// the merge engine selected (for benchmark labels).
CooTensor tew_coo_general(const CooTensor& x, const CooTensor& y, EwOp op,
                          merge::MergePath* path_out = nullptr);

/// Serial two-pointer reference for tew_coo_general: the deterministic
/// baseline tests and ablation benches compare the merged path against.
CooTensor tew_coo_general_serial(const CooTensor& x, const CooTensor& y,
                                 EwOp op);

/// HiCOO-TEW-OMP, same-pattern fast path: identical value computation to
/// COO (paper §III-D1); the pattern (blocks + element indices) is copied
/// in pre-processing.  Inputs must have identical block structure, which
/// holds when both were converted from same-pattern COO tensors with the
/// same block size.
HiCooTensor tew_hicoo(const HiCooTensor& x, const HiCooTensor& y, EwOp op);

/// HiCOO-TEW for non-identical blockings or patterns: unpacks both
/// operands to sorted COO keys, merges them on the parallel engine, and
/// re-blocks the result with block edge 2^block_bits (0 = x's blocking).
/// Same union/intersection semantics as tew_coo_general.
HiCooTensor tew_hicoo_general(const HiCooTensor& x, const HiCooTensor& y,
                              EwOp op, unsigned block_bits = 0,
                              merge::MergePath* path_out = nullptr);

}  // namespace pasta
