/// \file
/// Tensor element-wise operations (TEW, paper §II-A, §III-B/§III-D).
///
/// Two regimes, exactly as the paper describes:
///  * same-pattern: both inputs share order, shape, and non-zero pattern.
///    Pre-processing copies the pattern to the output; the timed kernel is
///    a single parallel sweep over the value arrays (OI 1/12: three value
///    streams per non-zero).
///  * general: inputs share the order but may differ in shape and pattern.
///    A sorted two-pointer merge produces the output: union semantics for
///    add/sub (absent entries are zero), intersection semantics for mul
///    (0 * y = 0) and div (defined only where the divisor is stored).
#pragma once

#include "common/parallel.hpp"
#include "core/coo_tensor.hpp"
#include "core/hicoo_tensor.hpp"
#include "kernels/ops.hpp"

namespace pasta {

/// Timed inner loop of same-pattern TEW: z[i] = x[i] op y[i] in parallel.
/// All three arrays have `count` elements.
void tew_values(EwOp op, const Value* x, const Value* y, Value* z,
                Size count);

/// COO-TEW-OMP, same-pattern fast path.  Throws when patterns differ.
CooTensor tew_coo(const CooTensor& x, const CooTensor& y, EwOp op);

/// COO-TEW for general inputs (different shapes/patterns): sorted merge.
/// Inputs must be lexicographically sorted and duplicate-free; output dims
/// are the element-wise max of the input dims.
CooTensor tew_coo_general(const CooTensor& x, const CooTensor& y, EwOp op);

/// HiCOO-TEW-OMP, same-pattern fast path: identical value computation to
/// COO (paper §III-D1); the pattern (blocks + element indices) is copied
/// in pre-processing.  Inputs must have identical block structure, which
/// holds when both were converted from same-pattern COO tensors with the
/// same block size.
HiCooTensor tew_hicoo(const HiCooTensor& x, const HiCooTensor& y, EwOp op);

}  // namespace pasta
