#include "kernels/fcoo_kernels.hpp"

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "gpusim/device.hpp"

namespace pasta {

CooTensor
ttv_fcoo(const FcooTensor& f, const DenseVector& v)
{
    PASTA_CHECK_MSG(v.size() == f.dims()[f.mode()],
                    "vector length mismatch");
    CooTensor out = f.out_pattern();
    Value* yv = out.values().data();
    const Value* vv = v.data();
    // Chunk-parallel segmented sum: each chunk accumulates interior
    // segments privately and combines boundary segments atomically.
    parallel_for_ranges(0, f.nnz(), [&](Size first, Size last) {
        Size p = first;
        while (p < last) {
            const Index fiber = f.fiber_of(p);
            Value acc = 0;
            while (p < last && f.fiber_of(p) == fiber) {
                acc += f.value(p) * vv[f.product_index(p)];
                ++p;
            }
            // Segments can straddle chunk boundaries, so boundary
            // updates must combine; routing every per-chunk partial
            // through the atomic keeps the kernel branch-free (interior
            // segments see exactly one writer and pay almost nothing).
            atomic_add(yv + fiber, acc);
        }
    });
    return out;
}

namespace gpusim {

LaunchProfile
ttv_gpu_fcoo(const FcooTensor& f, const DenseVector& v, CooTensor& out)
{
    PASTA_CHECK_MSG(v.size() == f.dims()[f.mode()],
                    "vector length mismatch");
    PASTA_CHECK_MSG(out.nnz() == f.num_fibers(), "output nnz mismatch");
    std::fill(out.values().begin(), out.values().end(), 0.0f);
    const Size m = f.nnz();
    Value* yv = out.values().data();
    const Value* vv = v.data();

    const Dim3 grid{grid_blocks(m, kDefaultBlockThreads), 1, 1};
    const Dim3 block{kDefaultBlockThreads, 1, 1};
    launch(grid, block, [&](const ThreadCtx& ctx) {
        const Size p = ctx.global_x();
        if (p >= m)
            return;
        atomic_add(yv + f.fiber_of(p),
                   f.value(p) * vv[f.product_index(p)]);
    });

    LaunchProfile prof;
    prof.flops = 2 * m;
    // Per non-zero: value (4) + product index (4) + fiber id (4) +
    // gathered vector element (4) + flag bit, plus the output writes.
    prof.dram_bytes = 16 * m + (m + 7) / 8 + 8 * f.num_fibers();
    prof.working_set_bytes = 12 * m + kValueBytes * v.size() +
                             kValueBytes * f.num_fibers();
    prof.atomics = m;
    // The selling point: perfectly uniform block traffic regardless of
    // fiber skew.
    prof.block_bytes.assign(
        grid.x, static_cast<double>(prof.dram_bytes) /
                    static_cast<double>(grid.x));
    return prof;
}

}  // namespace gpusim
}  // namespace pasta
