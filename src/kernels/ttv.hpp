/// \file
/// Tensor-times-vector (TTV, paper §II-C, Algorithms 1 and 2).
///
/// y = x ×_mode v contracts one mode away.  The sparse-dense property
/// (§III-B1) makes the output pattern predictable: one output non-zero per
/// mode-`mode` fiber of x, with the fiber's remaining coordinates.  The
/// plan phase (the paper's pre-processing) sorts the input fibers-last,
/// finds M_F and fptr, and pre-allocates the output with its indices; the
/// exec phase is the timed fiber-parallel accumulation.
///
/// The HiCOO path follows §III-D1: the input is re-expressed in gHiCOO
/// with the product mode left uncompressed, so every block holds whole
/// fibers and the fiber loop runs with no inter-block race; the output is
/// an (N-1)-order HiCOO tensor whose blocks mirror the input blocks.
#pragma once

#include "common/parallel.hpp"
#include "core/coo_tensor.hpp"
#include "core/dense.hpp"
#include "core/fibers.hpp"
#include "core/ghicoo_tensor.hpp"
#include "core/hicoo_tensor.hpp"

namespace pasta {

/// Pre-processed state of COO-TTV (Algorithm 1, lines 1-2).
struct CooTtvPlan {
    Size mode = 0;              ///< contraction mode
    CooTensor sorted;           ///< input, fibers-last sorted
    FiberPartition fibers;      ///< mode-`mode` fibers of `sorted`
    CooTensor out_pattern;      ///< (N-1)-order output, indices set, values 0
};

/// Builds the COO-TTV plan for contracting `mode` of `x`.
CooTtvPlan ttv_plan_coo(const CooTensor& x, Size mode);

/// COO-TTV-OMP timed kernel: accumulates into `out` (same pattern as
/// plan.out_pattern; values are overwritten).  Fiber-parallel; `schedule`
/// controls OpenMP scheduling (fiber lengths are imbalanced).
void ttv_exec_coo(const CooTtvPlan& plan, const DenseVector& v,
                  CooTensor& out, Schedule schedule = Schedule::kDynamic);

/// Convenience one-shot COO-TTV.
CooTensor ttv_coo(const CooTensor& x, const DenseVector& v, Size mode);

/// Pre-processed state of HiCOO-TTV.
struct HicooTtvPlan {
    Size mode = 0;
    GHiCooTensor input;        ///< all modes compressed except `mode`
    std::vector<Size> fptr;    ///< fiber boundaries over input entries
    HiCooTensor out_pattern;   ///< (N-1)-order HiCOO output pattern
};

/// Builds the HiCOO-TTV plan (gHiCOO conversion + fiber discovery +
/// output pre-allocation).
HicooTtvPlan ttv_plan_hicoo(const CooTensor& x, Size mode,
                            unsigned block_bits =
                                HiCooTensor::kDefaultBlockBits);

/// HiCOO-TTV-OMP timed kernel.
void ttv_exec_hicoo(const HicooTtvPlan& plan, const DenseVector& v,
                    HiCooTensor& out,
                    Schedule schedule = Schedule::kDynamic);

/// Convenience one-shot HiCOO-TTV.
HiCooTensor ttv_hicoo(const CooTensor& x, const DenseVector& v, Size mode,
                      unsigned block_bits =
                          HiCooTensor::kDefaultBlockBits);

}  // namespace pasta
