#include "kernels/tew_broadcast.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "simd/microkernels.hpp"

namespace pasta {

namespace {

std::uint64_t
hash_coords(const Index* coords, Size n)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (Size m = 0; m < n; ++m)
        h = (h ^ coords[m]) * 1099511628211ULL;
    return h;
}

}  // namespace

CooTensor
tew_coo_broadcast(const CooTensor& x, const CooTensor& y,
                  const std::vector<Size>& y_modes, EwOp op)
{
    PASTA_CHECK_MSG(op == EwOp::kMul || op == EwOp::kDiv,
                    "broadcast TEW supports mul and div only (add/sub "
                    "would densify the free modes)");
    PASTA_CHECK_MSG(y_modes.size() == y.order(),
                    "y_modes arity " << y_modes.size() << " != y order "
                                     << y.order());
    PASTA_CHECK_MSG(y.order() <= x.order(),
                    "broadcast operand must not exceed the full "
                    "tensor's order");
    PASTA_CHECK_MSG(std::is_sorted(y_modes.begin(), y_modes.end()) &&
                        std::adjacent_find(y_modes.begin(),
                                           y_modes.end()) ==
                            y_modes.end(),
                    "y_modes must be strictly increasing");
    for (Size k = 0; k < y_modes.size(); ++k) {
        PASTA_CHECK_MSG(y_modes[k] < x.order(),
                        "y_modes entry out of range");
        PASTA_CHECK_MSG(y.dim(k) == x.dim(y_modes[k]),
                        "extent mismatch: y mode " << k << " has "
                                                   << y.dim(k)
                                                   << ", x mode "
                                                   << y_modes[k] << " has "
                                                   << x.dim(y_modes[k]));
    }

    // Index y by coordinate (hash with full-coordinate verification).
    struct YEntry {
        Coordinate coords;
        Value value;
    };
    std::unordered_map<std::uint64_t, std::vector<YEntry>> y_index;
    y_index.reserve(y.nnz() * 2);
    for (Size p = 0; p < y.nnz(); ++p) {
        Coordinate c = y.coordinate(p);
        y_index[hash_coords(c.data(), c.size())].push_back(
            {std::move(c), y.value(p)});
    }

    CooTensor z = x;  // pattern copy, pre-processing
    const Size yo = y.order();
    // Two passes per chunk: scalar hash probes gather the matched
    // broadcast values into a contiguous staging buffer, then one SIMD
    // sweep applies the op over the whole chunk (z still holds x's
    // values at that point, so the op reads and writes in place).
    const simd::Isa isa = simd::note_kernel();
    Value* zv = z.values().data();
    parallel_for_ranges(0, x.nnz(), [&](Size first, Size last) {
        std::vector<Index> probe(yo);
        std::vector<Value> ybuf(last - first);
        for (Size p = first; p < last; ++p) {
            for (Size k = 0; k < yo; ++k)
                probe[k] = x.index(y_modes[k], p);
            Value yv = 0;
            const auto it = y_index.find(hash_coords(probe.data(), yo));
            if (it != y_index.end()) {
                for (const auto& entry : it->second) {
                    if (std::equal(entry.coords.begin(),
                                   entry.coords.end(), probe.begin())) {
                        yv = entry.value;
                        break;
                    }
                }
            }
            ybuf[p - first] = yv;
        }
        if (op == EwOp::kMul)
            simd::vhadamard(isa, zv + first, zv + first, ybuf.data(),
                            last - first);
        else
            simd::vdiv(isa, zv + first, zv + first, ybuf.data(),
                       last - first);
    });

    if (op == EwOp::kDiv) {
        for (Size p = 0; p < z.nnz(); ++p)
            PASTA_CHECK_MSG(std::isfinite(z.value(p)),
                            "division by a missing (zero) broadcast "
                            "entry at non-zero "
                                << p);
    }
    return z;
}

}  // namespace pasta
