#include "kernels/mttkrp.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/membudget.hpp"
#include "kernels/rank_scratch.hpp"
#include "obs/counters.hpp"
#include "simd/microkernels.hpp"

namespace pasta {

Size
check_factors(const std::vector<Index>& dims, const FactorList& factors)
{
    PASTA_CHECK_MSG(factors.size() == dims.size(),
                    "expected " << dims.size() << " factor matrices, got "
                                << factors.size());
    PASTA_CHECK_MSG(!factors.empty(), "no factor matrices");
    const Size rank = factors[0]->cols();
    PASTA_CHECK_MSG(rank > 0, "factor rank must be positive");
    for (Size m = 0; m < dims.size(); ++m) {
        PASTA_CHECK_MSG(factors[m] != nullptr, "null factor matrix");
        PASTA_CHECK_MSG(factors[m]->cols() == rank,
                        "factor rank mismatch on mode " << m);
        PASTA_CHECK_MSG(factors[m]->rows() == dims[m],
                        "factor rows " << factors[m]->rows()
                                       << " != dim " << dims[m]
                                       << " on mode " << m);
    }
    return rank;
}

const char*
mttkrp_variant_name(MttkrpVariant v)
{
    switch (v) {
      case MttkrpVariant::kAtomic:
        return "atomic";
      case MttkrpVariant::kPrivatized:
        return "privatized";
      case MttkrpVariant::kBlockOwner:
        return "block-owner";
    }
    return "?";
}

namespace {

/// Cap on the total replicated-output footprint the privatized COO
/// schedule may allocate (values, not bytes): 2^24 floats = 64 MiB.
constexpr Size kPrivatizedBudgetValues = Size{1} << 24;

void
check_mttkrp_args(const std::vector<Index>& dims, Size order_mode,
                  Size rank, const DenseMatrix& out, Size mode)
{
    PASTA_CHECK_MSG(mode < dims.size(), "mode out of range");
    PASTA_CHECK_MSG(out.rows() == dims[mode] && out.cols() == rank,
                    "output matrix shape mismatch");
    (void)order_mode;
    (void)rank;
}

/// Table I COO-MTTKRP model counters (flops = NMR, bytes = 4NMR +
/// 4(N+1)M), recorded once per kernel invocation when counters are armed.
void
note_mttkrp_coo(Size order, Size nnz, Size rank)
{
    if (!obs::counters_enabled())
        return;
    const double n = static_cast<double>(order);
    const double m = static_cast<double>(nnz);
    const double r = static_cast<double>(rank);
    obs::counter("mttkrp.flops").add(
        static_cast<std::uint64_t>(n * m * r));
    obs::counter("mttkrp.bytes").add(
        static_cast<std::uint64_t>(4 * n * m * r + 4 * (n + 1) * m));
}

/// tmp = xval * prod of the non-mode factor rows of non-zero p.  The
/// first factor row folds the xval broadcast into a vscale; an order-1
/// tensor (no other modes) degenerates to the broadcast alone.
inline void
khatri_rao_row(simd::Isa isa, const CooTensor& x,
               const FactorList& factors, Size mode, Size order, Size p,
               Value xval, Value* tmp, Size rank)
{
    bool first = true;
    for (Size m = 0; m < order; ++m) {
        if (m == mode)
            continue;
        const Value* row = factors[m]->row(x.index(m, p));
        if (first) {
            simd::vscale(isa, tmp, row, xval, rank);
            first = false;
        } else {
            simd::vmul_accumulate(isa, tmp, row, rank);
        }
    }
    if (first)
        simd::vfill(isa, tmp, xval, rank);
}

/// Prefetches the factor rows non-zero q will gather.  The index
/// streams themselves are sequential (hardware-prefetched); the factor
/// rows they select are the random accesses worth hinting.
inline Size
prefetch_factor_rows(const CooTensor& x, const FactorList& factors,
                     Size mode, Size order, Size q)
{
    Size issued = 0;
    for (Size m = 0; m < order; ++m) {
        if (m == mode)
            continue;
        simd::prefetch_read(factors[m]->row(x.index(m, q)));
        ++issued;
    }
    return issued;
}

}  // namespace

MttkrpVariant
mttkrp_coo_pick(Index dim_mode, Size nnz, Size rank)
{
    const Size threads = static_cast<Size>(num_threads());
    if (threads * static_cast<Size>(dim_mode) * rank >
        kPrivatizedBudgetValues)
        return MttkrpVariant::kAtomic;
    // The replicated buffers are allocated inside a parallel region,
    // where a governor rejection could not unwind; decide here instead —
    // over budget simply means the atomic schedule (which allocates
    // nothing) is the only affordable one.
    if (!membudget::would_fit(std::uint64_t{4} * threads *
                              static_cast<Size>(dim_mode) * rank))
        return MttkrpVariant::kAtomic;
    // The replicated buffers cost a zero + reduce sweep over
    // threads x dim_mode rows; the atomic path (with run fusion) costs
    // roughly one atomic set per distinct output row per chunk.
    // Privatize only when the stream is dense enough in output rows for
    // the sweep to be clearly amortized.
    if (2 * threads * static_cast<Size>(dim_mode) > nnz)
        return MttkrpVariant::kAtomic;
    return MttkrpVariant::kPrivatized;
}

MttkrpVariant
mttkrp_coo(const CooTensor& x, const FactorList& factors, Size mode,
           DenseMatrix& out, Schedule schedule)
{
    const Size rank = check_factors(x.dims(), factors);
    check_mttkrp_args(x.dims(), x.order(), rank, out, mode);
    const MttkrpVariant pick = mttkrp_coo_pick(x.dim(mode), x.nnz(), rank);
    obs::set_label("mttkrp.variant", mttkrp_variant_name(pick));
    note_mttkrp_coo(x.order(), x.nnz(), rank);
    if (pick == MttkrpVariant::kPrivatized)
        mttkrp_coo_privatized(x, factors, mode, out);
    else
        mttkrp_coo_atomic(x, factors, mode, out, schedule);
    return pick;
}

void
mttkrp_coo_atomic(const CooTensor& x, const FactorList& factors, Size mode,
                  DenseMatrix& out, Schedule schedule)
{
    const Size rank = check_factors(x.dims(), factors);
    check_mttkrp_args(x.dims(), x.order(), rank, out, mode);
    out.fill(0);
    (void)schedule;  // contiguous static ranges preserve index runs

    const Size order = x.order();
    const Value* xv = x.values().data();
    const Index* out_idx = x.mode_indices(mode).data();
    const simd::Isa isa = simd::note_kernel();
    const Size pf = simd::prefetch_distance();
    // Runs of equal output index (ubiquitous when the stream is sorted
    // with `mode` leading, frequent otherwise) are accumulated locally
    // and flushed with one atomic set per run, not one per non-zero.
    // Correct for arbitrary streams: an unsorted stream just flushes
    // more often.
    parallel_for_ranges(0, x.nnz(), [&](Size first, Size last) {
        RankScratch acc_buf(rank);
        RankScratch tmp_buf(rank);
        Value* acc = acc_buf.data();
        Value* tmp = tmp_buf.data();
        Index run_row = 0;
        bool in_run = false;
        Size flushes = 0;
        Size prefetched = 0;
        const auto flush = [&] {
            ++flushes;
            Value* out_row = out.row(run_row);
            for (Size r = 0; r < rank; ++r)
                atomic_add(out_row + r, acc[r]);
        };
        for (Size p = first; p < last; ++p) {
            if (pf != 0 && p + pf < last)
                prefetched +=
                    prefetch_factor_rows(x, factors, mode, order, p + pf);
            khatri_rao_row(isa, x, factors, mode, order, p, xv[p], tmp,
                           rank);
            if (in_run && out_idx[p] == run_row) {
                simd::vadd_inplace(isa, acc, tmp, rank);
            } else {
                if (in_run)
                    flush();
                run_row = out_idx[p];
                in_run = true;
                // The freshly computed row becomes the run accumulator;
                // the old accumulator is dead and will be fully
                // overwritten as the next tmp.
                std::swap(acc, tmp);
            }
        }
        if (in_run)
            flush();
        obs::add("mttkrp.atomics", flushes * rank);
        obs::add("simd.prefetch", prefetched);
        obs::add_worker("mttkrp.worker_items", worker_id(), last - first);
    });
}

namespace {

/// Shared per-block body of the HiCOO kernels (Algorithm 3, line 3):
/// per-block factor base rows so the inner loop decodes only 8-bit
/// element offsets.  `add(out_row, acc, rank)` is the output-update
/// policy — a vadd_inplace for owner-partitioned blocks, per-element
/// omp atomics for the contended schedule — inlined via template, not
/// dispatched.
template <typename AddFn>
inline Size
hicoo_process_block(const HiCooTensor& x, const FactorList& factors,
                    Size mode, DenseMatrix& out, Size rank, Size b,
                    simd::Isa isa, Size pf, Value* acc, AddFn add)
{
    const Size order = x.order();
    const unsigned bits = x.block_bits();
    const Value* xv = x.values().data();
    const auto& bptr = x.bptr();
    const Value* base[8];
    Value* out_base =
        out.row(static_cast<Size>(x.block_index(mode, b)) << bits);
    for (Size m = 0; m < order; ++m)
        base[m] = factors[m]->row(
            static_cast<Size>(x.block_index(m, b)) << bits);
    const Size rank_stride = out.cols();
    Size prefetched = 0;
    for (Size p = bptr[b]; p < bptr[b + 1]; ++p) {
        if (pf != 0 && p + pf < bptr[b + 1]) {
            const Size q = p + pf;
            for (Size m = 0; m < order; ++m) {
                if (m == mode)
                    continue;
                simd::prefetch_read(
                    base[m] +
                    static_cast<Size>(x.element_index(m, q)) *
                        rank_stride);
                ++prefetched;
            }
        }
        const Value xval = xv[p];
        bool first = true;
        for (Size m = 0; m < order; ++m) {
            if (m == mode)
                continue;
            const Value* row =
                base[m] +
                static_cast<Size>(x.element_index(m, p)) * rank_stride;
            if (first) {
                simd::vscale(isa, acc, row, xval, rank);
                first = false;
            } else {
                simd::vmul_accumulate(isa, acc, row, rank);
            }
        }
        if (first)
            simd::vfill(isa, acc, xval, rank);
        Value* out_row =
            out_base +
            static_cast<Size>(x.element_index(mode, p)) * rank_stride;
        add(out_row, acc, rank);
    }
    return prefetched;
}

/// Owner partitioning pays off when the groups can keep the workers
/// busy; with fewer groups than workers the dynamic loop serializes and
/// atomics win back.  A single worker always prefers owner (it removes
/// the atomics with zero downside).
bool
hicoo_use_owner(const OwnerSchedule& sched, int threads)
{
    if (threads <= 1)
        return true;
    return sched.groups() >= 2 * static_cast<Size>(threads);
}

/// Table I HiCOO-MTTKRP model counters: flops = NMR, bytes = 4NR
/// min{n_b B, M} + (4+N)M + (4N+8) n_b.
void
note_mttkrp_hicoo(const HiCooTensor& x, Size rank)
{
    if (!obs::counters_enabled())
        return;
    const double n = static_cast<double>(x.order());
    const double m = static_cast<double>(x.nnz());
    const double r = static_cast<double>(rank);
    const double nb = static_cast<double>(x.num_blocks());
    const double block = static_cast<double>(x.block_size());
    obs::counter("mttkrp.flops").add(
        static_cast<std::uint64_t>(n * m * r));
    obs::counter("mttkrp.bytes").add(static_cast<std::uint64_t>(
        4 * n * r * std::min(nb * block, m) + (4 + n) * m +
        (4 * n + 8) * nb));
}

}  // namespace

MttkrpVariant
mttkrp_hicoo(const HiCooTensor& x, const FactorList& factors, Size mode,
             DenseMatrix& out, Schedule schedule)
{
    const Size rank = check_factors(x.dims(), factors);
    check_mttkrp_args(x.dims(), x.order(), rank, out, mode);
    PASTA_CHECK_MSG(x.order() <= 8, "HiCOO MTTKRP supports order <= 8");

    const OwnerSchedule& sched = x.owner_schedule(mode);
    if (!hicoo_use_owner(sched, num_threads())) {
        obs::set_label("mttkrp.variant",
                       mttkrp_variant_name(MttkrpVariant::kAtomic));
        mttkrp_hicoo_atomic(x, factors, mode, out, schedule);
        return MttkrpVariant::kAtomic;
    }
    obs::set_label("mttkrp.variant",
                   mttkrp_variant_name(MttkrpVariant::kBlockOwner));
    note_mttkrp_hicoo(x, rank);
    out.fill(0);
    const simd::Isa isa = simd::note_kernel();
    const Size pf = simd::prefetch_distance();
    const auto& bptr = x.bptr();
    // One thread owns every block of a group, and a group's blocks are
    // the only writers of its output tile: no atomics needed.  Dynamic
    // schedule absorbs the group-size skew.
    parallel_for(
        0, sched.groups(), schedule,
        [&](Size g) {
            RankScratch acc(rank);
            Size items = 0;
            Size prefetched = 0;
            for (Size s = sched.group_ptr[g]; s < sched.group_ptr[g + 1];
                 ++s) {
                const Size b = sched.blocks[s];
                items += bptr[b + 1] - bptr[b];
                prefetched += hicoo_process_block(
                    x, factors, mode, out, rank, b, isa, pf, acc.data(),
                    [isa](Value* out_row, const Value* row, Size n) {
                        simd::vadd_inplace(isa, out_row, row, n);
                    });
            }
            obs::add("simd.prefetch", prefetched);
            obs::add_worker("mttkrp.worker_items", worker_id(), items);
        },
        1);
    return MttkrpVariant::kBlockOwner;
}

void
mttkrp_hicoo_atomic(const HiCooTensor& x, const FactorList& factors,
                    Size mode, DenseMatrix& out, Schedule schedule)
{
    const Size rank = check_factors(x.dims(), factors);
    check_mttkrp_args(x.dims(), x.order(), rank, out, mode);
    PASTA_CHECK_MSG(x.order() <= 8, "HiCOO MTTKRP supports order <= 8");
    note_mttkrp_hicoo(x, rank);
    obs::add("mttkrp.atomics", x.nnz() * rank);
    out.fill(0);

    const simd::Isa isa = simd::note_kernel();
    const Size pf = simd::prefetch_distance();
    // Hoisted registry lookup: the per-block body runs once per block,
    // too hot for a per-call map access when counters are armed.
    obs::Counter* witems = obs::counters_enabled()
                               ? &obs::counter("mttkrp.worker_items")
                               : nullptr;
    obs::Counter* prefetches = obs::counters_enabled()
                                   ? &obs::counter("simd.prefetch")
                                   : nullptr;
    const auto& bptr = x.bptr();
    parallel_for(
        0, x.num_blocks(), schedule,
        [&](Size b) {
            if (witems)
                witems->add_worker(worker_id(), bptr[b + 1] - bptr[b]);
            RankScratch acc(rank);
            const Size issued = hicoo_process_block(
                x, factors, mode, out, rank, b, isa, pf, acc.data(),
                [](Value* out_row, const Value* row, Size n) {
                    for (Size r = 0; r < n; ++r)
                        atomic_add(out_row + r, row[r]);
                });
            if (prefetches)
                prefetches->add(issued);
        },
        8);
}

void
mttkrp_coo_privatized(const CooTensor& x, const FactorList& factors,
                      Size mode, DenseMatrix& out)
{
    const Size rank = check_factors(x.dims(), factors);
    check_mttkrp_args(x.dims(), x.order(), rank, out, mode);
    out.fill(0);

    const int threads = num_threads();
    const Size order = x.order();
    const Value* xv = x.values().data();
    const simd::Isa isa = simd::note_kernel();
    const Size pf = simd::prefetch_distance();
    // One private output copy per worker, merged after the sweep.  The
    // buffer is keyed by worker id — chunk identity would alias if the
    // runtime delivered fewer threads than requested.
    std::vector<DenseMatrix> privates(
        threads, DenseMatrix(out.rows(), rank, 0));
    parallel_for_worker_ranges(
        0, x.nnz(), [&](int worker, Size first, Size last) {
            obs::add_worker("mttkrp.worker_items", worker, last - first);
            DenseMatrix& local = privates[worker];
            RankScratch acc_buf(rank);
            Value* acc = acc_buf.data();
            Size prefetched = 0;
            for (Size p = first; p < last; ++p) {
                if (pf != 0 && p + pf < last)
                    prefetched += prefetch_factor_rows(x, factors, mode,
                                                       order, p + pf);
                khatri_rao_row(isa, x, factors, mode, order, p, xv[p],
                               acc, rank);
                Value* out_row = local.row(x.index(mode, p));
                simd::vadd_inplace(isa, out_row, acc, rank);
            }
            obs::add("simd.prefetch", prefetched);
        });
    // Reduction (parallel over output rows, race-free).
    parallel_for(0, out.rows(), Schedule::kStatic, [&](Size i) {
        Value* dst = out.row(i);
        for (const auto& local : privates)
            simd::vadd_inplace(isa, dst, local.row(i), rank);
    });
}

void
mttkrp_coo_seq(const CooTensor& x, const FactorList& factors, Size mode,
               DenseMatrix& out)
{
    const Size rank = check_factors(x.dims(), factors);
    PASTA_CHECK_MSG(mode < x.order(), "mode out of range");
    PASTA_CHECK_MSG(out.rows() == x.dim(mode) && out.cols() == rank,
                    "output matrix shape mismatch");
    out.fill(0);
    // Deliberately scalar: this is the reference the differential
    // oracles and the SIMD bit-compare tests measure against.
    std::vector<Value> acc(rank);
    for (Size p = 0; p < x.nnz(); ++p) {
        const Value xval = x.value(p);
        for (Size r = 0; r < rank; ++r)
            acc[r] = xval;
        for (Size m = 0; m < x.order(); ++m) {
            if (m == mode)
                continue;
            const Value* row = factors[m]->row(x.index(m, p));
            for (Size r = 0; r < rank; ++r)
                acc[r] *= row[r];
        }
        Value* out_row = out.row(x.index(mode, p));
        for (Size r = 0; r < rank; ++r)
            out_row[r] += acc[r];
    }
}

}  // namespace pasta
