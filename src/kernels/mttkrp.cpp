#include "kernels/mttkrp.hpp"

#include "common/error.hpp"

namespace pasta {

Size
check_factors(const std::vector<Index>& dims, const FactorList& factors)
{
    PASTA_CHECK_MSG(factors.size() == dims.size(),
                    "expected " << dims.size() << " factor matrices, got "
                                << factors.size());
    PASTA_CHECK_MSG(!factors.empty(), "no factor matrices");
    const Size rank = factors[0]->cols();
    PASTA_CHECK_MSG(rank > 0, "factor rank must be positive");
    for (Size m = 0; m < dims.size(); ++m) {
        PASTA_CHECK_MSG(factors[m] != nullptr, "null factor matrix");
        PASTA_CHECK_MSG(factors[m]->cols() == rank,
                        "factor rank mismatch on mode " << m);
        PASTA_CHECK_MSG(factors[m]->rows() == dims[m],
                        "factor rows " << factors[m]->rows()
                                       << " != dim " << dims[m]
                                       << " on mode " << m);
    }
    return rank;
}

namespace {

/// Stack budget for the per-non-zero accumulator row.  The paper uses
/// R = 16 as the low-rank default; 256 covers every rank the benches sweep.
constexpr Size kMaxStackRank = 256;

}  // namespace

void
mttkrp_coo(const CooTensor& x, const FactorList& factors, Size mode,
           DenseMatrix& out, Schedule schedule)
{
    const Size rank = check_factors(x.dims(), factors);
    PASTA_CHECK_MSG(mode < x.order(), "mode out of range");
    PASTA_CHECK_MSG(out.rows() == x.dim(mode) && out.cols() == rank,
                    "output matrix shape mismatch");
    PASTA_CHECK_MSG(rank <= kMaxStackRank,
                    "rank " << rank << " exceeds kernel limit "
                            << kMaxStackRank);
    out.fill(0);

    const Size order = x.order();
    const Value* xv = x.values().data();
    parallel_for(
        0, x.nnz(), schedule,
        [&](Size p) {
            Value acc[kMaxStackRank];
            const Value xval = xv[p];
#pragma omp simd
            for (Size r = 0; r < rank; ++r)
                acc[r] = xval;
            for (Size m = 0; m < order; ++m) {
                if (m == mode)
                    continue;
                const Value* row = factors[m]->row(x.index(m, p));
#pragma omp simd
                for (Size r = 0; r < rank; ++r)
                    acc[r] *= row[r];
            }
            Value* out_row = out.row(x.index(mode, p));
            for (Size r = 0; r < rank; ++r)
                atomic_add(out_row + r, acc[r]);
        },
        256);
}

void
mttkrp_hicoo(const HiCooTensor& x, const FactorList& factors, Size mode,
             DenseMatrix& out, Schedule schedule)
{
    const Size rank = check_factors(x.dims(), factors);
    PASTA_CHECK_MSG(mode < x.order(), "mode out of range");
    PASTA_CHECK_MSG(out.rows() == x.dim(mode) && out.cols() == rank,
                    "output matrix shape mismatch");
    PASTA_CHECK_MSG(rank <= kMaxStackRank,
                    "rank " << rank << " exceeds kernel limit "
                            << kMaxStackRank);
    PASTA_CHECK_MSG(x.order() <= 8, "HiCOO MTTKRP supports order <= 8");
    out.fill(0);

    const Size order = x.order();
    const unsigned bits = x.block_bits();
    const Value* xv = x.values().data();
    const auto& bptr = x.bptr();
    parallel_for(
        0, x.num_blocks(), schedule,
        [&](Size b) {
            // Per-block factor base rows (Algorithm 3, line 3): the block
            // index selects a B x R tile of each matrix, so the inner loop
            // decodes only 8-bit element offsets.
            const Value* base[8];
            Value* out_base =
                out.row(static_cast<Size>(x.block_index(mode, b)) << bits);
            for (Size m = 0; m < order; ++m)
                base[m] = factors[m]->row(
                    static_cast<Size>(x.block_index(m, b)) << bits);
            const Size rank_stride = out.cols();
            for (Size p = bptr[b]; p < bptr[b + 1]; ++p) {
                Value acc[kMaxStackRank];
                const Value xval = xv[p];
#pragma omp simd
                for (Size r = 0; r < rank; ++r)
                    acc[r] = xval;
                for (Size m = 0; m < order; ++m) {
                    if (m == mode)
                        continue;
                    const Value* row =
                        base[m] + static_cast<Size>(x.element_index(m, p)) *
                                      rank_stride;
#pragma omp simd
                    for (Size r = 0; r < rank; ++r)
                        acc[r] *= row[r];
                }
                Value* out_row =
                    out_base + static_cast<Size>(x.element_index(mode, p)) *
                                   rank_stride;
                for (Size r = 0; r < rank; ++r)
                    atomic_add(out_row + r, acc[r]);
            }
        },
        8);
}

void
mttkrp_coo_privatized(const CooTensor& x, const FactorList& factors,
                      Size mode, DenseMatrix& out)
{
    const Size rank = check_factors(x.dims(), factors);
    PASTA_CHECK_MSG(mode < x.order(), "mode out of range");
    PASTA_CHECK_MSG(out.rows() == x.dim(mode) && out.cols() == rank,
                    "output matrix shape mismatch");
    PASTA_CHECK_MSG(rank <= kMaxStackRank,
                    "rank " << rank << " exceeds kernel limit "
                            << kMaxStackRank);
    out.fill(0);

    const int threads = num_threads();
    const Size order = x.order();
    const Value* xv = x.values().data();
    // One private output copy per worker, merged after the sweep.
    std::vector<DenseMatrix> privates(
        threads, DenseMatrix(out.rows(), rank, 0));
    parallel_for_ranges(0, x.nnz(), [&](Size first, Size last) {
        // parallel_for_ranges hands each worker one contiguous chunk;
        // identify the chunk by its start to pick a private buffer.
        const Size chunk =
            first / (((x.nnz() + threads - 1) / threads) == 0
                         ? 1
                         : (x.nnz() + threads - 1) / threads);
        DenseMatrix& local =
            privates[std::min<Size>(chunk, privates.size() - 1)];
        for (Size p = first; p < last; ++p) {
            Value acc[kMaxStackRank];
            const Value xval = xv[p];
            for (Size r = 0; r < rank; ++r)
                acc[r] = xval;
            for (Size m = 0; m < order; ++m) {
                if (m == mode)
                    continue;
                const Value* row = factors[m]->row(x.index(m, p));
                for (Size r = 0; r < rank; ++r)
                    acc[r] *= row[r];
            }
            Value* out_row = local.row(x.index(mode, p));
            for (Size r = 0; r < rank; ++r)
                out_row[r] += acc[r];
        }
    });
    // Reduction (parallel over output rows, race-free).
    parallel_for(0, out.rows(), Schedule::kStatic, [&](Size i) {
        Value* dst = out.row(i);
        for (const auto& local : privates) {
            const Value* src = local.row(i);
            for (Size r = 0; r < rank; ++r)
                dst[r] += src[r];
        }
    });
}

void
mttkrp_coo_seq(const CooTensor& x, const FactorList& factors, Size mode,
               DenseMatrix& out)
{
    const Size rank = check_factors(x.dims(), factors);
    PASTA_CHECK_MSG(mode < x.order(), "mode out of range");
    PASTA_CHECK_MSG(out.rows() == x.dim(mode) && out.cols() == rank,
                    "output matrix shape mismatch");
    out.fill(0);
    std::vector<Value> acc(rank);
    for (Size p = 0; p < x.nnz(); ++p) {
        const Value xval = x.value(p);
        for (Size r = 0; r < rank; ++r)
            acc[r] = xval;
        for (Size m = 0; m < x.order(); ++m) {
            if (m == mode)
                continue;
            const Value* row = factors[m]->row(x.index(m, p));
            for (Size r = 0; r < rank; ++r)
                acc[r] *= row[r];
        }
        Value* out_row = out.row(x.index(mode, p));
        for (Size r = 0; r < rank; ++r)
            out_row[r] += acc[r];
    }
}

}  // namespace pasta
