/// \file
/// TTM over semi-sparse (sCOO) inputs.
///
/// A TTM output is semi-sparse (the contracted mode turns dense,
/// §III-B1); chaining TTMs — the Tucker use case the paper highlights —
/// therefore needs TTM *on* semi-sparse tensors, or every intermediate
/// must be expanded back to COO (inflating the non-zero count by the
/// stripe volume).  This kernel contracts a sparse mode of an sCOO
/// tensor directly: output stripes grow by a factor R and the contracted
/// mode joins the dense set, exactly the repeated-TTM pattern
/// Y = X x_{m1} U1 x_{m2} U2 ... of the Tucker decomposition.
#pragma once

#include "common/parallel.hpp"
#include "core/coo_tensor.hpp"
#include "core/dense.hpp"
#include "core/scoo_tensor.hpp"

namespace pasta {

/// Contracts sparse mode `mode` of the semi-sparse tensor `x` with
/// `u` in R^{I_mode x R}: returns a semi-sparse tensor whose dense modes
/// are x's dense modes plus `mode` (with extent R), and whose sparse
/// coordinates are x's mode-`mode` fibers.  Throws when `mode` is dense
/// in `x` or when it is x's only sparse mode (the result would have no
/// sparse part; expand to dense yourself in that case).
ScooTensor ttm_scoo(const ScooTensor& x, const DenseMatrix& u, Size mode,
                    Schedule schedule = Schedule::kDynamic);

/// Fused endgame of a TTM chain: contracts BOTH sparse modes of a
/// two-sparse-mode sCOO tensor in one sweep, accumulating straight into
/// a (small, fully dense) core-shaped buffer and emitting the final COO
/// result — no intermediate sCOO stripe materialization and no
/// to_coo()/re-sort round trip between the two contractions.  `mode_a`/
/// `mode_b` (either order) must be exactly the tensor's sparse modes.
CooTensor ttm_scoo_fused2(const ScooTensor& x, const DenseMatrix& ua,
                          Size mode_a, const DenseMatrix& ub, Size mode_b,
                          Schedule schedule = Schedule::kDynamic);

}  // namespace pasta
