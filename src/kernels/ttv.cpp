#include "kernels/ttv.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/convert.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "simd/microkernels.hpp"

namespace pasta {

CooTtvPlan
ttv_plan_coo(const CooTensor& x, Size mode)
{
    PASTA_CHECK_MSG(mode < x.order(), "mode " << mode << " out of range");
    PASTA_CHECK_MSG(x.order() >= 2, "TTV needs an order >= 2 tensor");

    PASTA_SPAN("plan.ttv_coo");
    CooTtvPlan plan;
    plan.mode = mode;
    plan.sorted = x;
    plan.sorted.sort_fibers_last(mode);
    plan.fibers = compute_fibers(plan.sorted, mode);

    std::vector<Index> out_dims;
    std::vector<const Index*> src;
    for (Size m = 0; m < x.order(); ++m) {
        if (m != mode) {
            out_dims.push_back(x.dim(m));
            src.push_back(plan.sorted.mode_indices(m).data());
        }
    }
    // Bulk pattern materialization: one slot per fiber, filled in
    // parallel from the fiber heads — no per-element append.
    const Size num_fibers = plan.fibers.num_fibers();
    plan.out_pattern = CooTensor(std::move(out_dims));
    CooBulkFill out = plan.out_pattern.bulk_fill(num_fibers);
    const auto& fptr = plan.fibers.fptr;
    parallel_for_ranges(0, num_fibers, [&](Size first, Size last) {
        for (Size f = first; f < last; ++f) {
            const Size head = fptr[f];
            for (Size s = 0; s < src.size(); ++s)
                out.modes[s][f] = src[s][head];
            out.values[f] = 0;
        }
    });
    return plan;
}

void
ttv_exec_coo(const CooTtvPlan& plan, const DenseVector& v, CooTensor& out,
             Schedule schedule)
{
    PASTA_CHECK_MSG(v.size() == plan.sorted.dim(plan.mode),
                    "vector length " << v.size() << " != mode extent "
                                     << plan.sorted.dim(plan.mode));
    PASTA_CHECK_MSG(out.nnz() == plan.fibers.num_fibers(),
                    "output nnz mismatch");
    if (obs::counters_enabled()) {
        const Size m = plan.sorted.nnz();
        const Size mf = plan.fibers.num_fibers();
        obs::counter("ttv.flops").add(2 * m);
        obs::counter("ttv.bytes").add(12 * m + 12 * mf);
    }
    const Value* xv = plan.sorted.values().data();
    const Index* kind = plan.sorted.mode_indices(plan.mode).data();
    const Value* vv = v.data();
    Value* yv = out.values().data();
    const auto& fptr = plan.fibers.fptr;
    const simd::Isa isa = simd::note_kernel();
    const Size pf = simd::prefetch_distance();
    obs::Counter* prefetches = obs::counters_enabled()
                                   ? &obs::counter("simd.prefetch")
                                   : nullptr;
    parallel_for(
        0, plan.fibers.num_fibers(), schedule,
        [&](Size f) {
            const Size first = fptr[f];
            const Size last = fptr[f + 1];
            // Hint the gathered vector entries at the fiber head before
            // the dot dives in; the rest of the fiber rides the gather.
            if (pf != 0) {
                const Size lim = std::min(first + pf, last);
                for (Size p = first; p < lim; ++p)
                    simd::prefetch_read(vv + kind[p]);
                if (prefetches)
                    prefetches->add(lim - first);
            }
            yv[f] = simd::vdot_gather(isa, xv + first, kind + first, vv,
                                      last - first);
        },
        64);
}

CooTensor
ttv_coo(const CooTensor& x, const DenseVector& v, Size mode)
{
    CooTtvPlan plan = ttv_plan_coo(x, mode);
    CooTensor out = plan.out_pattern;
    ttv_exec_coo(plan, v, out);
    return out;
}

HicooTtvPlan
ttv_plan_hicoo(const CooTensor& x, Size mode, unsigned block_bits)
{
    PASTA_CHECK_MSG(mode < x.order(), "mode " << mode << " out of range");
    PASTA_CHECK_MSG(x.order() >= 2, "TTV needs an order >= 2 tensor");

    PASTA_SPAN("plan.ttv_hicoo");
    HicooTtvPlan plan;
    plan.mode = mode;
    std::vector<bool> compressed(x.order(), true);
    compressed[mode] = false;
    plan.input = coo_to_ghicoo(x, compressed, block_bits);
    const GHiCooTensor& g = plan.input;

    // Fiber boundaries: a new fiber starts at each block boundary and
    // whenever any compressed element coordinate changes.
    plan.fptr.clear();
    std::vector<Index> out_dims;
    for (Size m = 0; m < x.order(); ++m)
        if (m != mode)
            out_dims.push_back(x.dim(m));
    plan.out_pattern = HiCooTensor(out_dims, block_bits);

    std::vector<BIndex> out_block(out_dims.size());
    std::vector<EIndex> out_elem(out_dims.size());
    for (Size b = 0; b < g.num_blocks(); ++b) {
        // Output block coordinates mirror the input block's compressed
        // coordinates.
        Size s = 0;
        for (Size m : g.compressed_modes())
            out_block[s++] = g.block_index(m, b);
        plan.out_pattern.append_block(out_block.data());
        Size prev = kNoMode;
        for (Size p = g.bptr()[b]; p < g.bptr()[b + 1]; ++p) {
            bool boundary = (p == g.bptr()[b]);
            if (!boundary) {
                for (Size m : g.compressed_modes()) {
                    if (g.element_index(m, p) !=
                        g.element_index(m, prev)) {
                        boundary = true;
                        break;
                    }
                }
            }
            if (boundary) {
                plan.fptr.push_back(p);
                Size t = 0;
                for (Size m : g.compressed_modes())
                    out_elem[t++] = g.element_index(m, p);
                plan.out_pattern.append_entry(out_elem.data(), 0);
            }
            prev = p;
        }
    }
    plan.fptr.push_back(g.nnz());
    return plan;
}

void
ttv_exec_hicoo(const HicooTtvPlan& plan, const DenseVector& v,
               HiCooTensor& out, Schedule schedule)
{
    const GHiCooTensor& g = plan.input;
    PASTA_CHECK_MSG(v.size() == g.dim(plan.mode),
                    "vector length mismatch");
    const Size num_fibers = plan.fptr.size() - 1;
    PASTA_CHECK_MSG(out.nnz() == num_fibers, "output nnz mismatch");
    if (obs::counters_enabled()) {
        obs::counter("ttv.flops").add(2 * g.nnz());
        obs::counter("ttv.bytes").add(12 * g.nnz() + 12 * num_fibers);
    }
    const Value* xv = g.values().data();
    const Index* kind = g.raw_indices(plan.mode).data();
    const Value* vv = v.data();
    Value* yv = out.values().data();
    const auto& fptr = plan.fptr;
    const simd::Isa isa = simd::note_kernel();
    const Size pf = simd::prefetch_distance();
    obs::Counter* prefetches = obs::counters_enabled()
                                   ? &obs::counter("simd.prefetch")
                                   : nullptr;
    parallel_for(
        0, num_fibers, schedule,
        [&](Size f) {
            const Size first = fptr[f];
            const Size last = fptr[f + 1];
            if (pf != 0) {
                const Size lim = std::min(first + pf, last);
                for (Size p = first; p < lim; ++p)
                    simd::prefetch_read(vv + kind[p]);
                if (prefetches)
                    prefetches->add(lim - first);
            }
            yv[f] = simd::vdot_gather(isa, xv + first, kind + first, vv,
                                      last - first);
        },
        64);
}

HiCooTensor
ttv_hicoo(const CooTensor& x, const DenseVector& v, Size mode,
          unsigned block_bits)
{
    HicooTtvPlan plan = ttv_plan_hicoo(x, mode, block_bits);
    HiCooTensor out = plan.out_pattern;
    ttv_exec_hicoo(plan, v, out);
    return out;
}

}  // namespace pasta
