/// \file
/// F-COO TTV kernels: non-zero-parallel with segmented accumulation
/// across the start flags.
///
/// Compared to the suite's fiber-per-thread COO-TTV (Algorithm 2), the
/// F-COO mapping assigns non-zeros, not fibers, to threads — perfect load
/// balance under fiber skew, paid for with cross-thread combination at
/// fiber boundaries (atomics on the simulated GPU, carry fix-up on CPU).
#pragma once

#include "core/coo_tensor.hpp"
#include "core/dense.hpp"
#include "core/fcoo_tensor.hpp"
#include "gpusim/timing_model.hpp"

namespace pasta {

/// F-COO-TTV-OMP: chunk-parallel segmented sum over the flag stream.
/// Returns the contracted tensor (pattern = f.out_pattern()).
CooTensor ttv_fcoo(const FcooTensor& f, const DenseVector& v);

namespace gpusim {

/// F-COO-TTV-GPU: one thread per non-zero, atomicAdd into the owning
/// fiber's output slot.  The returned profile has *uniform* per-block
/// bytes (the format's selling point) and M atomics (its price).
LaunchProfile ttv_gpu_fcoo(const FcooTensor& f, const DenseVector& v,
                           CooTensor& out);

}  // namespace gpusim
}  // namespace pasta
