#include "kernels/ttm_scoo.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "obs/counters.hpp"
#include "simd/microkernels.hpp"

namespace pasta {

ScooTensor
ttm_scoo(const ScooTensor& x, const DenseMatrix& u, Size mode,
         Schedule schedule)
{
    PASTA_CHECK_MSG(mode < x.order(), "mode out of range");
    const auto& sparse = x.sparse_modes();
    const auto slot_it = std::find(sparse.begin(), sparse.end(), mode);
    PASTA_CHECK_MSG(slot_it != sparse.end(),
                    "mode " << mode << " is dense in this sCOO tensor");
    PASTA_CHECK_MSG(sparse.size() >= 2,
                    "contracting the last sparse mode would leave no "
                    "sparse part");
    PASTA_CHECK_MSG(u.rows() == x.dim(mode),
                    "matrix rows " << u.rows() << " != mode extent "
                                   << x.dim(mode));
    const Size rank = u.cols();
    const Size slot = static_cast<Size>(slot_it - sparse.begin());

    // Output shape: mode extent becomes R and joins the dense set.
    std::vector<Index> out_dims = x.dims();
    out_dims[mode] = static_cast<Index>(rank);
    std::vector<Size> out_dense = x.dense_modes();
    out_dense.insert(
        std::lower_bound(out_dense.begin(), out_dense.end(), mode), mode);
    ScooTensor out(out_dims, out_dense);

    // Stripe offset mapping: output dense modes are input dense modes
    // with `mode` inserted; in the row-major (ascending-mode) stripe
    // layout, the input offset o splits at `mode`'s insertion point into
    // prefix = o / suffix_vol and suffix = o % suffix_vol, and
    //   out_off = (prefix * R + r) * suffix_vol + suffix.
    Size suffix_vol = 1;
    for (Size dm : x.dense_modes())
        if (dm > mode)
            suffix_vol *= x.dim(dm);
    const Size in_vol = x.stripe_volume();

    // Group sparse coordinates into mode-`mode` fibers: sort a
    // permutation by the other sparse coordinates (then by mode).
    const Size count = x.num_sparse();
    std::vector<Size> perm(count);
    std::iota(perm.begin(), perm.end(), 0);
    std::sort(perm.begin(), perm.end(), [&](Size a, Size b) {
        for (Size s = 0; s < sparse.size(); ++s) {
            if (s == slot)
                continue;
            if (x.sparse_index(s, a) != x.sparse_index(s, b))
                return x.sparse_index(s, a) < x.sparse_index(s, b);
        }
        return x.sparse_index(slot, a) < x.sparse_index(slot, b);
    });

    // Fiber boundaries over the permuted stream + output stripes.
    std::vector<Size> fptr;
    std::vector<Index> out_coords(sparse.size() - 1);
    for (Size i = 0; i < count; ++i) {
        bool boundary = (i == 0);
        if (!boundary) {
            for (Size s = 0; s < sparse.size(); ++s) {
                if (s == slot)
                    continue;
                if (x.sparse_index(s, perm[i]) !=
                    x.sparse_index(s, perm[i - 1])) {
                    boundary = true;
                    break;
                }
            }
        }
        if (boundary) {
            fptr.push_back(i);
            Size t = 0;
            for (Size s = 0; s < sparse.size(); ++s)
                if (s != slot)
                    out_coords[t++] = x.sparse_index(s, perm[i]);
            out.append_stripe(out_coords.data());
        }
    }
    fptr.push_back(count);

    const simd::Isa isa = simd::note_kernel();
    const Size pf = simd::prefetch_distance();
    obs::Counter* prefetches = obs::counters_enabled()
                                   ? &obs::counter("simd.prefetch")
                                   : nullptr;
    const Size num_fibers = fptr.size() - 1;
    parallel_for(
        0, num_fibers, schedule,
        [&](Size f) {
            Value* yb = out.stripe(f);
            Size issued = 0;
            for (Size i = fptr[f]; i < fptr[f + 1]; ++i) {
                if (pf != 0 && i + pf < fptr[f + 1]) {
                    simd::prefetch_read(
                        u.row(x.sparse_index(slot, perm[i + pf])));
                    ++issued;
                }
                const Size p = perm[i];
                const Value* urow = u.row(x.sparse_index(slot, p));
                const Value* xs = x.stripe(p);
                if (suffix_vol == 1) {
                    // Contiguous rank stripes: one vaxpy per non-zero
                    // dense slot.
                    for (Size o = 0; o < in_vol; ++o) {
                        if (xs[o] == 0)
                            continue;
                        simd::vaxpy(isa, yb + o * rank, xs[o], urow,
                                    rank);
                    }
                    continue;
                }
                for (Size o = 0; o < in_vol; ++o) {
                    const Size prefix = o / suffix_vol;
                    const Size suffix = o % suffix_vol;
                    const Value xval = xs[o];
                    if (xval == 0)
                        continue;
                    Value* base =
                        yb + prefix * rank * suffix_vol + suffix;
                    for (Size r = 0; r < rank; ++r)
                        base[r * suffix_vol] += xval * urow[r];
                }
            }
            if (prefetches && issued)
                prefetches->add(issued);
        },
        16);
    return out;
}

CooTensor
ttm_scoo_fused2(const ScooTensor& x, const DenseMatrix& ua, Size mode_a,
                const DenseMatrix& ub, Size mode_b, Schedule schedule)
{
    PASTA_CHECK_MSG(mode_a < x.order() && mode_b < x.order(),
                    "mode out of range");
    PASTA_CHECK_MSG(mode_a != mode_b, "fused TTM modes must differ");
    const auto& sparse = x.sparse_modes();
    PASTA_CHECK_MSG(sparse.size() == 2,
                    "fused two-mode TTM needs exactly two sparse modes");
    // Normalize to ascending mode order (sparse_modes() is ascending).
    const DenseMatrix& u_lo = mode_a < mode_b ? ua : ub;
    const DenseMatrix& u_hi = mode_a < mode_b ? ub : ua;
    const Size lo = std::min(mode_a, mode_b);
    const Size hi = std::max(mode_a, mode_b);
    PASTA_CHECK_MSG(sparse[0] == lo && sparse[1] == hi,
                    "fused TTM modes must be exactly the sCOO sparse "
                    "modes");
    PASTA_CHECK_MSG(u_lo.rows() == x.dim(lo) && u_hi.rows() == x.dim(hi),
                    "fused TTM matrix rows mismatch");
    (void)schedule;

    const Size ra = u_lo.cols();
    const Size rb = u_hi.cols();
    const Size in_vol = x.stripe_volume();

    // Output: every mode dense.  Row-major over ascending modes, the
    // input stripe offset o splits around the two contracted slots into
    //   o = (p1 * vol2 + p2) * vol3 + p3
    // (vol2/vol3 = dense volume strictly between lo and hi / above hi)
    // and the output offset is
    //   ((((p1 * Ra + qa) * vol2 + p2) * Rb + qb) * vol3 + p3.
    Size vol2 = 1;
    Size vol3 = 1;
    for (Size dm : x.dense_modes()) {
        if (dm > hi)
            vol3 *= x.dim(dm);
        else if (dm > lo)
            vol2 *= x.dim(dm);
    }
    const Size out_vol = in_vol * ra * rb;
    std::vector<Index> out_dims = x.dims();
    out_dims[lo] = static_cast<Index>(ra);
    out_dims[hi] = static_cast<Index>(rb);

    if (obs::counters_enabled()) {
        // Both contractions run per stripe slot: 2 RaRb flops each.
        obs::counter("ttm.flops").add(2 * x.num_sparse() * in_vol * ra *
                                      rb);
        obs::counter("ttm.bytes").add(4 * x.num_sparse() * in_vol +
                                      4 * out_vol);
    }
    const simd::Isa isa = simd::note_kernel();
    const Size pf = simd::prefetch_distance();
    obs::Counter* prefetches = obs::counters_enabled()
                                   ? &obs::counter("simd.prefetch")
                                   : nullptr;
    const Index* ia = x.sparse_mode_indices(0).data();
    const Index* ib = x.sparse_mode_indices(1).data();

    // The dense accumulator is core-sized (every extent already
    // contracted to a rank), so per-worker privatization is cheap and
    // the sweep needs no atomics.
    const int threads = num_threads();
    std::vector<std::vector<Value>> privates(
        threads, std::vector<Value>(out_vol, 0));
    parallel_for_worker_ranges(
        0, x.num_sparse(), [&](int worker, Size first, Size last) {
            Value* D = privates[worker].data();
            Size issued = 0;
            for (Size p = first; p < last; ++p) {
                if (pf != 0 && p + pf < last) {
                    simd::prefetch_read(u_lo.row(ia[p + pf]));
                    simd::prefetch_read(u_hi.row(ib[p + pf]));
                    issued += 2;
                }
                const Value* arow = u_lo.row(ia[p]);
                const Value* brow = u_hi.row(ib[p]);
                const Value* xs = x.stripe(p);
                for (Size o = 0; o < in_vol; ++o) {
                    const Value xval = xs[o];
                    if (xval == 0)
                        continue;
                    const Size p3 = o % vol3;
                    const Size p2 = (o / vol3) % vol2;
                    const Size p1 = o / (vol2 * vol3);
                    for (Size qa = 0; qa < ra; ++qa) {
                        const Value coeff = xval * arow[qa];
                        Value* base =
                            D +
                            ((((p1 * ra + qa) * vol2 + p2) * rb) * vol3 +
                             p3);
                        if (vol3 == 1) {
                            simd::vaxpy(isa, base, coeff, brow, rb);
                        } else {
                            for (Size qb = 0; qb < rb; ++qb)
                                base[qb * vol3] += coeff * brow[qb];
                        }
                    }
                }
            }
            if (prefetches && issued)
                prefetches->add(issued);
        });
    // Reduce worker copies into the first.
    Value* D = privates[0].data();
    for (int w = 1; w < threads; ++w)
        simd::vadd_inplace(isa, D, privates[w].data(), out_vol);

    // Emit as COO: row-major offset order over ascending modes IS
    // lexicographic order, zeros skipped (same contract as
    // ScooTensor::to_coo, no sort needed).
    CooTensor out(out_dims);
    Coordinate c(x.order());
    for (Size off = 0; off < out_vol; ++off) {
        if (D[off] == 0)
            continue;
        Size rem = off;
        for (Size m = x.order(); m-- > 0;) {
            const Index extent = out_dims[m];
            c[m] = static_cast<Index>(rem % extent);
            rem /= extent;
        }
        out.append(c, D[off]);
    }
    return out;
}

}  // namespace pasta
