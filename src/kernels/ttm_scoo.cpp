#include "kernels/ttm_scoo.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace pasta {

ScooTensor
ttm_scoo(const ScooTensor& x, const DenseMatrix& u, Size mode,
         Schedule schedule)
{
    PASTA_CHECK_MSG(mode < x.order(), "mode out of range");
    const auto& sparse = x.sparse_modes();
    const auto slot_it = std::find(sparse.begin(), sparse.end(), mode);
    PASTA_CHECK_MSG(slot_it != sparse.end(),
                    "mode " << mode << " is dense in this sCOO tensor");
    PASTA_CHECK_MSG(sparse.size() >= 2,
                    "contracting the last sparse mode would leave no "
                    "sparse part");
    PASTA_CHECK_MSG(u.rows() == x.dim(mode),
                    "matrix rows " << u.rows() << " != mode extent "
                                   << x.dim(mode));
    const Size rank = u.cols();
    const Size slot = static_cast<Size>(slot_it - sparse.begin());

    // Output shape: mode extent becomes R and joins the dense set.
    std::vector<Index> out_dims = x.dims();
    out_dims[mode] = static_cast<Index>(rank);
    std::vector<Size> out_dense = x.dense_modes();
    out_dense.insert(
        std::lower_bound(out_dense.begin(), out_dense.end(), mode), mode);
    ScooTensor out(out_dims, out_dense);

    // Stripe offset mapping: output dense modes are input dense modes
    // with `mode` inserted; in the row-major (ascending-mode) stripe
    // layout, the input offset o splits at `mode`'s insertion point into
    // prefix = o / suffix_vol and suffix = o % suffix_vol, and
    //   out_off = (prefix * R + r) * suffix_vol + suffix.
    Size suffix_vol = 1;
    for (Size dm : x.dense_modes())
        if (dm > mode)
            suffix_vol *= x.dim(dm);
    const Size in_vol = x.stripe_volume();

    // Group sparse coordinates into mode-`mode` fibers: sort a
    // permutation by the other sparse coordinates (then by mode).
    const Size count = x.num_sparse();
    std::vector<Size> perm(count);
    std::iota(perm.begin(), perm.end(), 0);
    std::sort(perm.begin(), perm.end(), [&](Size a, Size b) {
        for (Size s = 0; s < sparse.size(); ++s) {
            if (s == slot)
                continue;
            if (x.sparse_index(s, a) != x.sparse_index(s, b))
                return x.sparse_index(s, a) < x.sparse_index(s, b);
        }
        return x.sparse_index(slot, a) < x.sparse_index(slot, b);
    });

    // Fiber boundaries over the permuted stream + output stripes.
    std::vector<Size> fptr;
    std::vector<Index> out_coords(sparse.size() - 1);
    for (Size i = 0; i < count; ++i) {
        bool boundary = (i == 0);
        if (!boundary) {
            for (Size s = 0; s < sparse.size(); ++s) {
                if (s == slot)
                    continue;
                if (x.sparse_index(s, perm[i]) !=
                    x.sparse_index(s, perm[i - 1])) {
                    boundary = true;
                    break;
                }
            }
        }
        if (boundary) {
            fptr.push_back(i);
            Size t = 0;
            for (Size s = 0; s < sparse.size(); ++s)
                if (s != slot)
                    out_coords[t++] = x.sparse_index(s, perm[i]);
            out.append_stripe(out_coords.data());
        }
    }
    fptr.push_back(count);

    const Size num_fibers = fptr.size() - 1;
    parallel_for(
        0, num_fibers, schedule,
        [&](Size f) {
            Value* yb = out.stripe(f);
            for (Size i = fptr[f]; i < fptr[f + 1]; ++i) {
                const Size p = perm[i];
                const Value* urow = u.row(x.sparse_index(slot, p));
                const Value* xs = x.stripe(p);
                for (Size o = 0; o < in_vol; ++o) {
                    const Size prefix = o / suffix_vol;
                    const Size suffix = o % suffix_vol;
                    const Value xval = xs[o];
                    if (xval == 0)
                        continue;
                    Value* base =
                        yb + prefix * rank * suffix_vol + suffix;
#pragma omp simd
                    for (Size r = 0; r < rank; ++r)
                        base[r * suffix_vol] += xval * urow[r];
                }
            }
        },
        16);
    return out;
}

}  // namespace pasta
