#include "kernels/csf_kernels.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "obs/counters.hpp"
#include "simd/microkernels.hpp"

namespace pasta {

namespace {

/// Recursive SPLATT-style accumulation for one subtree.
///
/// Computes, for the subtree rooted at node `id` of level `level`, the
/// R-vector
///   acc(r) = sum over leaves under id of value * prod over levels
///            below `level` of U^(mode at that level)(idx, r)
/// i.e. the Khatri-Rao partial product of everything strictly below
/// this node.
void
accumulate_subtree(const CsfTensor& x, const FactorList& factors,
                   Size level, Size id, Value* acc, Size rank,
                   Value* scratch, simd::Isa isa, Size pf,
                   Size& prefetched)
{
    const Size n = x.order();
    if (level + 1 == n) {
        // Leaf: value times the leaf mode's factor row.
        const Value* row =
            factors[x.mode_order()[level]]->row(x.level(level).idx[id]);
        simd::vscale(isa, acc, row, x.values()[id], rank);
        return;
    }
    simd::vfill(isa, acc, 0, rank);
    Value* child_acc = scratch + level * rank;
    const Size child_first = x.level(level).ptr[id];
    const Size child_last = x.level(level).ptr[id + 1];
    const CsfLevel& child_level = x.level(level + 1);
    const DenseMatrix* child_factor =
        level + 2 < n ? factors[x.mode_order()[level + 1]] : nullptr;
    for (Size child = child_first; child < child_last; ++child) {
        // Hint the sibling's gathered factor row while this subtree
        // recurses; the idx stream itself is sequential.
        if (child_factor != nullptr && pf != 0 && child + pf < child_last) {
            simd::prefetch_read(
                child_factor->row(child_level.idx[child + pf]));
            ++prefetched;
        }
        accumulate_subtree(x, factors, level + 1, child, child_acc, rank,
                           scratch, isa, pf, prefetched);
        if (child_factor == nullptr) {
            // Child is a leaf: child_acc already includes its factor row.
            simd::vadd_inplace(isa, acc, child_acc, rank);
        } else {
            simd::vfma_rows(isa, acc, child_acc,
                            child_factor->row(child_level.idx[child]),
                            rank);
        }
    }
}

/// Per-worker accumulation scratch, reused across every fiber a worker
/// processes: one allocation per thread for the whole kernel instead of
/// one per tree root inside the parallel body.
Value*
csf_worker_scratch(Size needed)
{
    static thread_local std::vector<Value> buf;
    if (buf.size() < needed)
        buf.resize(needed);
    return buf.data();
}

}  // namespace

void
mttkrp_csf(const CsfTensor& x, const FactorList& factors, Size mode,
           DenseMatrix& out, Schedule schedule)
{
    const Size rank = check_factors(x.dims(), factors);
    PASTA_CHECK_MSG(mode < x.order(), "mode out of range");
    PASTA_CHECK_MSG(!x.mode_order().empty() && x.mode_order()[0] == mode,
                    "CSF MTTKRP requires a tree rooted at the output "
                    "mode; this tree is rooted at mode "
                        << (x.mode_order().empty() ? kNoMode
                                                   : x.mode_order()[0]));
    PASTA_CHECK_MSG(out.rows() == x.dim(mode) && out.cols() == rank,
                    "output matrix shape mismatch");
    out.fill(0);
    if (x.nnz() == 0)
        return;

    const Size n = x.order();
    const simd::Isa isa = simd::note_kernel();
    const Size pf = simd::prefetch_distance();
    obs::Counter* prefetches = obs::counters_enabled()
                                   ? &obs::counter("simd.prefetch")
                                   : nullptr;
    parallel_for(
        0, x.level_size(0), schedule,
        [&](Size root) {
            // Each root owns one distinct output row: race-free.
            // Layout of the worker scratch: n*rank child accumulators
            // followed by the rank-wide root accumulator.
            Value* scratch = csf_worker_scratch((n + 1) * rank);
            Value* acc = scratch + n * rank;
            if (n == 1) {
                // Degenerate order-1 MTTKRP: out(i, r) += value.
                Value* out_row = out.row(x.level(0).idx[root]);
                for (Size r = 0; r < rank; ++r)
                    out_row[r] += x.values()[root];
                return;
            }
            Size issued = 0;
            accumulate_subtree(x, factors, 0, root, acc, rank, scratch,
                               isa, pf, issued);
            if (prefetches && issued)
                prefetches->add(issued);
            // acc holds sum over children c of (subtree(c) * U(idx_c)):
            // accumulate_subtree at level 0 already applied the level-1
            // factor rows, so acc is the full Khatri-Rao partial.
            Value* out_row = out.row(x.level(0).idx[root]);
            simd::vadd_inplace(isa, out_row, acc, rank);
        },
        8);
}

CooTensor
ttv_csf(const CsfTensor& x, const DenseVector& v, Size mode,
        Schedule schedule)
{
    const Size n = x.order();
    PASTA_CHECK_MSG(n >= 2, "TTV needs an order >= 2 tensor");
    PASTA_CHECK_MSG(mode < n, "mode out of range");
    PASTA_CHECK_MSG(x.mode_order().back() == mode,
                    "CSF TTV requires a tree with the product mode at "
                    "the leaves");
    PASTA_CHECK_MSG(v.size() == x.dim(mode), "vector length mismatch");

    // Output dims: original dims minus the contracted mode.
    std::vector<Index> out_dims;
    for (Size m = 0; m < n; ++m)
        if (m != mode)
            out_dims.push_back(x.dim(m));
    CooTensor out(out_dims);
    if (x.nnz() == 0)
        return out;

    // One output non-zero per level-(n-2) node.  Reconstruct each node's
    // ancestor path to recover the full output coordinate.
    const Size fibers = x.level_size(n - 2);
    out.resize_nnz(fibers);

    // Parent pointers per level for coordinate reconstruction.
    std::vector<std::vector<Size>> parent(n);
    for (Size l = 0; l + 1 < n; ++l) {
        parent[l + 1].resize(x.level_size(l + 1));
        for (Size id = 0; id < x.level_size(l); ++id)
            for (Size c = x.level(l).ptr[id]; c < x.level(l).ptr[id + 1];
                 ++c)
                parent[l + 1][c] = id;
    }

    // Output mode slot for each retained level.
    std::vector<Size> out_slot(n, kNoMode);
    {
        // The output coordinate order follows the original mode
        // numbering with `mode` removed.
        std::vector<Size> remaining;
        for (Size m = 0; m < n; ++m)
            if (m != mode)
                remaining.push_back(m);
        for (Size l = 0; l + 1 < n; ++l) {
            const Size orig_mode = x.mode_order()[l];
            for (Size s = 0; s < remaining.size(); ++s)
                if (remaining[s] == orig_mode)
                    out_slot[l] = s;
        }
    }

    const Value* xv = x.values().data();
    const Index* leaf_idx = x.level(n - 1).idx.data();
    const Value* vv = v.data();
    const simd::Isa isa = simd::note_kernel();
    const Size pf = simd::prefetch_distance();
    obs::Counter* prefetches = obs::counters_enabled()
                                   ? &obs::counter("simd.prefetch")
                                   : nullptr;
    parallel_for(
        0, fibers, schedule,
        [&](Size f) {
            const Size first = x.level(n - 2).ptr[f];
            const Size last = x.level(n - 2).ptr[f + 1];
            if (pf != 0) {
                const Size lim = std::min(first + pf, last);
                for (Size p = first; p < lim; ++p)
                    simd::prefetch_read(vv + leaf_idx[p]);
                if (prefetches)
                    prefetches->add(lim - first);
            }
            out.values()[f] = simd::vdot_gather(
                isa, xv + first, leaf_idx + first, vv, last - first);
            // Walk ancestors to fill the output coordinate.
            Size id = f;
            for (Size l = n - 1; l-- > 0;) {
                out.mode_indices(out_slot[l])[f] = x.level(l).idx[id];
                if (l > 0)
                    id = parent[l][id];
            }
        },
        64);
    out.sort_lexicographic();
    return out;
}

}  // namespace pasta
