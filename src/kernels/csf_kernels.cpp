#include "kernels/csf_kernels.hpp"

#include <vector>

#include "common/error.hpp"

namespace pasta {

namespace {

/// Recursive SPLATT-style accumulation for one subtree.
///
/// Computes, for the subtree rooted at node `id` of level `level`, the
/// R-vector
///   acc(r) = sum over leaves under id of value * prod over levels
///            below `level` of U^(mode at that level)(idx, r)
/// i.e. the Khatri-Rao partial product of everything strictly below
/// this node.
void
accumulate_subtree(const CsfTensor& x, const FactorList& factors,
                   Size level, Size id, Value* acc, Size rank,
                   Value* scratch)
{
    const Size n = x.order();
    if (level + 1 == n) {
        // Leaf: value times the leaf mode's factor row.
        const Value* row =
            factors[x.mode_order()[level]]->row(x.level(level).idx[id]);
        const Value v = x.values()[id];
        for (Size r = 0; r < rank; ++r)
            acc[r] = v * row[r];
        return;
    }
    for (Size r = 0; r < rank; ++r)
        acc[r] = 0;
    Value* child_acc = scratch + level * rank;
    for (Size child = x.level(level).ptr[id];
         child < x.level(level).ptr[id + 1]; ++child) {
        accumulate_subtree(x, factors, level + 1, child, child_acc, rank,
                           scratch);
        if (level + 2 == n) {
            // Child is a leaf: child_acc already includes its factor row.
            for (Size r = 0; r < rank; ++r)
                acc[r] += child_acc[r];
        } else {
            const Value* row = factors[x.mode_order()[level + 1]]->row(
                x.level(level + 1).idx[child]);
            for (Size r = 0; r < rank; ++r)
                acc[r] += child_acc[r] * row[r];
        }
    }
}

/// Per-worker accumulation scratch, reused across every fiber a worker
/// processes: one allocation per thread for the whole kernel instead of
/// one per tree root inside the parallel body.
Value*
csf_worker_scratch(Size needed)
{
    static thread_local std::vector<Value> buf;
    if (buf.size() < needed)
        buf.resize(needed);
    return buf.data();
}

}  // namespace

void
mttkrp_csf(const CsfTensor& x, const FactorList& factors, Size mode,
           DenseMatrix& out, Schedule schedule)
{
    const Size rank = check_factors(x.dims(), factors);
    PASTA_CHECK_MSG(mode < x.order(), "mode out of range");
    PASTA_CHECK_MSG(!x.mode_order().empty() && x.mode_order()[0] == mode,
                    "CSF MTTKRP requires a tree rooted at the output "
                    "mode; this tree is rooted at mode "
                        << (x.mode_order().empty() ? kNoMode
                                                   : x.mode_order()[0]));
    PASTA_CHECK_MSG(out.rows() == x.dim(mode) && out.cols() == rank,
                    "output matrix shape mismatch");
    out.fill(0);
    if (x.nnz() == 0)
        return;

    const Size n = x.order();
    parallel_for(
        0, x.level_size(0), schedule,
        [&](Size root) {
            // Each root owns one distinct output row: race-free.
            // Layout of the worker scratch: n*rank child accumulators
            // followed by the rank-wide root accumulator.
            Value* scratch = csf_worker_scratch((n + 1) * rank);
            Value* acc = scratch + n * rank;
            if (n == 1) {
                // Degenerate order-1 MTTKRP: out(i, r) += value.
                Value* out_row = out.row(x.level(0).idx[root]);
                for (Size r = 0; r < rank; ++r)
                    out_row[r] += x.values()[root];
                return;
            }
            accumulate_subtree(x, factors, 0, root, acc, rank, scratch);
            // acc holds sum over children c of (subtree(c) * U(idx_c)):
            // accumulate_subtree at level 0 already applied the level-1
            // factor rows, so acc is the full Khatri-Rao partial.
            Value* out_row = out.row(x.level(0).idx[root]);
            for (Size r = 0; r < rank; ++r)
                out_row[r] += acc[r];
        },
        8);
}

CooTensor
ttv_csf(const CsfTensor& x, const DenseVector& v, Size mode,
        Schedule schedule)
{
    const Size n = x.order();
    PASTA_CHECK_MSG(n >= 2, "TTV needs an order >= 2 tensor");
    PASTA_CHECK_MSG(mode < n, "mode out of range");
    PASTA_CHECK_MSG(x.mode_order().back() == mode,
                    "CSF TTV requires a tree with the product mode at "
                    "the leaves");
    PASTA_CHECK_MSG(v.size() == x.dim(mode), "vector length mismatch");

    // Output dims: original dims minus the contracted mode.
    std::vector<Index> out_dims;
    for (Size m = 0; m < n; ++m)
        if (m != mode)
            out_dims.push_back(x.dim(m));
    CooTensor out(out_dims);
    if (x.nnz() == 0)
        return out;

    // One output non-zero per level-(n-2) node.  Reconstruct each node's
    // ancestor path to recover the full output coordinate.
    const Size fibers = x.level_size(n - 2);
    out.resize_nnz(fibers);

    // Parent pointers per level for coordinate reconstruction.
    std::vector<std::vector<Size>> parent(n);
    for (Size l = 0; l + 1 < n; ++l) {
        parent[l + 1].resize(x.level_size(l + 1));
        for (Size id = 0; id < x.level_size(l); ++id)
            for (Size c = x.level(l).ptr[id]; c < x.level(l).ptr[id + 1];
                 ++c)
                parent[l + 1][c] = id;
    }

    // Output mode slot for each retained level.
    std::vector<Size> out_slot(n, kNoMode);
    {
        // The output coordinate order follows the original mode
        // numbering with `mode` removed.
        std::vector<Size> remaining;
        for (Size m = 0; m < n; ++m)
            if (m != mode)
                remaining.push_back(m);
        for (Size l = 0; l + 1 < n; ++l) {
            const Size orig_mode = x.mode_order()[l];
            for (Size s = 0; s < remaining.size(); ++s)
                if (remaining[s] == orig_mode)
                    out_slot[l] = s;
        }
    }

    parallel_for(
        0, fibers, schedule,
        [&](Size f) {
            Value acc = 0;
            for (Size leaf = x.level(n - 2).ptr[f];
                 leaf < x.level(n - 2).ptr[f + 1]; ++leaf)
                acc += x.values()[leaf] * v[x.level(n - 1).idx[leaf]];
            out.values()[f] = acc;
            // Walk ancestors to fill the output coordinate.
            Size id = f;
            for (Size l = n - 1; l-- > 0;) {
                out.mode_indices(out_slot[l])[f] = x.level(l).idx[id];
                if (l > 0)
                    id = parent[l][id];
            }
        },
        64);
    out.sort_lexicographic();
    return out;
}

}  // namespace pasta
