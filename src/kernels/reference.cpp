#include "kernels/reference.hpp"

#include "common/error.hpp"

namespace pasta {

const char*
ew_op_name(EwOp op)
{
    switch (op) {
      case EwOp::kAdd: return "add";
      case EwOp::kSub: return "sub";
      case EwOp::kMul: return "mul";
      case EwOp::kDiv: return "div";
    }
    return "?";
}

const char*
ts_op_name(TsOp op)
{
    return op == TsOp::kAdd ? "tsa" : "tsm";
}

DenseTensor::DenseTensor(std::vector<Index> dims) : dims_(std::move(dims))
{
    PASTA_CHECK_MSG(!dims_.empty(), "tensor order must be at least 1");
    Size vol = 1;
    for (Index d : dims_) {
        PASTA_CHECK_MSG(d > 0, "zero dimension");
        vol *= d;
    }
    PASTA_CHECK_MSG(vol <= (Size{1} << 28),
                    "dense reference tensor too large (" << vol << ")");
    data_.assign(vol, 0.0);
}

Size
DenseTensor::offset(const Coordinate& c) const
{
    PASTA_ASSERT(c.size() == order());
    Size off = 0;
    for (Size m = 0; m < order(); ++m)
        off = off * dims_[m] + c[m];
    return off;
}

Coordinate
DenseTensor::coordinate(Size off) const
{
    Coordinate c(order());
    for (Size m = order(); m-- > 0;) {
        c[m] = static_cast<Index>(off % dims_[m]);
        off /= dims_[m];
    }
    return c;
}

DenseTensor
DenseTensor::from_coo(const CooTensor& x)
{
    DenseTensor t(x.dims());
    for (Size p = 0; p < x.nnz(); ++p)
        t.at(x.coordinate(p)) += x.value(p);
    return t;
}

CooTensor
DenseTensor::to_coo() const
{
    CooTensor out(dims_);
    for (Size i = 0; i < volume(); ++i) {
        if (data_[i] != 0.0)
            out.append(coordinate(i), static_cast<Value>(data_[i]));
    }
    out.sort_lexicographic();
    return out;
}

DenseTensor
ref_tew(const DenseTensor& x, const DenseTensor& y, EwOp op)
{
    PASTA_CHECK_MSG(x.dims() == y.dims(), "ref_tew shape mismatch");
    DenseTensor z(x.dims());
    for (Size i = 0; i < x.volume(); ++i)
        z.flat(i) = apply_ew(op, static_cast<Value>(x.flat(i)),
                             static_cast<Value>(y.flat(i)));
    return z;
}

CooTensor
ref_ts(const CooTensor& x, TsOp op, Value s)
{
    CooTensor y = x;
    for (Size p = 0; p < y.nnz(); ++p)
        y.value(p) = apply_ts(op, x.value(p), s);
    return y;
}

DenseTensor
ref_ttv(const DenseTensor& x, const DenseVector& v, Size mode)
{
    PASTA_CHECK_MSG(mode < x.order(), "mode out of range");
    PASTA_CHECK_MSG(v.size() == x.dims()[mode], "vector length mismatch");
    std::vector<Index> out_dims;
    for (Size m = 0; m < x.order(); ++m)
        if (m != mode)
            out_dims.push_back(x.dims()[m]);
    if (out_dims.empty())
        out_dims.push_back(1);  // order-1 input contracts to a scalar
    DenseTensor y(out_dims);
    Coordinate c(x.order());
    for (Size i = 0; i < x.volume(); ++i) {
        c = x.coordinate(i);
        Coordinate oc;
        for (Size m = 0; m < x.order(); ++m)
            if (m != mode)
                oc.push_back(c[m]);
        if (oc.empty())
            oc.push_back(0);
        y.at(oc) += x.flat(i) * static_cast<double>(v[c[mode]]);
    }
    return y;
}

DenseTensor
ref_ttm(const DenseTensor& x, const DenseMatrix& u, Size mode)
{
    PASTA_CHECK_MSG(mode < x.order(), "mode out of range");
    PASTA_CHECK_MSG(u.rows() == x.dims()[mode], "matrix rows mismatch");
    std::vector<Index> out_dims = x.dims();
    out_dims[mode] = static_cast<Index>(u.cols());
    DenseTensor y(out_dims);
    for (Size i = 0; i < x.volume(); ++i) {
        if (x.flat(i) == 0.0)
            continue;
        Coordinate c = x.coordinate(i);
        const Index k = c[mode];
        for (Size r = 0; r < u.cols(); ++r) {
            c[mode] = static_cast<Index>(r);
            y.at(c) += x.flat(i) * static_cast<double>(u(k, r));
        }
    }
    return y;
}

DenseMatrix
ref_mttkrp(const DenseTensor& x,
           const std::vector<const DenseMatrix*>& factors, Size mode)
{
    PASTA_CHECK_MSG(mode < x.order(), "mode out of range");
    PASTA_CHECK_MSG(factors.size() == x.order(), "factor count mismatch");
    const Size rank = factors[0]->cols();
    for (Size m = 0; m < x.order(); ++m) {
        PASTA_CHECK_MSG(factors[m]->cols() == rank, "rank mismatch");
        PASTA_CHECK_MSG(factors[m]->rows() == x.dims()[m],
                        "factor rows mismatch on mode " << m);
    }
    DenseMatrix out(x.dims()[mode], rank, 0);
    std::vector<double> acc(rank);
    for (Size i = 0; i < x.volume(); ++i) {
        if (x.flat(i) == 0.0)
            continue;
        const Coordinate c = x.coordinate(i);
        for (Size r = 0; r < rank; ++r) {
            double prod = x.flat(i);
            for (Size m = 0; m < x.order(); ++m) {
                if (m == mode)
                    continue;
                prod *= static_cast<double>((*factors[m])(c[m], r));
            }
            acc[r] = prod;
        }
        for (Size r = 0; r < rank; ++r)
            out(c[mode], r) += static_cast<Value>(acc[r]);
    }
    return out;
}

}  // namespace pasta
