/// \file
/// Per-worker rank-R accumulator scratch with a checked heap fallback.
///
/// The per-non-zero inner loops keep a rank-length accumulator row.
/// Historically these were fixed `Value acc[kMaxStackRank]` arrays
/// indexed straight by `rank` — and the argument check that kept that
/// safe capped every kernel at R = 256.  RankScratch removes the cap:
/// ranks up to kMaxStackRank live in an embedded array (same codegen as
/// the raw buffer), larger ranks transparently fall back to one heap
/// allocation per scratch object.  Construct it once per worker range /
/// block, never per non-zero.
#pragma once

#include <memory>

#include "common/types.hpp"

namespace pasta {

/// Stack budget for a per-non-zero accumulator row.  The paper uses
/// R = 16 as the low-rank default; 256 covers every rank the benches
/// sweep without spilling to the heap.
constexpr Size kMaxStackRank = 256;

/// One rank-length Value buffer: embedded storage for
/// rank <= kMaxStackRank, heap-backed beyond that.
class RankScratch {
  public:
    explicit RankScratch(Size rank)
        : heap_(rank > kMaxStackRank ? new Value[rank] : nullptr)
    {
    }

    Value* data() { return heap_ ? heap_.get() : stack_; }

  private:
    std::unique_ptr<Value[]> heap_;
    Value stack_[kMaxStackRank];
};

}  // namespace pasta
