#include "kernels/contraction.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"

namespace pasta {

namespace {

/// Splits [0, order) into (contracted in given order, free ascending).
std::vector<Size>
free_modes(Size order, const std::vector<Size>& contracted)
{
    std::vector<bool> is_contracted(order, false);
    for (Size m : contracted) {
        PASTA_CHECK_MSG(m < order, "contraction mode out of range");
        PASTA_CHECK_MSG(!is_contracted[m],
                        "mode contracted twice: " << m);
        is_contracted[m] = true;
    }
    std::vector<Size> free;
    for (Size m = 0; m < order; ++m)
        if (!is_contracted[m])
            free.push_back(m);
    return free;
}

/// FNV-1a hash of a coordinate tuple drawn from selected modes.
std::uint64_t
hash_modes(const CooTensor& t, const std::vector<Size>& modes, Size pos)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (Size m : modes)
        h = (h ^ t.index(m, pos)) * 1099511628211ULL;
    return h;
}

bool
equal_modes(const CooTensor& a, const std::vector<Size>& ma, Size pa,
            const CooTensor& b, const std::vector<Size>& mb, Size pb)
{
    for (Size k = 0; k < ma.size(); ++k)
        if (a.index(ma[k], pa) != b.index(mb[k], pb))
            return false;
    return true;
}

}  // namespace

CooTensor
contract(const CooTensor& a, const std::vector<Size>& modes_a,
         const CooTensor& b, const std::vector<Size>& modes_b)
{
    PASTA_CHECK_MSG(modes_a.size() == modes_b.size(),
                    "contraction arity mismatch: " << modes_a.size()
                                                   << " vs "
                                                   << modes_b.size());
    PASTA_CHECK_MSG(!modes_a.empty(), "no contraction modes given");
    for (Size k = 0; k < modes_a.size(); ++k) {
        PASTA_CHECK_MSG(modes_a[k] < a.order() && modes_b[k] < b.order(),
                        "contraction mode out of range");
        PASTA_CHECK_MSG(a.dim(modes_a[k]) == b.dim(modes_b[k]),
                        "extent mismatch on contracted pair "
                            << k << ": " << a.dim(modes_a[k]) << " vs "
                            << b.dim(modes_b[k]));
    }
    const std::vector<Size> free_a = free_modes(a.order(), modes_a);
    const std::vector<Size> free_b = free_modes(b.order(), modes_b);

    std::vector<Index> out_dims;
    for (Size m : free_a)
        out_dims.push_back(a.dim(m));
    for (Size m : free_b)
        out_dims.push_back(b.dim(m));
    const bool scalar_output = out_dims.empty();
    if (scalar_output)
        out_dims.push_back(1);
    CooTensor out(out_dims);

    if (a.nnz() == 0 || b.nnz() == 0)
        return out;

    // Index B by contracted coordinate: hash -> positions (chained).
    std::unordered_multimap<std::uint64_t, Size> b_index;
    b_index.reserve(b.nnz() * 2);
    for (Size p = 0; p < b.nnz(); ++p)
        b_index.emplace(hash_modes(b, modes_b, p), p);

    // Accumulate output coordinates in a hash map keyed by the packed
    // output coordinate hash; store coordinate + value (collision-checked
    // by full comparison against the stored coordinate).
    struct OutEntry {
        Coordinate coords;
        double value;
    };
    std::unordered_map<std::uint64_t, std::vector<OutEntry>> acc;
    acc.reserve(a.nnz() * 2);

    Coordinate oc(out.order());
    for (Size pa = 0; pa < a.nnz(); ++pa) {
        const std::uint64_t key = hash_modes(a, modes_a, pa);
        auto range = b_index.equal_range(key);
        for (auto it = range.first; it != range.second; ++it) {
            const Size pb = it->second;
            if (!equal_modes(a, modes_a, pa, b, modes_b, pb))
                continue;  // hash collision
            Size s = 0;
            for (Size m : free_a)
                oc[s++] = a.index(m, pa);
            for (Size m : free_b)
                oc[s++] = b.index(m, pb);
            if (scalar_output)
                oc[0] = 0;
            std::uint64_t oh = 1469598103934665603ULL;
            for (Index c : oc)
                oh = (oh ^ c) * 1099511628211ULL;
            const double term = static_cast<double>(a.value(pa)) *
                                static_cast<double>(b.value(pb));
            auto& bucket = acc[oh];
            bool found = false;
            for (auto& entry : bucket) {
                if (entry.coords == oc) {
                    entry.value += term;
                    found = true;
                    break;
                }
            }
            if (!found)
                bucket.push_back({oc, term});
        }
    }

    Size total = 0;
    for (const auto& [h, bucket] : acc)
        total += bucket.size();
    out.reserve(total);
    for (const auto& [h, bucket] : acc)
        for (const auto& entry : bucket)
            out.append(entry.coords, static_cast<Value>(entry.value));
    out.sort_lexicographic();
    return out;
}

double
inner_product(const CooTensor& a, const CooTensor& b)
{
    PASTA_CHECK_MSG(a.dims() == b.dims(),
                    "inner_product requires identical shapes");
    std::vector<Size> all_modes(a.order());
    for (Size m = 0; m < a.order(); ++m)
        all_modes[m] = m;
    const CooTensor scalar = contract(a, all_modes, b, all_modes);
    double total = 0;
    for (Size p = 0; p < scalar.nnz(); ++p)
        total += scalar.value(p);
    return total;
}

}  // namespace pasta
