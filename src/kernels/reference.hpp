/// \file
/// Dense reference implementations of the five kernels.
///
/// These are deliberately naive, double-accumulating, loop-nest versions
/// used only to validate the sparse kernels in tests.  They materialize the
/// tensor densely, so they are restricted to small test shapes.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "core/coo_tensor.hpp"
#include "core/dense.hpp"
#include "kernels/ops.hpp"

namespace pasta {

/// Small dense arbitrary-order tensor with double storage, for validation.
class DenseTensor {
  public:
    DenseTensor() = default;

    /// Creates a zero tensor of the given shape (total volume must fit in
    /// memory; intended for test-sized tensors only).
    explicit DenseTensor(std::vector<Index> dims);

    Size order() const { return dims_.size(); }
    const std::vector<Index>& dims() const { return dims_; }
    Size volume() const { return data_.size(); }

    double& at(const Coordinate& c) { return data_[offset(c)]; }
    double at(const Coordinate& c) const { return data_[offset(c)]; }

    double& flat(Size i) { return data_[i]; }
    double flat(Size i) const { return data_[i]; }

    /// Row-major linear offset of a coordinate.
    Size offset(const Coordinate& c) const;

    /// Inverse of offset().
    Coordinate coordinate(Size off) const;

    /// Densifies a COO tensor (duplicates are summed).
    static DenseTensor from_coo(const CooTensor& x);

    /// Sparsifies: keeps non-zeros, lexicographically sorted.
    CooTensor to_coo() const;

  private:
    std::vector<Index> dims_;
    std::vector<double> data_;
};

/// Reference TEW: z = x op y element-wise over the dense cube.
DenseTensor ref_tew(const DenseTensor& x, const DenseTensor& y, EwOp op);

/// Reference TS applied to the *stored* non-zeros of a sparse tensor
/// (the sparse TS semantics: the scalar touches only stored entries).
CooTensor ref_ts(const CooTensor& x, TsOp op, Value s);

/// Reference TTV: y = x x_mode v (dense contraction).
DenseTensor ref_ttv(const DenseTensor& x, const DenseVector& v, Size mode);

/// Reference TTM: y = x x_mode u with u in R^{I_mode x R}.
DenseTensor ref_ttm(const DenseTensor& x, const DenseMatrix& u, Size mode);

/// Reference MTTKRP via explicit matricization semantics:
/// out(i_mode, r) = sum over non-mode coords of x(c) * prod factors.
DenseMatrix ref_mttkrp(const DenseTensor& x,
                       const std::vector<const DenseMatrix*>& factors,
                       Size mode);

}  // namespace pasta
