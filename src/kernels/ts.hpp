/// \file
/// Tensor-scalar operations (TS, paper §II-B).
///
/// TSA and TSM: the scalar is applied to every *stored* non-zero value.
/// The timed kernel streams one value array in and one out (OI 1/8); the
/// output pattern equals the input pattern and is copied in pre-processing.
#pragma once

#include "core/coo_tensor.hpp"
#include "core/hicoo_tensor.hpp"
#include "kernels/ops.hpp"

namespace pasta {

/// Timed inner loop: y[i] = x[i] op s in parallel.
void ts_values(TsOp op, const Value* x, Value* y, Size count, Value s);

/// COO-TS-OMP.
CooTensor ts_coo(const CooTensor& x, TsOp op, Value s);

/// HiCOO-TS-OMP (same value computation, HiCOO pattern copied).
HiCooTensor ts_hicoo(const HiCooTensor& x, TsOp op, Value s);

}  // namespace pasta
