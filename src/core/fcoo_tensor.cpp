#include "core/fcoo_tensor.hpp"

#include <sstream>

#include "common/error.hpp"
#include "obs/trace.hpp"
#include "validate/validate.hpp"
#include "core/fibers.hpp"

namespace pasta {

FcooTensor
FcooTensor::build(const CooTensor& x, Size mode)
{
    PASTA_CHECK_MSG(mode < x.order(), "mode " << mode << " out of range");
    PASTA_CHECK_MSG(x.order() >= 2, "F-COO needs an order >= 2 tensor");

    PASTA_SPAN("convert.fcoo");
    FcooTensor out;
    out.dims_ = x.dims();
    out.mode_ = mode;

    CooTensor sorted = x;
    sorted.sort_fibers_last(mode);
    const FiberPartition fibers = compute_fibers(sorted, mode);

    out.values_ = sorted.values();
    out.product_indices_ = sorted.mode_indices(mode);
    out.flags_.assign(sorted.nnz(), 0);
    out.fiber_of_.assign(sorted.nnz(), 0);

    std::vector<Index> out_dims;
    for (Size m = 0; m < x.order(); ++m)
        if (m != mode)
            out_dims.push_back(x.dim(m));
    out.out_pattern_ = CooTensor(out_dims);
    out.out_pattern_.reserve(fibers.num_fibers());
    Coordinate oc(out_dims.size());
    for (Size f = 0; f < fibers.num_fibers(); ++f) {
        const Size head = fibers.fptr[f];
        out.flags_[head] = 1;
        for (Size p = fibers.fptr[f]; p < fibers.fptr[f + 1]; ++p)
            out.fiber_of_[p] = static_cast<Index>(f);
        Size s = 0;
        for (Size m = 0; m < x.order(); ++m)
            if (m != mode)
                oc[s++] = sorted.index(m, head);
        out.out_pattern_.append(oc, 0);
    }
    if (validate::convert_checks_enabled())
        validate::validate(out).require();
    return out;
}

Size
FcooTensor::storage_bytes() const
{
    // Values + one product index per non-zero + 1-bit flags + the
    // per-fiber output coordinates (N-1 indices each).
    return nnz() * (kValueBytes + kIndexBytes) + (nnz() + 7) / 8 +
           num_fibers() * (order() - 1) * kIndexBytes;
}

void
FcooTensor::validate() const
{
    PASTA_CHECK_MSG(product_indices_.size() == nnz(),
                    "product index length mismatch");
    PASTA_CHECK_MSG(flags_.size() == nnz(), "flag length mismatch");
    PASTA_CHECK_MSG(fiber_of_.size() == nnz(),
                    "fiber map length mismatch");
    for (Index idx : product_indices_)
        PASTA_CHECK_MSG(idx < dims_[mode_], "product index out of range");
    if (nnz() > 0) {
        PASTA_CHECK_MSG(flags_[0] == 1, "first non-zero must start a fiber");
        Size fiber_count = 0;
        for (Size p = 0; p < nnz(); ++p) {
            if (flags_[p])
                ++fiber_count;
            PASTA_CHECK_MSG(fiber_of_[p] + 1 == fiber_count,
                            "fiber map inconsistent with flags at " << p);
        }
        PASTA_CHECK_MSG(fiber_count == num_fibers(),
                        "flag count != output fibers");
    }
}

std::string
FcooTensor::describe() const
{
    std::ostringstream oss;
    oss << order() << "-order F-COO(mode " << mode_ << ") ";
    for (Size m = 0; m < order(); ++m)
        oss << dims_[m] << (m + 1 < order() ? "x" : "");
    oss << ", " << nnz() << " nnz in " << num_fibers() << " fibers";
    return oss.str();
}

}  // namespace pasta
