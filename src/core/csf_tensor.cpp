#include "core/csf_tensor.hpp"

#include <numeric>
#include <sstream>

#include "common/error.hpp"
#include "common/membudget.hpp"
#include "obs/trace.hpp"
#include "validate/validate.hpp"

namespace pasta {

Size
CsfTensor::storage_bytes() const
{
    Size total = values_.size() * kValueBytes;
    for (Size l = 0; l < levels_.size(); ++l) {
        total += levels_[l].idx.size() * kIndexBytes;
        total += levels_[l].ptr.size() * sizeof(Size);
    }
    return total;
}

CsfTensor
CsfTensor::from_coo(const CooTensor& x, std::vector<Size> mode_order)
{
    const Size n = x.order();
    if (mode_order.empty()) {
        mode_order.resize(n);
        std::iota(mode_order.begin(), mode_order.end(), 0);
    }
    PASTA_CHECK_MSG(mode_order.size() == n, "mode order arity mismatch");
    {
        std::vector<bool> seen(n, false);
        for (Size m : mode_order) {
            PASTA_CHECK_MSG(m < n, "mode order entry out of range");
            PASTA_CHECK_MSG(!seen[m], "duplicate mode in mode order");
            seen[m] = true;
        }
    }

    PASTA_SPAN("convert.csf");
    CsfTensor out;
    out.dims_ = x.dims();
    out.mode_order_ = mode_order;
    out.levels_.resize(n);
    if (x.nnz() == 0)
        return out;

    // Staging working set: the sorted copy plus the level pools, which
    // are bounded by one (index, ptr) pair per non-zero per level.
    membudget::check(2 * membudget::coo_bytes(n, x.nnz()), "csf.build");
    CooTensor sorted = x;
    sorted.sort_by_mode_order(mode_order);

    // Walk the sorted stream once.  A node at level l is created whenever
    // any index at level <= l changed relative to the previous non-zero;
    // its ptr entry records where its children start in the next level.
    std::vector<Index> prev(n, kMaxIndex);
    bool first = true;
    for (Size p = 0; p < sorted.nnz(); ++p) {
        Size break_level = first ? 0 : n;
        if (!first) {
            for (Size l = 0; l < n; ++l) {
                if (sorted.index(mode_order[l], p) != prev[l]) {
                    break_level = l;
                    break;
                }
            }
        }
        PASTA_CHECK_MSG(first || break_level < n,
                        "duplicate coordinate in CSF input; coalesce "
                        "first");
        for (Size l = break_level; l < n; ++l) {
            out.levels_[l].idx.push_back(sorted.index(mode_order[l], p));
            prev[l] = sorted.index(mode_order[l], p);
            if (l + 1 < n)
                out.levels_[l].ptr.push_back(
                    out.levels_[l + 1].idx.size());
        }
        first = false;
    }
    // Close the CSR-style pointer arrays.
    for (Size l = 0; l + 1 < n; ++l)
        out.levels_[l].ptr.push_back(out.levels_[l + 1].idx.size());
    out.values_ = sorted.values();
    if (validate::convert_checks_enabled())
        validate::validate(out).require();
    return out;
}

CooTensor
CsfTensor::to_coo() const
{
    CooTensor out(dims_);
    out.reserve(nnz());
    if (nnz() == 0)
        return out;
    const Size n = order();
    Coordinate c(n);
    // Depth-first expansion using an explicit per-level cursor walk: for
    // each leaf, find its ancestor at each level via the ptr arrays.
    // Iterative approach: maintain the current node id per level.
    // Self-passing generic lambda keeps the recursive walk directly
    // callable (no type-erased dispatch per tree node).
    auto walk = [&](auto&& self, Size level, Size id) -> void {
        c[mode_order_[level]] = levels_[level].idx[id];
        if (level + 1 == n) {
            out.append(c, values_[id]);
            return;
        }
        for (Size child = levels_[level].ptr[id];
             child < levels_[level].ptr[id + 1]; ++child)
            self(self, level + 1, child);
    };
    for (Size root = 0; root < level_size(0); ++root)
        walk(walk, 0, root);
    out.sort_lexicographic();
    return out;
}

void
CsfTensor::validate() const
{
    const Size n = order();
    PASTA_CHECK_MSG(levels_.size() == n, "level count mismatch");
    if (nnz() == 0)
        return;
    PASTA_CHECK_MSG(levels_[n - 1].idx.size() == values_.size(),
                    "leaf level / value length mismatch");
    for (Size l = 0; l < n; ++l) {
        for (Index idx : levels_[l].idx)
            PASTA_CHECK_MSG(idx < dims_[mode_order_[l]],
                            "index out of range at level " << l);
        if (l + 1 < n) {
            PASTA_CHECK_MSG(levels_[l].ptr.size() ==
                                levels_[l].idx.size() + 1,
                            "ptr length mismatch at level " << l);
            PASTA_CHECK_MSG(levels_[l].ptr.front() == 0,
                            "ptr must start at 0");
            PASTA_CHECK_MSG(levels_[l].ptr.back() ==
                                levels_[l + 1].idx.size(),
                            "ptr must cover the next level");
            for (Size i = 0; i + 1 < levels_[l].ptr.size(); ++i)
                PASTA_CHECK_MSG(levels_[l].ptr[i] < levels_[l].ptr[i + 1],
                                "empty CSF node at level " << l);
        }
    }
}

std::string
CsfTensor::describe() const
{
    std::ostringstream oss;
    oss << order() << "-order CSF(order ";
    for (Size l = 0; l < mode_order_.size(); ++l)
        oss << mode_order_[l] << (l + 1 < mode_order_.size() ? "," : "");
    oss << ") ";
    for (Size m = 0; m < order(); ++m)
        oss << dims_[m] << (m + 1 < order() ? "x" : "");
    oss << ", " << nnz() << " nnz, level sizes";
    for (Size l = 0; l < num_levels(); ++l)
        oss << " " << level_size(l);
    return oss.str();
}

}  // namespace pasta
