/// \file
/// Parallel merge engine for pattern-combining operations.
///
/// Several pre-processing and kernel paths combine two sorted, duplicate-
/// free non-zero streams into one: general TEW (paper §II-A, different
/// non-zero patterns), duplicate coalescing, and output-pattern
/// materialization.  The natural two-pointer merge is inherently serial
/// and the naive parallel cure — per-element append under a lock or into
/// growable vectors — is worse.  This engine makes the merge parallel and
/// deterministic in three steps:
///
///  1. *Key packing*.  When every coordinate of both streams fits the
///     64-bit lexicographic key `sort_radix` already produces (per-mode
///     widths from the common output dims), comparisons are one integer
///     compare (`merged-64key`).  Wider coordinate spaces fall back to a
///     per-mode comparator over the raw index arrays (`merged-cmp`) —
///     semantics, not speed, are the invariant.
///  2. *Merge-path partition* (Green et al., "GPU Merge Path").  A binary
///     search along evenly spaced cross diagonals of the merge matrix
///     splits the two streams into per-worker (a, b) ranges of near-equal
///     total work.  Boundaries are nudged so a coordinate matched in both
///     streams never splits across workers, which keeps every segment an
///     independent joint merge.
///  3. *Count → exclusive scan → parallel fill*.  Each worker first counts
///     the outputs its segment emits, a serial scan of the per-segment
///     counts assigns disjoint output ranges, then workers fill
///     preallocated index/value arrays directly — no per-element append
///     anywhere on the hot path.
///
/// The merged output sequence is a pure function of the two inputs (the
/// partition only decides who writes which slice), so results are
/// bit-identical for every worker count.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "core/coo_tensor.hpp"

namespace pasta::merge {

/// Which comparison machinery the engine selected for a merge.
enum class MergePath {
    kMerged64Key,  ///< coordinates packed into 64-bit radix keys
    kMergedCmp,    ///< per-mode comparator (key wider than 64 bits)
};

/// Short stable name for profiles/benchmark labels ("merged-64key",
/// "merged-cmp"), mirroring mttkrp_variant_name.
const char* merge_path_name(MergePath path);

/// Union keeps entries present in only one stream (TEW add/sub: absent
/// entries are zero); intersection drops them (TEW mul/div).
enum class MergeSemantics { kUnion, kIntersect };

/// In-place exclusive prefix sum; returns the total.  Shared by the
/// engine's scan phase and other count/fill consumers (coalesce, GPU
/// two-phase TEW).
Size exclusive_scan(std::vector<Size>& counts);

/// Per-segment boundaries of a two-stream merge: segment s owns
/// x[a[s], a[s+1]) and y[b[s], b[s+1]).  Boundaries never split a
/// coordinate present in both streams.
struct MergePartition {
    std::vector<Size> a;  ///< stream-x starts, size segments()+1
    std::vector<Size> b;  ///< stream-y starts, size segments()+1

    Size segments() const { return a.empty() ? 0 : a.size() - 1; }
};

/// Comparison state for merging two lexicographically sorted,
/// duplicate-free COO streams under a common coordinate space
/// (`out_dims`, the per-mode max of the operand dims).  Packs both
/// streams into 64-bit keys when the space fits; otherwise compares the
/// raw index arrays mode by mode.
class MergeKeys {
  public:
    MergeKeys(const CooTensor& x, const CooTensor& y,
              const std::vector<Index>& out_dims);

    MergePath path() const { return path_; }

    Size na() const { return na_; }
    Size nb() const { return nb_; }

    /// Three-way comparison of x's non-zero `a` against y's non-zero `b`.
    int compare(Size a, Size b) const
    {
        if (path_ == MergePath::kMerged64Key) {
            const std::uint64_t ka = kx_[a];
            const std::uint64_t kb = ky_[b];
            return ka < kb ? -1 : (ka > kb ? 1 : 0);
        }
        for (Size m = 0; m < order_; ++m) {
            const Index ia = xi_[m][a];
            const Index ib = yi_[m][b];
            if (ia != ib)
                return ia < ib ? -1 : 1;
        }
        return 0;
    }

    /// The (a, b) split of cross diagonal `d` (0 <= d <= na+nb): a is the
    /// number of x elements among the first d merged elements (ties to x),
    /// adjusted so a pair matched across streams never splits.  A pure
    /// function of d, so concurrent callers agree without coordination.
    std::pair<Size, Size> diagonal_split(Size d) const;

    /// Evenly spaced diagonal partition into (at most) `segments` ranges.
    MergePartition partition(Size segments) const;

    /// Outputs the joint merge of segment s of `part` emits under the
    /// given semantics (count phase).
    Size count_segment(const MergePartition& part, Size s,
                       MergeSemantics semantics) const;

    /// Fill phase for segment s of `part`: walks the segment's joint
    /// merge, invoking one emitter per output with the running output
    /// position starting at `base` (the scanned count prefix):
    ///   both(pos, a, b)   coordinate present in both streams
    ///   left(pos, a)      x-only coordinate (kUnion only)
    ///   right(pos, b)     y-only coordinate (kUnion only)
    template <typename Both, typename Left, typename Right>
    void fill_segment(const MergePartition& part, Size s,
                      MergeSemantics semantics, Size base, Both both,
                      Left left, Right right) const
    {
        Size a = part.a[s];
        Size b = part.b[s];
        const Size a_end = part.a[s + 1];
        const Size b_end = part.b[s + 1];
        const bool keep = semantics == MergeSemantics::kUnion;
        Size pos = base;
        while (a < a_end && b < b_end) {
            const int cmp = compare(a, b);
            if (cmp < 0) {
                if (keep)
                    left(pos++, a);
                ++a;
            } else if (cmp > 0) {
                if (keep)
                    right(pos++, b);
                ++b;
            } else {
                both(pos++, a, b);
                ++a;
                ++b;
            }
        }
        if (!keep)
            return;
        for (; a < a_end; ++a)
            left(pos++, a);
        for (; b < b_end; ++b)
            right(pos++, b);
    }

  private:
    MergePath path_ = MergePath::kMergedCmp;
    Size na_ = 0;
    Size nb_ = 0;
    Size order_ = 0;
    std::vector<std::uint64_t> kx_;  ///< packed keys (kMerged64Key)
    std::vector<std::uint64_t> ky_;
    std::vector<const Index*> xi_;   ///< raw index arrays (kMergedCmp)
    std::vector<const Index*> yi_;
};

/// Full two-pass merged materialization of two sorted duplicate-free COO
/// streams into a fresh tensor with dims `out_dims`.  Value emitters:
///   both(a, b) -> Value    for coordinates present in both streams
///   left(a) -> Value       x-only (used under kUnion)
///   right(b) -> Value      y-only (used under kUnion)
/// Coordinates are copied from the source index arrays in bulk; no
/// per-element append.  Output order is the merged (lexicographic)
/// order, bit-identical for every worker count.
template <typename Both, typename Left, typename Right>
CooTensor
merge_materialize(const CooTensor& x, const CooTensor& y,
                  std::vector<Index> out_dims, MergeSemantics semantics,
                  Both both, Left left, Right right,
                  MergePath* path_out = nullptr)
{
    const Size order = out_dims.size();
    const MergeKeys keys(x, y, out_dims);
    if (path_out)
        *path_out = keys.path();
    const Size workers = static_cast<Size>(num_threads());
    const MergePartition part = keys.partition(workers);
    const Size segments = part.segments();

    std::vector<Size> counts(segments);
    parallel_for(0, segments, Schedule::kStatic, [&](Size s) {
        counts[s] = keys.count_segment(part, s, semantics);
    });
    const Size total = exclusive_scan(counts);

    CooTensor z(std::move(out_dims));
    CooBulkFill out = z.bulk_fill(total);
    std::vector<const Index*> xi(order);
    std::vector<const Index*> yi(order);
    for (Size m = 0; m < order; ++m) {
        xi[m] = x.mode_indices(m).data();
        yi[m] = y.mode_indices(m).data();
    }
    parallel_for(0, segments, Schedule::kStatic, [&](Size s) {
        keys.fill_segment(
            part, s, semantics, counts[s],
            [&](Size pos, Size a, Size b) {
                for (Size m = 0; m < order; ++m)
                    out.modes[m][pos] = xi[m][a];
                out.values[pos] = both(a, b);
            },
            [&](Size pos, Size a) {
                for (Size m = 0; m < order; ++m)
                    out.modes[m][pos] = xi[m][a];
                out.values[pos] = left(a);
            },
            [&](Size pos, Size b) {
                for (Size m = 0; m < order; ++m)
                    out.modes[m][pos] = yi[m][b];
                out.values[pos] = right(b);
            });
    });
    return z;
}

}  // namespace pasta::merge
