/// \file
/// Parallel LSD radix sort on packed 64-bit coordinate keys.
///
/// Every format conversion the suite benchmarks begins with a sort of the
/// COO stream — lexicographic for CSF/sCOO, Morton for HiCOO and its
/// variants (paper §III-C/D).  A comparator sort pays a multi-mode
/// lambda comparison per element move; instead, when the per-mode index
/// ranges fit a 64-bit key, the sorts here pack each non-zero's
/// coordinate into one integer (lexicographic concatenation, or a Morton
/// block interleave with a lexicographic in-block suffix) and run a
/// stable least-significant-digit radix sort over 8-bit digits:
/// per-chunk histograms in parallel, one serial 256 x chunks exclusive
/// scan, then a stable parallel scatter.  A stable sort's output
/// permutation is unique, so results are bit-identical for every thread
/// count.  Callers fall back to std::sort when the key does not fit
/// (e.g. three full 32-bit modes need 96 bits).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace pasta::radix {

/// Number of key bits needed to represent coordinates in [0, dim).
unsigned bits_for(Index dim);

/// True when the lexicographic key over `mode_order` (most significant
/// first) packs into 64 bits.
bool lex_key_fits(const std::vector<Index>& dims,
                  const std::vector<Size>& mode_order);

/// True when the Morton-block key (block coordinates interleaved) plus
/// the lexicographic in-block element offsets pack into 64 bits.
bool morton_key_fits(const std::vector<Index>& dims, unsigned block_bits);

/// Packs coordinate `pos` of per-mode index arrays into the
/// lexicographic key; `shifts[k]` is the bit offset of mode_order[k]'s
/// field.  Exposed for callers that assemble hybrid keys (gHiCOO).
std::vector<unsigned> lex_shifts(const std::vector<Index>& dims,
                                 const std::vector<Size>& mode_order);

/// Builds one lexicographic key per non-zero of the given per-mode index
/// arrays (indices[m][pos]); mode_order[0] is the most significant mode.
void build_lex_keys(const std::vector<std::vector<Index>>& indices,
                    const std::vector<Index>& dims,
                    const std::vector<Size>& mode_order,
                    std::vector<std::uint64_t>& keys);

/// Builds one Morton key per non-zero: block coordinates (index >>
/// block_bits) bit-interleaved in the high field, element offsets
/// (index & mask) concatenated lexicographically (mode 0 most
/// significant) in the low field.  Sorting these keys reproduces
/// CooTensor::sort_morton's order exactly: Morton across blocks,
/// lexicographic within a block.
void build_morton_keys(const std::vector<std::vector<Index>>& indices,
                       const std::vector<Index>& dims, unsigned block_bits,
                       std::vector<std::uint64_t>& keys);

/// Stable parallel LSD radix sort of `keys` (ascending); `perm` receives
/// the applied permutation (perm[p] = original position of the element
/// now at p).  Skips high-order passes that every key leaves zero.
/// Deterministic: output is independent of the worker count.
void sort_perm(std::vector<std::uint64_t>& keys, std::vector<Size>& perm);

}  // namespace pasta::radix
