/// \file
/// Flagged COO (F-COO) format (Liu et al. [26], cited in paper §III).
///
/// F-COO is a *computation-specific* format: built for one kernel mode,
/// it stores, per non-zero, only the index of the mode being multiplied
/// (the product mode) plus one bit flagging the start of each output
/// fiber; the untouched output coordinates live once per fiber, not per
/// non-zero.  The payoff is GPU-friendly parallelization over non-zeros
/// (perfect balance regardless of fiber skew) using segmented reduction
/// across the flags — the opposite trade from Algorithm 2's
/// fiber-per-thread mapping.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/coo_tensor.hpp"

namespace pasta {

/// Third-party-format TTV/TTM carrier: F-COO specialized for one mode.
class FcooTensor {
  public:
    FcooTensor() = default;

    /// Builds the F-COO form of `x` for computations along `mode`
    /// (sorts a copy fibers-last, computes flags and the output pattern).
    static FcooTensor build(const CooTensor& x, Size mode);

    Size order() const { return dims_.size(); }
    const std::vector<Index>& dims() const { return dims_; }

    /// The mode this F-COO instance was built for.
    Size mode() const { return mode_; }

    Size nnz() const { return values_.size(); }

    /// Number of output fibers (start flags set).
    Size num_fibers() const { return out_pattern_.nnz(); }

    /// Value of non-zero `p`.
    Value value(Size p) const { return values_[p]; }
    const std::vector<Value>& values() const { return values_; }

    /// Product-mode index of non-zero `p` (the only per-non-zero index).
    Index product_index(Size p) const { return product_indices_[p]; }

    /// Start-of-fiber flag of non-zero `p`.
    bool start_flag(Size p) const { return flags_[p] != 0; }

    /// Output-fiber id of non-zero `p` (prefix sum of flags, cached).
    Index fiber_of(Size p) const { return fiber_of_[p]; }

    /// The (N-1)-order output pattern: one zero-valued entry per fiber,
    /// coordinates = the fiber's non-product-mode indices.
    const CooTensor& out_pattern() const { return out_pattern_; }

    /// Storage bytes: values + product indices + 1-bit flags (rounded to
    /// bytes) + per-fiber output coordinates.
    Size storage_bytes() const;

    /// Validates invariants; throws PastaError on violation.
    void validate() const;

    std::string describe() const;

  private:
    std::vector<Index> dims_;
    Size mode_ = 0;
    std::vector<Value> values_;
    std::vector<Index> product_indices_;
    std::vector<std::uint8_t> flags_;
    std::vector<Index> fiber_of_;
    CooTensor out_pattern_;
};

}  // namespace pasta
