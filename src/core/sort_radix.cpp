#include "core/sort_radix.hpp"

#include <bit>
#include <numeric>

#include "common/error.hpp"
#include "common/membudget.hpp"
#include "common/parallel.hpp"
#include "obs/counters.hpp"

namespace pasta::radix {

unsigned
bits_for(Index dim)
{
    if (dim <= 1)
        return 0;
    return static_cast<unsigned>(std::bit_width(
        static_cast<std::uint32_t>(dim - 1)));
}

bool
lex_key_fits(const std::vector<Index>& dims,
             const std::vector<Size>& mode_order)
{
    unsigned total = 0;
    for (Size m : mode_order)
        total += bits_for(dims[m]);
    return total <= 64;
}

std::vector<unsigned>
lex_shifts(const std::vector<Index>& dims,
           const std::vector<Size>& mode_order)
{
    // mode_order[0] owns the most significant field.
    std::vector<unsigned> shifts(mode_order.size(), 0);
    unsigned low = 0;
    for (Size k = mode_order.size(); k-- > 0;) {
        shifts[k] = low;
        low += bits_for(dims[mode_order[k]]);
    }
    return shifts;
}

void
build_lex_keys(const std::vector<std::vector<Index>>& indices,
               const std::vector<Index>& dims,
               const std::vector<Size>& mode_order,
               std::vector<std::uint64_t>& keys)
{
    PASTA_ASSERT(lex_key_fits(dims, mode_order));
    const std::vector<unsigned> shifts = lex_shifts(dims, mode_order);
    const Size n = indices.empty() ? 0 : indices[0].size();
    keys.assign(n, 0);
    // Skip zero-width fields entirely (dim-1 modes contribute no bits).
    std::vector<std::pair<const Index*, unsigned>> fields;
    for (Size k = 0; k < mode_order.size(); ++k)
        if (bits_for(dims[mode_order[k]]) > 0)
            fields.emplace_back(indices[mode_order[k]].data(), shifts[k]);
    parallel_for_ranges(0, n, [&](Size first, Size last) {
        for (Size p = first; p < last; ++p) {
            std::uint64_t key = 0;
            for (const auto& [idx, shift] : fields)
                key |= static_cast<std::uint64_t>(idx[p]) << shift;
            keys[p] = key;
        }
    });
}

bool
morton_key_fits(const std::vector<Index>& dims, unsigned block_bits)
{
    // High field: block coordinates interleaved at the widest mode's
    // bit count.  Low field: block_bits element-offset bits per mode.
    unsigned max_block_bits = 0;
    for (Index d : dims) {
        const Index blocks =
            static_cast<Index>(((d - 1) >> block_bits) + 1);
        max_block_bits = std::max(max_block_bits, bits_for(blocks));
    }
    const auto order = static_cast<unsigned>(dims.size());
    return order * max_block_bits + order * block_bits <= 64;
}

void
build_morton_keys(const std::vector<std::vector<Index>>& indices,
                  const std::vector<Index>& dims, unsigned block_bits,
                  std::vector<std::uint64_t>& keys)
{
    PASTA_ASSERT(morton_key_fits(dims, block_bits));
    const Size order = dims.size();
    unsigned max_block_bits = 0;
    for (Index d : dims) {
        const Index blocks =
            static_cast<Index>(((d - 1) >> block_bits) + 1);
        max_block_bits = std::max(max_block_bits, bits_for(blocks));
    }
    // Truncating the 128-bit interleave of morton.hpp to order *
    // max_block_bits bits preserves its ordering: every dropped higher
    // bit is zero for every in-range block coordinate.
    const unsigned low_bits = static_cast<unsigned>(order) * block_bits;
    const Index mask = (Index{1} << block_bits) - 1;
    const Size n = indices.empty() ? 0 : indices[0].size();
    keys.assign(n, 0);
    parallel_for_ranges(0, n, [&](Size first, Size last) {
        for (Size p = first; p < last; ++p) {
            std::uint64_t hi = 0;
            std::uint64_t lo = 0;
            for (Size m = 0; m < order; ++m) {
                const Index coord = indices[m][p];
                const std::uint64_t block = coord >> block_bits;
                for (unsigned bit = 0; bit < max_block_bits; ++bit)
                    hi |= ((block >> bit) & 1ULL)
                          << (bit * order + m);
                // Lexicographic in-block suffix, mode 0 most significant.
                lo |= static_cast<std::uint64_t>(coord & mask)
                      << ((order - 1 - m) * block_bits);
            }
            keys[p] = (hi << low_bits) | lo;
        }
    });
}

namespace {

constexpr unsigned kDigitBits = 8;
constexpr Size kBuckets = Size{1} << kDigitBits;

}  // namespace

void
sort_perm(std::vector<std::uint64_t>& keys, std::vector<Size>& perm)
{
    const Size n = keys.size();
    // Sort scratch: the permutation plus the double-buffered key and
    // permutation arrays the LSD passes ping-pong through.
    membudget::check(std::uint64_t{24} * n, "sort.scratch");
    perm.resize(n);
    parallel_for_ranges(0, n, [&](Size first, Size last) {
        for (Size p = first; p < last; ++p)
            perm[p] = p;
    });
    if (n < 2)
        return;

    std::uint64_t max_key = 0;
#pragma omp parallel for num_threads(num_threads()) schedule(static) \
    reduction(max : max_key)
    for (long long p = 0; p < static_cast<long long>(n); ++p)
        max_key = std::max(max_key, keys[p]);
    const unsigned passes =
        std::max(1u, (static_cast<unsigned>(std::bit_width(max_key)) +
                      kDigitBits - 1) /
                         kDigitBits);
    obs::add("sort.radix_passes", passes);
    obs::add("sort.radix_keys", n);

    // Fixed chunk partition shared by the histogram and scatter phases.
    // Stability makes the result independent of the partition (and hence
    // of the thread count): a stable sort's permutation is unique.
    const Size chunks = std::min<Size>(
        static_cast<Size>(std::max(1, num_threads())), n);
    const Size per = (n + chunks - 1) / chunks;

    std::vector<std::uint64_t> keys_out(n);
    std::vector<Size> perm_out(n);
    std::vector<Size> hist(chunks * kBuckets);

    for (unsigned pass = 0; pass < passes; ++pass) {
        const unsigned shift = pass * kDigitBits;
        std::fill(hist.begin(), hist.end(), 0);
        // Phase 1: per-chunk digit histograms.
        parallel_for(0, chunks, Schedule::kStatic, [&](Size c) {
            const Size first = c * per;
            const Size last = std::min(n, first + per);
            Size* h = hist.data() + c * kBuckets;
            for (Size p = first; p < last; ++p)
                ++h[(keys[p] >> shift) & (kBuckets - 1)];
        });
        // Phase 2: exclusive scan in (digit, chunk) order, so chunk c's
        // elements with digit d land after every earlier chunk's.
        Size running = 0;
        for (Size d = 0; d < kBuckets; ++d) {
            for (Size c = 0; c < chunks; ++c) {
                Size& slot = hist[c * kBuckets + d];
                const Size count = slot;
                slot = running;
                running += count;
            }
        }
        // Phase 3: stable parallel scatter.
        parallel_for(0, chunks, Schedule::kStatic, [&](Size c) {
            const Size first = c * per;
            const Size last = std::min(n, first + per);
            Size* h = hist.data() + c * kBuckets;
            for (Size p = first; p < last; ++p) {
                const Size pos = h[(keys[p] >> shift) & (kBuckets - 1)]++;
                keys_out[pos] = keys[p];
                perm_out[pos] = perm[p];
            }
        });
        keys.swap(keys_out);
        perm.swap(perm_out);
    }
}

}  // namespace pasta::radix
