/// \file
/// Semi-sparse HiCOO (sHiCOO) format (paper §III-C, Fig. 2c).
///
/// The HiCOO analogue of sCOO: the dense mode(s) are stored as a dense
/// value stripe per sparse coordinate, while the sparse modes are
/// block-compressed HiCOO style (32-bit block indices shared by a block,
/// 8-bit element offsets per sparse coordinate).  HiCOO-TTM produces its
/// output in this format.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/scoo_tensor.hpp"

namespace pasta {

/// Arbitrary-order semi-sparse tensor: blocked sparse modes + dense modes.
class SHiCooTensor {
  public:
    SHiCooTensor() = default;

    /// Creates an empty sHiCOO tensor.  `dense_modes` ascending; the
    /// remaining modes are block-compressed with edge 2^block_bits.
    SHiCooTensor(std::vector<Index> dims, std::vector<Size> dense_modes,
                 unsigned block_bits);

    Size order() const { return dims_.size(); }
    const std::vector<Index>& dims() const { return dims_; }
    Index dim(Size mode) const { return dims_[mode]; }

    unsigned block_bits() const { return block_bits_; }
    Index block_size() const { return Index{1} << block_bits_; }

    const std::vector<Size>& sparse_modes() const { return sparse_modes_; }
    const std::vector<Size>& dense_modes() const { return dense_modes_; }

    /// Number of sparse coordinates (each owning one dense stripe).
    Size num_sparse() const
    {
        return stripe_volume_ == 0 ? 0 : values_.size() / stripe_volume_;
    }

    /// Values per stripe (product of dense extents).
    Size stripe_volume() const { return stripe_volume_; }

    Size num_blocks() const { return bptr_.empty() ? 0 : bptr_.size() - 1; }
    const std::vector<Size>& bptr() const { return bptr_; }

    /// Block index of block `b` along sparse-mode slot `s`
    /// (s indexes into sparse_modes()).
    BIndex block_index(Size s, Size b) const { return binds_[s][b]; }

    /// Element index of sparse coordinate `pos` along sparse slot `s`.
    EIndex element_index(Size s, Size pos) const { return einds_[s][pos]; }

    /// Reconstructed full index of sparse coordinate `pos` in block `b`
    /// along sparse slot `s`.
    Index sparse_coordinate(Size s, Size b, Size pos) const
    {
        return (static_cast<Index>(binds_[s][b]) << block_bits_) |
               einds_[s][pos];
    }

    /// Pointer to the dense stripe of sparse coordinate `pos`.
    Value* stripe(Size pos) { return values_.data() + pos * stripe_volume_; }
    const Value* stripe(Size pos) const
    {
        return values_.data() + pos * stripe_volume_;
    }

    std::vector<Value>& values() { return values_; }
    const std::vector<Value>& values() const { return values_; }

    /// Appends a block given block coordinates over sparse slots
    /// (arity = sparse_modes().size()); returns block id.
    Size append_block(const BIndex* block_coords);

    /// Appends one sparse coordinate (8-bit offsets per sparse slot) with
    /// a zero-filled stripe to the last block; returns its position.
    Size append_entry(const EIndex* element_coords);

    /// Storage bytes: block metadata + element offsets + value stripes.
    Size storage_bytes() const;

    /// Expands to sCOO (same dense modes).
    ScooTensor to_scoo() const;

    /// Validates invariants; throws PastaError on violation.
    void validate() const;

    std::string describe() const;

  private:
    std::vector<Index> dims_;
    std::vector<Size> sparse_modes_;
    std::vector<Size> dense_modes_;
    unsigned block_bits_ = 7;
    Size stripe_volume_ = 0;
    std::vector<std::vector<BIndex>> binds_;  ///< [sparse slot][block]
    std::vector<Size> bptr_;
    std::vector<std::vector<EIndex>> einds_;  ///< [sparse slot][pos]
    std::vector<Value> values_;               ///< num_sparse x stripe_volume
};

}  // namespace pasta
