#include "core/stream.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/fsutil.hpp"
#include "common/log.hpp"
#include "common/membudget.hpp"
#include "common/parallel.hpp"
#include "core/sort_radix.hpp"
#include "kernels/ttv.hpp"
#include "obs/counters.hpp"

namespace pasta::stream {

namespace {

/// Stack budget for the per-run accumulator row, matching the parallel
/// MTTKRP kernels' limit.
constexpr Size kMaxStackRank = 256;

/// Finest split the planner will consider: 2^12 partitions.
constexpr unsigned kMaxPartitionBits = 12;

/// Working-set bytes charged for a chunk of `n` non-zeros: the gathered
/// COO arrays, a per-chunk sorted copy (TTV planning copies the chunk),
/// and radix key + permutation + apply scratch.  Deliberately
/// conservative — every governor probe a chunk triggers stays at or
/// under this figure, which is what lets tests assert peak <= budget.
std::uint64_t
chunk_cost(Size order, Size n)
{
    return 2 * membudget::coo_bytes(order, n) + std::uint64_t{24} * n;
}

/// Remaining governor budget to plan chunks against; with no budget
/// armed, an eighth of the tensor's full cost (so direct calls to the
/// stream kernels still exercise a real multi-partition sweep).
std::uint64_t
default_chunk_budget(const MappedCooTensor& x)
{
    auto& gov = membudget::MemGovernor::instance();
    if (gov.enabled()) {
        const std::uint64_t budget = gov.budget();
        const std::uint64_t held = gov.reserved();
        return budget > held ? budget - held : 0;
    }
    const std::uint64_t full = chunk_cost(x.order(), x.nnz());
    return std::max(full / 8, chunk_cost(x.order(), Size{1} << 16));
}

std::string
stream_variant_name(const char* kernel, Size partitions)
{
    return std::string(kernel) + "_stream_p" + std::to_string(partitions);
}

void
note_decision(const StreamDecision& d)
{
    obs::set_label("stream.variant", d.variant);
    obs::add("stream.partitions", d.partitions);
}

/// Checkpoint file layout (all little-endian host-order):
///   magic "PSCK" | u32 version | u64 mode | u64 partitions | u64 done |
///   u64 rows | u64 cols | Value data[rows*cols] | u64 fnv64(fields+data)
/// Written to a temp path and renamed, so a kill mid-write can never
/// leave a half-written file that parses.
constexpr char kCkptMagic[4] = {'P', 'S', 'C', 'K'};
constexpr std::uint32_t kCkptVersion = 1;

std::uint64_t
ckpt_checksum(std::uint64_t mode, std::uint64_t partitions,
              std::uint64_t done, std::uint64_t rows, std::uint64_t cols,
              const Value* data)
{
    std::uint64_t h = fnv1a64(&mode, sizeof(mode));
    h = fnv1a64(&partitions, sizeof(partitions), h);
    h = fnv1a64(&done, sizeof(done), h);
    h = fnv1a64(&rows, sizeof(rows), h);
    h = fnv1a64(&cols, sizeof(cols), h);
    return fnv1a64(data, rows * cols * sizeof(Value), h);
}

void
save_mttkrp_checkpoint(const std::string& path, Size mode, Size partitions,
                       Size done, const DenseMatrix& out)
{
    const std::uint64_t m = mode, p = partitions, d = done,
                        r = out.rows(), c = out.cols();
    std::string buf;
    buf.reserve(sizeof(kCkptMagic) + sizeof(kCkptVersion) +
                5 * sizeof(std::uint64_t) + r * c * sizeof(Value) +
                sizeof(std::uint64_t));
    const auto put = [&buf](const void* src, std::size_t n) {
        buf.append(static_cast<const char*>(src), n);
    };
    put(kCkptMagic, sizeof(kCkptMagic));
    put(&kCkptVersion, sizeof(kCkptVersion));
    put(&m, sizeof(m));
    put(&p, sizeof(p));
    put(&d, sizeof(d));
    put(&r, sizeof(r));
    put(&c, sizeof(c));
    put(out.data(), r * c * sizeof(Value));
    const std::uint64_t sum = ckpt_checksum(m, p, d, r, c, out.data());
    put(&sum, sizeof(sum));
    // tmp + fsync + rename + dir fsync: a kill (or power loss) at any
    // point leaves either the previous checkpoint or this one, never a
    // half-written file that parses or a rename the disk forgot.
    fsutil::write_file_durable(path, buf);
}

/// Loads a checkpoint matching (mode, partitions, out shape); returns
/// false — leaving `out` untouched — for a missing, stale, mismatched,
/// or corrupt file, so a bad checkpoint degrades to a fresh sweep
/// instead of poisoning the result.
bool
load_mttkrp_checkpoint(const std::string& path, Size mode, Size partitions,
                       DenseMatrix& out, Size& done)
{
    std::ifstream f(path, std::ios::binary);
    if (!f.good())
        return false;
    char magic[4];
    std::uint32_t version = 0;
    std::uint64_t m = 0, p = 0, d = 0, r = 0, c = 0;
    f.read(magic, sizeof(magic));
    f.read(reinterpret_cast<char*>(&version), sizeof(version));
    f.read(reinterpret_cast<char*>(&m), sizeof(m));
    f.read(reinterpret_cast<char*>(&p), sizeof(p));
    f.read(reinterpret_cast<char*>(&d), sizeof(d));
    f.read(reinterpret_cast<char*>(&r), sizeof(r));
    f.read(reinterpret_cast<char*>(&c), sizeof(c));
    if (!f.good() || std::memcmp(magic, kCkptMagic, 4) != 0 ||
        version != kCkptVersion || m != mode || p != partitions ||
        d > p || r != out.rows() || c != out.cols())
        return false;
    std::vector<Value> data(r * c);
    f.read(reinterpret_cast<char*>(data.data()),
           static_cast<std::streamsize>(data.size() * sizeof(Value)));
    std::uint64_t stored = 0;
    f.read(reinterpret_cast<char*>(&stored), sizeof(stored));
    if (!f.good() ||
        stored != ckpt_checksum(m, p, d, r, c, data.data()))
        return false;
    std::memcpy(out.data(), data.data(), data.size() * sizeof(Value));
    done = d;
    return true;
}

}  // namespace

PartitionPlan
plan_partitions(const MappedCooTensor& x, Size lead_mode,
                std::uint64_t chunk_budget_bytes, Size max_partitions)
{
    PASTA_CHECK_MSG(lead_mode < x.order(),
                    "lead mode " << lead_mode << " out of range");
    PartitionPlan plan;
    plan.lead_mode = lead_mode;

    const unsigned dim_bits = radix::bits_for(x.dim(lead_mode));
    unsigned finest_bits = std::min(dim_bits, kMaxPartitionBits);
    while (finest_bits > 0 &&
           (Size{1} << finest_bits) > std::max<Size>(max_partitions, 1))
        --finest_bits;
    const Size finest = Size{1} << finest_bits;

    // One pass over the lead index column builds the finest histogram;
    // every coarser candidate P aggregates adjacent groups of it.
    std::vector<Size> hist(finest, 0);
    const unsigned finest_shift = dim_bits - finest_bits;
    const Index* lead = x.mode_indices(lead_mode);
    for (Size pos = 0; pos < x.nnz(); ++pos)
        ++hist[static_cast<std::uint64_t>(lead[pos]) >> finest_shift];

    for (unsigned bits = 0;; ++bits) {
        const Size parts = Size{1} << bits;
        const Size group = finest / parts;
        std::vector<Size> counts(parts, 0);
        Size max_count = 0;
        for (Size i = 0; i < parts; ++i) {
            for (Size g = 0; g < group; ++g)
                counts[i] += hist[i * group + g];
            max_count = std::max(max_count, counts[i]);
        }
        const std::uint64_t worst = chunk_cost(x.order(), max_count);
        if (chunk_budget_bytes == 0 || worst <= chunk_budget_bytes ||
            bits == finest_bits) {
            if (chunk_budget_bytes != 0 && worst > chunk_budget_bytes) {
                std::ostringstream oss;
                oss << "out-of-core plan infeasible for " << x.path()
                    << ": finest split (" << parts
                    << " partitions on mode " << lead_mode
                    << ") still needs " << worst
                    << " bytes per chunk against " << chunk_budget_bytes
                    << " available (PASTA_MEM_BYTES)";
                throw membudget::HostOomError(oss.str());
            }
            plan.partitions = parts;
            plan.shift = dim_bits - bits;
            plan.counts = std::move(counts);
            plan.max_count = max_count;
            return plan;
        }
    }
}

CooTensor
gather_partition(const MappedCooTensor& x, const PartitionPlan& plan,
                 Size p)
{
    PASTA_CHECK_MSG(p < plan.partitions, "partition " << p
                                                      << " out of range");
    const Size n = plan.counts[p];
    CooTensor chunk(x.dims());
    CooBulkFill fill = chunk.bulk_fill(n);
    const Size order = x.order();
    std::vector<const Index*> src(order);
    for (Size m = 0; m < order; ++m)
        src[m] = x.mode_indices(m);
    const Value* vals = x.values();
    const Index* lead = src[plan.lead_mode];
    Size out = 0;
    for (Size pos = 0; pos < x.nnz(); ++pos) {
        if ((static_cast<std::uint64_t>(lead[pos]) >> plan.shift) != p)
            continue;
        for (Size m = 0; m < order; ++m)
            fill.modes[m][out] = src[m][pos];
        fill.values[out] = vals[pos];
        ++out;
    }
    PASTA_ASSERT(out == n);
    return chunk;
}

StreamDecision
mttkrp_coo_stream(const MappedCooTensor& x, const FactorList& factors,
                  Size mode, DenseMatrix& out, const StreamOptions& opts)
{
    const Size rank = check_factors(x.dims(), factors);
    PASTA_CHECK_MSG(mode < x.order(), "mode " << mode << " out of range");
    PASTA_CHECK_MSG(out.rows() == x.dim(mode) && out.cols() == rank,
                    "output matrix shape mismatch");
    PASTA_CHECK_MSG(rank <= kMaxStackRank,
                    "rank " << rank << " exceeds kernel limit "
                            << kMaxStackRank);

    // Partitioning by the product mode makes output rows disjoint across
    // partitions: a chunk owns its rows outright, and a checkpointed
    // matrix is complete for every finished partition.
    PartitionPlan plan = plan_partitions(x, mode, default_chunk_budget(x),
                                         opts.max_partitions);

    // Campaign shards sweep a subrange [lo, hi) of the plan; rows are
    // disjoint across partitions, so a range shard owns its output rows
    // outright and ranges union to the full sweep.
    const Size lo = std::min(opts.part_begin, plan.partitions);
    const Size hi = opts.part_end == 0
                        ? plan.partitions
                        : std::min(opts.part_end, plan.partitions);
    PASTA_CHECK_MSG(lo <= hi, "partition range [" << opts.part_begin
                                                  << ", " << opts.part_end
                                                  << ") is inverted");
    const bool ranged = lo != 0 || hi != plan.partitions;

    StreamDecision d;
    d.streamed = true;
    d.partitions = hi - lo;
    d.variant = stream_variant_name("mttkrp", plan.partitions);
    if (ranged)
        d.variant += "_r" + std::to_string(lo) + "-" + std::to_string(hi);
    note_decision(d);

    Size start = lo;
    if (!opts.checkpoint_path.empty()) {
        // A SIGKILL mid-save leaves a stale half-written tmp next to the
        // (still intact) checkpoint; clear it so it can never be
        // mistaken for anything and the next save starts clean.
        std::error_code tmp_ec;
        std::filesystem::remove(opts.checkpoint_path + ".tmp", tmp_ec);
        Size done = 0;
        if (load_mttkrp_checkpoint(opts.checkpoint_path, mode,
                                   plan.partitions, out, done) &&
            done >= lo && done <= hi) {
            start = done;
            d.resumed_from = done - lo;
            PASTA_LOG_INFO << "streaming MTTKRP resuming at partition "
                           << start << "/" << hi << " from "
                           << opts.checkpoint_path;
        } else {
            out.fill(0);
        }
    } else {
        out.fill(0);
    }

    const Size order = x.order();
    for (Size p = start; p < hi; ++p) {
        const Size n = plan.counts[p];
        if (n != 0) {
            // Keys + permutation are the sweep's only scratch beyond the
            // chunk itself; reserving them keeps the governor ledger (and
            // the peak the tests assert on) honest.
            membudget::MemReservation scratch(std::uint64_t{16} * n,
                                              "stream.mttkrp.scratch");
            const CooTensor chunk = gather_partition(x, plan, p);
            std::vector<std::uint64_t> keys(n);
            const Index* rows = chunk.mode_indices(mode).data();
            for (Size q = 0; q < n; ++q)
                keys[q] = rows[q];
            std::vector<Size> perm;
            radix::sort_perm(keys, perm);

            // Row runs over the sorted keys.  The sort is stable, so
            // walking a run through `perm` visits that row's non-zeros in
            // stream order; accumulating serially within the run then
            // reproduces mttkrp_coo_seq's additions exactly, while
            // distinct runs (distinct output rows) go parallel freely.
            std::vector<Size> run_ptr;
            run_ptr.push_back(0);
            for (Size q = 1; q < n; ++q)
                if (keys[q] != keys[q - 1])
                    run_ptr.push_back(q);
            run_ptr.push_back(n);

            parallel_for(
                0, run_ptr.size() - 1, Schedule::kDynamic,
                [&](Size ri) {
                    Value acc[kMaxStackRank];
                    const Index row =
                        rows[perm[run_ptr[ri]]];
                    Value* out_row = out.row(row);
                    for (Size q = run_ptr[ri]; q < run_ptr[ri + 1]; ++q) {
                        const Size pos = perm[q];
                        const Value xval = chunk.value(pos);
                        for (Size r = 0; r < rank; ++r)
                            acc[r] = xval;
                        for (Size m = 0; m < order; ++m) {
                            if (m == mode)
                                continue;
                            const Value* frow =
                                factors[m]->row(chunk.index(m, pos));
                            for (Size r = 0; r < rank; ++r)
                                acc[r] *= frow[r];
                        }
                        for (Size r = 0; r < rank; ++r)
                            out_row[r] += acc[r];
                    }
                },
                1);
        }
        if (!opts.checkpoint_path.empty())
            save_mttkrp_checkpoint(opts.checkpoint_path, mode,
                                   plan.partitions, p + 1, out);
        if (opts.progress)
            opts.progress(p + 1 - lo, hi - lo);
    }
    return d;
}

Size
mttkrp_partition_count(const MappedCooTensor& x, Size mode,
                       Size max_partitions)
{
    return plan_partitions(x, mode, default_chunk_budget(x),
                           max_partitions)
        .partitions;
}

StreamDecision
ttv_coo_stream(const MappedCooTensor& x, const DenseVector& v, Size mode,
               CooTensor& out, const StreamOptions& opts)
{
    PASTA_CHECK_MSG(x.order() >= 2, "TTV needs an order >= 2 tensor");
    PASTA_CHECK_MSG(mode < x.order(), "mode " << mode << " out of range");
    PASTA_CHECK_MSG(v.size() == x.dim(mode),
                    "vector length " << v.size() << " != mode extent "
                                     << x.dim(mode));

    // Lead with the first kept (non-contracted) mode: a fiber fixes all
    // kept coordinates, so no fiber ever spans two partitions, and the
    // kept lead is also the most significant field of the fibers-last
    // sort — chunk outputs concatenate in ttv_coo's exact order.
    const Size lead = mode == 0 ? 1 : 0;
    PartitionPlan plan = plan_partitions(x, lead, default_chunk_budget(x),
                                         opts.max_partitions);
    StreamDecision d;
    d.streamed = true;
    d.partitions = plan.partitions;
    d.variant = stream_variant_name("ttv", plan.partitions);
    note_decision(d);

    std::vector<Index> out_dims;
    for (Size m = 0; m < x.order(); ++m)
        if (m != mode)
            out_dims.push_back(x.dim(m));
    out = CooTensor(std::move(out_dims));

    for (Size p = 0; p < plan.partitions; ++p) {
        if (plan.counts[p] != 0) {
            const CooTensor chunk = gather_partition(x, plan, p);
            const CooTensor piece = ttv_coo(chunk, v, mode);
            for (Size m = 0; m < piece.order(); ++m) {
                const auto& src = piece.mode_indices(m);
                auto& dst = out.mode_indices(m);
                dst.insert(dst.end(), src.begin(), src.end());
            }
            out.values().insert(out.values().end(),
                                piece.values().begin(),
                                piece.values().end());
        }
        if (opts.progress)
            opts.progress(p + 1, plan.partitions);
    }
    return d;
}

StreamDecision
coalesce_streamed(const MappedCooTensor& x, const std::string& out_path,
                  const StreamOptions& opts)
{
    // Lead with mode 0: duplicates agree on every coordinate, so a
    // duplicate run can never straddle partitions, and mode 0 is the
    // most significant field of the lexicographic order — coalesced
    // chunks concatenate into the canonical sorted order directly.
    PartitionPlan plan = plan_partitions(x, 0, default_chunk_budget(x),
                                         opts.max_partitions);
    StreamDecision d;
    d.streamed = true;
    d.partitions = plan.partitions;
    d.variant = stream_variant_name("coalesce", plan.partitions);
    note_decision(d);

    std::vector<std::string> parts;
    for (Size p = 0; p < plan.partitions; ++p) {
        if (plan.counts[p] != 0) {
            CooTensor chunk = gather_partition(x, plan, p);
            chunk.canonicalize(DuplicatePolicy::kSum);
            std::string part = out_path + ".part" + std::to_string(p);
            write_binary_file(part, chunk);
            parts.push_back(std::move(part));
        }
        if (opts.progress)
            opts.progress(p + 1, plan.partitions);
    }
    concat_binary_files(out_path, x.dims(), parts);
    for (const std::string& part : parts)
        std::remove(part.c_str());
    return d;
}

StreamDecision
mttkrp_coo_budgeted(const MappedCooTensor& x, const FactorList& factors,
                    Size mode, DenseMatrix& out, const StreamOptions& opts)
{
    const std::uint64_t full = membudget::coo_bytes(x.order(), x.nnz());
    if (!membudget::degraded() && membudget::would_fit(full)) {
        try {
            const CooTensor t = x.to_coo();
            StreamDecision d;
            d.variant = "mttkrp_inmem";
            note_decision(d);
            mttkrp_coo(t, factors, mode, out);
            return d;
        } catch (const membudget::HostOomError& e) {
            PASTA_LOG_INFO << "in-memory MTTKRP rejected by governor ("
                           << e.what() << "); falling back to streaming";
        }
    }
    return mttkrp_coo_stream(x, factors, mode, out, opts);
}

StreamDecision
ttv_coo_budgeted(const MappedCooTensor& x, const DenseVector& v, Size mode,
                 CooTensor& out, const StreamOptions& opts)
{
    const std::uint64_t full = membudget::coo_bytes(x.order(), x.nnz());
    if (!membudget::degraded() && membudget::would_fit(full)) {
        try {
            const CooTensor t = x.to_coo();
            StreamDecision d;
            d.variant = "ttv_inmem";
            note_decision(d);
            out = ttv_coo(t, v, mode);
            return d;
        } catch (const membudget::HostOomError& e) {
            PASTA_LOG_INFO << "in-memory TTV rejected by governor ("
                           << e.what() << "); falling back to streaming";
        }
    }
    return ttv_coo_stream(x, v, mode, out, opts);
}

StreamDecision
coalesce_budgeted(const MappedCooTensor& x, const std::string& out_path,
                  const StreamOptions& opts)
{
    const std::uint64_t full = membudget::coo_bytes(x.order(), x.nnz());
    if (!membudget::degraded() && membudget::would_fit(full)) {
        try {
            CooTensor t = x.to_coo();
            t.canonicalize(DuplicatePolicy::kSum);
            write_binary_file(out_path, t);
            StreamDecision d;
            d.variant = "coalesce_inmem";
            note_decision(d);
            return d;
        } catch (const membudget::HostOomError& e) {
            PASTA_LOG_INFO << "in-memory coalesce rejected by governor ("
                           << e.what() << "); falling back to streaming";
        }
    }
    return coalesce_streamed(x, out_path, opts);
}

}  // namespace pasta::stream
