#include "core/dense.hpp"

#include <algorithm>
#include <cmath>

namespace pasta {

void
DenseMatrix::randomize(Rng& rng)
{
    for (auto& v : data_)
        v = rng.next_float();
}

DenseMatrix
DenseMatrix::random(Size rows, Size cols, Rng& rng)
{
    DenseMatrix m(rows, cols);
    m.randomize(rng);
    return m;
}

void
DenseVector::randomize(Rng& rng)
{
    for (auto& v : data_)
        v = rng.next_float();
}

DenseVector
DenseVector::random(Size n, Rng& rng)
{
    DenseVector v(n);
    v.randomize(rng);
    return v;
}

double
max_abs_diff(const DenseMatrix& a, const DenseMatrix& b)
{
    PASTA_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(),
                    "max_abs_diff: shape mismatch");
    double worst = 0.0;
    const Size n = a.rows() * a.cols();
    for (Size i = 0; i < n; ++i)
        worst = std::max(worst,
                         std::abs(static_cast<double>(a.data()[i]) -
                                  static_cast<double>(b.data()[i])));
    return worst;
}

}  // namespace pasta
