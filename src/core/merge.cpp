#include "core/merge.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/sort_radix.hpp"
#include "obs/counters.hpp"

namespace pasta::merge {

const char*
merge_path_name(MergePath path)
{
    switch (path) {
      case MergePath::kMerged64Key: return "merged-64key";
      case MergePath::kMergedCmp: return "merged-cmp";
    }
    return "?";
}

Size
exclusive_scan(std::vector<Size>& counts)
{
    Size running = 0;
    for (Size& c : counts) {
        const Size count = c;
        c = running;
        running += count;
    }
    return running;
}

MergeKeys::MergeKeys(const CooTensor& x, const CooTensor& y,
                     const std::vector<Index>& out_dims)
    : na_(x.nnz()), nb_(y.nnz()), order_(out_dims.size())
{
    PASTA_ASSERT_MSG(x.order() == order_ && y.order() == order_,
                     "merge operands must share the output order");
    // Both streams must be packed with identical per-mode field widths or
    // their keys would not be comparable; out_dims (the per-mode max)
    // covers every coordinate of either operand.
    std::vector<Size> mode_order(order_);
    for (Size m = 0; m < order_; ++m)
        mode_order[m] = m;
    if (radix::lex_key_fits(out_dims, mode_order)) {
        path_ = MergePath::kMerged64Key;
        obs::set_label("merge.path", merge_path_name(path_));
        radix::build_lex_keys(x.indices_view(), out_dims, mode_order, kx_);
        radix::build_lex_keys(y.indices_view(), out_dims, mode_order, ky_);
        return;
    }
    path_ = MergePath::kMergedCmp;
    obs::set_label("merge.path", merge_path_name(path_));
    xi_.resize(order_);
    yi_.resize(order_);
    for (Size m = 0; m < order_; ++m) {
        xi_[m] = x.mode_indices(m).data();
        yi_[m] = y.mode_indices(m).data();
    }
}

std::pair<Size, Size>
MergeKeys::diagonal_split(Size d) const
{
    // Binary search for the number of x elements among the first d merged
    // elements.  compare(a, b) <= 0 means x[a] merges at-or-before y[b]
    // (ties to x), so the searched predicate is monotone along the
    // diagonal.
    Size lo = d > nb_ ? d - nb_ : 0;
    Size hi = std::min(d, na_);
    while (lo < hi) {
        const Size mid = lo + (hi - lo) / 2;
        if (compare(mid, d - 1 - mid) <= 0)
            lo = mid + 1;
        else
            hi = mid;
    }
    Size a = lo;
    Size b = d - lo;
    // With ties-to-x, a matched pair (x[a-1], y[b]) sits adjacent in the
    // merged order; a cut between them would hand the two halves of one
    // output to different segments.  Pull y's half left of the cut.
    if (a > 0 && b < nb_ && compare(a - 1, b) == 0)
        ++b;
    return {a, b};
}

MergePartition
MergeKeys::partition(Size segments) const
{
    const Size total = na_ + nb_;
    segments = std::max<Size>(1, std::min(segments, std::max<Size>(total, 1)));
    MergePartition part;
    part.a.resize(segments + 1);
    part.b.resize(segments + 1);
    part.a[0] = 0;
    part.b[0] = 0;
    part.a[segments] = na_;
    part.b[segments] = nb_;
    for (Size s = 1; s < segments; ++s) {
        const auto [a, b] = diagonal_split(total * s / segments);
        part.a[s] = a;
        part.b[s] = b;
    }
    return part;
}

Size
MergeKeys::count_segment(const MergePartition& part, Size s,
                         MergeSemantics semantics) const
{
    Size a = part.a[s];
    Size b = part.b[s];
    const Size a_end = part.a[s + 1];
    const Size b_end = part.b[s + 1];
    const bool keep = semantics == MergeSemantics::kUnion;
    Size count = 0;
    while (a < a_end && b < b_end) {
        const int cmp = compare(a, b);
        if (cmp < 0) {
            count += keep;
            ++a;
        } else if (cmp > 0) {
            count += keep;
            ++b;
        } else {
            ++count;
            ++a;
            ++b;
        }
    }
    if (keep)
        count += (a_end - a) + (b_end - b);
    // Items consumed by this segment, attributed to the executing worker:
    // the suite's per-thread load-imbalance signal for merge-path TEW.
    obs::add_worker("merge.worker_items", worker_id(),
                    (a_end - part.a[s]) + (b_end - part.b[s]));
    return count;
}

}  // namespace pasta::merge
