/// \file
/// Hierarchical COO (HiCOO) format (paper §III-C, Fig. 2a; Li et al. SC'18).
///
/// HiCOO partitions the index space into cubical blocks of edge B = 2^bits
/// (the paper fixes B = 128) and stores each non-zero as (block, element):
/// 32-bit block indices shared by all non-zeros of a block, plus 8-bit
/// element offsets per non-zero.  A block pointer array `bptr` delimits the
/// non-zeros of each block.  Blocks are kept in Morton order, which is what
/// gives HiCOO its locality advantage.  Storage for an Nth-order tensor:
/// n_b(4N + 8) bytes of block metadata + M(N + 4) bytes of elements.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace pasta {

class CooTensor;

/// Atomic-free MTTKRP schedule for one mode: block ids grouped by their
/// output block index along that mode.  Blocks inside one group all write
/// the same B x R output tile; blocks in different groups write disjoint
/// tiles, so one thread per group needs no atomics.  Groups keep the
/// tensor's Morton block order internally (the grouping sort is stable),
/// preserving HiCOO's locality within a group.
struct OwnerSchedule {
    std::vector<Size> blocks;     ///< block ids, grouped by owner tile
    std::vector<Size> group_ptr;  ///< group boundaries, size groups()+1
    Size max_group_blocks = 0;    ///< largest group (load-balance signal)

    Size groups() const
    {
        return group_ptr.empty() ? 0 : group_ptr.size() - 1;
    }
};

/// Arbitrary-order sparse tensor in HiCOO format.
class HiCooTensor {
  public:
    /// Default HiCOO block edge (2^7 = 128), the paper's fixed choice that
    /// keeps per-block matrix tiles inside the last-level cache.
    static constexpr unsigned kDefaultBlockBits = 7;

    HiCooTensor() = default;

    /// Creates an empty HiCOO tensor with the given dims and block bits.
    /// Block edge is 2^block_bits and must fit the 8-bit element index,
    /// i.e. block_bits <= 8.
    HiCooTensor(std::vector<Index> dims, unsigned block_bits);

    Size order() const { return dims_.size(); }
    const std::vector<Index>& dims() const { return dims_; }
    Index dim(Size mode) const { return dims_[mode]; }

    /// log2 of the block edge.
    unsigned block_bits() const { return block_bits_; }

    /// Block edge B.
    Index block_size() const { return Index{1} << block_bits_; }

    /// Number of stored non-zeros M.
    Size nnz() const { return values_.size(); }

    /// Number of non-empty blocks n_b.
    Size num_blocks() const { return bptr_.empty() ? 0 : bptr_.size() - 1; }

    /// Block pointer array, size num_blocks()+1.
    const std::vector<Size>& bptr() const { return bptr_; }

    /// Block index of block `b` along `mode`.
    BIndex block_index(Size mode, Size b) const { return binds_[mode][b]; }

    /// Element index of non-zero `pos` along `mode`.
    EIndex element_index(Size mode, Size pos) const
    {
        return einds_[mode][pos];
    }

    /// Value of non-zero `pos`.
    Value value(Size pos) const { return values_[pos]; }
    Value& value(Size pos) { return values_[pos]; }

    std::vector<Value>& values() { return values_; }
    const std::vector<Value>& values() const { return values_; }

    /// Appends a block with the given block coordinates (arity = order),
    /// whose entries will follow via append_entry; returns block id.
    Size append_block(const BIndex* block_coords);

    /// Appends one non-zero to the most recently appended block.
    void append_entry(const EIndex* element_coords, Value value);

    /// Reconstructs the full coordinate of non-zero `pos` in block `b`.
    Index coordinate(Size mode, Size b, Size pos) const
    {
        return (static_cast<Index>(binds_[mode][b]) << block_bits_) |
               element_index(mode, pos);
    }

    /// Non-zeros in the largest block; drives the GPU block-parallel
    /// MTTKRP load imbalance the paper's Observation 4 discusses.
    Size max_block_nnz() const;

    /// Mean non-zeros per block (the alpha_b compression indicator of the
    /// HiCOO paper; low values mean hyper-sparse tensors HiCOO dislikes).
    double mean_block_nnz() const;

    /// Storage bytes: n_b(4N+8) + M(N+4).
    Size storage_bytes() const;

    /// The block-owner MTTKRP schedule for `mode`.  Built on first use
    /// (coo_to_hicoo prebuilds every mode so timed kernels never pay the
    /// construction) and cached on the tensor; append_block invalidates
    /// the cache.
    const OwnerSchedule& owner_schedule(Size mode) const;

    /// Validates invariants; throws PastaError on violation.
    void validate() const;

    std::string describe() const;

  private:
    std::vector<Index> dims_;
    unsigned block_bits_ = kDefaultBlockBits;
    std::vector<std::vector<BIndex>> binds_;  ///< [mode][block]
    std::vector<Size> bptr_;                  ///< block boundaries, n_b+1
    std::vector<std::vector<EIndex>> einds_;  ///< [mode][pos]
    std::vector<Value> values_;

    /// Lazily built per-mode owner schedules (empty until first use).
    mutable std::vector<OwnerSchedule> owner_cache_;
    mutable std::vector<bool> owner_built_;
};

}  // namespace pasta
