/// \file
/// Sparse tensor index reordering (relabeling).
///
/// Table I's traffic figures are irregular-access upper bounds; the paper
/// notes "data reuse could happen if its access has or gains a good
/// localized pattern naturally or from reordering techniques [23], [33]".
/// This module provides the mode-index relabelings that realize that
/// gain: degree (non-zero count) ordering clusters hub indices together,
/// which densifies HiCOO blocks and improves factor-row reuse in MTTKRP.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/coo_tensor.hpp"

namespace pasta {

/// A relabeling of one mode: perm[old_index] = new_index (a bijection on
/// [0, dim)).
using Relabeling = std::vector<Index>;

/// Relabeling that sorts mode `mode`'s indices by descending non-zero
/// count (hubs first); ties keep ascending original order.
Relabeling degree_relabeling(const CooTensor& x, Size mode);

/// Uniformly random relabeling of extent `n` (ablation baseline).
Relabeling random_relabeling(Size n, Rng& rng);

/// The identity relabeling of extent `n`.
Relabeling identity_relabeling(Size n);

/// Returns a copy of `x` with mode `mode` relabeled by `perm`
/// (lexicographically re-sorted).
CooTensor relabel_mode(const CooTensor& x, Size mode,
                       const Relabeling& perm);

/// Applies degree relabeling to every mode of `x`.
CooTensor degree_reorder(const CooTensor& x);

/// Validates that `perm` is a bijection on [0, n); throws PastaError.
void check_relabeling(const Relabeling& perm, Size n);

}  // namespace pasta
