#include "core/shicoo_tensor.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/error.hpp"
#include "core/block_math.hpp"

namespace pasta {

SHiCooTensor::SHiCooTensor(std::vector<Index> dims,
                           std::vector<Size> dense_modes, unsigned block_bits)
    : dims_(std::move(dims)), dense_modes_(std::move(dense_modes)),
      block_bits_(block_bits)
{
    PASTA_CHECK_MSG(!dims_.empty(), "tensor order must be at least 1");
    PASTA_CHECK_MSG(!dense_modes_.empty(), "sHiCOO needs a dense mode");
    PASTA_CHECK_MSG(dense_modes_.size() < dims_.size(),
                    "sHiCOO needs at least one sparse mode");
    PASTA_CHECK_MSG(std::is_sorted(dense_modes_.begin(), dense_modes_.end()),
                    "dense modes must be ascending");
    PASTA_CHECK_MSG(block_bits_ >= 1 && block_bits_ <= 8,
                    "block bits outside [1,8]");
    stripe_volume_ = 1;
    for (Size dm : dense_modes_) {
        PASTA_CHECK_MSG(dm < dims_.size(), "dense mode out of range");
        stripe_volume_ *= dims_[dm];
    }
    for (Size m = 0; m < dims_.size(); ++m)
        if (!std::binary_search(dense_modes_.begin(), dense_modes_.end(), m))
            sparse_modes_.push_back(m);
    for (Size m : sparse_modes_)
        check_blockable(dims_[m], block_bits_, m);
    binds_.resize(sparse_modes_.size());
    einds_.resize(sparse_modes_.size());
}

Size
SHiCooTensor::append_block(const BIndex* block_coords)
{
    if (bptr_.empty())
        bptr_.push_back(0);
    for (Size s = 0; s < sparse_modes_.size(); ++s)
        binds_[s].push_back(block_coords[s]);
    bptr_.push_back(num_sparse());
    return bptr_.size() - 2;
}

Size
SHiCooTensor::append_entry(const EIndex* element_coords)
{
    PASTA_ASSERT_MSG(!bptr_.empty(), "append_entry before append_block");
    for (Size s = 0; s < sparse_modes_.size(); ++s)
        einds_[s].push_back(element_coords[s]);
    values_.resize(values_.size() + stripe_volume_, 0);
    bptr_.back() = num_sparse();
    return num_sparse() - 1;
}

Size
SHiCooTensor::storage_bytes() const
{
    const Size ns = sparse_modes_.size();
    return num_blocks() * (ns * sizeof(BIndex) + sizeof(Size)) +
           num_sparse() * ns * kEIndexBytes + values_.size() * kValueBytes;
}

ScooTensor
SHiCooTensor::to_scoo() const
{
    ScooTensor out(dims_, dense_modes_);
    out.reserve(num_sparse());
    std::vector<Index> sparse_coords(sparse_modes_.size());
    for (Size b = 0; b < num_blocks(); ++b) {
        for (Size pos = bptr_[b]; pos < bptr_[b + 1]; ++pos) {
            for (Size s = 0; s < sparse_modes_.size(); ++s)
                sparse_coords[s] = sparse_coordinate(s, b, pos);
            const Size out_pos = out.append_stripe(sparse_coords.data());
            std::memcpy(out.stripe(out_pos), stripe(pos),
                        stripe_volume_ * sizeof(Value));
        }
    }
    return out;
}

void
SHiCooTensor::validate() const
{
    const Size nb = num_blocks();
    PASTA_CHECK_MSG(bptr_.empty() || bptr_.front() == 0,
                    "bptr must start at 0");
    PASTA_CHECK_MSG(bptr_.empty() || bptr_.back() == num_sparse(),
                    "bptr must end at num_sparse");
    PASTA_CHECK_MSG(values_.size() == num_sparse() * stripe_volume_,
                    "value array length mismatch");
    for (Size s = 0; s < sparse_modes_.size(); ++s) {
        PASTA_CHECK_MSG(binds_[s].size() == nb, "binds length mismatch");
        PASTA_CHECK_MSG(einds_[s].size() == num_sparse(),
                        "einds length mismatch");
    }
    for (Size b = 0; b < nb; ++b) {
        PASTA_CHECK_MSG(bptr_[b] < bptr_[b + 1], "empty block " << b);
        for (Size pos = bptr_[b]; pos < bptr_[b + 1]; ++pos)
            for (Size s = 0; s < sparse_modes_.size(); ++s)
                PASTA_CHECK_MSG(
                    sparse_coordinate(s, b, pos) < dims_[sparse_modes_[s]],
                    "reconstructed sparse coordinate out of range");
    }
}

std::string
SHiCooTensor::describe() const
{
    std::ostringstream oss;
    oss << order() << "-order sHiCOO(B=" << block_size() << ") ";
    for (Size m = 0; m < order(); ++m)
        oss << dims_[m] << (m + 1 < order() ? "x" : "");
    oss << ", " << num_sparse() << " sparse coords x " << stripe_volume_
        << " dense in " << num_blocks() << " blocks";
    return oss.str();
}

}  // namespace pasta
