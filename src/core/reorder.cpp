#include "core/reorder.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace pasta {

Relabeling
degree_relabeling(const CooTensor& x, Size mode)
{
    PASTA_CHECK_MSG(mode < x.order(), "mode out of range");
    const Index n = x.dim(mode);
    std::vector<Size> degree(n, 0);
    for (Size p = 0; p < x.nnz(); ++p)
        ++degree[x.index(mode, p)];
    std::vector<Index> by_degree(n);
    std::iota(by_degree.begin(), by_degree.end(), 0);
    std::stable_sort(by_degree.begin(), by_degree.end(),
                     [&](Index a, Index b) {
                         return degree[a] > degree[b];
                     });
    Relabeling perm(n);
    for (Index rank = 0; rank < n; ++rank)
        perm[by_degree[rank]] = rank;
    return perm;
}

Relabeling
random_relabeling(Size n, Rng& rng)
{
    Relabeling perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    // Fisher-Yates with the suite's deterministic generator.
    for (Size i = n; i > 1; --i) {
        const Size j = rng.next_below(i);
        std::swap(perm[i - 1], perm[j]);
    }
    return perm;
}

Relabeling
identity_relabeling(Size n)
{
    Relabeling perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    return perm;
}

void
check_relabeling(const Relabeling& perm, Size n)
{
    PASTA_CHECK_MSG(perm.size() == n,
                    "relabeling size " << perm.size() << " != extent "
                                       << n);
    std::vector<bool> seen(n, false);
    for (Index target : perm) {
        PASTA_CHECK_MSG(target < n, "relabeling target out of range");
        PASTA_CHECK_MSG(!seen[target], "relabeling is not a bijection");
        seen[target] = true;
    }
}

CooTensor
relabel_mode(const CooTensor& x, Size mode, const Relabeling& perm)
{
    PASTA_CHECK_MSG(mode < x.order(), "mode out of range");
    check_relabeling(perm, x.dim(mode));
    CooTensor out = x;
    auto& idx = out.mode_indices(mode);
    for (auto& i : idx)
        i = perm[i];
    out.sort_lexicographic();
    return out;
}

CooTensor
degree_reorder(const CooTensor& x)
{
    CooTensor out = x;
    for (Size mode = 0; mode < x.order(); ++mode) {
        const Relabeling perm = degree_relabeling(out, mode);
        auto& idx = out.mode_indices(mode);
        for (auto& i : idx)
            i = perm[i];
    }
    out.sort_lexicographic();
    return out;
}

}  // namespace pasta
