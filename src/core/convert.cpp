#include "core/convert.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "common/error.hpp"
#include "common/membudget.hpp"
#include "common/morton.hpp"
#include "core/sort_radix.hpp"
#include "obs/trace.hpp"
#include "validate/validate.hpp"

namespace {

/// Post-conversion structural check, armed by PASTA_VALIDATE=convert|full.
template <typename Tensor>
const Tensor&
checked(const Tensor& out)
{
    if (pasta::validate::convert_checks_enabled())
        pasta::validate::validate(out).require();
    return out;
}

using pasta::BIndex;
using pasta::Index;
using pasta::Size;

/// Widest block-coordinate field across `modes` of `dims` at the given
/// block edge — the per-mode bit count of a truncated Morton interleave.
unsigned
max_block_field_bits(const std::vector<Index>& dims,
                     const std::vector<Size>& modes, unsigned block_bits)
{
    unsigned bits = 0;
    for (Size m : modes) {
        const Index blocks =
            static_cast<Index>(((dims[m] - 1) >> block_bits) + 1);
        bits = std::max(bits, pasta::radix::bits_for(blocks));
    }
    return bits;
}

/// Interleaves `coords[0..count)` at `field_bits` bits per mode, matching
/// morton.hpp's bit placement for all in-range coordinates.
std::uint64_t
interleave_bits(const Index* coords, Size count, unsigned field_bits)
{
    std::uint64_t key = 0;
    for (unsigned bit = 0; bit < field_bits; ++bit)
        for (Size m = 0; m < count; ++m)
            key |= ((static_cast<std::uint64_t>(coords[m]) >> bit) & 1ULL)
                   << (bit * count + m);
    return key;
}

}  // namespace

namespace pasta {

HiCooTensor
coo_to_hicoo(const CooTensor& x, unsigned block_bits)
{
    PASTA_SPAN("convert.hicoo");
    HiCooTensor out(x.dims(), block_bits);
    if (x.nnz() == 0)
        return out;

    // Staging working set: the Morton-sorted copy plus the radix keys
    // the sort builds over it.
    membudget::check(membudget::coo_bytes(x.order(), x.nnz()) +
                         std::uint64_t{8} * x.nnz(),
                     "hicoo.convert");
    CooTensor sorted = x;
    sorted.sort_morton(block_bits);

    const Size n = x.order();
    const Index mask = out.block_size() - 1;
    std::vector<BIndex> block_coords(n);
    std::vector<BIndex> prev_block(n, kMaxIndex);
    std::vector<EIndex> element_coords(n);
    for (Size p = 0; p < sorted.nnz(); ++p) {
        bool new_block = false;
        for (Size m = 0; m < n; ++m) {
            block_coords[m] = sorted.index(m, p) >> block_bits;
            if (block_coords[m] != prev_block[m])
                new_block = true;
        }
        if (new_block) {
            out.append_block(block_coords.data());
            prev_block = block_coords;
        }
        for (Size m = 0; m < n; ++m)
            element_coords[m] =
                static_cast<EIndex>(sorted.index(m, p) & mask);
        out.append_entry(element_coords.data(), sorted.value(p));
    }
    // Build the per-mode block-owner MTTKRP schedules now, so the timed
    // kernels find them cached on the tensor.
    for (Size m = 0; m < n; ++m)
        out.owner_schedule(m);
    return checked(out);
}

CooTensor
hicoo_to_coo(const HiCooTensor& x)
{
    PASTA_SPAN("convert.hicoo_to_coo");
    CooTensor out(x.dims());
    out.reserve(x.nnz());
    Coordinate c(x.order());
    for (Size b = 0; b < x.num_blocks(); ++b) {
        for (Size p = x.bptr()[b]; p < x.bptr()[b + 1]; ++p) {
            for (Size m = 0; m < x.order(); ++m)
                c[m] = x.coordinate(m, b, p);
            out.append(c, x.value(p));
        }
    }
    out.sort_lexicographic();
    return checked(out);
}

GHiCooTensor
coo_to_ghicoo(const CooTensor& x, std::vector<bool> compressed,
              unsigned block_bits)
{
    PASTA_SPAN("convert.ghicoo");
    GHiCooTensor out(x.dims(), block_bits, std::move(compressed));
    if (x.nnz() == 0)
        return out;

    membudget::check(membudget::coo_bytes(x.order(), x.nnz()) +
                         std::uint64_t{8} * x.nnz(),
                     "ghicoo.convert");

    const Size n = x.order();
    const Index mask = out.block_size() - 1;
    const auto& comp = out.compressed_modes();
    const auto& uncomp = out.uncompressed_modes();

    // Order: Morton over compressed-mode blocks, then compressed element
    // coordinates, then uncompressed coordinates (lexicographic).
    CooTensor sorted = x;
    {
        // Packed-key radix path: [morton(comp blocks)][comp element
        // offsets][uncomp coords].  Equal Morton keys imply equal comp
        // blocks, so ordering by element offsets reproduces the full
        // compressed-coordinate tie-break.
        const unsigned bbits =
            max_block_field_bits(x.dims(), comp, block_bits);
        unsigned total = static_cast<unsigned>(comp.size()) *
                         (bbits + block_bits);
        for (Size m : uncomp)
            total += radix::bits_for(x.dims()[m]);
        if (total <= 64) {
            std::vector<std::uint64_t> keys(sorted.nnz());
            std::vector<Index> bc(comp.size());
            for (Size p = 0; p < sorted.nnz(); ++p) {
                for (Size s = 0; s < comp.size(); ++s)
                    bc[s] = sorted.index(comp[s], p) >> block_bits;
                std::uint64_t key =
                    interleave_bits(bc.data(), bc.size(), bbits);
                for (Size s = 0; s < comp.size(); ++s)
                    key = (key << block_bits) |
                          (sorted.index(comp[s], p) & mask);
                for (Size m : uncomp) {
                    const unsigned w = radix::bits_for(x.dims()[m]);
                    key = (key << w) | sorted.index(m, p);
                }
                keys[p] = key;
            }
            std::vector<Size> perm;
            radix::sort_perm(keys, perm);
            sorted.apply_permutation(perm);
        } else {
            std::vector<MortonKey> keys(sorted.nnz());
            std::vector<Index> bc(comp.size());
            for (Size p = 0; p < sorted.nnz(); ++p) {
                for (Size s = 0; s < comp.size(); ++s)
                    bc[s] = sorted.index(comp[s], p) >> block_bits;
                keys[p] = morton_encode(bc.data(), bc.size());
            }
            std::vector<Size> perm(sorted.nnz());
            std::iota(perm.begin(), perm.end(), 0);
            std::sort(perm.begin(), perm.end(), [&](Size a, Size b) {
                if (!(keys[a] == keys[b]))
                    return keys[a] < keys[b];
                for (Size m : comp)
                    if (sorted.index(m, a) != sorted.index(m, b))
                        return sorted.index(m, a) < sorted.index(m, b);
                for (Size m : uncomp)
                    if (sorted.index(m, a) != sorted.index(m, b))
                        return sorted.index(m, a) < sorted.index(m, b);
                return false;
            });
            sorted.apply_permutation(perm);
        }
    }

    std::vector<BIndex> block_coords(n, 0);
    std::vector<BIndex> prev_block(n, kMaxIndex);
    std::vector<EIndex> element_coords(n, 0);
    std::vector<Index> raw_coords(n, 0);
    for (Size p = 0; p < sorted.nnz(); ++p) {
        bool new_block = false;
        for (Size m : comp) {
            block_coords[m] = sorted.index(m, p) >> block_bits;
            if (block_coords[m] != prev_block[m])
                new_block = true;
        }
        if (new_block) {
            out.append_block(block_coords.data());
            for (Size m : comp)
                prev_block[m] = block_coords[m];
        }
        for (Size m : comp)
            element_coords[m] =
                static_cast<EIndex>(sorted.index(m, p) & mask);
        for (Size m : uncomp)
            raw_coords[m] = sorted.index(m, p);
        out.append_entry(element_coords.data(), raw_coords.data(),
                         sorted.value(p));
    }
    return checked(out);
}

CooTensor
ghicoo_to_coo(const GHiCooTensor& x)
{
    PASTA_SPAN("convert.ghicoo_to_coo");
    CooTensor out(x.dims());
    out.reserve(x.nnz());
    Coordinate c(x.order());
    for (Size b = 0; b < x.num_blocks(); ++b) {
        for (Size p = x.bptr()[b]; p < x.bptr()[b + 1]; ++p) {
            for (Size m = 0; m < x.order(); ++m)
                c[m] = x.coordinate(m, b, p);
            out.append(c, x.value(p));
        }
    }
    out.sort_lexicographic();
    return checked(out);
}

ScooTensor
coo_to_scoo(const CooTensor& x, Size dense_mode)
{
    PASTA_CHECK_MSG(dense_mode < x.order(), "dense mode out of range");
    PASTA_SPAN("convert.scoo");
    ScooTensor out(x.dims(), {dense_mode});

    CooTensor sorted = x;
    sorted.sort_fibers_last(dense_mode);

    const Size n = x.order();
    std::vector<Index> sparse_coords(n - 1);
    Size stripe_pos = kNoMode;
    bool have_stripe = false;
    std::vector<Index> prev(n, kMaxIndex);
    for (Size p = 0; p < sorted.nnz(); ++p) {
        bool new_stripe = !have_stripe;
        for (Size m = 0; m < n; ++m) {
            if (m == dense_mode)
                continue;
            if (sorted.index(m, p) != prev[m])
                new_stripe = true;
        }
        if (new_stripe) {
            Size s = 0;
            for (Size m = 0; m < n; ++m) {
                if (m == dense_mode)
                    continue;
                sparse_coords[s++] = sorted.index(m, p);
                prev[m] = sorted.index(m, p);
            }
            stripe_pos = out.append_stripe(sparse_coords.data());
            have_stripe = true;
        }
        out.stripe(stripe_pos)[sorted.index(dense_mode, p)] +=
            sorted.value(p);
    }
    return checked(out);
}

SHiCooTensor
scoo_to_shicoo(const ScooTensor& x, unsigned block_bits)
{
    PASTA_SPAN("convert.shicoo");
    SHiCooTensor out(x.dims(), x.dense_modes(), block_bits);
    const Size ns = x.sparse_modes().size();
    const Size count = x.num_sparse();
    if (count == 0)
        return out;

    // Morton-sort the sparse coordinates by block.
    std::vector<Size> perm;
    const unsigned bbits =
        max_block_field_bits(x.dims(), x.sparse_modes(), block_bits);
    if (static_cast<unsigned>(ns) * (bbits + block_bits) <= 64) {
        // Packed-key radix path: [morton(blocks)][element offsets].
        const Index emask = out.block_size() - 1;
        std::vector<std::uint64_t> pkeys(count);
        std::vector<Index> bc(ns);
        for (Size pos = 0; pos < count; ++pos) {
            for (Size s = 0; s < ns; ++s)
                bc[s] = x.sparse_index(s, pos) >> block_bits;
            std::uint64_t key = interleave_bits(bc.data(), ns, bbits);
            for (Size s = 0; s < ns; ++s)
                key = (key << block_bits) |
                      (x.sparse_index(s, pos) & emask);
            pkeys[pos] = key;
        }
        radix::sort_perm(pkeys, perm);
    } else {
        std::vector<MortonKey> keys(count);
        std::vector<Index> bc(ns);
        for (Size pos = 0; pos < count; ++pos) {
            for (Size s = 0; s < ns; ++s)
                bc[s] = x.sparse_index(s, pos) >> block_bits;
            keys[pos] = morton_encode(bc.data(), ns);
        }
        perm.resize(count);
        std::iota(perm.begin(), perm.end(), 0);
        std::sort(perm.begin(), perm.end(), [&](Size a, Size b) {
            if (!(keys[a] == keys[b]))
                return keys[a] < keys[b];
            for (Size s = 0; s < ns; ++s)
                if (x.sparse_index(s, a) != x.sparse_index(s, b))
                    return x.sparse_index(s, a) < x.sparse_index(s, b);
            return false;
        });
    }

    const Index mask = out.block_size() - 1;
    std::vector<BIndex> block_coords(ns);
    std::vector<BIndex> prev_block(ns, kMaxIndex);
    std::vector<EIndex> element_coords(ns);
    for (Size i = 0; i < count; ++i) {
        const Size pos = perm[i];
        bool new_block = false;
        for (Size s = 0; s < ns; ++s) {
            block_coords[s] = x.sparse_index(s, pos) >> block_bits;
            if (block_coords[s] != prev_block[s])
                new_block = true;
        }
        if (new_block) {
            out.append_block(block_coords.data());
            prev_block = block_coords;
        }
        for (Size s = 0; s < ns; ++s)
            element_coords[s] =
                static_cast<EIndex>(x.sparse_index(s, pos) & mask);
        const Size out_pos = out.append_entry(element_coords.data());
        std::memcpy(out.stripe(out_pos), x.stripe(pos),
                    x.stripe_volume() * sizeof(Value));
    }
    return checked(out);
}

bool
tensors_almost_equal(const CooTensor& a, const CooTensor& b, double tol)
{
    if (a.order() != b.order() || a.dims() != b.dims())
        return false;
    CooTensor ca = a;
    CooTensor cb = b;
    ca.sort_lexicographic();
    ca.coalesce();
    cb.sort_lexicographic();
    cb.coalesce();
    if (ca.nnz() != cb.nnz())
        return false;
    for (Size p = 0; p < ca.nnz(); ++p) {
        for (Size m = 0; m < ca.order(); ++m)
            if (ca.index(m, p) != cb.index(m, p))
                return false;
        if (std::abs(static_cast<double>(ca.value(p)) -
                     static_cast<double>(cb.value(p))) > tol)
            return false;
    }
    return true;
}

}  // namespace pasta
