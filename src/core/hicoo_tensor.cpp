#include "core/hicoo_tensor.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "core/block_math.hpp"
#include "core/sort_radix.hpp"

namespace pasta {

HiCooTensor::HiCooTensor(std::vector<Index> dims, unsigned block_bits)
    : dims_(std::move(dims)), block_bits_(block_bits)
{
    PASTA_CHECK_MSG(!dims_.empty(), "tensor order must be at least 1");
    PASTA_CHECK_MSG(block_bits_ >= 1 && block_bits_ <= 8,
                    "block bits " << block_bits_
                                  << " outside [1,8] (8-bit element index)");
    for (Size m = 0; m < dims_.size(); ++m)
        check_blockable(dims_[m], block_bits_, m);
    binds_.resize(dims_.size());
    einds_.resize(dims_.size());
}

Size
HiCooTensor::append_block(const BIndex* block_coords)
{
    // Structural change invalidates any cached owner schedules.
    owner_cache_.clear();
    owner_built_.clear();
    if (bptr_.empty())
        bptr_.push_back(0);
    for (Size m = 0; m < order(); ++m)
        binds_[m].push_back(block_coords[m]);
    bptr_.push_back(values_.size());
    return binds_[0].size() - 1;
}

void
HiCooTensor::append_entry(const EIndex* element_coords, Value value)
{
    PASTA_ASSERT_MSG(!bptr_.empty(), "append_entry before append_block");
    for (Size m = 0; m < order(); ++m)
        einds_[m].push_back(element_coords[m]);
    values_.push_back(value);
    bptr_.back() = values_.size();
}

Size
HiCooTensor::max_block_nnz() const
{
    Size worst = 0;
    for (Size b = 0; b < num_blocks(); ++b)
        worst = std::max(worst, bptr_[b + 1] - bptr_[b]);
    return worst;
}

double
HiCooTensor::mean_block_nnz() const
{
    return num_blocks() == 0
               ? 0.0
               : static_cast<double>(nnz()) /
                     static_cast<double>(num_blocks());
}

Size
HiCooTensor::storage_bytes() const
{
    const Size n = order();
    return num_blocks() * (n * sizeof(BIndex) + sizeof(Size)) +
           nnz() * (n * kEIndexBytes + kValueBytes);
}

void
HiCooTensor::validate() const
{
    const Size nb = num_blocks();
    PASTA_CHECK_MSG(bptr_.empty() || bptr_.front() == 0,
                    "bptr must start at 0");
    PASTA_CHECK_MSG(bptr_.empty() || bptr_.back() == nnz(),
                    "bptr must end at nnz");
    const Index max_eind = block_size() - 1;
    for (Size m = 0; m < order(); ++m) {
        PASTA_CHECK_MSG(binds_[m].size() == nb, "binds length mismatch");
        PASTA_CHECK_MSG(einds_[m].size() == nnz(), "einds length mismatch");
        // 64-bit block count: Index arithmetic would wrap for dims near
        // UINT32_MAX and reject every block.
        const Size max_bind = block_count(dims_[m], block_bits_);
        for (BIndex bi : binds_[m])
            PASTA_CHECK_MSG(static_cast<Size>(bi) < max_bind,
                            "block index out of range");
        for (EIndex ei : einds_[m])
            PASTA_CHECK_MSG(ei <= max_eind, "element index out of range");
    }
    for (Size b = 0; b < nb; ++b) {
        PASTA_CHECK_MSG(bptr_[b] < bptr_[b + 1], "empty block " << b);
        for (Size p = bptr_[b]; p < bptr_[b + 1]; ++p) {
            for (Size m = 0; m < order(); ++m)
                PASTA_CHECK_MSG(coordinate(m, b, p) < dims_[m],
                                "reconstructed coordinate out of range");
        }
    }
}

const OwnerSchedule&
HiCooTensor::owner_schedule(Size mode) const
{
    PASTA_CHECK_MSG(mode < order(), "mode " << mode << " out of range");
    if (owner_built_.empty()) {
        owner_cache_.assign(order(), OwnerSchedule{});
        owner_built_.assign(order(), false);
    }
    if (owner_built_[mode])
        return owner_cache_[mode];

    OwnerSchedule& sched = owner_cache_[mode];
    const Size nb = num_blocks();
    if (nb > 0) {
        // Stable radix sort of block ids by output block index: groups
        // come out contiguous and Morton-ordered within.
        std::vector<std::uint64_t> keys(nb);
        for (Size b = 0; b < nb; ++b)
            keys[b] = binds_[mode][b];
        radix::sort_perm(keys, sched.blocks);
        sched.group_ptr.push_back(0);
        for (Size s = 1; s < nb; ++s)
            if (keys[s] != keys[s - 1])
                sched.group_ptr.push_back(s);
        sched.group_ptr.push_back(nb);
        for (Size g = 0; g + 1 < sched.group_ptr.size(); ++g)
            sched.max_group_blocks =
                std::max(sched.max_group_blocks,
                         sched.group_ptr[g + 1] - sched.group_ptr[g]);
    }
    owner_built_[mode] = true;
    return sched;
}

std::string
HiCooTensor::describe() const
{
    std::ostringstream oss;
    oss << order() << "-order HiCOO(B=" << block_size() << ") ";
    for (Size m = 0; m < order(); ++m)
        oss << dims_[m] << (m + 1 < order() ? "x" : "");
    oss << ", " << nnz() << " nnz in " << num_blocks() << " blocks";
    return oss.str();
}

}  // namespace pasta
