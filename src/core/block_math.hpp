/// \file
/// Overflow-safe block arithmetic for the blocked formats (HiCOO family).
///
/// Block counts are `ceil(dim / 2^bits)`.  Computing that in 32-bit Index
/// arithmetic wraps for dims near UINT32_MAX (`dim + block_size - 1`
/// overflows), silently reporting ~0 blocks for the largest dimensions the
/// type can describe.  These helpers widen to 64-bit Size first, which can
/// never overflow for Index dims and block bits in [1, 8].
#pragma once

#include "common/error.hpp"
#include "common/types.hpp"

namespace pasta {

/// Thrown when a dimension cannot be partitioned into blocks (zero extent
/// or unusable block bits).  Names the mode and dim so the offending input
/// is identifiable from the failure record.
class BlockRangeError : public PastaError {
  public:
    explicit BlockRangeError(const std::string& what) : PastaError(what) {}
};

/// Number of blocks of edge 2^bits covering a dimension of extent `dim`,
/// computed in 64-bit arithmetic: `(dim + 2^bits - 1) >> bits` cannot wrap.
inline Size
block_count(Index dim, unsigned bits)
{
    const Size edge = Size{1} << bits;
    return (static_cast<Size>(dim) + edge - 1) >> bits;
}

/// Validates that mode `mode` of extent `dim` can be blocked with
/// 2^bits-edge blocks; throws BlockRangeError naming the mode and dim.
inline void
check_blockable(Index dim, unsigned bits, Size mode)
{
    if (bits < 1 || bits > 8)
        throw BlockRangeError("block bits " + std::to_string(bits) +
                              " out of range [1,8] blocking mode " +
                              std::to_string(mode) + " (dim " +
                              std::to_string(dim) + ")");
    if (dim == 0)
        throw BlockRangeError("mode " + std::to_string(mode) +
                              " has zero extent; cannot block dim " +
                              std::to_string(dim));
}

}  // namespace pasta
