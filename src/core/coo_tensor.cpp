#include "core/coo_tensor.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <unordered_set>

#include "common/error.hpp"
#include "common/membudget.hpp"
#include "common/morton.hpp"
#include "common/parallel.hpp"
#include "core/merge.hpp"
#include "core/sort_radix.hpp"
#include "obs/counters.hpp"

namespace pasta {

namespace {

/// Fixed chunking shared by the coalesce phases: identical boundaries in
/// the count and fill passes keep the scanned offsets valid.
struct Chunking {
    Size chunks = 0;
    Size per = 0;

    explicit Chunking(Size n)
    {
        chunks = std::min<Size>(
            static_cast<Size>(std::max(1, num_threads())), n);
        per = chunks == 0 ? 0 : (n + chunks - 1) / chunks;
    }
};

}  // namespace

CooTensor::CooTensor(std::vector<Index> dims) : dims_(std::move(dims))
{
    PASTA_CHECK_MSG(!dims_.empty(), "tensor order must be at least 1");
    for (Size m = 0; m < dims_.size(); ++m)
        PASTA_CHECK_MSG(dims_[m] > 0, "dimension of mode " << m << " is 0");
    indices_.resize(dims_.size());
}

void
CooTensor::reserve(Size n)
{
    // Governor probe, not a held reservation: the arrays' lifetime is
    // owned by this tensor, so the choke point only has to prove the
    // footprint fits the remaining budget before committing.
    membudget::check(membudget::coo_bytes(order(), n), "coo.reserve");
    for (auto& idx : indices_)
        idx.reserve(n);
    values_.reserve(n);
}

void
CooTensor::append(const Coordinate& coords, Value value)
{
    PASTA_CHECK_MSG(coords.size() == order(),
                    "coordinate arity " << coords.size()
                                        << " != tensor order " << order());
    for (Size m = 0; m < order(); ++m) {
        PASTA_ASSERT_MSG(coords[m] < dims_[m], "coordinate out of range");
        indices_[m].push_back(coords[m]);
    }
    values_.push_back(value);
}

void
CooTensor::resize_nnz(Size n)
{
    if (n > nnz())
        membudget::check(membudget::coo_bytes(order(), n), "coo.resize");
    for (auto& idx : indices_)
        idx.resize(n, 0);
    values_.resize(n, 0);
}

CooBulkFill
CooTensor::bulk_fill(Size n)
{
    resize_nnz(n);
    CooBulkFill out;
    out.modes.resize(order());
    for (Size m = 0; m < order(); ++m)
        out.modes[m] = indices_[m].data();
    out.values = values_.data();
    out.nnz = n;
    return out;
}

Coordinate
CooTensor::coordinate(Size pos) const
{
    Coordinate c(order());
    for (Size m = 0; m < order(); ++m)
        c[m] = indices_[m][pos];
    return c;
}

void
CooTensor::apply_permutation(const std::vector<Size>& perm)
{
    PASTA_ASSERT(perm.size() == nnz());
    std::vector<Value> new_vals(nnz());
    parallel_for_ranges(0, nnz(), [&](Size first, Size last) {
        for (Size p = first; p < last; ++p)
            new_vals[p] = values_[perm[p]];
    });
    values_ = std::move(new_vals);
    std::vector<Index> scratch(nnz());
    for (Size m = 0; m < order(); ++m) {
        parallel_for_ranges(0, nnz(), [&](Size first, Size last) {
            for (Size p = first; p < last; ++p)
                scratch[p] = indices_[m][perm[p]];
        });
        indices_[m].swap(scratch);
    }
}

void
CooTensor::sort_lexicographic()
{
    std::vector<Size> mode_order(order());
    std::iota(mode_order.begin(), mode_order.end(), 0);
    sort_by_mode_order(mode_order);
}

void
CooTensor::sort_by_mode_order(const std::vector<Size>& mode_order)
{
    PASTA_CHECK_MSG(mode_order.size() == order(),
                    "mode order arity mismatch");
    if (nnz() < 2)
        return;
    if (radix::lex_key_fits(dims_, mode_order)) {
        obs::set_label("sort.path", "lex-radix64");
        std::vector<std::uint64_t> keys;
        radix::build_lex_keys(indices_, dims_, mode_order, keys);
        std::vector<Size> perm;
        radix::sort_perm(keys, perm);
        apply_permutation(perm);
        return;
    }
    // Coordinate space too wide for a packed 64-bit key (e.g. three full
    // 32-bit modes): comparator sort fallback.
    obs::set_label("sort.path", "lex-cmp");
    std::vector<Size> perm(nnz());
    std::iota(perm.begin(), perm.end(), 0);
    std::sort(perm.begin(), perm.end(), [&](Size a, Size b) {
        for (Size mo : mode_order) {
            const Index ia = indices_[mo][a];
            const Index ib = indices_[mo][b];
            if (ia != ib)
                return ia < ib;
        }
        return false;
    });
    apply_permutation(perm);
}

void
CooTensor::sort_fibers_last(Size mode)
{
    PASTA_CHECK_MSG(mode < order(), "mode " << mode << " out of range");
    std::vector<Size> mode_order;
    mode_order.reserve(order());
    for (Size m = 0; m < order(); ++m)
        if (m != mode)
            mode_order.push_back(m);
    mode_order.push_back(mode);
    sort_by_mode_order(mode_order);
}

void
CooTensor::sort_morton(unsigned block_bits)
{
    const Size n = order();
    if (nnz() < 2)
        return;
    if (radix::morton_key_fits(dims_, block_bits)) {
        obs::set_label("sort.path", "morton-radix64");
        std::vector<std::uint64_t> packed;
        radix::build_morton_keys(indices_, dims_, block_bits, packed);
        std::vector<Size> perm;
        radix::sort_perm(packed, perm);
        apply_permutation(perm);
        return;
    }
    // Key too wide (high order or huge dims): 128-bit comparator fallback.
    obs::set_label("sort.path", "morton-cmp");
    std::vector<MortonKey> keys(nnz());
    std::vector<Index> block_coord(n);
    for (Size p = 0; p < nnz(); ++p) {
        for (Size m = 0; m < n; ++m)
            block_coord[m] = indices_[m][p] >> block_bits;
        keys[p] = morton_encode(block_coord.data(), n);
    }
    std::vector<Size> perm(nnz());
    std::iota(perm.begin(), perm.end(), 0);
    std::sort(perm.begin(), perm.end(), [&](Size a, Size b) {
        if (!(keys[a] == keys[b]))
            return keys[a] < keys[b];
        // Lexicographic tie-break inside a block keeps element order
        // deterministic for tests and stable round-trips.
        for (Size m = 0; m < n; ++m) {
            if (indices_[m][a] != indices_[m][b])
                return indices_[m][a] < indices_[m][b];
        }
        return false;
    });
    apply_permutation(perm);
}

bool
CooTensor::is_sorted_lexicographic() const
{
    for (Size p = 1; p < nnz(); ++p) {
        int cmp = 0;
        for (Size m = 0; m < order(); ++m) {
            if (indices_[m][p - 1] != indices_[m][p]) {
                cmp = indices_[m][p - 1] < indices_[m][p] ? -1 : 1;
                break;
            }
        }
        if (cmp >= 0)
            return false;
    }
    return true;
}

void
CooTensor::coalesce()
{
    const Size n = nnz();
    if (n == 0)
        return;
    // A position is a run head when its coordinate differs from its
    // predecessor's; each head owns its whole duplicate run, even when
    // the run crosses a chunk boundary.
    auto is_head = [&](Size p) {
        if (p == 0)
            return true;
        for (Size m = 0; m < order(); ++m)
            if (indices_[m][p] != indices_[m][p - 1])
                return true;
        return false;
    };
    const Chunking ck(n);
    std::vector<Size> heads(ck.chunks);
    parallel_for(0, ck.chunks, Schedule::kStatic, [&](Size c) {
        const Size first = c * ck.per;
        const Size last = std::min(n, first + ck.per);
        Size count = 0;
        for (Size p = first; p < last; ++p)
            count += is_head(p);
        heads[c] = count;
    });
    const Size out_n = merge::exclusive_scan(heads);
    if (out_n == n)
        return;  // already duplicate-free
    // Out-of-place fill: compacting in place would have one worker write
    // slots another still reads as sources.
    std::vector<std::vector<Index>> out_idx(order());
    for (auto& idx : out_idx)
        idx.resize(out_n);
    std::vector<Value> out_vals(out_n);
    parallel_for(0, ck.chunks, Schedule::kStatic, [&](Size c) {
        const Size first = c * ck.per;
        const Size last = std::min(n, first + ck.per);
        Size out = heads[c];
        for (Size p = first; p < last; ++p) {
            if (!is_head(p))
                continue;
            // Runs are summed serially in stream order, so the result is
            // bit-identical for every worker count.
            Value v = values_[p];
            for (Size q = p + 1; q < n && !is_head(q); ++q)
                v += values_[q];
            for (Size m = 0; m < order(); ++m)
                out_idx[m][out] = indices_[m][p];
            out_vals[out] = v;
            ++out;
        }
    });
    indices_.swap(out_idx);
    values_.swap(out_vals);
}

Size
CooTensor::count_duplicates() const
{
    const Size n = nnz();
    if (n < 2)
        return 0;
    // Counts fit a double exactly (< 2^53 non-zeros).
    const double dups = parallel_sum(1, n, [&](Size p) {
        for (Size m = 0; m < order(); ++m)
            if (indices_[m][p] != indices_[m][p - 1])
                return 0.0;
        return 1.0;
    });
    return static_cast<Size>(dups + 0.5);
}

void
CooTensor::canonicalize(DuplicatePolicy policy)
{
    sort_lexicographic();
    if (policy == DuplicatePolicy::kSum) {
        coalesce();
        return;
    }
    if (count_duplicates() == 0)
        return;  // parallel fast path; the serial scan below only names
                 // the first offender for the error message
    for (Size p = 1; p < nnz(); ++p) {
        bool same = true;
        for (Size m = 0; m < order(); ++m) {
            if (indices_[m][p] != indices_[m][p - 1]) {
                same = false;
                break;
            }
        }
        if (same) {
            std::ostringstream oss;
            for (Size m = 0; m < order(); ++m)
                oss << (m ? "," : "(") << indices_[m][p];
            oss << ")";
            PASTA_CHECK_MSG(false, "duplicate coordinate "
                                       << oss.str() << " at position " << p
                                       << " rejected by policy");
        }
    }
}

Value
CooTensor::at(const Coordinate& coords) const
{
    PASTA_CHECK_MSG(coords.size() == order(), "coordinate arity mismatch");
    Value total = 0;
    for (Size p = 0; p < nnz(); ++p) {
        bool match = true;
        for (Size m = 0; m < order(); ++m) {
            if (indices_[m][p] != coords[m]) {
                match = false;
                break;
            }
        }
        if (match)
            total += values_[p];
    }
    return total;
}

Size
CooTensor::storage_bytes() const
{
    return (order() + 1) * kIndexBytes * nnz();
}

bool
CooTensor::same_pattern(const CooTensor& other) const
{
    if (order() != other.order() || dims_ != other.dims_ ||
        nnz() != other.nnz())
        return false;
    for (Size m = 0; m < order(); ++m)
        if (indices_[m] != other.indices_[m])
            return false;
    return true;
}

void
CooTensor::validate() const
{
    for (Size m = 0; m < order(); ++m) {
        PASTA_CHECK_MSG(indices_[m].size() == nnz(),
                        "index array length mismatch on mode " << m);
        for (Size p = 0; p < nnz(); ++p)
            PASTA_CHECK_MSG(indices_[m][p] < dims_[m],
                            "index " << indices_[m][p] << " out of range "
                                     << dims_[m] << " on mode " << m);
    }
}

std::string
CooTensor::describe() const
{
    std::ostringstream oss;
    oss << order() << "-order ";
    for (Size m = 0; m < order(); ++m)
        oss << dims_[m] << (m + 1 < order() ? "x" : "");
    oss << ", " << nnz() << " nnz";
    return oss.str();
}

CooTensor
CooTensor::random(const std::vector<Index>& dims, Size nnz, Rng& rng)
{
    CooTensor t(dims);
    double capacity = 1.0;
    for (Index d : dims)
        capacity *= static_cast<double>(d);
    PASTA_CHECK_MSG(static_cast<double>(nnz) <= capacity,
                    "requested nnz exceeds tensor capacity");
    // Hash-based rejection keeps coordinates distinct.
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(nnz * 2);
    t.reserve(nnz);
    Coordinate c(dims.size());
    while (t.nnz() < nnz) {
        std::uint64_t h = 1469598103934665603ULL;
        for (Size m = 0; m < dims.size(); ++m) {
            c[m] = rng.next_index(dims[m]);
            h = (h ^ c[m]) * 1099511628211ULL;
        }
        if (seen.insert(h).second)
            t.append(c, rng.next_float() + 0.5f);
    }
    t.sort_lexicographic();
    // The hash may (rarely) collide two distinct coordinates or admit two
    // equal ones; coalesce guarantees the sorted-unique invariant.
    t.coalesce();
    return t;
}

}  // namespace pasta
