#include "core/ghicoo_tensor.hpp"

#include <sstream>

#include "common/error.hpp"
#include "core/block_math.hpp"

namespace pasta {

GHiCooTensor::GHiCooTensor(std::vector<Index> dims, unsigned block_bits,
                           std::vector<bool> compressed)
    : dims_(std::move(dims)), block_bits_(block_bits),
      compressed_(std::move(compressed))
{
    PASTA_CHECK_MSG(!dims_.empty(), "tensor order must be at least 1");
    PASTA_CHECK_MSG(compressed_.size() == dims_.size(),
                    "compression mask arity mismatch");
    PASTA_CHECK_MSG(block_bits_ >= 1 && block_bits_ <= 8,
                    "block bits outside [1,8]");
    binds_.resize(dims_.size());
    einds_.resize(dims_.size());
    raw_inds_.resize(dims_.size());
    for (Size m = 0; m < dims_.size(); ++m) {
        if (compressed_[m])
            compressed_modes_.push_back(m);
        else
            uncompressed_modes_.push_back(m);
    }
    PASTA_CHECK_MSG(!compressed_modes_.empty(),
                    "gHiCOO needs at least one compressed mode");
    for (Size m : compressed_modes_)
        check_blockable(dims_[m], block_bits_, m);
}

Size
GHiCooTensor::append_block(const BIndex* block_coords)
{
    if (bptr_.empty())
        bptr_.push_back(0);
    for (Size m : compressed_modes_)
        binds_[m].push_back(block_coords[m]);
    bptr_.push_back(values_.size());
    return bptr_.size() - 2;
}

void
GHiCooTensor::append_entry(const EIndex* element_coords,
                           const Index* raw_coords, Value value)
{
    PASTA_ASSERT_MSG(!bptr_.empty(), "append_entry before append_block");
    for (Size m : compressed_modes_)
        einds_[m].push_back(element_coords[m]);
    for (Size m : uncompressed_modes_)
        raw_inds_[m].push_back(raw_coords[m]);
    values_.push_back(value);
    bptr_.back() = values_.size();
}

Size
GHiCooTensor::storage_bytes() const
{
    const Size nc = compressed_modes_.size();
    const Size nu = uncompressed_modes_.size();
    return num_blocks() * (nc * sizeof(BIndex) + sizeof(Size)) +
           nnz() * (nc * kEIndexBytes + nu * kIndexBytes + kValueBytes);
}

void
GHiCooTensor::validate() const
{
    const Size nb = num_blocks();
    PASTA_CHECK_MSG(bptr_.empty() || bptr_.front() == 0,
                    "bptr must start at 0");
    PASTA_CHECK_MSG(bptr_.empty() || bptr_.back() == nnz(),
                    "bptr must end at nnz");
    for (Size m : compressed_modes_) {
        PASTA_CHECK_MSG(binds_[m].size() == nb, "binds length mismatch");
        PASTA_CHECK_MSG(einds_[m].size() == nnz(), "einds length mismatch");
    }
    for (Size m : uncompressed_modes_) {
        PASTA_CHECK_MSG(raw_inds_[m].size() == nnz(),
                        "raw index length mismatch");
        for (Index idx : raw_inds_[m])
            PASTA_CHECK_MSG(idx < dims_[m], "raw index out of range");
    }
    for (Size b = 0; b < nb; ++b) {
        PASTA_CHECK_MSG(bptr_[b] < bptr_[b + 1], "empty block " << b);
        for (Size p = bptr_[b]; p < bptr_[b + 1]; ++p)
            for (Size m = 0; m < order(); ++m)
                PASTA_CHECK_MSG(coordinate(m, b, p) < dims_[m],
                                "reconstructed coordinate out of range");
    }
}

std::string
GHiCooTensor::describe() const
{
    std::ostringstream oss;
    oss << order() << "-order gHiCOO(B=" << block_size() << ", comp=";
    for (Size m = 0; m < order(); ++m)
        oss << (compressed_[m] ? '1' : '0');
    oss << ") ";
    for (Size m = 0; m < order(); ++m)
        oss << dims_[m] << (m + 1 < order() ? "x" : "");
    oss << ", " << nnz() << " nnz in " << num_blocks() << " blocks";
    return oss.str();
}

}  // namespace pasta
