/// \file
/// Semi-sparse COO (sCOO) format (paper §III-A, Fig. 1b).
///
/// A semi-sparse tensor has one or more *dense* modes: every fiber along a
/// dense mode is a fully dense vector.  sCOO keeps COO index arrays for the
/// sparse modes only and stores, per sparse coordinate, a dense stripe of
/// values covering the dense modes.  The TTM output Y = X x_n U is exactly
/// such a tensor: mode n becomes dense with extent R (sparse-dense
/// property, §III-B1).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/coo_tensor.hpp"

namespace pasta {

/// Raw mutable views for bulk parallel stripe fills: one pointer per
/// sparse-mode slot, `num_sparse` coordinates each, stripes zero-filled.
/// Obtained from ScooTensor::bulk_fill_stripes.
struct ScooBulkFill {
    std::vector<Index*> sparse;
    Size num_sparse = 0;
};

/// Arbitrary-order semi-sparse tensor with dense mode(s).
class ScooTensor {
  public:
    ScooTensor() = default;

    /// Creates an empty semi-sparse tensor.  `dense_modes` lists the modes
    /// stored densely (ascending, at least one, fewer than order).
    ScooTensor(std::vector<Index> dims, std::vector<Size> dense_modes);

    /// Total number of modes (sparse + dense).
    Size order() const { return dims_.size(); }

    const std::vector<Index>& dims() const { return dims_; }
    Index dim(Size mode) const { return dims_[mode]; }

    /// Modes stored sparsely / densely, each ascending.
    const std::vector<Size>& sparse_modes() const { return sparse_modes_; }
    const std::vector<Size>& dense_modes() const { return dense_modes_; }

    /// Number of stored sparse coordinates (one dense stripe each).
    Size num_sparse() const { return values_.empty() && stripe_volume() == 0
                                  ? 0
                                  : values_.size() / stripe_volume(); }

    /// Product of dense-mode extents: values per stripe.
    Size stripe_volume() const { return stripe_volume_; }

    /// Reserves room for `n` sparse coordinates.
    void reserve(Size n);

    /// Appends one sparse coordinate (arity = sparse_modes().size()) with a
    /// zero-filled stripe; returns its position.
    Size append_stripe(const Index* sparse_coords);

    /// Resizes to exactly `n` sparse coordinates (stripes zero-filled)
    /// and returns raw index pointers for a bulk parallel fill — the
    /// append-free path the TTM plan builder uses.  Every slot must be
    /// written with in-range indices.
    ScooBulkFill bulk_fill_stripes(Size n);

    /// Index of sparse coordinate `pos` along sparse mode slot `s`
    /// (s indexes into sparse_modes()).
    Index sparse_index(Size s, Size pos) const
    {
        return sparse_indices_[s][pos];
    }

    std::vector<Index>& sparse_mode_indices(Size s)
    {
        return sparse_indices_[s];
    }
    const std::vector<Index>& sparse_mode_indices(Size s) const
    {
        return sparse_indices_[s];
    }

    /// Pointer to the dense stripe of sparse coordinate `pos`
    /// (stripe_volume() contiguous values, row-major over dense modes in
    /// dense_modes() order).
    Value* stripe(Size pos) { return values_.data() + pos * stripe_volume_; }
    const Value* stripe(Size pos) const
    {
        return values_.data() + pos * stripe_volume_;
    }

    std::vector<Value>& values() { return values_; }
    const std::vector<Value>& values() const { return values_; }

    /// Element lookup by full coordinate; 0 when the sparse part is absent.
    /// Linear scan over sparse coordinates; tests/small tensors only.
    Value at(const Coordinate& coords) const;

    /// Storage bytes: sparse indices + dense value stripes.
    Size storage_bytes() const;

    /// Expands to plain COO, dropping exact zeros inside stripes.
    CooTensor to_coo() const;

    /// Validates invariants; throws PastaError on violation.
    void validate() const;

    std::string describe() const;

  private:
    std::vector<Index> dims_;
    std::vector<Size> sparse_modes_;
    std::vector<Size> dense_modes_;
    Size stripe_volume_ = 0;
    std::vector<std::vector<Index>> sparse_indices_;  ///< [slot][pos]
    std::vector<Value> values_;  ///< num_sparse x stripe_volume
};

}  // namespace pasta
