/// \file
/// Chunked out-of-core kernels over coordinate partitions (ROADMAP item
/// 1; streaming scheme after "Efficient, Out-of-Memory Sparse MTTKRP on
/// Massively Parallel Architectures", PAPERS.md).
///
/// The partition scheme reuses the radix-key machinery: pick one *lead*
/// mode, split its index range by its top bits into P = 2^k partitions,
/// and sweep the tensor one partition at a time.  Because the lead mode
/// is the most significant field of the lexicographic sort key, each
/// partition is a contiguous range of the globally sorted order — so a
/// per-chunk stable sort is exactly the restriction of the global stable
/// sort, and concatenating per-chunk results reproduces the in-memory
/// kernel's output bit for bit:
///
///  - coalesce_streamed leads with mode 0: duplicates share all
///    coordinates, hence a partition; per-chunk canonicalize(kSum) sums
///    each duplicate run serially in stream order, same as the global
///    coalesce.  Output goes to a PSTB v3 file, written section-wise
///    with a two-pass sweep so no full tensor is ever resident.
///  - mttkrp_coo_stream leads with the product mode: output rows are
///    disjoint across partitions; within a chunk a stable single-key
///    radix sort groups rows, and each row accumulates serially in
///    stream order — bit-identical to mttkrp_coo_seq at every thread
///    count (parallelism is across row runs, never within one).
///  - ttv_coo_stream leads with the first *kept* mode: a fiber fixes all
///    kept modes, so fibers never span partitions; each chunk runs the
///    ordinary ttv plan/exec and chunk outputs concatenate into
///    ttv_coo's exact output.
///
/// Bit-identity holds on the stable radix sort path (per-mode index
/// ranges packing into 64-bit keys — every suite dataset).  On the
/// comparator fallback the chunked results are still deterministic
/// (std::stable_sort), but the in-memory kernels' std::sort makes no
/// ordering promise for duplicate coordinates there.
///
/// The *_budgeted entry points consult the memory governor: when the
/// whole tensor fits the remaining budget (and the trial harness has not
/// armed degraded mode after a HostOomError), they materialize and run
/// the in-memory kernel; otherwise they stream.  The decision is
/// recorded as an obs label "stream.variant" (e.g. "mttkrp_stream_p16",
/// "ttv_inmem") so journals and CSV profiles carry the routing, exactly
/// like MTTKRP's contention variant.
///
/// mttkrp_coo_stream optionally checkpoints: after each partition it
/// atomically persists {partition counter, output matrix, checksum} to
/// StreamOptions::checkpoint_path, and a rerun pointing at the same path
/// resumes at the first incomplete partition — this is what lets a
/// killed out-of-core trial restart without redoing finished work.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/coo_tensor.hpp"
#include "core/dense.hpp"
#include "io/binary_io.hpp"
#include "kernels/mttkrp.hpp"

namespace pasta::stream {

/// Knobs for one streamed sweep.
struct StreamOptions {
    /// Cap on the partition count P (power of two; planning doubles P
    /// until the largest chunk fits the budget or this cap is hit).
    Size max_partitions = 4096;

    /// Called after each completed partition with (done, total).  A
    /// throwing hook aborts the sweep — tests use this to simulate a
    /// mid-campaign kill between checkpoints.
    std::function<void(Size done, Size total)> progress;

    /// When non-empty, mttkrp_coo_stream persists per-partition state
    /// here (write-temp + fsync + rename + dir fsync, FNV-checksummed)
    /// and resumes from a matching file on the next run.  A stale
    /// `<path>.tmp` left by a SIGKILL'd writer is removed at sweep
    /// entry.
    std::string checkpoint_path;

    /// Partition subrange [part_begin, part_end) for campaign shards
    /// that split one sweep across worker processes (MTTKRP only:
    /// output rows are disjoint across partitions, so each range owns
    /// its rows outright).  part_end == 0 means "through the last
    /// partition"; the default (0, 0) sweeps everything.
    Size part_begin = 0;
    Size part_end = 0;
};

/// How a budgeted entry point routed and how far it got; mirrored into
/// the obs label "stream.variant" and the journal's partition fields.
struct StreamDecision {
    bool streamed = false;    ///< false: in-memory kernel ran
    Size partitions = 1;      ///< P of the sweep (1 for in-memory)
    Size resumed_from = 0;    ///< partitions skipped via checkpoint
    std::string variant;      ///< e.g. "mttkrp_stream_p16"
};

/// Partition table over one lead mode of a mapped tensor: partition of a
/// non-zero = lead index >> shift.
struct PartitionPlan {
    Size lead_mode = 0;
    unsigned shift = 0;          ///< bits_for(dim) - log2(partitions)
    Size partitions = 1;
    std::vector<Size> counts;    ///< per-partition non-zero counts
    Size max_count = 0;          ///< largest partition
};

/// Builds the partition plan for `lead_mode`: the smallest power-of-two
/// P (up to `max_partitions`) whose largest chunk's COO footprint fits
/// `chunk_budget_bytes`.  A zero budget plans a single partition.
/// Throws membudget::HostOomError when even the finest split does not
/// fit.
PartitionPlan plan_partitions(const MappedCooTensor& x, Size lead_mode,
                              std::uint64_t chunk_budget_bytes,
                              Size max_partitions);

/// Materializes partition `p` (stream order preserved, governor-
/// checked).  The chunk is neither sorted nor coalesced.
CooTensor gather_partition(const MappedCooTensor& x,
                           const PartitionPlan& plan, Size p);

/// Streamed canonicalize-sum: sorts and coalesces `x` partition by
/// partition and writes the result to `out_path` as PSTB v3, never
/// holding more than one chunk resident.  Bit-identical to
/// to_coo().canonicalize(kSum) on the stable sort path.  Returns the
/// sweep decision (variant "coalesce_stream_pN").
StreamDecision coalesce_streamed(const MappedCooTensor& x,
                                 const std::string& out_path,
                                 const StreamOptions& opts = {});

/// Streaming mode-`mode` MTTKRP: sweeps partitions of the product mode,
/// accumulating disjoint row blocks of `out`.  Bit-identical to
/// mttkrp_coo_seq at every thread count.  Honors
/// StreamOptions::checkpoint_path for kill/resume.
StreamDecision mttkrp_coo_stream(const MappedCooTensor& x,
                                 const FactorList& factors, Size mode,
                                 DenseMatrix& out,
                                 const StreamOptions& opts = {});

/// Streaming TTV contracting `mode`: sweeps partitions of the first
/// kept mode, running the ordinary COO-TTV plan/exec per chunk; chunk
/// outputs concatenate into ttv_coo's exact output (which must fit in
/// memory — it is one non-zero per fiber; the *input* working set is
/// what stays bounded).  Requires order >= 2.
StreamDecision ttv_coo_stream(const MappedCooTensor& x,
                              const DenseVector& v, Size mode,
                              CooTensor& out,
                              const StreamOptions& opts = {});

/// The partition count the default-budget streaming MTTKRP sweep over
/// `x` would use for product mode `mode` — campaign drivers call this
/// to split one sweep into deterministic partition-range shards (every
/// process sees the same mapped file and budget, hence the same plan).
Size mttkrp_partition_count(const MappedCooTensor& x, Size mode,
                            Size max_partitions = 4096);

/// Budgeted MTTKRP over a mapped tensor: materializes and runs the
/// in-memory kernel when the governor grants the full COO footprint and
/// degraded mode is off; streams otherwise.  Sets obs label
/// "stream.variant" either way.
StreamDecision mttkrp_coo_budgeted(const MappedCooTensor& x,
                                   const FactorList& factors, Size mode,
                                   DenseMatrix& out,
                                   const StreamOptions& opts = {});

/// Budgeted TTV over a mapped tensor (see mttkrp_coo_budgeted).
StreamDecision ttv_coo_budgeted(const MappedCooTensor& x,
                                const DenseVector& v, Size mode,
                                CooTensor& out,
                                const StreamOptions& opts = {});

/// Budgeted canonicalize-sum to a PSTB v3 file (see mttkrp_coo_budgeted).
StreamDecision coalesce_budgeted(const MappedCooTensor& x,
                                 const std::string& out_path,
                                 const StreamOptions& opts = {});

}  // namespace pasta::stream
