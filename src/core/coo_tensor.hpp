/// \file
/// Coordinate (COO) format for arbitrary-order sparse tensors (paper §III-A,
/// Fig. 1a).
///
/// Values live in one array; each mode contributes one 32-bit index array of
/// the same length.  Storage of an Nth-order tensor with M non-zeros is
/// 4(N+1)M bytes, exactly the figure the paper's Table I analysis assumes.
/// COO is mode-generic: a single representation serves computations along
/// every mode, which is why the suite builds on it.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace pasta {

/// What to do with duplicate coordinates during canonicalization.
/// Producers (file readers, generators) must choose explicitly instead of
/// assuming their input is duplicate-free.
enum class DuplicatePolicy {
    kReject,  ///< throw PastaError naming the first duplicate coordinate
    kSum,     ///< merge duplicates by summing their values (coalesce)
};

/// Raw mutable views into one tensor's arrays for bulk parallel fills:
/// one pointer per mode plus the value pointer, all `nnz` long.  Obtained
/// from CooTensor::bulk_fill; every slot must be written before the
/// tensor is used (contents are unspecified until then).
struct CooBulkFill {
    std::vector<Index*> modes;
    Value* values = nullptr;
    Size nnz = 0;
};

/// Arbitrary-order sparse tensor in coordinate format.
class CooTensor {
  public:
    CooTensor() = default;

    /// Creates an empty tensor with the given per-mode dimension sizes.
    explicit CooTensor(std::vector<Index> dims);

    /// Number of modes (the tensor order N).
    Size order() const { return dims_.size(); }

    /// Per-mode dimension sizes.
    const std::vector<Index>& dims() const { return dims_; }

    /// Dimension size of one mode.
    Index dim(Size mode) const { return dims_[mode]; }

    /// Number of stored non-zeros M.
    Size nnz() const { return values_.size(); }

    /// Reserves space for `n` non-zeros.
    void reserve(Size n);

    /// Appends one non-zero.  `coords` must have order() entries, each in
    /// range for its mode.  Duplicate coordinates are permitted until
    /// coalesce() is called.  (Deliberately no raw-pointer overload: a
    /// braced `{0}` would silently convert to a null pointer.)
    void append(const Coordinate& coords, Value value);

    /// Resizes to `n` non-zeros (new entries zero-valued at the origin).
    /// Used by pre-processing stages that fill indices afterwards.
    void resize_nnz(Size n);

    /// Resizes to exactly `n` non-zeros and returns raw pointers for a
    /// bulk parallel fill.  This is the append-free materialization path
    /// used by the merge engine and the TTV/TTM plan builders: workers
    /// write disjoint slots directly instead of serializing on append.
    /// The caller is responsible for writing every slot with in-range
    /// indices (validate() checks after the fact).
    CooBulkFill bulk_fill(Size n);

    /// Index of non-zero `pos` along `mode`.
    Index index(Size mode, Size pos) const { return indices_[mode][pos]; }

    /// Mutable/const access to one mode's whole index array.
    std::vector<Index>& mode_indices(Size mode) { return indices_[mode]; }
    const std::vector<Index>& mode_indices(Size mode) const
    {
        return indices_[mode];
    }

    /// All index arrays at once ([mode][pos]), the layout the radix key
    /// builders and the merge engine consume.
    const std::vector<std::vector<Index>>& indices_view() const
    {
        return indices_;
    }

    /// Value of non-zero `pos`.
    Value value(Size pos) const { return values_[pos]; }
    Value& value(Size pos) { return values_[pos]; }

    /// Mutable/const access to the value array.
    std::vector<Value>& values() { return values_; }
    const std::vector<Value>& values() const { return values_; }

    /// Full coordinate of non-zero `pos` (allocates; use in tests/IO only).
    Coordinate coordinate(Size pos) const;

    /// Sorts non-zeros lexicographically by mode order 0,1,...,N-1.
    void sort_lexicographic();

    /// Sorts lexicographically by the given permutation of modes
    /// (`mode_order[0]` is the most significant mode).
    void sort_by_mode_order(const std::vector<Size>& mode_order);

    /// Sorts so that non-zeros of one mode-`mode` fiber are contiguous and
    /// ordered by that mode within the fiber: lexicographic by all modes
    /// except `mode`, then by `mode`.  This is the pre-processing order
    /// required by TTV/TTM (Algorithm 1, line 1).
    void sort_fibers_last(Size mode);

    /// Sorts non-zeros by the Morton order of their block coordinates with
    /// blocks of edge 2^block_bits, breaking ties lexicographically inside
    /// a block.  This is the ordering HiCOO conversion relies on.
    void sort_morton(unsigned block_bits);

    /// True when non-zeros are sorted lexicographically (mode order
    /// 0..N-1) with no duplicate coordinates.
    bool is_sorted_lexicographic() const;

    /// Merges duplicate coordinates by summing their values.  Requires the
    /// tensor to be lexicographically sorted first.  Parallel two-pass
    /// (count run heads -> exclusive scan -> fill); each duplicate run is
    /// summed serially in stream order, so the result is bit-identical
    /// for every worker count.
    void coalesce();

    /// Number of non-zeros sharing a coordinate with an earlier non-zero.
    /// Requires the tensor to be lexicographically sorted first.
    Size count_duplicates() const;

    /// Sorts lexicographically and applies `policy` to duplicate
    /// coordinates: kReject throws PastaError naming the first duplicate,
    /// kSum coalesces.  Afterwards is_sorted_lexicographic() holds.
    void canonicalize(DuplicatePolicy policy);

    /// Looks up the value at `coords`, 0 when absent.  Linear scan; for
    /// tests and small tensors only.
    Value at(const Coordinate& coords) const;

    /// Storage footprint in bytes: 4(N+1)M (32-bit indices + 32-bit vals).
    Size storage_bytes() const;

    /// True when `other` has identical order, dims, and coordinates (in
    /// the same order); values may differ.
    bool same_pattern(const CooTensor& other) const;

    /// Validates internal invariants (index ranges, array lengths); throws
    /// PastaError when violated.  Used by IO paths and tests.
    void validate() const;

    /// One-line human-readable description ("3-order 16x16x16, 42 nnz").
    std::string describe() const;

    /// Generates a tensor with `nnz` distinct uniform-random coordinates
    /// and uniform values in [0,1), lexicographically sorted.
    static CooTensor random(const std::vector<Index>& dims, Size nnz,
                            Rng& rng);

    /// Applies `perm` (a permutation of [0,nnz)) to all arrays:
    /// new position p holds old non-zero perm[p].
    void apply_permutation(const std::vector<Size>& perm);

  private:
    std::vector<Index> dims_;
    std::vector<std::vector<Index>> indices_;  ///< indices_[mode][pos]
    std::vector<Value> values_;
};

}  // namespace pasta
