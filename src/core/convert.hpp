/// \file
/// Conversions between the suite's sparse tensor formats.
///
/// Conversions are part of pre-processing, never of timed kernels: the
/// paper's algorithms take tensors already laid out in the target format.
/// All conversions are lossless (round-trips are exercised by tests).
#pragma once

#include <vector>

#include "core/coo_tensor.hpp"
#include "core/ghicoo_tensor.hpp"
#include "core/hicoo_tensor.hpp"
#include "core/scoo_tensor.hpp"
#include "core/shicoo_tensor.hpp"

namespace pasta {

/// Converts COO to HiCOO with block edge 2^block_bits.  Internally sorts a
/// copy of `x` into Morton block order (the HiCOO invariant) and splits it
/// into non-empty blocks.
HiCooTensor coo_to_hicoo(const CooTensor& x,
                         unsigned block_bits = HiCooTensor::kDefaultBlockBits);

/// Expands HiCOO back to COO (lexicographically sorted).
CooTensor hicoo_to_coo(const HiCooTensor& x);

/// Converts COO to gHiCOO.  `compressed[m]` selects block compression for
/// mode m.  Entries are ordered Morton-by-compressed-block, then
/// lexicographically by compressed element coordinates, then by the
/// uncompressed modes — so when exactly one mode is uncompressed, each
/// block holds whole fibers of that mode, contiguously (the property
/// HiCOO-TTV/TTM rely on).
GHiCooTensor coo_to_ghicoo(const CooTensor& x, std::vector<bool> compressed,
                           unsigned block_bits =
                               HiCooTensor::kDefaultBlockBits);

/// Expands gHiCOO back to COO (lexicographically sorted).
CooTensor ghicoo_to_coo(const GHiCooTensor& x);

/// Compacts a COO tensor whose mode `dense_mode` is (treated as) dense
/// into sCOO: groups non-zeros sharing all other coordinates into one
/// stripe.  Requires no special ordering of `x` (a sorted copy is made).
ScooTensor coo_to_scoo(const CooTensor& x, Size dense_mode);

/// Converts sCOO to sHiCOO (blocking the sparse modes).
SHiCooTensor scoo_to_shicoo(const ScooTensor& x,
                            unsigned block_bits =
                                HiCooTensor::kDefaultBlockBits);

/// True when the two tensors hold the same non-zeros with values equal to
/// within `tol` (both are canonicalized by lexicographic sort internally).
bool tensors_almost_equal(const CooTensor& a, const CooTensor& b,
                          double tol = 1e-4);

}  // namespace pasta
