#include "core/fibers.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pasta {

Size
FiberPartition::max_fiber_length() const
{
    Size longest = 0;
    for (Size f = 0; f < num_fibers(); ++f)
        longest = std::max(longest, fiber_length(f));
    return longest;
}

FiberPartition
compute_fibers(const CooTensor& x, Size mode)
{
    PASTA_CHECK_MSG(mode < x.order(), "mode " << mode << " out of range");
    FiberPartition part;
    part.mode = mode;
    const Size m_count = x.nnz();
    if (m_count == 0) {
        part.fptr = {0};
        return part;
    }
    part.fptr.push_back(0);
    for (Size p = 1; p < m_count; ++p) {
        bool boundary = false;
        for (Size m = 0; m < x.order(); ++m) {
            if (m == mode)
                continue;
            if (x.index(m, p) != x.index(m, p - 1)) {
                boundary = true;
                break;
            }
        }
        if (boundary)
            part.fptr.push_back(p);
    }
    part.fptr.push_back(m_count);
    return part;
}

}  // namespace pasta
