/// \file
/// Mode-n fiber discovery over a COO tensor.
///
/// A mode-n fiber is the set of non-zeros sharing every coordinate except
/// the mode-n one (paper §II).  TTV and TTM pre-processing (Algorithm 1,
/// line 1) computes the number of fibers M_F and a fiber pointer array
/// `fptr` delimiting each fiber in the sorted non-zero stream.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "core/coo_tensor.hpp"

namespace pasta {

/// Fiber layout of one mode of a sorted COO tensor.
struct FiberPartition {
    Size mode = 0;           ///< The mode the fibers run along.
    std::vector<Size> fptr;  ///< fptr[f]..fptr[f+1] delimit fiber f; size M_F+1.

    /// Number of fibers M_F.
    Size num_fibers() const { return fptr.empty() ? 0 : fptr.size() - 1; }

    /// Length (non-zero count) of fiber f.
    Size fiber_length(Size f) const { return fptr[f + 1] - fptr[f]; }

    /// Length of the longest fiber; drives load imbalance in the paper's
    /// fiber-parallel TTV/TTM (Observation 4 discussion).
    Size max_fiber_length() const;
};

/// Computes the mode-`mode` fiber partition of `x`.
///
/// \pre `x` is sorted with `sort_fibers_last(mode)`, i.e. all non-zeros of
///      a fiber are contiguous.  Violations are detected only insofar as
///      they change index boundaries; callers own the precondition.
FiberPartition compute_fibers(const CooTensor& x, Size mode);

}  // namespace pasta
