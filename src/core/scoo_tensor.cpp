#include "core/scoo_tensor.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace pasta {

ScooTensor::ScooTensor(std::vector<Index> dims, std::vector<Size> dense_modes)
    : dims_(std::move(dims)), dense_modes_(std::move(dense_modes))
{
    PASTA_CHECK_MSG(!dims_.empty(), "tensor order must be at least 1");
    PASTA_CHECK_MSG(!dense_modes_.empty(), "sCOO needs a dense mode");
    PASTA_CHECK_MSG(dense_modes_.size() < dims_.size(),
                    "sCOO needs at least one sparse mode");
    PASTA_CHECK_MSG(std::is_sorted(dense_modes_.begin(), dense_modes_.end()),
                    "dense modes must be ascending");
    stripe_volume_ = 1;
    Size prev = kNoMode;
    for (Size dm : dense_modes_) {
        PASTA_CHECK_MSG(dm < dims_.size(), "dense mode out of range");
        PASTA_CHECK_MSG(dm != prev, "duplicate dense mode");
        prev = dm;
        stripe_volume_ *= dims_[dm];
    }
    for (Size m = 0; m < dims_.size(); ++m) {
        if (!std::binary_search(dense_modes_.begin(), dense_modes_.end(), m))
            sparse_modes_.push_back(m);
    }
    sparse_indices_.resize(sparse_modes_.size());
}

void
ScooTensor::reserve(Size n)
{
    for (auto& idx : sparse_indices_)
        idx.reserve(n);
    values_.reserve(n * stripe_volume_);
}

Size
ScooTensor::append_stripe(const Index* sparse_coords)
{
    for (Size s = 0; s < sparse_modes_.size(); ++s) {
        PASTA_ASSERT_MSG(sparse_coords[s] < dims_[sparse_modes_[s]],
                         "sparse coordinate out of range");
        sparse_indices_[s].push_back(sparse_coords[s]);
    }
    values_.resize(values_.size() + stripe_volume_, 0);
    return sparse_indices_[0].size() - 1;
}

ScooBulkFill
ScooTensor::bulk_fill_stripes(Size n)
{
    ScooBulkFill out;
    out.sparse.resize(sparse_indices_.size());
    for (Size s = 0; s < sparse_indices_.size(); ++s) {
        sparse_indices_[s].assign(n, 0);
        out.sparse[s] = sparse_indices_[s].data();
    }
    values_.assign(n * stripe_volume_, 0);
    out.num_sparse = n;
    return out;
}

Value
ScooTensor::at(const Coordinate& coords) const
{
    PASTA_CHECK_MSG(coords.size() == order(), "coordinate arity mismatch");
    // Linear offset of the dense part of the coordinate within a stripe.
    Size dense_off = 0;
    for (Size dm : dense_modes_)
        dense_off = dense_off * dims_[dm] + coords[dm];
    for (Size pos = 0; pos < num_sparse(); ++pos) {
        bool match = true;
        for (Size s = 0; s < sparse_modes_.size(); ++s) {
            if (sparse_indices_[s][pos] != coords[sparse_modes_[s]]) {
                match = false;
                break;
            }
        }
        if (match)
            return stripe(pos)[dense_off];
    }
    return 0;
}

Size
ScooTensor::storage_bytes() const
{
    return num_sparse() * sparse_modes_.size() * kIndexBytes +
           values_.size() * kValueBytes;
}

CooTensor
ScooTensor::to_coo() const
{
    CooTensor out(dims_);
    Coordinate c(order());
    for (Size pos = 0; pos < num_sparse(); ++pos) {
        for (Size s = 0; s < sparse_modes_.size(); ++s)
            c[sparse_modes_[s]] = sparse_indices_[s][pos];
        const Value* vals = stripe(pos);
        for (Size off = 0; off < stripe_volume_; ++off) {
            if (vals[off] == 0)
                continue;
            // Decode the dense-mode coordinates from the stripe offset.
            Size rem = off;
            for (Size d = dense_modes_.size(); d-- > 0;) {
                const Index extent = dims_[dense_modes_[d]];
                c[dense_modes_[d]] = static_cast<Index>(rem % extent);
                rem /= extent;
            }
            out.append(c, vals[off]);
        }
    }
    out.sort_lexicographic();
    return out;
}

void
ScooTensor::validate() const
{
    PASTA_CHECK_MSG(values_.size() == num_sparse() * stripe_volume_,
                    "value array length mismatch");
    for (Size s = 0; s < sparse_modes_.size(); ++s) {
        PASTA_CHECK_MSG(sparse_indices_[s].size() == num_sparse(),
                        "sparse index array length mismatch");
        for (Index idx : sparse_indices_[s])
            PASTA_CHECK_MSG(idx < dims_[sparse_modes_[s]],
                            "sparse index out of range");
    }
}

std::string
ScooTensor::describe() const
{
    std::ostringstream oss;
    oss << order() << "-order sCOO ";
    for (Size m = 0; m < order(); ++m)
        oss << dims_[m] << (m + 1 < order() ? "x" : "");
    oss << ", " << num_sparse() << " sparse coords x " << stripe_volume_
        << " dense";
    return oss.str();
}

}  // namespace pasta
