/// \file
/// Generalized HiCOO (gHiCOO) format (paper §III-C, Fig. 2b; introduced by
/// this benchmark suite).
///
/// gHiCOO chooses, per mode, whether indices are block-compressed (HiCOO
/// style: shared 32-bit block index + 8-bit element offset) or kept as a
/// plain COO index array.  Two uses motivate it:
///  1. hyper-sparse tensors where blocking a mode yields blocks of one or
///     two non-zeros and the block metadata outweighs the savings;
///  2. kernels like TTV and TTM that consume only the product mode's raw
///     index — leaving that mode uncompressed lets the kernel bypass the
///     blocking and, because blocks then contain whole fibers, run with no
///     data race between blocks.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace pasta {

/// Arbitrary-order sparse tensor with per-mode compression choice.
class GHiCooTensor {
  public:
    GHiCooTensor() = default;

    /// Creates an empty gHiCOO tensor.  `compressed[m]` selects HiCOO-style
    /// block compression for mode m; at least one mode must be compressed
    /// (otherwise use CooTensor).
    GHiCooTensor(std::vector<Index> dims, unsigned block_bits,
                 std::vector<bool> compressed);

    Size order() const { return dims_.size(); }
    const std::vector<Index>& dims() const { return dims_; }
    Index dim(Size mode) const { return dims_[mode]; }

    unsigned block_bits() const { return block_bits_; }
    Index block_size() const { return Index{1} << block_bits_; }

    /// Whether mode `m` is block-compressed.
    bool is_compressed(Size m) const { return compressed_[m]; }

    /// Compressed / uncompressed mode lists (ascending).
    const std::vector<Size>& compressed_modes() const
    {
        return compressed_modes_;
    }
    const std::vector<Size>& uncompressed_modes() const
    {
        return uncompressed_modes_;
    }

    Size nnz() const { return values_.size(); }
    Size num_blocks() const { return bptr_.empty() ? 0 : bptr_.size() - 1; }
    const std::vector<Size>& bptr() const { return bptr_; }

    /// Block index of block `b` along compressed mode `mode`.
    BIndex block_index(Size mode, Size b) const { return binds_[mode][b]; }

    /// Element index of non-zero `pos` along compressed mode `mode`.
    EIndex element_index(Size mode, Size pos) const
    {
        return einds_[mode][pos];
    }

    /// Raw COO index of non-zero `pos` along uncompressed mode `mode`.
    Index raw_index(Size mode, Size pos) const
    {
        return raw_inds_[mode][pos];
    }

    /// Contiguous raw index stream of an uncompressed mode (gather-dot
    /// kernels consume whole fiber slices of it at once).
    const std::vector<Index>& raw_indices(Size mode) const
    {
        return raw_inds_[mode];
    }

    Value value(Size pos) const { return values_[pos]; }
    std::vector<Value>& values() { return values_; }
    const std::vector<Value>& values() const { return values_; }

    /// Appends a block given its compressed-mode block coordinates
    /// (arity = order; entries at uncompressed modes are ignored).
    Size append_block(const BIndex* block_coords);

    /// Appends one non-zero to the last block: 8-bit offsets for
    /// compressed modes, full indices for uncompressed modes (both arrays
    /// are indexed by mode; irrelevant slots ignored).
    void append_entry(const EIndex* element_coords, const Index* raw_coords,
                      Value value);

    /// Reconstructs the full coordinate of non-zero `pos` in block `b`
    /// along any mode.
    Index coordinate(Size mode, Size b, Size pos) const
    {
        if (compressed_[mode])
            return (static_cast<Index>(binds_[mode][b]) << block_bits_) |
                   einds_[mode][pos];
        return raw_inds_[mode][pos];
    }

    /// Storage bytes: block metadata over compressed modes + 8-bit element
    /// indices + full 32-bit arrays for uncompressed modes + values.
    Size storage_bytes() const;

    /// Validates invariants; throws PastaError on violation.
    void validate() const;

    std::string describe() const;

  private:
    std::vector<Index> dims_;
    unsigned block_bits_ = 7;
    std::vector<bool> compressed_;
    std::vector<Size> compressed_modes_;
    std::vector<Size> uncompressed_modes_;
    std::vector<std::vector<BIndex>> binds_;     ///< [mode][block]; empty if raw
    std::vector<Size> bptr_;
    std::vector<std::vector<EIndex>> einds_;     ///< [mode][pos]; empty if raw
    std::vector<std::vector<Index>> raw_inds_;   ///< [mode][pos]; empty if comp.
    std::vector<Value> values_;
};

}  // namespace pasta
