/// \file
/// Dense matrix and vector containers used as kernel operands.
///
/// The paper's TTM takes U in R^{I_n x R} (the transposed-mode convention,
/// footnote 2: rows indexed by the tensor mode, columns by the rank) and
/// MTTKRP takes one such factor matrix per mode.  Row-major storage makes a
/// "row of U for tensor index i" contiguous, which is what every kernel
/// streams over.
#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace pasta {

/// Dense row-major matrix of Value.
class DenseMatrix {
  public:
    DenseMatrix() = default;

    /// Creates a rows x cols matrix initialized to `fill`.
    DenseMatrix(Size rows, Size cols, Value fill = 0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill)
    {
    }

    Size rows() const { return rows_; }
    Size cols() const { return cols_; }

    /// Element access (no bounds check in release builds).
    Value& operator()(Size r, Size c) { return data_[r * cols_ + c]; }
    Value operator()(Size r, Size c) const { return data_[r * cols_ + c]; }

    /// Pointer to the start of row r; the row is cols() contiguous values.
    Value* row(Size r) { return data_.data() + r * cols_; }
    const Value* row(Size r) const { return data_.data() + r * cols_; }

    Value* data() { return data_.data(); }
    const Value* data() const { return data_.data(); }

    /// Sets every element to `v`.
    void fill(Value v) { std::fill(data_.begin(), data_.end(), v); }

    /// Storage footprint in bytes (values only, matching Table I).
    Size storage_bytes() const { return data_.size() * kValueBytes; }

    /// Fills with uniform random values in [0, 1) from `rng`.
    void randomize(Rng& rng);

    /// Returns a rows x cols matrix with uniform random entries.
    static DenseMatrix random(Size rows, Size cols, Rng& rng);

    friend bool operator==(const DenseMatrix&, const DenseMatrix&) = default;

  private:
    Size rows_ = 0;
    Size cols_ = 0;
    std::vector<Value> data_;
};

/// Dense vector of Value.
class DenseVector {
  public:
    DenseVector() = default;

    /// Creates a length-n vector initialized to `fill`.
    explicit DenseVector(Size n, Value fill = 0) : data_(n, fill) {}

    Size size() const { return data_.size(); }

    Value& operator[](Size i) { return data_[i]; }
    Value operator[](Size i) const { return data_[i]; }

    Value* data() { return data_.data(); }
    const Value* data() const { return data_.data(); }

    void fill(Value v) { std::fill(data_.begin(), data_.end(), v); }

    Size storage_bytes() const { return data_.size() * kValueBytes; }

    /// Fills with uniform random values in [0, 1) from `rng`.
    void randomize(Rng& rng);

    /// Returns a length-n vector with uniform random entries.
    static DenseVector random(Size n, Rng& rng);

    friend bool operator==(const DenseVector&, const DenseVector&) = default;

  private:
    std::vector<Value> data_;
};

/// Maximum absolute element-wise difference between two matrices of the
/// same shape; used by tests to compare kernel outputs to references.
double max_abs_diff(const DenseMatrix& a, const DenseMatrix& b);

}  // namespace pasta
