/// \file
/// Compressed Sparse Fiber (CSF) format (Smith et al., SPLATT [23]).
///
/// The paper names CSF the first format to add next to COO and HiCOO
/// (§III, §VII: "data representations, such as compressed sparse fiber
/// (CSF) ... will be considered adding to the suite").  CSF stores the
/// non-zeros as a forest of prefix-compressed paths: level 0 holds the
/// distinct mode-order[0] indices (tree roots), each deeper level holds
/// the distinct next-mode indices under one parent, and the leaf level
/// carries the values.  Unlike COO/HiCOO, CSF is *mode-specific*: one
/// representation favors computations in its root mode, which is exactly
/// the trade-off the paper's mode-generic discussion (§III) calls out.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/coo_tensor.hpp"

namespace pasta {

/// One level of the CSF tree: indices plus pointers into the next level.
struct CsfLevel {
    std::vector<Index> idx;  ///< node index along this level's mode
    std::vector<Size> ptr;   ///< children of node i: [ptr[i], ptr[i+1])
};

/// Arbitrary-order sparse tensor in CSF format.
class CsfTensor {
  public:
    CsfTensor() = default;

    /// Number of modes.
    Size order() const { return dims_.size(); }

    /// Dimension sizes in *original* mode numbering.
    const std::vector<Index>& dims() const { return dims_; }
    Index dim(Size mode) const { return dims_[mode]; }

    /// The mode permutation: mode_order()[level] is the original mode
    /// stored at tree level `level` (root first).
    const std::vector<Size>& mode_order() const { return mode_order_; }

    /// Number of stored non-zeros (leaf count).
    Size nnz() const { return values_.size(); }

    /// Number of levels (= order).
    Size num_levels() const { return levels_.size(); }

    /// Level accessor; level 0 is the root.
    const CsfLevel& level(Size l) const { return levels_[l]; }

    /// Leaf values, aligned with level(order-1).idx.
    const std::vector<Value>& values() const { return values_; }
    std::vector<Value>& values() { return values_; }

    /// Number of nodes at a level (fibers at that depth).
    Size level_size(Size l) const { return levels_[l].idx.size(); }

    /// Storage bytes: per-level indices + pointers + values.
    Size storage_bytes() const;

    /// Builds CSF from COO with the given level ordering (defaults to
    /// 0,1,...,N-1 when empty).  Duplicates must be coalesced first.
    static CsfTensor from_coo(const CooTensor& x,
                              std::vector<Size> mode_order = {});

    /// Expands back to COO (lexicographically sorted).
    CooTensor to_coo() const;

    /// Validates structural invariants; throws PastaError on violation.
    void validate() const;

    std::string describe() const;

  private:
    std::vector<Index> dims_;
    std::vector<Size> mode_order_;
    std::vector<CsfLevel> levels_;  ///< levels_[order-1].ptr is unused
    std::vector<Value> values_;
};

}  // namespace pasta
