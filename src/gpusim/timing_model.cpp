#include "gpusim/timing_model.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"
#include "obs/counters.hpp"

namespace pasta::gpusim {

DeviceSpec
tesla_p100()
{
    DeviceSpec spec;
    spec.name = "Tesla P100 (DGX-1P)";
    spec.peak_sp_gflops = 10600.0;
    spec.dram_bw_gbs = 732.0;
    spec.llc_bytes = 3.0 * 1024 * 1024;
    spec.llc_bw_gbs = 2000.0;
    spec.num_sms = 56;
    spec.atomic_ns = 0.50;
    spec.launch_overhead_us = 8.0;
    return spec;
}

DeviceSpec
tesla_v100()
{
    DeviceSpec spec;
    spec.name = "Tesla V100 (DGX-1V)";
    spec.peak_sp_gflops = 14900.0;
    spec.dram_bw_gbs = 900.0;
    spec.llc_bytes = 6.0 * 1024 * 1024;
    spec.llc_bw_gbs = 2700.0;
    spec.num_sms = 80;
    // Volta reworked atomics and splits INT/FP datapaths; the paper's
    // Observation 2 credits this for V100 MTTKRP exceeding its roofline.
    spec.atomic_ns = 0.12;
    spec.launch_overhead_us = 6.0;
    return spec;
}

void
LaunchProfile::merge(const LaunchProfile& other)
{
    flops += other.flops;
    dram_bytes += other.dram_bytes;
    atomics += other.atomics;
    working_set_bytes = std::max(working_set_bytes,
                                 other.working_set_bytes);
    block_bytes.insert(block_bytes.end(), other.block_bytes.begin(),
                       other.block_bytes.end());
}

double
lpt_makespan(std::vector<double> work, int bins)
{
    PASTA_ASSERT(bins > 0);
    if (work.empty())
        return 0.0;
    std::sort(work.begin(), work.end(), std::greater<double>());
    std::priority_queue<double, std::vector<double>,
                        std::greater<double>> loads;
    for (int i = 0; i < bins; ++i)
        loads.push(0.0);
    for (double w : work) {
        double least = loads.top();
        loads.pop();
        loads.push(least + w);
    }
    double makespan = 0.0;
    while (!loads.empty()) {
        makespan = std::max(makespan, loads.top());
        loads.pop();
    }
    return makespan;
}

double
estimate_seconds(const DeviceSpec& spec, const LaunchProfile& profile)
{
    if (obs::counters_enabled()) {
        obs::counter("gpusim.flops").add(
            static_cast<std::uint64_t>(profile.flops));
        obs::counter("gpusim.bytes").add(
            static_cast<std::uint64_t>(profile.dram_bytes));
        obs::counter("gpusim.atomics").add(
            static_cast<std::uint64_t>(profile.atomics));
        obs::counter("gpusim.model_launches").add(1);
        if (!profile.block_bytes.empty()) {
            // Simulated occupancy: modeled thread blocks per SM wave,
            // capped at 100 (a full device).
            const auto blocks =
                static_cast<std::uint64_t>(profile.block_bytes.size());
            obs::counter("gpusim.occupancy_pct")
                .record_max(std::min<std::uint64_t>(
                    100, 100 * blocks /
                             static_cast<std::uint64_t>(spec.num_sms)));
        }
    }
    // Cache residency: a working set inside the L2 is streamed at L2
    // bandwidth (the paper's explanation for small tensors exceeding the
    // DRAM roofline).
    const bool cached =
        profile.working_set_bytes > 0 &&
        static_cast<double>(profile.working_set_bytes) <= spec.llc_bytes;
    const double bw =
        (cached ? spec.llc_bw_gbs : spec.dram_bw_gbs) * 1e9;

    const double mem_time = static_cast<double>(profile.dram_bytes) / bw;
    const double flop_time = static_cast<double>(profile.flops) /
                             (spec.peak_sp_gflops * 1e9);

    // Load imbalance: thread blocks are placed on SMs greedily; each SM
    // sustains a 1/num_sms share of device bandwidth.  With balanced
    // blocks the makespan equals mem_time; skew stretches it.
    double imbalance_time = mem_time;
    if (!profile.block_bytes.empty()) {
        const double per_sm_bw = bw / spec.num_sms;
        imbalance_time =
            lpt_makespan(profile.block_bytes, spec.num_sms) / per_sm_bw;
    }

    // Atomic updates pipeline with memory traffic only partially; charge
    // them as additional serialized time spread over the SMs.
    const double atomic_time = static_cast<double>(profile.atomics) *
                               spec.atomic_ns * 1e-9 / spec.num_sms;

    return std::max({mem_time, flop_time, imbalance_time}) + atomic_time +
           spec.launch_overhead_us * 1e-6;
}

}  // namespace pasta::gpusim
