/// \file
/// Analytical device timing model for simulated GPU launches.
///
/// Substitution (documented in DESIGN.md): the paper measures on Tesla
/// P100 / V100; we execute the same algorithms on the SIMT simulator and
/// *model* their device time from first principles the paper itself uses
/// for analysis:
///   * memory-bound execution: all five kernels sit far left of the ridge
///     point (Fig. 3), so the dominant term is DRAM traffic / bandwidth;
///   * load imbalance: per-thread-block work is scheduled greedily over
///     the SMs, so skewed fiber/block sizes lengthen the makespan exactly
///     the way the paper's Observation 4 describes;
///   * atomic serialization: MTTKRP pays a per-atomic cost, lower on
///     Volta (improved atomics, Observation 2);
///   * cache residency: working sets below the LLC size are served at LLC
///     bandwidth, reproducing the small-tensor above-roofline behavior.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace pasta::gpusim {

/// Static device parameters (paper Table III plus model constants).
struct DeviceSpec {
    std::string name;
    double peak_sp_gflops = 0;     ///< peak single-precision GFLOPS
    double dram_bw_gbs = 0;        ///< HBM2 bandwidth, GB/s
    double llc_bytes = 0;          ///< L2 size in bytes
    double llc_bw_gbs = 0;         ///< L2 bandwidth, GB/s
    int num_sms = 0;               ///< streaming multiprocessors
    double atomic_ns = 0;          ///< effective cost per atomic update
    double launch_overhead_us = 0; ///< fixed per-launch cost
};

/// NVIDIA Tesla P100 (DGX-1P row of Table III: 10.6 TFLOPS, 732 GB/s,
/// 3 MB L2, 56 SMs).
DeviceSpec tesla_p100();

/// NVIDIA Tesla V100 (DGX-1V row of Table III: 14.9 TFLOPS, 900 GB/s,
/// 6 MB L2, 80 SMs, improved atomics).
DeviceSpec tesla_v100();

/// Measured work of one simulated launch, filled in by each GPU kernel
/// from its actual data structures (fiber lengths, block populations).
struct LaunchProfile {
    Size flops = 0;        ///< floating-point operations performed
    Size dram_bytes = 0;   ///< total bytes moved (Table I accounting)
    Size atomics = 0;      ///< atomic updates issued
    Size working_set_bytes = 0;  ///< distinct bytes touched (cache test)
    std::vector<double> block_bytes;  ///< per-thread-block DRAM bytes

    void merge(const LaunchProfile& other);
};

/// Estimated execution time of `profile` on `spec`, in seconds.
double estimate_seconds(const DeviceSpec& spec, const LaunchProfile& profile);

/// Greedy longest-processing-time makespan of `work` items over `bins`
/// machines (exposed for unit testing of the scheduler model).
double lpt_makespan(std::vector<double> work, int bins);

}  // namespace pasta::gpusim
