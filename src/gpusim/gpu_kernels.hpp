/// \file
/// GPU implementations of the five tensor kernels on the simulated device
/// (paper §III-B2, §III-D2; Algorithm 2).
///
/// Work decomposition follows the paper exactly:
///  * TEW / TS / TTV (COO): 1-D grids of 1-D 256-thread blocks over
///    non-zeros or fibers (Algorithm 2);
///  * TTM / MTTKRP (COO): 1-D grids of 2-D thread blocks — the x dimension
///    walks matrix columns (memory coalescing), the y dimension walks
///    non-zeros — with atomicAdd protecting the output (ParTI mapping);
///  * HiCOO GPU kernels match their COO counterparts except MTTKRP, which
///    maps one tensor block to one thread block, trading the COO kernel's
///    balanced non-zero distribution for blocked locality (and suffering
///    the load imbalance the paper's Observation 4 reports).
///
/// Each function computes the real output through the SIMT executor and
/// returns a LaunchProfile with the launch's actual work accounting
/// (fiber/block populations included) for the timing model.
#pragma once

#include "core/coo_tensor.hpp"
#include "core/dense.hpp"
#include "core/hicoo_tensor.hpp"
#include "core/merge.hpp"
#include "core/scoo_tensor.hpp"
#include "core/shicoo_tensor.hpp"
#include "gpusim/timing_model.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/ops.hpp"
#include "kernels/ttm.hpp"
#include "kernels/ttv.hpp"

namespace pasta::gpusim {

/// COO-TEW-GPU.  Same-pattern operands take the paper's one-thread-per-
/// non-zero value sweep (z must be preallocated with x's pattern).
/// General operands (different shapes/patterns, lexicographically sorted
/// and duplicate-free) run a two-phase merge-path launch: a count kernel
/// where each thread walks one diagonal segment of the joint merge, a
/// host-side exclusive scan sizing the output, then a fill kernel writing
/// the merged pattern and values; `z` is rebuilt.  `path_out`, when
/// given, receives the comparison path the merge engine selected.
LaunchProfile tew_gpu_coo(const CooTensor& x, const CooTensor& y, EwOp op,
                          CooTensor& z,
                          merge::MergePath* path_out = nullptr);

/// HiCOO-TEW-GPU: identical value computation on the HiCOO value stream.
LaunchProfile tew_gpu_hicoo(const HiCooTensor& x, const HiCooTensor& y,
                            EwOp op, HiCooTensor& z);

/// COO-TS-GPU: one thread per non-zero.
LaunchProfile ts_gpu_coo(const CooTensor& x, TsOp op, Value s, CooTensor& y);

/// HiCOO-TS-GPU.
LaunchProfile ts_gpu_hicoo(const HiCooTensor& x, TsOp op, Value s,
                           HiCooTensor& y);

/// COO-TTV-GPU (Algorithm 2): one thread per fiber.
LaunchProfile ttv_gpu_coo(const CooTtvPlan& plan, const DenseVector& v,
                          CooTensor& out);

/// HiCOO-TTV-GPU: one thread per fiber over the gHiCOO entry stream.
LaunchProfile ttv_gpu_hicoo(const HicooTtvPlan& plan, const DenseVector& v,
                            HiCooTensor& out);

/// COO-TTM-GPU: 2-D blocks, x = matrix columns, y = non-zeros; atomicAdd
/// into the output stripes.
LaunchProfile ttm_gpu_coo(const CooTtmPlan& plan, const DenseMatrix& u,
                          ScooTensor& out);

/// HiCOO-TTM-GPU: same mapping over the gHiCOO entry stream.
LaunchProfile ttm_gpu_hicoo(const HicooTtmPlan& plan, const DenseMatrix& u,
                            SHiCooTensor& out);

/// COO-MTTKRP-GPU: 2-D blocks, x = rank, y = non-zeros; atomicAdd.
LaunchProfile mttkrp_gpu_coo(const CooTensor& x, const FactorList& factors,
                             Size mode, DenseMatrix& out);

/// HiCOO-MTTKRP-GPU: one tensor block per thread block; atomicAdd stays.
LaunchProfile mttkrp_gpu_hicoo(const HiCooTensor& x,
                               const FactorList& factors, Size mode,
                               DenseMatrix& out);

}  // namespace pasta::gpusim
