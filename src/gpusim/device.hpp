/// \file
/// SIMT execution model for the GPU kernel implementations.
///
/// This environment has no physical GPU, so the suite executes the paper's
/// GPU algorithms on a simulated device: a CUDA-like launch of a 1-D grid
/// of 1-D/2-D thread blocks, where each simulated thread runs the kernel
/// functor with its (blockIdx, threadIdx) coordinates.  Thread blocks are
/// distributed over host worker threads; atomicAdd has real atomic
/// semantics, so the GPU algorithms' correctness properties (data races
/// avoided via atomics, output independence across blocks) are exercised
/// for real.  Performance of a launch is *modeled*, not measured — see
/// timing_model.hpp.
/// Device memory is modeled too: every kernel stages its operands through
/// DeviceBuffer, which draws byte-accurate allocations from DeviceMemory
/// (capacity set by PASTA_GPUSIM_MEM_BYTES, default 16 GiB).  A transfer
/// that exceeds the configured capacity raises DeviceOomError instead of
/// silently "fitting" a tensor the real card could not hold.  Under
/// PASTA_VALIDATE=full, kernels additionally wrap their global-memory
/// pointers in bounds-checked Span handles; out-of-range simulated
/// accesses are recorded by AccessMonitor and reported after the launch
/// (never thrown mid-kernel — the launch runs on OpenMP worker threads
/// where an escaping exception would terminate the process).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/types.hpp"

namespace pasta::gpusim {

/// CUDA-style 3-component extent (z unused by this suite's kernels).
struct Dim3 {
    Size x = 1;
    Size y = 1;
    Size z = 1;

    Size volume() const { return x * y * z; }
};

/// Per-thread coordinates handed to the kernel functor.
struct ThreadCtx {
    Dim3 block_idx;
    Dim3 thread_idx;
    Dim3 grid_dim;
    Dim3 block_dim;

    /// Flattened global x index (CUDA: blockIdx.x * blockDim.x +
    /// threadIdx.x).
    Size global_x() const
    {
        return block_idx.x * block_dim.x + thread_idx.x;
    }

    /// Flattened global y index.
    Size global_y() const
    {
        return block_idx.y * block_dim.y + thread_idx.y;
    }
};

/// Simulated atomicAdd on a float, safe across concurrently executing
/// simulated thread blocks.
void atomic_add(Value* address, Value value);

/// Number of thread blocks needed to cover `work` items with `block`
/// threads each (CUDA's ceil-div grid sizing).
inline Size
grid_blocks(Size work, Size block)
{
    return work == 0 ? 0 : (work + block - 1) / block;
}

/// Default 1-D thread block size used by the paper's COO GPU kernels
/// (Algorithm 2 assigns M non-zeros to M/256 blocks of 256 threads).
inline constexpr Size kDefaultBlockThreads = 256;

namespace detail {

/// Counter-registry hook for launch(); defined out of line so the hot
/// launch template carries no obs include.  No-op when counters are off.
void note_launch(Size blocks, Size threads_per_block);

}  // namespace detail

/// Executes `kernel` once per simulated thread of a `grid` x `block`
/// launch.  Thread blocks may run concurrently on host threads; threads
/// within one block run sequentially (no intra-block synchronization is
/// used by this suite's kernels).  Template: the kernel functor inlines
/// into the simulated thread loop, so a launch costs no type-erased
/// dispatch per simulated thread.
template <typename Kernel>
void
launch(Dim3 grid, Dim3 block, Kernel kernel)
{
    const Size num_blocks = grid.volume();
    if (num_blocks == 0)
        return;
    detail::note_launch(num_blocks, block.volume());
    parallel_for(0, num_blocks, Schedule::kDynamic, [&](Size linear_block) {
        ThreadCtx ctx;
        ctx.grid_dim = grid;
        ctx.block_dim = block;
        ctx.block_idx.x = linear_block % grid.x;
        ctx.block_idx.y = (linear_block / grid.x) % grid.y;
        ctx.block_idx.z = linear_block / (grid.x * grid.y);
        for (Size tz = 0; tz < block.z; ++tz) {
            for (Size ty = 0; ty < block.y; ++ty) {
                for (Size tx = 0; tx < block.x; ++tx) {
                    ctx.thread_idx = {tx, ty, tz};
                    kernel(ctx);
                }
            }
        }
    });
}

/// Thrown when a simulated device allocation exceeds the configured
/// capacity.  Derives from PastaError so the trial guard catches and
/// journals it like any other trial error (transient class: a retry on a
/// smaller tensor or raised capacity can succeed).
class DeviceOomError : public PastaError {
  public:
    explicit DeviceOomError(const std::string& what) : PastaError(what) {}
};

/// Byte-accurate allocation accounting for the simulated device.
///
/// Capacity comes from PASTA_GPUSIM_MEM_BYTES (default 16 GiB, matching
/// the Tesla P100/V100 class the timing model simulates; 0 = unlimited;
/// malformed values throw PastaError).  allocate() draws down the
/// capacity and throws DeviceOomError naming the allocation when it does
/// not fit; release() returns bytes.  The accounting is process-wide,
/// like the device it models.
class DeviceMemory {
  public:
    /// The singleton accountant.
    static DeviceMemory& instance();

    /// Capacity in bytes; 0 means unlimited.
    std::uint64_t capacity() const { return capacity_; }

    /// Overrides the capacity (tests); resets nothing else.
    void set_capacity(std::uint64_t bytes) { capacity_ = bytes; }

    /// Currently allocated bytes and the high-water mark.
    std::uint64_t used() const { return used_.load(); }
    std::uint64_t peak() const { return peak_.load(); }

    /// Claims `bytes` for `what`; throws DeviceOomError when capacity
    /// would be exceeded.
    void allocate(std::uint64_t bytes, const char* what);

    /// Returns `bytes` to the pool.
    void release(std::uint64_t bytes);

  private:
    DeviceMemory();

    std::uint64_t capacity_ = 0;
    std::atomic<std::uint64_t> used_{0};
    std::atomic<std::uint64_t> peak_{0};
};

/// RAII claim on simulated device memory for one staged operand.
class DeviceBuffer {
  public:
    DeviceBuffer() = default;

    /// Claims `bytes` from DeviceMemory; throws DeviceOomError on
    /// exhaustion.
    DeviceBuffer(std::uint64_t bytes, const char* what);

    DeviceBuffer(const DeviceBuffer&) = delete;
    DeviceBuffer& operator=(const DeviceBuffer&) = delete;
    DeviceBuffer(DeviceBuffer&& other) noexcept;
    DeviceBuffer& operator=(DeviceBuffer&& other) noexcept;
    ~DeviceBuffer();

    std::uint64_t bytes() const { return bytes_; }

  private:
    std::uint64_t bytes_ = 0;
};

/// Records out-of-range simulated global-memory accesses.
///
/// Armed per launch under PASTA_VALIDATE=full.  Kernels must not throw on
/// worker threads (std::terminate under OpenMP), so Span::operator[]
/// records the violation and returns a sink; the host checks afterwards
/// with throw_if_access_violations().
class AccessMonitor {
  public:
    /// Arms (resetting counters) or disarms checking.
    static void arm(bool enable);

    static bool armed() { return armed_.load(std::memory_order_relaxed); }

    /// Records one out-of-bounds access (first one keeps its details).
    static void record(Size index, Size limit);

    /// Violations since the last arm().
    static Size violations()
    {
        return violations_.load(std::memory_order_relaxed);
    }

    /// Throws ValidationError naming `kernel` when violations were
    /// recorded, then disarms.  No-op (but still disarms) when clean.
    static void throw_if_access_violations(const char* kernel);

  private:
    static std::atomic<bool> armed_;
    static std::atomic<Size> violations_;
    static std::atomic<Size> first_index_;
    static std::atomic<Size> first_limit_;
};

/// Bounds-checked view of a simulated global-memory array.  When the
/// AccessMonitor is disarmed (PASTA_VALIDATE != full) the accessors are a
/// raw pointer index — no branch on the value path beyond one predictable
/// armed() load — so the disabled mode stays overhead-free.
template <typename T>
struct Span {
    T* data = nullptr;
    Size n = 0;

    T& operator[](Size i) const
    {
        if (AccessMonitor::armed() && i >= n) {
            AccessMonitor::record(i, n);
            return sink();
        }
        return data[i];
    }

    /// Per-thread spill target for recorded violations: keeps the kernel
    /// running without touching real storage.
    static T& sink()
    {
        thread_local T value{};
        return value;
    }
};

template <typename T>
Span<T>
make_span(T* data, Size n)
{
    return Span<T>{data, n};
}

}  // namespace pasta::gpusim
