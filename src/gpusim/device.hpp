/// \file
/// SIMT execution model for the GPU kernel implementations.
///
/// This environment has no physical GPU, so the suite executes the paper's
/// GPU algorithms on a simulated device: a CUDA-like launch of a 1-D grid
/// of 1-D/2-D thread blocks, where each simulated thread runs the kernel
/// functor with its (blockIdx, threadIdx) coordinates.  Thread blocks are
/// distributed over host worker threads; atomicAdd has real atomic
/// semantics, so the GPU algorithms' correctness properties (data races
/// avoided via atomics, output independence across blocks) are exercised
/// for real.  Performance of a launch is *modeled*, not measured — see
/// timing_model.hpp.
#pragma once

#include <functional>

#include "common/types.hpp"

namespace pasta::gpusim {

/// CUDA-style 3-component extent (z unused by this suite's kernels).
struct Dim3 {
    Size x = 1;
    Size y = 1;
    Size z = 1;

    Size volume() const { return x * y * z; }
};

/// Per-thread coordinates handed to the kernel functor.
struct ThreadCtx {
    Dim3 block_idx;
    Dim3 thread_idx;
    Dim3 grid_dim;
    Dim3 block_dim;

    /// Flattened global x index (CUDA: blockIdx.x * blockDim.x +
    /// threadIdx.x).
    Size global_x() const
    {
        return block_idx.x * block_dim.x + thread_idx.x;
    }

    /// Flattened global y index.
    Size global_y() const
    {
        return block_idx.y * block_dim.y + thread_idx.y;
    }
};

/// Simulated atomicAdd on a float, safe across concurrently executing
/// simulated thread blocks.
void atomic_add(Value* address, Value value);

/// Number of thread blocks needed to cover `work` items with `block`
/// threads each (CUDA's ceil-div grid sizing).
inline Size
grid_blocks(Size work, Size block)
{
    return work == 0 ? 0 : (work + block - 1) / block;
}

/// Default 1-D thread block size used by the paper's COO GPU kernels
/// (Algorithm 2 assigns M non-zeros to M/256 blocks of 256 threads).
inline constexpr Size kDefaultBlockThreads = 256;

/// Executes `kernel` once per simulated thread of a `grid` x `block`
/// launch.  Thread blocks may run concurrently on host threads; threads
/// within one block run sequentially (no intra-block synchronization is
/// used by this suite's kernels).
void launch(Dim3 grid, Dim3 block,
            const std::function<void(const ThreadCtx&)>& kernel);

}  // namespace pasta::gpusim
