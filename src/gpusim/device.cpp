#include "gpusim/device.hpp"

#include <cstdlib>
#include <sstream>

#include "common/parallel.hpp"
#include "obs/counters.hpp"
#include "validate/validate.hpp"

namespace pasta::gpusim {

void
atomic_add(Value* address, Value value)
{
    ::pasta::atomic_add(address, value);
}

namespace detail {

void
note_launch(Size blocks, Size threads_per_block)
{
    if (!obs::counters_enabled())
        return;
    obs::counter("gpusim.launches").add(1);
    obs::counter("gpusim.sim_blocks").add(blocks);
    obs::counter("gpusim.sim_threads").add(blocks * threads_per_block);
}

}  // namespace detail

namespace {

/// 16 GiB: the HBM2 capacity of the Tesla P100/V100 parts the timing
/// model simulates.
constexpr std::uint64_t kDefaultCapacityBytes = 16ULL << 30;

std::uint64_t
capacity_from_env()
{
    const char* s = std::getenv("PASTA_GPUSIM_MEM_BYTES");
    if (!s || !*s)
        return kDefaultCapacityBytes;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    PASTA_CHECK_MSG(*end == '\0' && end != s,
                    "PASTA_GPUSIM_MEM_BYTES='"
                        << s << "' must be a byte count (0 = unlimited)");
    return v;
}

}  // namespace

DeviceMemory::DeviceMemory() : capacity_(capacity_from_env()) {}

DeviceMemory&
DeviceMemory::instance()
{
    static DeviceMemory mem;
    return mem;
}

void
DeviceMemory::allocate(std::uint64_t bytes, const char* what)
{
    for (;;) {
        std::uint64_t cur = used_.load();
        const std::uint64_t next = cur + bytes;
        if (capacity_ != 0 && (next > capacity_ || next < cur)) {
            std::ostringstream oss;
            oss << "simulated device out of memory: " << bytes
                << " B for " << what << " on top of " << cur
                << " B in use exceeds capacity " << capacity_
                << " B (PASTA_GPUSIM_MEM_BYTES)";
            throw DeviceOomError(oss.str());
        }
        if (used_.compare_exchange_weak(cur, next))
            break;
    }
    // Peak is advisory; a stale read only under-reports transiently.
    std::uint64_t peak = peak_.load();
    const std::uint64_t used_now = used_.load();
    while (used_now > peak && !peak_.compare_exchange_weak(peak, used_now)) {
    }
    obs::record_max("gpusim.mem_peak_bytes", used_now);
}

void
DeviceMemory::release(std::uint64_t bytes)
{
    used_.fetch_sub(bytes);
}

DeviceBuffer::DeviceBuffer(std::uint64_t bytes, const char* what)
    : bytes_(bytes)
{
    DeviceMemory::instance().allocate(bytes_, what);
}

DeviceBuffer::DeviceBuffer(DeviceBuffer&& other) noexcept
    : bytes_(other.bytes_)
{
    other.bytes_ = 0;
}

DeviceBuffer&
DeviceBuffer::operator=(DeviceBuffer&& other) noexcept
{
    if (this != &other) {
        if (bytes_ != 0)
            DeviceMemory::instance().release(bytes_);
        bytes_ = other.bytes_;
        other.bytes_ = 0;
    }
    return *this;
}

DeviceBuffer::~DeviceBuffer()
{
    if (bytes_ != 0)
        DeviceMemory::instance().release(bytes_);
}

std::atomic<bool> AccessMonitor::armed_{false};
std::atomic<Size> AccessMonitor::violations_{0};
std::atomic<Size> AccessMonitor::first_index_{0};
std::atomic<Size> AccessMonitor::first_limit_{0};

void
AccessMonitor::arm(bool enable)
{
    violations_.store(0, std::memory_order_relaxed);
    first_index_.store(0, std::memory_order_relaxed);
    first_limit_.store(0, std::memory_order_relaxed);
    armed_.store(enable, std::memory_order_relaxed);
}

void
AccessMonitor::record(Size index, Size limit)
{
    if (violations_.fetch_add(1, std::memory_order_relaxed) == 0) {
        first_index_.store(index, std::memory_order_relaxed);
        first_limit_.store(limit, std::memory_order_relaxed);
    }
}

void
AccessMonitor::throw_if_access_violations(const char* kernel)
{
    const Size count = violations_.load(std::memory_order_relaxed);
    armed_.store(false, std::memory_order_relaxed);
    if (count == 0)
        return;
    std::ostringstream oss;
    oss << kernel << ": " << count
        << " out-of-bounds simulated global-memory access(es); first was "
        << "index " << first_index_.load(std::memory_order_relaxed)
        << " >= extent " << first_limit_.load(std::memory_order_relaxed);
    throw validate::ValidationError(oss.str());
}

}  // namespace pasta::gpusim
