#include "gpusim/device.hpp"

#include "common/parallel.hpp"

namespace pasta::gpusim {

void
atomic_add(Value* address, Value value)
{
    ::pasta::atomic_add(address, value);
}

void
launch(Dim3 grid, Dim3 block,
       const std::function<void(const ThreadCtx&)>& kernel)
{
    const Size num_blocks = grid.volume();
    if (num_blocks == 0)
        return;
    parallel_for(0, num_blocks, Schedule::kDynamic, [&](Size linear_block) {
        ThreadCtx ctx;
        ctx.grid_dim = grid;
        ctx.block_dim = block;
        ctx.block_idx.x = linear_block % grid.x;
        ctx.block_idx.y = (linear_block / grid.x) % grid.y;
        ctx.block_idx.z = linear_block / (grid.x * grid.y);
        for (Size tz = 0; tz < block.z; ++tz) {
            for (Size ty = 0; ty < block.y; ++ty) {
                for (Size tx = 0; tx < block.x; ++tx) {
                    ctx.thread_idx = {tx, ty, tz};
                    kernel(ctx);
                }
            }
        }
    });
}

}  // namespace pasta::gpusim
