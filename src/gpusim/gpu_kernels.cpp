#include "gpusim/gpu_kernels.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "gpusim/device.hpp"
#include "validate/validate.hpp"

namespace pasta::gpusim {

namespace {

/// Per-non-zero bytes of a streaming value kernel (read x, read y, write z).
constexpr Size kTewBytesPerNnz = 12;
/// Per-non-zero bytes of TS (read x, write y).
constexpr Size kTsBytesPerNnz = 8;

/// Uniform per-block byte split for balanced 1-D launches.
std::vector<double>
uniform_block_bytes(Size total_bytes, Size num_blocks)
{
    if (num_blocks == 0)
        return {};
    return std::vector<double>(
        num_blocks,
        static_cast<double>(total_bytes) / static_cast<double>(num_blocks));
}

/// Arms per-launch access checking under PASTA_VALIDATE=full.  Reported
/// timing comes from the analytical LaunchProfile, so the armed branch in
/// Span never perturbs the figures; disarmed, Span is a pointer index.
bool
arm_access_checks()
{
    const bool guard = validate::full_checks_enabled();
    AccessMonitor::arm(guard);
    return guard;
}

}  // namespace

namespace {

/// General-pattern COO TEW on the simulated device: the GPU analogue of
/// the CPU merge engine.  Each simulated thread owns one ~256-element
/// diagonal segment of the joint merge; the count launch sizes the
/// output, the host scans, the fill launch materializes pattern and
/// values.  diagonal_split is a pure function of the diagonal, so
/// neighbouring threads agree on their shared boundary without
/// synchronization, and the output is identical to the CPU merged and
/// serial reference results.
LaunchProfile
tew_gpu_coo_general(const CooTensor& x, const CooTensor& y, EwOp op,
                    CooTensor& z, merge::MergePath* path_out)
{
    PASTA_CHECK_MSG(x.order() == y.order(),
                    "tew_gpu_coo requires equal tensor order");
    std::vector<Index> out_dims(x.order());
    for (Size m = 0; m < x.order(); ++m)
        out_dims[m] = std::max(x.dim(m), y.dim(m));
    const merge::MergeKeys keys(x, y, out_dims);
    if (path_out)
        *path_out = keys.path();
    const merge::MergeSemantics semantics =
        (op == EwOp::kAdd || op == EwOp::kSub)
            ? merge::MergeSemantics::kUnion
            : merge::MergeSemantics::kIntersect;
    const Size order = x.order();
    const Size total_in = x.nnz() + y.nnz();
    // One thread per merge tile of kDefaultBlockThreads diagonal steps.
    const Size segments = grid_blocks(total_in, kDefaultBlockThreads);
    const DeviceBuffer dx(x.storage_bytes(), "tew_gpu_coo.x");
    const DeviceBuffer dy(y.storage_bytes(), "tew_gpu_coo.y");
    const DeviceBuffer dcounts(segments * sizeof(Size), "tew_gpu_coo.counts");

    auto thread_range = [&](Size tid) {
        const Size d0 = std::min(total_in, tid * kDefaultBlockThreads);
        const Size d1 = std::min(total_in, (tid + 1) * kDefaultBlockThreads);
        merge::MergePartition part;
        const auto [a0, b0] = keys.diagonal_split(d0);
        const auto [a1, b1] = keys.diagonal_split(d1);
        part.a = {a0, a1};
        part.b = {b0, b1};
        return part;
    };

    std::vector<Size> counts(segments);
    const Dim3 grid{grid_blocks(segments, kDefaultBlockThreads), 1, 1};
    const Dim3 block{kDefaultBlockThreads, 1, 1};
    arm_access_checks();
    const auto counts_span = make_span(counts.data(), segments);
    launch(grid, block, [&](const ThreadCtx& ctx) {
        const Size tid = ctx.global_x();
        if (tid >= segments)
            return;
        const merge::MergePartition part = thread_range(tid);
        counts_span[tid] = keys.count_segment(part, 0, semantics);
    });
    AccessMonitor::throw_if_access_violations("tew_gpu_coo.count");

    const Size total_out = merge::exclusive_scan(counts);
    z = CooTensor(out_dims);
    CooBulkFill out = z.bulk_fill(total_out);
    const DeviceBuffer dz(z.storage_bytes(), "tew_gpu_coo.z");
    std::vector<const Index*> xi(order);
    std::vector<const Index*> yi(order);
    for (Size m = 0; m < order; ++m) {
        xi[m] = x.mode_indices(m).data();
        yi[m] = y.mode_indices(m).data();
    }
    const Value* xv = x.values().data();
    const Value* yv = y.values().data();
    const auto zv = make_span(out.values, total_out);
    arm_access_checks();
    launch(grid, block, [&](const ThreadCtx& ctx) {
        const Size tid = ctx.global_x();
        if (tid >= segments)
            return;
        const merge::MergePartition part = thread_range(tid);
        keys.fill_segment(
            part, 0, semantics, counts[tid],
            [&](Size pos, Size a, Size b) {
                for (Size m = 0; m < order; ++m)
                    out.modes[m][pos] = xi[m][a];
                zv[pos] = apply_ew(op, xv[a], yv[b]);
            },
            [&](Size pos, Size a) {
                for (Size m = 0; m < order; ++m)
                    out.modes[m][pos] = xi[m][a];
                zv[pos] = apply_ew(op, xv[a], 0);
            },
            [&](Size pos, Size b) {
                for (Size m = 0; m < order; ++m)
                    out.modes[m][pos] = yi[m][b];
                zv[pos] = apply_ew(op, 0, yv[b]);
            });
    });
    AccessMonitor::throw_if_access_violations("tew_gpu_coo.fill");

    LaunchProfile prof;
    prof.flops = total_out;
    // Both operand streams are read by the count and fill launches; the
    // output pattern and values are written once; the segment counts
    // cross the device twice (write, then scan-adjusted read).
    prof.dram_bytes = 2 * (x.storage_bytes() + y.storage_bytes()) +
                      z.storage_bytes() + 2 * segments * sizeof(Size);
    prof.working_set_bytes =
        x.storage_bytes() + y.storage_bytes() + z.storage_bytes();
    prof.block_bytes = uniform_block_bytes(prof.dram_bytes, grid.x);
    return prof;
}

}  // namespace

LaunchProfile
tew_gpu_coo(const CooTensor& x, const CooTensor& y, EwOp op, CooTensor& z,
            merge::MergePath* path_out)
{
    if (!x.same_pattern(y))
        return tew_gpu_coo_general(x, y, op, z, path_out);
    PASTA_CHECK_MSG(z.nnz() == x.nnz(), "output nnz mismatch");
    const Size m = x.nnz();
    const DeviceBuffer dx(x.storage_bytes(), "tew_gpu_coo.x");
    const DeviceBuffer dy(y.storage_bytes(), "tew_gpu_coo.y");
    const DeviceBuffer dz(z.storage_bytes(), "tew_gpu_coo.z");
    arm_access_checks();
    const auto xv = make_span(x.values().data(), m);
    const auto yv = make_span(y.values().data(), m);
    const auto zv = make_span(z.values().data(), m);
    const Dim3 grid{grid_blocks(m, kDefaultBlockThreads), 1, 1};
    const Dim3 block{kDefaultBlockThreads, 1, 1};
    launch(grid, block, [&](const ThreadCtx& ctx) {
        const Size tid = ctx.global_x();
        if (tid < m)
            zv[tid] = apply_ew(op, xv[tid], yv[tid]);
    });
    AccessMonitor::throw_if_access_violations("tew_gpu_coo");

    LaunchProfile prof;
    prof.flops = m;
    prof.dram_bytes = kTewBytesPerNnz * m;
    prof.working_set_bytes = 3 * kValueBytes * m;
    prof.block_bytes = uniform_block_bytes(prof.dram_bytes, grid.x);
    return prof;
}

LaunchProfile
tew_gpu_hicoo(const HiCooTensor& x, const HiCooTensor& y, EwOp op,
              HiCooTensor& z)
{
    PASTA_CHECK_MSG(x.nnz() == y.nnz() && x.nnz() == z.nnz(),
                    "tew_gpu_hicoo nnz mismatch");
    const Size m = x.nnz();
    const DeviceBuffer dx(x.storage_bytes(), "tew_gpu_hicoo.x");
    const DeviceBuffer dy(y.storage_bytes(), "tew_gpu_hicoo.y");
    const DeviceBuffer dz(z.storage_bytes(), "tew_gpu_hicoo.z");
    arm_access_checks();
    const auto xv = make_span(x.values().data(), m);
    const auto yv = make_span(y.values().data(), m);
    const auto zv = make_span(z.values().data(), m);
    const Dim3 grid{grid_blocks(m, kDefaultBlockThreads), 1, 1};
    const Dim3 block{kDefaultBlockThreads, 1, 1};
    launch(grid, block, [&](const ThreadCtx& ctx) {
        const Size tid = ctx.global_x();
        if (tid < m)
            zv[tid] = apply_ew(op, xv[tid], yv[tid]);
    });
    AccessMonitor::throw_if_access_violations("tew_gpu_hicoo");

    LaunchProfile prof;
    prof.flops = m;
    prof.dram_bytes = kTewBytesPerNnz * m;
    prof.working_set_bytes = 3 * kValueBytes * m;
    prof.block_bytes = uniform_block_bytes(prof.dram_bytes, grid.x);
    return prof;
}

namespace {

LaunchProfile
ts_gpu_values(const Value* xp, Value* yp, Size m, TsOp op, Value s,
              const char* name)
{
    const DeviceBuffer dx(m * kValueBytes, "ts_gpu.x");
    const DeviceBuffer dy(m * kValueBytes, "ts_gpu.y");
    arm_access_checks();
    const auto xv = make_span(xp, m);
    const auto yv = make_span(yp, m);
    const Dim3 grid{grid_blocks(m, kDefaultBlockThreads), 1, 1};
    const Dim3 block{kDefaultBlockThreads, 1, 1};
    launch(grid, block, [&](const ThreadCtx& ctx) {
        const Size tid = ctx.global_x();
        if (tid < m)
            yv[tid] = apply_ts(op, xv[tid], s);
    });
    AccessMonitor::throw_if_access_violations(name);
    LaunchProfile prof;
    prof.flops = m;
    prof.dram_bytes = kTsBytesPerNnz * m;
    prof.working_set_bytes = 2 * kValueBytes * m;
    prof.block_bytes = uniform_block_bytes(prof.dram_bytes, grid.x);
    return prof;
}

}  // namespace

LaunchProfile
ts_gpu_coo(const CooTensor& x, TsOp op, Value s, CooTensor& y)
{
    PASTA_CHECK_MSG(y.nnz() == x.nnz(), "output nnz mismatch");
    return ts_gpu_values(x.values().data(), y.values().data(), x.nnz(), op,
                         s, "ts_gpu_coo");
}

LaunchProfile
ts_gpu_hicoo(const HiCooTensor& x, TsOp op, Value s, HiCooTensor& y)
{
    PASTA_CHECK_MSG(y.nnz() == x.nnz(), "output nnz mismatch");
    return ts_gpu_values(x.values().data(), y.values().data(), x.nnz(), op,
                         s, "ts_gpu_hicoo");
}

namespace {

/// Per-thread-block byte accounting for fiber-per-thread TTV launches:
/// block `b` owns fibers [b*256, (b+1)*256); each fiber moves
/// 12 bytes per non-zero (value + mode index + gathered vector element)
/// plus 12 bytes of output/fptr traffic.
std::vector<double>
ttv_block_bytes(const std::vector<Size>& fptr, Size threads_per_block)
{
    const Size num_fibers = fptr.size() - 1;
    const Size num_blocks = grid_blocks(num_fibers, threads_per_block);
    std::vector<double> bytes(num_blocks, 0.0);
    for (Size f = 0; f < num_fibers; ++f) {
        const Size len = fptr[f + 1] - fptr[f];
        bytes[f / threads_per_block] +=
            12.0 * static_cast<double>(len) + 12.0;
    }
    return bytes;
}

}  // namespace

LaunchProfile
ttv_gpu_coo(const CooTtvPlan& plan, const DenseVector& v, CooTensor& out)
{
    const Size num_fibers = plan.fibers.num_fibers();
    PASTA_CHECK_MSG(out.nnz() == num_fibers, "output nnz mismatch");
    PASTA_CHECK_MSG(v.size() == plan.sorted.dim(plan.mode),
                    "vector length mismatch");
    const Size m = plan.sorted.nnz();
    const DeviceBuffer dx(plan.sorted.storage_bytes(), "ttv_gpu_coo.x");
    const DeviceBuffer dv(v.storage_bytes(), "ttv_gpu_coo.v");
    const DeviceBuffer dout(out.storage_bytes(), "ttv_gpu_coo.out");
    const DeviceBuffer dfptr(plan.fibers.fptr.size() * sizeof(Size),
                             "ttv_gpu_coo.fptr");
    arm_access_checks();
    const auto xv = make_span(plan.sorted.values().data(), m);
    const auto kind =
        make_span(plan.sorted.mode_indices(plan.mode).data(), m);
    const auto vv = make_span(v.data(), v.size());
    const auto yv = make_span(out.values().data(), num_fibers);
    const auto& fptr = plan.fibers.fptr;

    const Dim3 grid{grid_blocks(num_fibers, kDefaultBlockThreads), 1, 1};
    const Dim3 block{kDefaultBlockThreads, 1, 1};
    launch(grid, block, [&](const ThreadCtx& ctx) {
        const Size tid = ctx.global_x();
        if (tid >= num_fibers)
            return;
        Value acc = 0;
        for (Size p = fptr[tid]; p < fptr[tid + 1]; ++p)
            acc += xv[p] * vv[kind[p]];
        yv[tid] = acc;
    });
    AccessMonitor::throw_if_access_violations("ttv_gpu_coo");

    LaunchProfile prof;
    prof.flops = 2 * m;
    prof.dram_bytes = 12 * m + 12 * num_fibers;
    prof.working_set_bytes =
        8 * m + kValueBytes * v.size() + 12 * num_fibers;
    prof.block_bytes = ttv_block_bytes(fptr, kDefaultBlockThreads);
    return prof;
}

LaunchProfile
ttv_gpu_hicoo(const HicooTtvPlan& plan, const DenseVector& v,
              HiCooTensor& out)
{
    const GHiCooTensor& g = plan.input;
    const Size num_fibers = plan.fptr.size() - 1;
    PASTA_CHECK_MSG(out.nnz() == num_fibers, "output nnz mismatch");
    PASTA_CHECK_MSG(v.size() == g.dim(plan.mode), "vector length mismatch");
    const Size m = g.nnz();
    const DeviceBuffer dx(g.storage_bytes(), "ttv_gpu_hicoo.x");
    const DeviceBuffer dv(v.storage_bytes(), "ttv_gpu_hicoo.v");
    const DeviceBuffer dout(out.storage_bytes(), "ttv_gpu_hicoo.out");
    const DeviceBuffer dfptr(plan.fptr.size() * sizeof(Size),
                             "ttv_gpu_hicoo.fptr");
    arm_access_checks();
    const auto xv = make_span(g.values().data(), m);
    const auto vv = make_span(v.data(), v.size());
    const auto yv = make_span(out.values().data(), num_fibers);
    const auto& fptr = plan.fptr;
    const Size mode = plan.mode;

    const Dim3 grid{grid_blocks(num_fibers, kDefaultBlockThreads), 1, 1};
    const Dim3 block{kDefaultBlockThreads, 1, 1};
    launch(grid, block, [&](const ThreadCtx& ctx) {
        const Size tid = ctx.global_x();
        if (tid >= num_fibers)
            return;
        Value acc = 0;
        for (Size p = fptr[tid]; p < fptr[tid + 1]; ++p)
            acc += xv[p] * vv[g.raw_index(mode, p)];
        yv[tid] = acc;
    });
    AccessMonitor::throw_if_access_violations("ttv_gpu_hicoo");

    LaunchProfile prof;
    prof.flops = 2 * m;
    prof.dram_bytes = 12 * m + 12 * num_fibers;
    prof.working_set_bytes =
        8 * m + kValueBytes * v.size() + 12 * num_fibers;
    prof.block_bytes = ttv_block_bytes(fptr, kDefaultBlockThreads);
    return prof;
}

namespace {

/// Builds the non-zero -> fiber map consumed by the 2-D TTM mapping.
std::vector<Index>
nnz_to_fiber(const std::vector<Size>& fptr, Size m)
{
    std::vector<Index> map(m);
    const Size num_fibers = fptr.size() - 1;
    for (Size f = 0; f < num_fibers; ++f)
        for (Size p = fptr[f]; p < fptr[f + 1]; ++p)
            map[p] = static_cast<Index>(f);
    return map;
}

}  // namespace

LaunchProfile
ttm_gpu_coo(const CooTtmPlan& plan, const DenseMatrix& u, ScooTensor& out)
{
    const Size m = plan.sorted.nnz();
    const Size rank = plan.rank;
    const Size num_fibers = plan.fibers.num_fibers();
    PASTA_CHECK_MSG(u.cols() == rank, "matrix rank mismatch");
    PASTA_CHECK_MSG(out.num_sparse() == num_fibers,
                    "output stripe count mismatch");
    std::fill(out.values().begin(), out.values().end(), 0.0f);
    const std::vector<Index> fiber_map = nnz_to_fiber(plan.fibers.fptr, m);

    const DeviceBuffer dx(plan.sorted.storage_bytes(), "ttm_gpu_coo.x");
    const DeviceBuffer du(u.storage_bytes(), "ttm_gpu_coo.u");
    const DeviceBuffer dout(out.storage_bytes(), "ttm_gpu_coo.out");
    const DeviceBuffer dfiber(m * sizeof(Index), "ttm_gpu_coo.fiber_of");
    arm_access_checks();
    const auto xv = make_span(plan.sorted.values().data(), m);
    const auto kind =
        make_span(plan.sorted.mode_indices(plan.mode).data(), m);
    const auto fiber_of = make_span(fiber_map.data(), m);
    const auto uv = make_span(u.data(), u.rows() * rank);
    const auto outv = make_span(out.values().data(), out.values().size());
    const Size sv = out.stripe_volume();

    // 2-D thread blocks: x walks matrix columns (coalesced), y walks
    // non-zeros (paper §III-B2; Ma et al. [34]).
    const Size by = std::max<Size>(1, kDefaultBlockThreads / rank);
    const Dim3 block{rank, by, 1};
    const Dim3 grid{grid_blocks(m, by), 1, 1};
    launch(grid, block, [&](const ThreadCtx& ctx) {
        const Size p = ctx.block_idx.x * ctx.block_dim.y + ctx.thread_idx.y;
        const Size r = ctx.thread_idx.x;
        if (p >= m)
            return;
        const Value contrib =
            xv[p] * uv[static_cast<Size>(kind[p]) * rank + r];
        atomic_add(&outv[static_cast<Size>(fiber_of[p]) * sv + r], contrib);
    });
    AccessMonitor::throw_if_access_violations("ttm_gpu_coo");

    LaunchProfile prof;
    prof.flops = 2 * m * rank;
    // Table I, COO-TTM row: 4MR + 4 M_F R + 8 M_F + 8M + 8 M_F.
    prof.dram_bytes =
        4 * m * rank + 4 * num_fibers * rank + 16 * num_fibers + 8 * m;
    prof.working_set_bytes = 8 * m + u.rows() * rank * kValueBytes +
                             num_fibers * rank * kValueBytes;
    prof.atomics = m * rank;
    prof.block_bytes = uniform_block_bytes(prof.dram_bytes, grid.x);
    return prof;
}

LaunchProfile
ttm_gpu_hicoo(const HicooTtmPlan& plan, const DenseMatrix& u,
              SHiCooTensor& out)
{
    const GHiCooTensor& g = plan.input;
    const Size m = g.nnz();
    const Size rank = plan.rank;
    const Size num_fibers = plan.fptr.size() - 1;
    PASTA_CHECK_MSG(u.cols() == rank, "matrix rank mismatch");
    PASTA_CHECK_MSG(out.num_sparse() == num_fibers,
                    "output stripe count mismatch");
    std::fill(out.values().begin(), out.values().end(), 0.0f);
    const std::vector<Index> fiber_map = nnz_to_fiber(plan.fptr, m);

    const DeviceBuffer dx(g.storage_bytes(), "ttm_gpu_hicoo.x");
    const DeviceBuffer du(u.storage_bytes(), "ttm_gpu_hicoo.u");
    const DeviceBuffer dout(out.storage_bytes(), "ttm_gpu_hicoo.out");
    const DeviceBuffer dfiber(m * sizeof(Index), "ttm_gpu_hicoo.fiber_of");
    arm_access_checks();
    const auto xv = make_span(g.values().data(), m);
    const auto fiber_of = make_span(fiber_map.data(), m);
    const auto uv = make_span(u.data(), u.rows() * rank);
    const auto outv = make_span(out.values().data(), out.values().size());
    const Size sv = out.stripe_volume();
    const Size mode = plan.mode;

    const Size by = std::max<Size>(1, kDefaultBlockThreads / rank);
    const Dim3 block{rank, by, 1};
    const Dim3 grid{grid_blocks(m, by), 1, 1};
    launch(grid, block, [&](const ThreadCtx& ctx) {
        const Size p = ctx.block_idx.x * ctx.block_dim.y + ctx.thread_idx.y;
        const Size r = ctx.thread_idx.x;
        if (p >= m)
            return;
        const Value contrib =
            xv[p] *
            uv[static_cast<Size>(g.raw_index(mode, p)) * rank + r];
        atomic_add(&outv[static_cast<Size>(fiber_of[p]) * sv + r], contrib);
    });
    AccessMonitor::throw_if_access_violations("ttm_gpu_hicoo");

    LaunchProfile prof;
    prof.flops = 2 * m * rank;
    // Table I, HiCOO-TTM row: 4MR + 4 M_F R + 8M + 8 M_F.
    prof.dram_bytes =
        4 * m * rank + 4 * num_fibers * rank + 8 * m + 8 * num_fibers;
    prof.working_set_bytes = 8 * m + u.rows() * rank * kValueBytes +
                             num_fibers * rank * kValueBytes;
    prof.atomics = m * rank;
    prof.block_bytes = uniform_block_bytes(prof.dram_bytes, grid.x);
    return prof;
}

LaunchProfile
mttkrp_gpu_coo(const CooTensor& x, const FactorList& factors, Size mode,
               DenseMatrix& out)
{
    const Size rank = check_factors(x.dims(), factors);
    PASTA_CHECK_MSG(mode < x.order(), "mode out of range");
    PASTA_CHECK_MSG(out.rows() == x.dim(mode) && out.cols() == rank,
                    "output matrix shape mismatch");
    out.fill(0);
    const Size m = x.nnz();
    const Size order = x.order();

    const DeviceBuffer dx(x.storage_bytes(), "mttkrp_gpu_coo.x");
    Size factor_bytes = 0;
    for (Size mm = 0; mm < order; ++mm)
        factor_bytes += factors[mm]->storage_bytes();
    const DeviceBuffer df(factor_bytes, "mttkrp_gpu_coo.factors");
    const DeviceBuffer dout(out.storage_bytes(), "mttkrp_gpu_coo.out");
    arm_access_checks();
    const auto xv = make_span(x.values().data(), m);
    std::vector<Span<const Value>> fs(order);
    for (Size mm = 0; mm < order; ++mm)
        fs[mm] = make_span(factors[mm]->data(),
                           factors[mm]->rows() * rank);
    const auto outv = make_span(out.data(), out.rows() * rank);

    const Size by = std::max<Size>(1, kDefaultBlockThreads / rank);
    const Dim3 block{rank, by, 1};
    const Dim3 grid{grid_blocks(m, by), 1, 1};
    launch(grid, block, [&](const ThreadCtx& ctx) {
        const Size p = ctx.block_idx.x * ctx.block_dim.y + ctx.thread_idx.y;
        const Size r = ctx.thread_idx.x;
        if (p >= m)
            return;
        Value prod = xv[p];
        for (Size mm = 0; mm < order; ++mm) {
            if (mm == mode)
                continue;
            prod *= fs[mm][static_cast<Size>(x.index(mm, p)) * rank + r];
        }
        atomic_add(&outv[static_cast<Size>(x.index(mode, p)) * rank + r],
                   prod);
    });
    AccessMonitor::throw_if_access_violations("mttkrp_gpu_coo");

    LaunchProfile prof;
    prof.flops = order * m * rank;
    // Table I, COO-MTTKRP row generalized: 4 N M R + 4(N+1) M.
    prof.dram_bytes = 4 * order * m * rank + 4 * (order + 1) * m;
    Size ws_factor_bytes = 0;
    for (Size mm = 0; mm < order; ++mm)
        ws_factor_bytes += factors[mm]->rows() * rank * kValueBytes;
    prof.working_set_bytes =
        (order + 1) * kIndexBytes * m + ws_factor_bytes +
        out.rows() * rank * kValueBytes;
    prof.atomics = m * rank;
    prof.block_bytes = uniform_block_bytes(prof.dram_bytes, grid.x);
    return prof;
}

LaunchProfile
mttkrp_gpu_hicoo(const HiCooTensor& x, const FactorList& factors, Size mode,
                 DenseMatrix& out)
{
    const Size rank = check_factors(x.dims(), factors);
    PASTA_CHECK_MSG(mode < x.order(), "mode out of range");
    PASTA_CHECK_MSG(out.rows() == x.dim(mode) && out.cols() == rank,
                    "output matrix shape mismatch");
    PASTA_CHECK_MSG(x.order() <= 8, "HiCOO MTTKRP supports order <= 8");
    out.fill(0);
    const Size order = x.order();
    const unsigned bits = x.block_bits();
    const Size nb = x.num_blocks();
    const auto& bptr = x.bptr();

    const DeviceBuffer dx(x.storage_bytes(), "mttkrp_gpu_hicoo.x");
    Size factor_bytes = 0;
    for (Size mm = 0; mm < order; ++mm)
        factor_bytes += factors[mm]->storage_bytes();
    const DeviceBuffer df(factor_bytes, "mttkrp_gpu_hicoo.factors");
    const DeviceBuffer dout(out.storage_bytes(), "mttkrp_gpu_hicoo.out");
    arm_access_checks();
    const auto xv = make_span(x.values().data(), x.nnz());
    std::vector<Span<const Value>> fs(order);
    for (Size mm = 0; mm < order; ++mm)
        fs[mm] = make_span(factors[mm]->data(),
                           factors[mm]->rows() * rank);
    const auto outv = make_span(out.data(), out.rows() * rank);

    // One tensor block per thread block (paper §III-D2): the x dimension
    // walks the rank, the y dimension walks the block's non-zeros.
    const Size by = std::max<Size>(1, kDefaultBlockThreads / rank);
    const Dim3 block{rank, by, 1};
    const Dim3 grid{nb, 1, 1};
    launch(grid, block, [&](const ThreadCtx& ctx) {
        const Size b = ctx.block_idx.x;
        const Size r = ctx.thread_idx.x;
        Size base[8];
        for (Size mm = 0; mm < order; ++mm)
            base[mm] = (static_cast<Size>(x.block_index(mm, b)) << bits) *
                       rank;
        const Size out_base =
            (static_cast<Size>(x.block_index(mode, b)) << bits) * rank;
        const Size stride = rank;
        // Each y-thread strides over the block's non-zeros.
        for (Size p = bptr[b] + ctx.thread_idx.y; p < bptr[b + 1];
             p += ctx.block_dim.y) {
            Value prod = xv[p];
            for (Size mm = 0; mm < order; ++mm) {
                if (mm == mode)
                    continue;
                prod *= fs[mm][base[mm] +
                               static_cast<Size>(x.element_index(mm, p)) *
                                   stride +
                               r];
            }
            atomic_add(
                &outv[out_base +
                      static_cast<Size>(x.element_index(mode, p)) * stride +
                      r],
                prod);
        }
    });
    AccessMonitor::throw_if_access_violations("mttkrp_gpu_hicoo");

    const Size m = x.nnz();
    LaunchProfile prof;
    prof.flops = order * m * rank;
    // Table I, HiCOO-MTTKRP row generalized:
    // 4 N R min(n_b B, M) + (4 + N) M + (4N + 8) n_b.
    const Size block_edge = x.block_size();
    prof.dram_bytes = 4 * order * rank * std::min(nb * block_edge, m) +
                      (4 + order) * m + (4 * order + 8) * nb;
    Size ws_factor_bytes = 0;
    for (Size mm = 0; mm < order; ++mm)
        ws_factor_bytes += factors[mm]->rows() * rank * kValueBytes;
    prof.working_set_bytes = x.storage_bytes() + ws_factor_bytes +
                             out.rows() * rank * kValueBytes;
    prof.atomics = m * rank;
    // Per-thread-block traffic is proportional to the block's population
    // plus its matrix tiles; this is where the HiCOO GPU kernel's load
    // imbalance comes from.
    prof.block_bytes.resize(nb);
    for (Size b = 0; b < nb; ++b) {
        const Size nnz_b = bptr[b + 1] - bptr[b];
        prof.block_bytes[b] =
            static_cast<double>((4 + order) * nnz_b +
                                4 * order * rank * block_edge +
                                (4 * order + 8));
    }
    return prof;
}

}  // namespace pasta::gpusim
