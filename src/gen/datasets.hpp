/// \file
/// The paper's tensor dataset (Table II) as a generative catalog.
///
/// Table II(a)'s real tensors (FROSTT, HaTen2, CHOA) total hundreds of
/// millions of non-zeros and are not redistributable here; per DESIGN.md's
/// substitution rule each is replaced by a *shape-faithful stand-in*:
/// same order, dimension ratios, and mode-size skew (short modes stay
/// short), generated with the power-law generator that models the
/// scale-free structure of the underlying graphs/relations.  Table II(b)'s
/// synthetic tensors are generated exactly as the paper describes
/// (Kronecker for the regular family, power-law for the irregular ones).
///
/// A global scale factor shrinks every dataset to laptop size: non-zeros
/// scale linearly, dimensions by the order-th root, which preserves the
/// density regime and the per-mode nnz/dimension ratios that drive fiber
/// statistics and load imbalance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/coo_tensor.hpp"

namespace pasta {

/// Which generator synthesizes a dataset.
enum class GenKind { kKronecker, kPowerLaw };

/// One row of Table II.
struct DatasetSpec {
    std::string id;        ///< "r1".."r15" or "s1".."s15"
    std::string name;      ///< e.g. "vast", "regS"
    bool real = false;     ///< Table II(a) (stand-in) vs II(b)
    GenKind gen = GenKind::kPowerLaw;
    std::vector<Index> paper_dims;   ///< dimensions as published
    double paper_nnz = 0;            ///< non-zeros as published
    std::vector<bool> uniform_mode;  ///< short modes sampled uniformly

    Size order() const { return paper_dims.size(); }
};

/// Table II(a): the fifteen real tensors r1..r15.
const std::vector<DatasetSpec>& real_dataset_table();

/// Table II(b): the fifteen synthetic tensors s1..s15.
const std::vector<DatasetSpec>& synthetic_dataset_table();

/// Looks up a spec by id ("r3") or name ("choa") across both tables;
/// throws PastaError when unknown.
const DatasetSpec& find_dataset(const std::string& id_or_name);

/// Scaled target shape of `spec` at `scale` (fraction of the paper's nnz,
/// e.g. 1e-3).  Returns {dims, nnz}; dimensions shrink by scale^(1/order)
/// and are grown back minimally when the requested nnz would not fit.
struct ScaledShape {
    std::vector<Index> dims;
    Size nnz = 0;
};
ScaledShape scaled_shape(const DatasetSpec& spec, double scale);

/// Generates the dataset at `scale` with a deterministic per-dataset seed.
CooTensor synthesize_dataset(const DatasetSpec& spec, double scale);

/// A generated tensor with its catalog identity, as consumed by benches.
struct NamedTensor {
    std::string id;
    std::string name;
    CooTensor tensor;
};

/// Generates the full 30-tensor suite (r1..r15 stand-ins + s1..s15) at
/// `scale`.  Order matches the paper's figures: reals first, then
/// synthetic.
std::vector<NamedTensor> standard_suite(double scale);

}  // namespace pasta
