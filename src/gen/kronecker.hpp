/// \file
/// Stochastic Kronecker tensor generator (paper §IV-B1).
///
/// Extends the Kronecker graph model of Leskovec et al. to order-N sparse
/// tensors: an initiator probability tensor X_1 with N modes is implicitly
/// Kronecker-multiplied with itself k times, and non-zeros are sampled by
/// descending k levels of the recursion, choosing one initiator cell per
/// level (the standard sampling that realizes Bernoulli placement at
/// scale).  The paper's strip-off trick for non-power dimension sizes is
/// implemented the same way: one extra Kronecker iteration is performed
/// when needed and coordinates falling outside the requested dimensions
/// are discarded and resampled.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/coo_tensor.hpp"

namespace pasta {

/// Configuration of the Kronecker generator.
struct KroneckerConfig {
    /// Target dimension sizes (need not be powers of the initiator edge).
    std::vector<Index> dims;

    /// Number of distinct non-zeros to produce.
    Size nnz = 0;

    /// Edge length of the cubical initiator tensor (>= 2).
    Index initiator_edge = 2;

    /// Initiator probabilities, row-major over the initiator cells, size
    /// initiator_edge^order.  Empty selects the default biased initiator
    /// built from per-mode weights (0.7, 0.3, ...) that yields graphs with
    /// power-law degree distributions, small diameter, and high
    /// clustering — the properties §IV-B names.
    std::vector<double> initiator;

    /// Deterministic seed (reproducible generation is a suite goal).
    std::uint64_t seed = 1;
};

/// Generates a sparse tensor from `config`.  Coordinates are distinct,
/// lexicographically sorted; values are uniform in [0.5, 1.5).
CooTensor generate_kronecker(const KroneckerConfig& config);

/// The default biased initiator for the given order/edge: cell probability
/// is the product of per-mode weights w_m(c) with w(0) twice-plus the
/// weight of higher coordinates, normalized.  Exposed for tests.
std::vector<double> default_kronecker_initiator(Size order,
                                                Index initiator_edge);

}  // namespace pasta
