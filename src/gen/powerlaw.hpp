/// \file
/// Biased power-law tensor generator (paper §IV-B2).
///
/// Models the FireHose streaming benchmark's biased power-law edge
/// generator, extended to tensors: a stream of order-N coordinates whose
/// sparse-mode indices follow a power-law (Zipf-like) distribution —
/// a few hot indices receive most of the non-zeros — while short "dense"
/// modes are drawn uniformly.  Stacking power-law graphs as slices of a
/// hypergraph is exactly this construction: the slice index is a short
/// uniform mode over power-law distributed (i, j) pairs.  Unlike the
/// Kronecker model, arbitrary dimension sizes are directly generated.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/coo_tensor.hpp"

namespace pasta {

/// Configuration of the power-law generator.
struct PowerLawConfig {
    /// Target dimension sizes.
    std::vector<Index> dims;

    /// Number of distinct non-zeros to produce.
    Size nnz = 0;

    /// Power-law exponent for the sparse modes (> 1; larger = more skew).
    double alpha = 1.8;

    /// Marks modes sampled uniformly (the short, effectively dense modes
    /// of the paper's irregular tensors).  Empty = all modes power-law.
    std::vector<bool> uniform_mode;

    /// Deterministic seed.
    std::uint64_t seed = 1;
};

/// Generates a sparse tensor from `config`.  Coordinates are distinct and
/// lexicographically sorted; values are uniform in [0.5, 1.5).
CooTensor generate_powerlaw(const PowerLawConfig& config);

/// Samples one index in [0, dim) from the bounded continuous power-law
/// p(x) ~ x^-alpha via inverse-CDF (exposed for distribution tests).
Index sample_powerlaw_index(Rng& rng, Index dim, double alpha);

}  // namespace pasta
