#include "gen/kronecker.hpp"

#include <cmath>
#include <unordered_set>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pasta {

std::vector<double>
default_kronecker_initiator(Size order, Index initiator_edge)
{
    PASTA_CHECK_MSG(initiator_edge >= 2, "initiator edge must be >= 2");
    PASTA_CHECK_MSG(order >= 1, "order must be >= 1");
    // Per-mode weights decay geometrically: w(0)=1, w(c)=0.45^c, giving
    // the RMAT-like (a >> b) skew that produces power-law distributions.
    std::vector<double> mode_weights(initiator_edge);
    double mode_total = 0.0;
    for (Index c = 0; c < initiator_edge; ++c) {
        mode_weights[c] = std::pow(0.45, static_cast<double>(c));
        mode_total += mode_weights[c];
    }
    for (auto& w : mode_weights)
        w /= mode_total;

    Size cells = 1;
    for (Size m = 0; m < order; ++m)
        cells *= initiator_edge;
    std::vector<double> initiator(cells);
    for (Size cell = 0; cell < cells; ++cell) {
        double p = 1.0;
        Size rem = cell;
        for (Size m = 0; m < order; ++m) {
            p *= mode_weights[rem % initiator_edge];
            rem /= initiator_edge;
        }
        initiator[cell] = p;
    }
    return initiator;
}

CooTensor
generate_kronecker(const KroneckerConfig& config)
{
    PASTA_CHECK_MSG(!config.dims.empty(), "dims must be non-empty");
    PASTA_CHECK_MSG(config.initiator_edge >= 2, "initiator edge >= 2");
    const Size order = config.dims.size();
    const Index edge = config.initiator_edge;

    std::vector<double> initiator = config.initiator;
    if (initiator.empty())
        initiator = default_kronecker_initiator(order, edge);
    Size cells = 1;
    for (Size m = 0; m < order; ++m)
        cells *= edge;
    PASTA_CHECK_MSG(initiator.size() == cells,
                    "initiator size " << initiator.size() << " != edge^order "
                                      << cells);

    // Cumulative distribution over initiator cells.
    std::vector<double> cdf(cells);
    double total = 0.0;
    for (Size c = 0; c < cells; ++c) {
        PASTA_CHECK_MSG(initiator[c] >= 0, "negative initiator probability");
        total += initiator[c];
        cdf[c] = total;
    }
    PASTA_CHECK_MSG(total > 0, "initiator probabilities sum to 0");
    for (auto& v : cdf)
        v /= total;

    // Levels: enough Kronecker iterations to cover the largest dimension;
    // the strip-off rule discards out-of-range coordinates (paper §IV-B1).
    Index max_dim = 0;
    for (Index d : config.dims)
        max_dim = std::max(max_dim, d);
    unsigned levels = 0;
    double reach = 1.0;
    while (reach < static_cast<double>(max_dim)) {
        reach *= static_cast<double>(edge);
        ++levels;
    }
    levels = std::max(levels, 1u);

    double capacity = 1.0;
    for (Index d : config.dims)
        capacity *= static_cast<double>(d);
    PASTA_CHECK_MSG(static_cast<double>(config.nnz) <= 0.5 * capacity,
                    "requested nnz too dense for Kronecker strip-off");

    Rng rng(config.seed);
    CooTensor out(config.dims);
    out.reserve(config.nnz);
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(config.nnz * 2);
    Coordinate coord(order);
    // Failsafe cap so pathological configs terminate with an error
    // instead of spinning.
    Size attempts = 0;
    const Size max_attempts = 1000 * (config.nnz + 1000);
    while (out.nnz() < config.nnz) {
        PASTA_CHECK_MSG(++attempts <= max_attempts,
                        "Kronecker sampling did not converge; dims too "
                        "small for requested nnz?");
        std::fill(coord.begin(), coord.end(), 0);
        for (unsigned level = 0; level < levels; ++level) {
            const double u = rng.next_double();
            // Binary search the cell CDF.
            Size lo = 0;
            Size hi = cells - 1;
            while (lo < hi) {
                const Size mid = (lo + hi) / 2;
                if (cdf[mid] < u)
                    lo = mid + 1;
                else
                    hi = mid;
            }
            Size rem = lo;
            for (Size m = 0; m < order; ++m) {
                coord[m] = coord[m] * edge +
                           static_cast<Index>(rem % edge);
                rem /= edge;
            }
        }
        bool in_range = true;
        for (Size m = 0; m < order; ++m) {
            if (coord[m] >= config.dims[m]) {
                in_range = false;
                break;
            }
        }
        if (!in_range)
            continue;  // strip off out-of-range coordinates
        std::uint64_t h = 1469598103934665603ULL;
        for (Size m = 0; m < order; ++m)
            h = (h ^ coord[m]) * 1099511628211ULL;
        if (seen.insert(h).second)
            out.append(coord, rng.next_float() + 0.5f);
    }
    out.sort_lexicographic();
    return out;
}

}  // namespace pasta
