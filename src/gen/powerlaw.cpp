#include "gen/powerlaw.hpp"

#include <cmath>
#include <unordered_set>

#include "common/error.hpp"

namespace pasta {

Index
sample_powerlaw_index(Rng& rng, Index dim, double alpha)
{
    PASTA_ASSERT(dim > 0);
    if (dim == 1)
        return 0;
    PASTA_ASSERT(alpha > 1.0);
    // Inverse CDF of the continuous bounded power law on [1, dim+1):
    //   x = ((hi^(1-a) - 1) u + 1)^(1/(1-a)),  a = alpha.
    const double one_minus_a = 1.0 - alpha;
    const double hi = std::pow(static_cast<double>(dim) + 1.0, one_minus_a);
    const double u = rng.next_double();
    const double x = std::pow((hi - 1.0) * u + 1.0, 1.0 / one_minus_a);
    Index idx = static_cast<Index>(x) - 1;
    return idx >= dim ? dim - 1 : idx;
}

CooTensor
generate_powerlaw(const PowerLawConfig& config)
{
    PASTA_CHECK_MSG(!config.dims.empty(), "dims must be non-empty");
    PASTA_CHECK_MSG(config.alpha > 1.0, "alpha must exceed 1");
    const Size order = config.dims.size();
    PASTA_CHECK_MSG(config.uniform_mode.empty() ||
                        config.uniform_mode.size() == order,
                    "uniform_mode arity mismatch");

    double capacity = 1.0;
    for (Index d : config.dims)
        capacity *= static_cast<double>(d);
    PASTA_CHECK_MSG(static_cast<double>(config.nnz) <= 0.5 * capacity,
                    "requested nnz too dense for distinct sampling");

    Rng rng(config.seed);
    CooTensor out(config.dims);
    out.reserve(config.nnz);
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(config.nnz * 2);
    Coordinate coord(order);
    Size attempts = 0;
    const Size max_attempts = 1000 * (config.nnz + 1000);
    while (out.nnz() < config.nnz) {
        PASTA_CHECK_MSG(++attempts <= max_attempts,
                        "power-law sampling did not converge; hot indices "
                        "saturated?  Lower alpha or nnz.");
        for (Size m = 0; m < order; ++m) {
            const bool uniform =
                !config.uniform_mode.empty() && config.uniform_mode[m];
            coord[m] = uniform
                           ? rng.next_index(config.dims[m])
                           : sample_powerlaw_index(rng, config.dims[m],
                                                   config.alpha);
        }
        std::uint64_t h = 1469598103934665603ULL;
        for (Size m = 0; m < order; ++m)
            h = (h ^ coord[m]) * 1099511628211ULL;
        if (seen.insert(h).second)
            out.append(coord, rng.next_float() + 0.5f);
    }
    out.sort_lexicographic();
    return out;
}

}  // namespace pasta
