#include "gen/datasets.hpp"

#include <cmath>

#include "common/error.hpp"
#include "gen/kronecker.hpp"
#include "gen/powerlaw.hpp"

namespace pasta {

namespace {

/// Marks modes with extent below this threshold as uniform (the short,
/// effectively dense modes of the irregular tensors).
constexpr Index kShortModeThreshold = 2048;

DatasetSpec
make_spec(std::string id, std::string name, bool real, GenKind gen,
          std::vector<Index> dims, double nnz)
{
    DatasetSpec spec;
    spec.id = std::move(id);
    spec.name = std::move(name);
    spec.real = real;
    spec.gen = gen;
    spec.paper_dims = std::move(dims);
    spec.paper_nnz = nnz;
    spec.uniform_mode.resize(spec.paper_dims.size());
    for (Size m = 0; m < spec.paper_dims.size(); ++m)
        spec.uniform_mode[m] = spec.paper_dims[m] < kShortModeThreshold;
    return spec;
}

constexpr double kK = 1e3;
constexpr double kM = 1e6;

}  // namespace

const std::vector<DatasetSpec>&
real_dataset_table()
{
    // Table II(a), dims and nnz as published; every real tensor is
    // synthesized as a power-law stand-in (see file comment).
    static const std::vector<DatasetSpec> table = {
        make_spec("r1", "vast", true, GenKind::kPowerLaw,
                  {165'000, 11'000, 2}, 26 * kM),
        make_spec("r2", "nell2", true, GenKind::kPowerLaw,
                  {12'000, 9'000, 29'000}, 77 * kM),
        make_spec("r3", "choa", true, GenKind::kPowerLaw,
                  {712'000, 10'000, 767}, 27 * kM),
        make_spec("r4", "darpa", true, GenKind::kPowerLaw,
                  {22'000, 22'000, 24'000'000}, 28 * kM),
        make_spec("r5", "fb-m", true, GenKind::kPowerLaw,
                  {23'000'000, 23'000'000, 166}, 100 * kM),
        make_spec("r6", "fb-s", true, GenKind::kPowerLaw,
                  {39'000'000, 39'000'000, 532}, 140 * kM),
        make_spec("r7", "flickr", true, GenKind::kPowerLaw,
                  {320'000, 28'000'000, 1'600'000}, 113 * kM),
        make_spec("r8", "deli", true, GenKind::kPowerLaw,
                  {533'000, 17'000'000, 2'500'000}, 140 * kM),
        make_spec("r9", "nell1", true, GenKind::kPowerLaw,
                  {2'900'000, 2'100'000, 25'000'000}, 144 * kM),
        make_spec("r10", "crime4d", true, GenKind::kPowerLaw,
                  {6'000, 24, 77, 32}, 5 * kM),
        make_spec("r11", "uber4d", true, GenKind::kPowerLaw,
                  {183, 24, 1'140, 1'717}, 3 * kM),
        make_spec("r12", "nips4d", true, GenKind::kPowerLaw,
                  {2'000, 3'000, 14'000, 17}, 3 * kM),
        make_spec("r13", "enron4d", true, GenKind::kPowerLaw,
                  {6'000, 6'000, 244'000, 1'000}, 54 * kM),
        make_spec("r14", "flickr4d", true, GenKind::kPowerLaw,
                  {320'000, 28'000'000, 1'600'000, 731}, 113 * kM),
        make_spec("r15", "deli4d", true, GenKind::kPowerLaw,
                  {533'000, 17'000'000, 2'500'000, 1'000}, 140 * kM),
    };
    return table;
}

const std::vector<DatasetSpec>&
synthetic_dataset_table()
{
    // Table II(b): regular = Kronecker, irregular = power law with the
    // short mode(s) uniform, sizes in a "small, medium, large" period.
    static const std::vector<DatasetSpec> table = {
        make_spec("s1", "regS", false, GenKind::kKronecker,
                  {65'000, 65'000, 65'000}, 1.1 * kM),
        make_spec("s2", "regM", false, GenKind::kKronecker,
                  {1'100'000, 1'100'000, 1'100'000}, 11.5 * kM),
        make_spec("s3", "regL", false, GenKind::kKronecker,
                  {8'300'000, 8'300'000, 8'300'000}, 94 * kM),
        make_spec("s4", "irrS", false, GenKind::kPowerLaw,
                  {32'000, 32'000, 76}, 1 * kM),
        make_spec("s5", "irrM", false, GenKind::kPowerLaw,
                  {524'000, 524'000, 126}, 10 * kM),
        make_spec("s6", "irrL", false, GenKind::kPowerLaw,
                  {4'200'000, 4'200'000, 168}, 84 * kM),
        make_spec("s7", "regS4d", false, GenKind::kKronecker,
                  {8'200, 8'200, 8'200, 8'200}, 1 * kM),
        make_spec("s8", "regM4d", false, GenKind::kKronecker,
                  {2'100'000, 2'100'000, 2'100'000, 2'100'000}, 11.2 * kM),
        make_spec("s9", "regL4d", false, GenKind::kKronecker,
                  {8'300'000, 8'300'000, 8'300'000, 8'300'000}, 110 * kM),
        make_spec("s10", "irrS4d", false, GenKind::kPowerLaw,
                  {1'600'000, 1'600'000, 1'600'000, 82}, 1.0 * kM),
        make_spec("s11", "irrM4d", false, GenKind::kPowerLaw,
                  {2'600'000, 2'600'000, 2'600'000, 144}, 10.8 * kM),
        make_spec("s12", "irrL4d", false, GenKind::kPowerLaw,
                  {4'200'000, 4'200'000, 4'200'000, 226}, 100 * kM),
        make_spec("s13", "irr2S4d", false, GenKind::kPowerLaw,
                  {1'000'000, 1'000'000, 122, 436}, 1.6 * kM),
        make_spec("s14", "irr2M4d", false, GenKind::kPowerLaw,
                  {4'200'000, 4'200'000, 232, 746}, 19.9 * kM),
        make_spec("s15", "irr2L4d", false, GenKind::kPowerLaw,
                  {8'300'000, 8'300'000, 952, 324}, 109 * kM),
    };
    return table;
}

const DatasetSpec&
find_dataset(const std::string& id_or_name)
{
    for (const auto* table : {&real_dataset_table(),
                              &synthetic_dataset_table()}) {
        for (const auto& spec : *table)
            if (spec.id == id_or_name || spec.name == id_or_name)
                return spec;
    }
    throw PastaError("unknown dataset: " + id_or_name);
}

ScaledShape
scaled_shape(const DatasetSpec& spec, double scale)
{
    PASTA_CHECK_MSG(scale > 0 && scale <= 1.0,
                    "scale must be in (0, 1], got " << scale);
    ScaledShape shape;
    shape.nnz = static_cast<Size>(
        std::max(1.0, spec.paper_nnz * scale));
    const double dim_scale =
        std::pow(scale, 1.0 / static_cast<double>(spec.order()));
    shape.dims.resize(spec.order());
    for (Size m = 0; m < spec.order(); ++m) {
        const double scaled =
            std::round(static_cast<double>(spec.paper_dims[m]) * dim_scale);
        shape.dims[m] = static_cast<Index>(
            std::max(2.0, std::min(scaled,
                                   static_cast<double>(spec.paper_dims[m]))));
    }
    // Grow the dims uniformly until distinct sampling has headroom
    // (capacity of at least 4x the requested non-zeros).
    for (;;) {
        double capacity = 1.0;
        for (Index d : shape.dims)
            capacity *= static_cast<double>(d);
        if (capacity >= 4.0 * static_cast<double>(shape.nnz))
            break;
        for (auto& d : shape.dims)
            d = static_cast<Index>(
                std::ceil(static_cast<double>(d) * 1.3));
    }
    return shape;
}

CooTensor
synthesize_dataset(const DatasetSpec& spec, double scale)
{
    const ScaledShape shape = scaled_shape(spec, scale);
    // Deterministic per-dataset seed keyed on the id string.
    std::uint64_t seed = 0xCBF29CE484222325ULL;
    for (char c : spec.id)
        seed = (seed ^ static_cast<std::uint64_t>(c)) * 0x100000001B3ULL;

    if (spec.gen == GenKind::kKronecker) {
        KroneckerConfig config;
        config.dims = shape.dims;
        config.nnz = shape.nnz;
        config.seed = seed;
        return generate_kronecker(config);
    }
    PowerLawConfig config;
    config.dims = shape.dims;
    config.nnz = shape.nnz;
    config.uniform_mode = spec.uniform_mode;
    config.seed = seed;
    return generate_powerlaw(config);
}

std::vector<NamedTensor>
standard_suite(double scale)
{
    std::vector<NamedTensor> suite;
    for (const auto* table : {&real_dataset_table(),
                              &synthetic_dataset_table()}) {
        for (const auto& spec : *table)
            suite.push_back(
                {spec.id, spec.name, synthesize_dataset(spec, scale)});
    }
    return suite;
}

}  // namespace pasta
