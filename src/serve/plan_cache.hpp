/// \file
/// Sharded, ref-counted plan/conversion cache for the serving engine.
///
/// Repeated requests on the same tensor are the serving workload's
/// defining property (per-user embeddings hit the same per-user tensor
/// over and over), and plan build — sort, fiber discovery, HiCOO
/// conversion — dwarfs the tiny-kernel execution it precedes.  This
/// cache memoizes the format-dependent, operand-independent half of a
/// job: a TTV plan (sorted copy + fibers + output pattern) or a HiCOO
/// conversion, keyed on (tensor fingerprint, kernel, format, mode,
/// rank, block bits).  The fingerprint is FNV-1a over dims, nnz, every
/// index array, and the value bytes — the same checksum discipline the
/// PSTB disk cache uses, so two tensors collide only if their content
/// is byte-identical, in which case sharing the plan is correct.
///
/// Concurrency.  The map is sharded (key-hash → shard, one mutex each)
/// so the hit path never funnels thousands of jobs through one lock.
/// Misses are single-flighted per key: the first job builds under a
/// per-key build mutex while the shard lock is *released*, later
/// arrivals for the same key block on the build mutex and find the
/// entry on re-check — the same tensor is never converted twice
/// concurrently.
///
/// Memory.  Plans reserve their bytes from the membudget governor (see
/// Plan::own_reservation), so cached conversions count against
/// PASTA_MEM_BYTES like any other working set; the reservation is
/// released by the Plan's deleter when the *last* reference drops, not
/// at eviction — a job that holds a plan across an eviction keeps both
/// the plan and its accounting alive (ref-count correctness).  The
/// cache's own budget (PASTA_SERVE_CACHE_BYTES) is enforced per shard
/// with LRU eviction; an entry bigger than a shard's budget is evicted
/// immediately, degrading that key to build-per-job.
///
/// Counters (PASTA_TRACE=counters/full): serve.cache_hit,
/// serve.cache_miss, serve.cache_evict; the same figures are also kept
/// in plain atomics so bench_serving reports hit rates with tracing
/// off.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/hicoo_tensor.hpp"
#include "kernels/ttv.hpp"
#include "serve/job.hpp"

namespace pasta::serve {

/// Content fingerprint of a tensor: FNV-1a over dims, nnz, all index
/// arrays, and values.  O(nnz) — computed once per corpus tensor, not
/// per request.
std::uint64_t tensor_fingerprint(const CooTensor& x);

/// One cached, immutable plan.  Exactly one of the pointers below is
/// set, matching (kernel, format).  `bytes` is the governor-metered
/// estimate; the factory ties its release to the Plan's lifetime.
struct Plan {
    ServeKernel kernel = ServeKernel::kTtv;
    ServeFormat format = ServeFormat::kCoo;
    std::uint64_t bytes = 0;

    std::shared_ptr<const CooTtvPlan> ttv_coo;
    std::shared_ptr<const HicooTtvPlan> ttv_hicoo;
    std::shared_ptr<const HiCooTensor> mttkrp_hicoo;
};

/// Builds the plan for one (tensor, kernel, format, mode) combination,
/// reserving its bytes from the membudget governor ("serve.plan"); the
/// returned shared_ptr's deleter releases the reservation when the last
/// reference — cache entry or in-flight job — drops.  MTTKRP/COO needs
/// no plan and returns an empty Plan (bytes 0, nothing reserved).
std::shared_ptr<const Plan> build_plan(const CooTensor& tensor,
                                       ServeKernel kernel,
                                       ServeFormat format, Size mode,
                                       unsigned block_bits);

/// Cache key over everything that determines a plan's content.
std::string plan_key(std::uint64_t fingerprint, ServeKernel kernel,
                     ServeFormat format, Size mode, Size rank,
                     unsigned block_bits);

/// Sharded LRU plan cache.  byte_budget 0 disables caching entirely
/// (get_or_build degenerates to build).
class PlanCache {
  public:
    explicit PlanCache(std::uint64_t byte_budget, int shards = 8);

    /// Point-in-time usage/effectiveness figures.
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::uint64_t resident_bytes = 0;
        std::uint64_t entries = 0;

        double hit_rate() const
        {
            const std::uint64_t total = hits + misses;
            return total ? static_cast<double>(hits) /
                               static_cast<double>(total)
                         : 0.0;
        }
    };

    /// The plan for `key`, building it with `builder` on a miss
    /// (single-flighted: concurrent misses on one key build once).
    /// Never returns nullptr; builder exceptions propagate to exactly
    /// the caller that ran that build.  `was_hit` (optional) reports
    /// whether this call was served from the cache.
    std::shared_ptr<const Plan> get_or_build(
        const std::string& key,
        const std::function<std::shared_ptr<const Plan>()>& builder,
        bool* was_hit = nullptr);

    /// Evicts LRU entries until every shard holds at most
    /// `target_bytes` total (0 = evict everything).  The OOM retry
    /// lane's degrade step.
    void trim(std::uint64_t target_bytes);

    std::uint64_t byte_budget() const { return byte_budget_; }
    bool enabled() const { return byte_budget_ != 0; }
    Stats stats() const;

  private:
    struct Entry {
        std::shared_ptr<const Plan> plan;
        std::uint64_t bytes = 0;
        std::list<std::string>::iterator lru_it;
    };

    struct Shard {
        mutable std::mutex mutex;
        std::unordered_map<std::string, Entry> map;
        /// Front = most recently used.
        std::list<std::string> lru;
        std::uint64_t bytes = 0;
        /// Per-key single-flight build locks (erased after the build).
        std::unordered_map<std::string, std::shared_ptr<std::mutex>>
            building;
    };

    Shard& shard_for(const std::string& key);
    /// Evicts from `shard` (mutex held) until it holds <= target bytes.
    void evict_locked(Shard& shard, std::uint64_t target);

    std::uint64_t byte_budget_;
    std::uint64_t shard_budget_;
    std::vector<std::unique_ptr<Shard>> shards_;

    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
    /// Cache-wide resident bytes mirrored outside the shard locks so the
    /// metrics heartbeat reads byte pressure without touching shards.
    std::atomic<std::uint64_t> resident_{0};
};

}  // namespace pasta::serve
