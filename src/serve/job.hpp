/// \file
/// Multi-tenant serving: job and configuration types.
///
/// The ROADMAP's north-star traffic shape is millions of concurrent
/// *small* requests — per-user recommender embeddings doing TTV/MTTKRP
/// on tiny tensors — not one big closed-loop trial.  A ServeJob is one
/// such request: (tensor, kernel, format, mode, rank) plus a seed that
/// derives the dense operands deterministically, so a job's result is a
/// pure function of the job and the executing configuration.  Jobs are
/// submitted to the work-stealing Scheduler, executed through the
/// Executor's shared plan/conversion cache, and carry their lifecycle
/// timestamps (submit/start/done on the obs trace clock) out to the
/// latency reporting in bench_serving.
///
/// Configuration comes from PASTA_SERVE_* with the suite's strict env
/// validation: malformed values throw PastaError up front instead of
/// silently serving with a default.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hpp"
#include "core/coo_tensor.hpp"

namespace pasta::serve {

/// Kernels the serving engine executes.
enum class ServeKernel { kTtv, kMttkrp };

/// Input formats a job may request; conversions are cached.
enum class ServeFormat { kCoo, kHicoo };

/// Stable names for reports/CSVs ("TTV", "MTTKRP"; "COO", "HiCOO").
const char* serve_kernel_name(ServeKernel kernel);
const char* serve_format_name(ServeFormat format);

/// Serving-engine configuration, env-overridable:
///   PASTA_SERVE_WORKERS      worker threads (default: OpenMP default)
///   PASTA_SERVE_QUEUE        admission bound on queued jobs (default
///                            4096); submissions beyond it are shed
///   PASTA_SERVE_CACHE_BYTES  plan/conversion cache budget with K/M/G
///                            suffix (default 64M; 0 disables caching)
///   PASTA_SERVE_JOB_THREADS  per-job thread budget for intra-kernel
///                            parallel_for (default 1: tiny tensors get
///                            throughput from inter-job parallelism)
struct ServeOptions {
    int workers = 0;                   ///< 0 = pasta::num_threads()
    Size queue_bound = 4096;
    std::uint64_t cache_bytes = 64ULL << 20;
    int job_threads = 1;
    unsigned block_bits = 7;           ///< HiCOO B = 128 (paper §V-A2)

    /// Reads the PASTA_SERVE_* variables; malformed values throw
    /// PastaError (strict env validation).
    static ServeOptions from_env();
};

/// Terminal and transient states of one job.
enum class JobState : int {
    kQueued = 0,   ///< accepted, waiting in a queue/deque
    kRunning = 1,  ///< picked up by a worker
    kDone = 2,     ///< executed, result checksum recorded
    kFailed = 3,   ///< executed, kernel/plan raised; error recorded
};

/// One serving request plus its outcome.  Created by the submitter,
/// mutated only by the worker that executes it, read back after
/// Scheduler::drain(); shared_ptr-held so an abandoned submitter can
/// never dangle a queued job.
struct ServeJob {
    std::uint64_t id = 0;
    std::shared_ptr<const CooTensor> tensor;
    /// Tensor content fingerprint (tensor_fingerprint); 0 = computed
    /// lazily by the executor on first use.  Precomputing it once per
    /// corpus tensor keeps the hash off the request hot path.
    std::uint64_t fingerprint = 0;
    ServeKernel kernel = ServeKernel::kTtv;
    ServeFormat format = ServeFormat::kCoo;
    Size mode = 0;
    Size rank = 16;
    /// Seed deriving the dense operands (vector / factor matrices);
    /// identical seeds give bit-identical operands.
    std::uint64_t operand_seed = 1;

    std::atomic<int> state{static_cast<int>(JobState::kQueued)};
    int attempts = 0;          ///< execution attempts (2 = OOM retry ran)
    bool degraded = false;     ///< retry lane armed cache-bypass
    bool cache_hit = false;    ///< plan came from the cache
    std::string error;         ///< failure message when kFailed
    /// FNV-1a over the output value bytes: the bit-identity witness
    /// bench_serving compares between cached and uncached phases.
    std::uint64_t result_checksum = 0;

    /// Lifecycle timestamps on the obs trace clock (trace_now_ns).
    std::uint64_t submit_ns = 0;
    std::uint64_t start_ns = 0;
    std::uint64_t done_ns = 0;

    JobState current_state() const
    {
        return static_cast<JobState>(state.load(std::memory_order_acquire));
    }
    bool terminal() const
    {
        const JobState s = current_state();
        return s == JobState::kDone || s == JobState::kFailed;
    }
    double wait_seconds() const
    {
        return static_cast<double>(start_ns - submit_ns) * 1e-9;
    }
    double exec_seconds() const
    {
        return static_cast<double>(done_ns - start_ns) * 1e-9;
    }
    double total_seconds() const
    {
        return static_cast<double>(done_ns - submit_ns) * 1e-9;
    }
};

}  // namespace pasta::serve
