/// \file
/// Executes one serving job: plan lookup/build through the shared
/// cache, deterministic operand synthesis, kernel run, result
/// checksum.
///
/// Determinism contract: with the default per-job thread budget of 1,
/// a job's result bytes are a pure function of (tensor, kernel,
/// format, mode, rank, operand_seed) — the plan cache can therefore be
/// switched on or off without changing a single output bit, which is
/// exactly what bench_serving's cached-vs-uncached checksum comparison
/// asserts.  The kernels used are the suite's deterministic schedules
/// (fiber-parallel TTV, privatized COO MTTKRP, owner-partitioned HiCOO
/// MTTKRP); the atomic fallbacks only ever run serially under the
/// job's thread budget, where their update order is fixed too.
#pragma once

#include <memory>

#include "serve/job.hpp"
#include "serve/plan_cache.hpp"

namespace pasta::serve {

/// Outcome of one executed job body.
struct ExecResult {
    std::uint64_t checksum = 0;  ///< FNV-1a over output value bytes
    bool cache_hit = false;      ///< plan came from the cache
};

/// Stateless-per-job executor owning the shared plan cache.  Safe to
/// call from any number of scheduler workers concurrently.
class Executor {
  public:
    explicit Executor(const ServeOptions& options);

    /// Runs `job`'s kernel and returns its checksum.  Throws on kernel
    /// or plan failure (including membudget::HostOomError, which the
    /// scheduler's retry lane handles).  When `job.degraded` is set
    /// (the OOM retry), the cache is emptied first and the plan is
    /// built without caching, so the retry runs with the smallest
    /// possible footprint.
    ExecResult execute(ServeJob& job);

    /// The shared cache; nullptr when PASTA_SERVE_CACHE_BYTES is 0.
    PlanCache* cache() { return cache_.get(); }
    const ServeOptions& options() const { return options_; }

  private:
    std::shared_ptr<const Plan> plan_for(ServeJob& job);

    ServeOptions options_;
    std::unique_ptr<PlanCache> cache_;
};

}  // namespace pasta::serve
