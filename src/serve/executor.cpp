#include "serve/executor.hpp"

#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/dense.hpp"
#include "io/binary_io.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/ttv.hpp"
#include "obs/trace.hpp"

namespace pasta::serve {

namespace {

long
parse_env_int(const char* name, const char* value, long lo, long hi)
{
    char* end = nullptr;
    const long v = std::strtol(value, &end, 10);
    PASTA_CHECK_MSG(*value && *end == '\0' && v >= lo && v <= hi,
                    name << "='" << value << "' must be an integer in ["
                         << lo << ", " << hi << "]");
    return v;
}

/// K/M/G-suffixed byte count, the PASTA_MEM_BYTES convention.
std::uint64_t
parse_env_bytes(const char* name, const char* value)
{
    char* end = nullptr;
    const unsigned long long v = std::strtoull(value, &end, 10);
    std::uint64_t scale = 1;
    if (*end == 'k' || *end == 'K')
        scale = 1ULL << 10, ++end;
    else if (*end == 'm' || *end == 'M')
        scale = 1ULL << 20, ++end;
    else if (*end == 'g' || *end == 'G')
        scale = 1ULL << 30, ++end;
    PASTA_CHECK_MSG(*value && *end == '\0' && v <= (~0ULL) / scale,
                    name << "='" << value
                         << "' must be a byte count with an optional "
                            "K/M/G suffix");
    return static_cast<std::uint64_t>(v) * scale;
}

std::uint64_t
checksum_values(const Value* data, Size n)
{
    return fnv1a64(data, n * sizeof(Value));
}

}  // namespace

ServeOptions
ServeOptions::from_env()
{
    ServeOptions options;
    if (const char* s = std::getenv("PASTA_SERVE_WORKERS"))
        options.workers = static_cast<int>(
            parse_env_int("PASTA_SERVE_WORKERS", s, 1, 4096));
    if (const char* s = std::getenv("PASTA_SERVE_QUEUE"))
        options.queue_bound = static_cast<Size>(
            parse_env_int("PASTA_SERVE_QUEUE", s, 1, 1 << 28));
    if (const char* s = std::getenv("PASTA_SERVE_CACHE_BYTES"))
        options.cache_bytes =
            parse_env_bytes("PASTA_SERVE_CACHE_BYTES", s);
    if (const char* s = std::getenv("PASTA_SERVE_JOB_THREADS"))
        options.job_threads = static_cast<int>(
            parse_env_int("PASTA_SERVE_JOB_THREADS", s, 1, 1024));
    return options;
}

Executor::Executor(const ServeOptions& options) : options_(options)
{
    if (options_.cache_bytes != 0)
        cache_ = std::make_unique<PlanCache>(options_.cache_bytes);
}

std::shared_ptr<const Plan>
Executor::plan_for(ServeJob& job)
{
    if (job.fingerprint == 0)
        job.fingerprint = tensor_fingerprint(*job.tensor);
    auto builder = [&job, this] {
        return build_plan(*job.tensor, job.kernel, job.format, job.mode,
                          options_.block_bits);
    };
    if (!cache_ || job.degraded) {
        // Degraded (OOM retry) lane: empty the cache so the rebuild has
        // the whole budget, then build without caching — the smallest
        // footprint this job can run with.
        if (cache_ && job.degraded)
            cache_->trim(0);
        job.cache_hit = false;
        return builder();
    }
    const std::string key =
        plan_key(job.fingerprint, job.kernel, job.format, job.mode,
                 job.rank, options_.block_bits);
    bool hit = false;
    std::shared_ptr<const Plan> plan =
        cache_->get_or_build(key, builder, &hit);
    job.cache_hit = hit;
    return plan;
}

ExecResult
Executor::execute(ServeJob& job)
{
    PASTA_CHECK_MSG(job.tensor, "serve job " << job.id << " has no tensor");
    const CooTensor& x = *job.tensor;
    PASTA_CHECK_MSG(job.mode < x.order(),
                    "serve job mode " << job.mode << " out of range for "
                                      << x.order() << "-order tensor");
    ExecResult result;
    Rng rng(job.operand_seed);
    switch (job.kernel) {
      case ServeKernel::kTtv: {
        std::shared_ptr<const Plan> plan = plan_for(job);
        result.cache_hit = job.cache_hit;
        DenseVector v = DenseVector::random(x.dim(job.mode), rng);
        if (job.format == ServeFormat::kCoo) {
            CooTensor out = plan->ttv_coo->out_pattern;
            ttv_exec_coo(*plan->ttv_coo, v, out);
            result.checksum =
                checksum_values(out.values().data(), out.nnz());
        } else {
            HiCooTensor out = plan->ttv_hicoo->out_pattern;
            ttv_exec_hicoo(*plan->ttv_hicoo, v, out);
            result.checksum =
                checksum_values(out.values().data(), out.nnz());
        }
        break;
      }
      case ServeKernel::kMttkrp: {
        std::vector<DenseMatrix> mats;
        mats.reserve(x.order());
        for (Size m = 0; m < x.order(); ++m)
            mats.push_back(DenseMatrix::random(x.dim(m), job.rank, rng));
        FactorList factors;
        for (const auto& m : mats)
            factors.push_back(&m);
        DenseMatrix out(x.dim(job.mode), job.rank);
        if (job.format == ServeFormat::kCoo) {
            // No plan to cache; the privatized schedule is deterministic
            // at any fixed thread count.
            mttkrp_coo_privatized(x, factors, job.mode, out);
        } else {
            std::shared_ptr<const Plan> plan = plan_for(job);
            result.cache_hit = job.cache_hit;
            mttkrp_hicoo(*plan->mttkrp_hicoo, factors, job.mode, out);
        }
        result.checksum = checksum_values(
            out.data(), out.rows() * out.cols());
        break;
      }
    }
    return result;
}

}  // namespace pasta::serve
