#include "serve/plan_cache.hpp"

#include <sstream>

#include "common/membudget.hpp"
#include "core/convert.hpp"
#include "io/binary_io.hpp"
#include "obs/counters.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pasta::serve {

const char*
serve_kernel_name(ServeKernel kernel)
{
    switch (kernel) {
      case ServeKernel::kTtv: return "TTV";
      case ServeKernel::kMttkrp: return "MTTKRP";
    }
    return "?";
}

const char*
serve_format_name(ServeFormat format)
{
    switch (format) {
      case ServeFormat::kCoo: return "COO";
      case ServeFormat::kHicoo: return "HiCOO";
    }
    return "?";
}

std::uint64_t
tensor_fingerprint(const CooTensor& x)
{
    const Size order = x.order();
    std::uint64_t h = fnv1a64(&order, sizeof(order));
    h = fnv1a64(x.dims().data(), x.dims().size() * sizeof(Index), h);
    const Size nnz = x.nnz();
    h = fnv1a64(&nnz, sizeof(nnz), h);
    for (Size m = 0; m < order; ++m)
        h = fnv1a64(x.mode_indices(m).data(), nnz * sizeof(Index), h);
    h = fnv1a64(x.values().data(), nnz * sizeof(Value), h);
    return h;
}

std::string
plan_key(std::uint64_t fingerprint, ServeKernel kernel, ServeFormat format,
         Size mode, Size rank, unsigned block_bits)
{
    std::ostringstream oss;
    oss << std::hex << fingerprint << '/' << serve_kernel_name(kernel)
        << '/' << serve_format_name(format) << "/m" << std::dec << mode
        << "/r" << rank << "/b" << block_bits;
    return oss.str();
}

namespace {

/// Wraps a built plan so its governor reservation lives exactly as long
/// as the last reference: a job holding the plan across an eviction
/// keeps the bytes accounted; dropping the final shared_ptr returns
/// them.
std::shared_ptr<const Plan>
with_reservation(std::unique_ptr<Plan> plan, std::uint64_t bytes)
{
    plan->bytes = bytes;
    if (bytes == 0)
        return std::shared_ptr<const Plan>(plan.release());
    membudget::reserve(bytes, "serve.plan");
    return std::shared_ptr<const Plan>(plan.release(), [bytes](Plan* p) {
        membudget::release(bytes);
        delete p;
    });
}

std::uint64_t
ttv_coo_plan_bytes(const CooTtvPlan& plan)
{
    return plan.sorted.storage_bytes() + plan.out_pattern.storage_bytes() +
           plan.fibers.fptr.size() * sizeof(Size);
}

std::uint64_t
ttv_hicoo_plan_bytes(const HicooTtvPlan& plan)
{
    return plan.input.storage_bytes() + plan.out_pattern.storage_bytes() +
           plan.fptr.size() * sizeof(Size);
}

}  // namespace

std::shared_ptr<const Plan>
build_plan(const CooTensor& tensor, ServeKernel kernel, ServeFormat format,
           Size mode, unsigned block_bits)
{
    PASTA_SPAN("serve.plan_build");
    auto plan = std::make_unique<Plan>();
    plan->kernel = kernel;
    plan->format = format;
    std::uint64_t bytes = 0;
    switch (kernel) {
      case ServeKernel::kTtv:
        if (format == ServeFormat::kCoo) {
            auto p = std::make_shared<CooTtvPlan>(
                ttv_plan_coo(tensor, mode));
            bytes = ttv_coo_plan_bytes(*p);
            plan->ttv_coo = std::move(p);
        } else {
            auto p = std::make_shared<HicooTtvPlan>(
                ttv_plan_hicoo(tensor, mode, block_bits));
            bytes = ttv_hicoo_plan_bytes(*p);
            plan->ttv_hicoo = std::move(p);
        }
        break;
      case ServeKernel::kMttkrp:
        if (format == ServeFormat::kHicoo) {
            auto h = std::make_shared<HiCooTensor>(
                coo_to_hicoo(tensor, block_bits));
            // Materialize the owner schedules now (conversion-time work
            // the kernel would otherwise pay lazily on first use).
            for (Size m = 0; m < tensor.order(); ++m)
                (void)h->owner_schedule(m);
            bytes = h->storage_bytes();
            plan->mttkrp_hicoo = std::move(h);
        }
        // MTTKRP/COO runs straight off the request tensor: no plan.
        break;
    }
    return with_reservation(std::move(plan), bytes);
}

PlanCache::PlanCache(std::uint64_t byte_budget, int shards)
    : byte_budget_(byte_budget)
{
    if (shards < 1)
        shards = 1;
    shard_budget_ = byte_budget / static_cast<std::uint64_t>(shards);
    if (byte_budget != 0 && shard_budget_ == 0)
        shard_budget_ = 1;
    shards_.reserve(static_cast<std::size_t>(shards));
    for (int i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

PlanCache::Shard&
PlanCache::shard_for(const std::string& key)
{
    const std::size_t h = std::hash<std::string>{}(key);
    return *shards_[h % shards_.size()];
}

void
PlanCache::evict_locked(Shard& shard, std::uint64_t target)
{
    while (shard.bytes > target && !shard.lru.empty()) {
        const std::string& victim = shard.lru.back();
        auto it = shard.map.find(victim);
        if (it != shard.map.end()) {
            shard.bytes -= it->second.bytes;
            resident_.fetch_sub(it->second.bytes,
                                std::memory_order_relaxed);
            shard.map.erase(it);
        }
        shard.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
        obs::add("serve.cache_evict", 1);
        obs::metrics::counter_add("serve.cache_evict", 1);
    }
}

std::shared_ptr<const Plan>
PlanCache::get_or_build(
    const std::string& key,
    const std::function<std::shared_ptr<const Plan>()>& builder,
    bool* was_hit)
{
    if (was_hit)
        *was_hit = false;
    if (!enabled()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        obs::add("serve.cache_miss", 1);
        obs::metrics::counter_add("serve.cache_miss", 1);
        return builder();
    }
    Shard& shard = shard_for(key);
    std::shared_ptr<std::mutex> build_mutex;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            shard.lru.splice(shard.lru.begin(), shard.lru,
                             it->second.lru_it);
            hits_.fetch_add(1, std::memory_order_relaxed);
            obs::add("serve.cache_hit", 1);
            obs::metrics::counter_add("serve.cache_hit", 1);
            if (was_hit)
                *was_hit = true;
            return it->second.plan;
        }
        auto& slot = shard.building[key];
        if (!slot)
            slot = std::make_shared<std::mutex>();
        build_mutex = slot;
    }
    // Single flight: first arrival builds, the rest block here and find
    // the entry on re-check.  The shard lock is NOT held during the
    // build, so hits on other keys proceed.
    std::lock_guard<std::mutex> build_lock(*build_mutex);
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            shard.lru.splice(shard.lru.begin(), shard.lru,
                             it->second.lru_it);
            hits_.fetch_add(1, std::memory_order_relaxed);
            obs::add("serve.cache_hit", 1);
            obs::metrics::counter_add("serve.cache_hit", 1);
            if (was_hit)
                *was_hit = true;
            return it->second.plan;
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs::add("serve.cache_miss", 1);
    obs::metrics::counter_add("serve.cache_miss", 1);
    std::shared_ptr<const Plan> plan;
    try {
        plan = builder();
    } catch (...) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.building.erase(key);
        throw;
    }
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.building.erase(key);
        auto it = shard.map.find(key);
        if (it == shard.map.end() && plan->bytes <= shard_budget_) {
            shard.lru.push_front(key);
            shard.map.emplace(key,
                              Entry{plan, plan->bytes, shard.lru.begin()});
            shard.bytes += plan->bytes;
            resident_.fetch_add(plan->bytes, std::memory_order_relaxed);
            evict_locked(shard, shard_budget_);
            obs::metrics::gauge_set(
                "serve.cache_bytes",
                static_cast<double>(
                    resident_.load(std::memory_order_relaxed)));
        }
    }
    return plan;
}

void
PlanCache::trim(std::uint64_t target_bytes)
{
    for (auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        evict_locked(*shard, target_bytes);
    }
    obs::metrics::gauge_set(
        "serve.cache_bytes",
        static_cast<double>(resident_.load(std::memory_order_relaxed)));
}

PlanCache::Stats
PlanCache::stats() const
{
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        s.resident_bytes += shard->bytes;
        s.entries += shard->map.size();
    }
    return s;
}

}  // namespace pasta::serve
