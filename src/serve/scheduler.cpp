#include "serve/scheduler.hpp"

#include <chrono>
#include <cstdio>
#include <exception>

#include "common/membudget.hpp"
#include "common/parallel.hpp"
#include "harness/fault.hpp"
#include "obs/counters.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pasta::serve {

namespace {

/// Jobs pulled from the injection queue in one visit: one to run, the
/// rest spilled into the worker's own deque where thieves can reach
/// them.  Keeps the injection lock off the per-job fast path.
constexpr std::size_t kSpillBatch = 32;

std::uint64_t
xorshift64(std::uint64_t& state)
{
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
}

/// Span names are "serve.wait#<id>" / "serve.exec#<id>" so
/// trace_summary.py can pair each job's queue wait with its execution.
void
job_span(const char* stage, std::uint64_t id, std::uint64_t begin_ns,
         std::uint64_t end_ns)
{
    char name[48];
    std::snprintf(name, sizeof(name), "serve.%s#%llu", stage,
                  static_cast<unsigned long long>(id));
    obs::record_span(name, begin_ns,
                     end_ns > begin_ns ? end_ns - begin_ns : 0);
}

/// Live latency histograms fed per job (always on; the heartbeat
/// exporter makes them visible mid-run).  Cached references: the
/// registry lookup happens once per process, not per job.
obs::metrics::Histogram&
wait_hist()
{
    static obs::metrics::Histogram& h =
        obs::metrics::histogram("serve.wait_us");
    return h;
}

obs::metrics::Histogram&
exec_hist()
{
    static obs::metrics::Histogram& h =
        obs::metrics::histogram("serve.exec_us");
    return h;
}

}  // namespace

Scheduler::Scheduler(const ServeOptions& options, Executor& executor)
    : options_(options), executor_(executor)
{
    int workers = options_.workers > 0 ? options_.workers : num_threads();
    if (workers < 1)
        workers = 1;
    deques_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
        deques_.push_back(
            std::make_unique<StealDeque<ServeJob*>>(1024));
    threads_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { worker_loop(i); });
}

Scheduler::~Scheduler()
{
    stop();
}

bool
Scheduler::submit(std::shared_ptr<ServeJob> job)
{
    if (queued_.load(std::memory_order_relaxed) >=
        static_cast<std::int64_t>(options_.queue_bound)) {
        shed_.fetch_add(1, std::memory_order_relaxed);
        obs::add("serve.shed", 1);
        obs::metrics::counter_add("serve.shed", 1);
        return false;
    }
    job->submit_ns = obs::trace_now_ns();
    job->state.store(static_cast<int>(JobState::kQueued),
                     std::memory_order_release);
    submitted_.fetch_add(1, std::memory_order_relaxed);
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
    queued_.fetch_add(1, std::memory_order_relaxed);
    note_depth();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        injection_.push_back(job.get());
        retained_.push_back(std::move(job));
    }
    work_cv_.notify_one();
    return true;
}

void
Scheduler::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    drain_cv_.wait(lock, [this] {
        return outstanding_.load(std::memory_order_acquire) == 0;
    });
    retained_.clear();
}

void
Scheduler::stop()
{
    if (threads_.empty())
        return;
    drain();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_)
        t.join();
    threads_.clear();
}

Scheduler::Stats
Scheduler::stats() const
{
    Stats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.shed = shed_.load(std::memory_order_relaxed);
    s.done = done_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.stolen = stolen_.load(std::memory_order_relaxed);
    s.oom_retries = oom_retries_.load(std::memory_order_relaxed);
    s.max_queue_depth = max_depth_.load(std::memory_order_relaxed);
    return s;
}

void
Scheduler::note_depth()
{
    const std::int64_t d = queued_.load(std::memory_order_relaxed);
    if (d <= 0)
        return;
    const std::uint64_t depth = static_cast<std::uint64_t>(d);
    std::uint64_t prev = max_depth_.load(std::memory_order_relaxed);
    while (prev < depth &&
           !max_depth_.compare_exchange_weak(prev, depth,
                                             std::memory_order_relaxed))
        ;
    obs::record_max("serve.queue_depth", depth);
    obs::metrics::gauge_max("serve.queue_depth",
                            static_cast<double>(depth));
}

void
Scheduler::worker_loop(int worker)
{
    std::uint64_t steal_state =
        0x9e3779b97f4a7c15ULL ^ (static_cast<std::uint64_t>(worker) + 1);
    for (;;) {
        if (ServeJob* job = next_job(worker, steal_state)) {
            execute(job, worker);
            continue;
        }
        std::unique_lock<std::mutex> lock(mutex_);
        if (stopping_ && injection_.empty())
            return;
        if (!injection_.empty())
            continue;  // raced with a submit; go pull it
        // Timed wait: a short timeout bounds how long stealable work in
        // another worker's deque (which cannot signal this condvar) can
        // sit unnoticed.
        work_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
}

ServeJob*
Scheduler::next_job(int worker, std::uint64_t& steal_state)
{
    StealDeque<ServeJob*>& own = *deques_[static_cast<std::size_t>(worker)];
    ServeJob* job = nullptr;
    if (own.pop_bottom(job))
        return job;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!injection_.empty()) {
            job = injection_.front();
            injection_.pop_front();
            std::size_t spilled = 0;
            while (spilled < kSpillBatch && !injection_.empty()) {
                ServeJob* extra = injection_.front();
                if (!own.push_bottom(extra))
                    break;
                injection_.pop_front();
                ++spilled;
            }
            if (spilled > 0)
                work_cv_.notify_all();  // spilled jobs are stealable now
            return job;
        }
    }
    const std::size_t n = deques_.size();
    if (n < 2)
        return nullptr;
    const std::size_t start = static_cast<std::size_t>(
        xorshift64(steal_state) % n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t victim = (start + i) % n;
        if (victim == static_cast<std::size_t>(worker))
            continue;
        if (deques_[victim]->steal_top(job)) {
            stolen_.fetch_add(1, std::memory_order_relaxed);
            obs::add("serve.steal", 1);
            return job;
        }
    }
    return nullptr;
}

void
Scheduler::execute(ServeJob* job, int worker)
{
    (void)worker;
    queued_.fetch_sub(1, std::memory_order_relaxed);
    job->state.store(static_cast<int>(JobState::kRunning),
                     std::memory_order_release);
    if (job->start_ns == 0) {
        job->start_ns = obs::trace_now_ns();
        job_span("wait", job->id, job->submit_ns, job->start_ns);
        wait_hist().record((job->start_ns - job->submit_ns) / 1000);
    }
    ++job->attempts;
    // Intra-kernel parallel_for calls inside this job see the per-job
    // budget, so N workers never fan out into N * num_threads() threads.
    ThreadBudgetScope budget(options_.job_threads);
    try {
        // Chaos hook: PASTA_FAULT=kernel.run:... makes this job fail or
        // stall; the catch below keeps the blast radius to the job.
        harness::fault_point("kernel.run");
        const ExecResult r = executor_.execute(*job);
        job->result_checksum = r.checksum;
        job->cache_hit = r.cache_hit;
        finish(job, JobState::kDone);
    } catch (const membudget::HostOomError& e) {
        if (!job->degraded) {
            // Retry lane: one more attempt with the cache emptied and
            // the plan built uncached.  Front of the injection queue —
            // the job already waited its turn once.
            job->degraded = true;
            job->error = e.what();
            oom_retries_.fetch_add(1, std::memory_order_relaxed);
            obs::add("serve.retry_oom", 1);
            job->state.store(static_cast<int>(JobState::kQueued),
                             std::memory_order_release);
            queued_.fetch_add(1, std::memory_order_relaxed);
            {
                std::lock_guard<std::mutex> lock(mutex_);
                injection_.push_front(job);
            }
            work_cv_.notify_one();
            return;
        }
        job->error = e.what();
        finish(job, JobState::kFailed);
    } catch (const std::exception& e) {
        job->error = e.what();
        finish(job, JobState::kFailed);
    } catch (...) {
        job->error = "unknown error";
        finish(job, JobState::kFailed);
    }
}

void
Scheduler::finish(ServeJob* job, JobState state)
{
    job->done_ns = obs::trace_now_ns();
    job_span("exec", job->id, job->start_ns, job->done_ns);
    exec_hist().record(job->done_ns > job->start_ns
                           ? (job->done_ns - job->start_ns) / 1000
                           : 0);
    if (state == JobState::kDone) {
        done_.fetch_add(1, std::memory_order_relaxed);
        obs::add("serve.done", 1);
        obs::metrics::counter_add("serve.done", 1);
    } else {
        failed_.fetch_add(1, std::memory_order_relaxed);
        obs::add("serve.failed", 1);
        obs::metrics::counter_add("serve.failed", 1);
    }
    job->state.store(static_cast<int>(state), std::memory_order_release);
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mutex_);
        drain_cv_.notify_all();
    }
}

}  // namespace pasta::serve
