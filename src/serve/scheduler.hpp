/// \file
/// Work-stealing job scheduler for the multi-tenant serving engine.
///
/// Topology: a bounded global injection queue (submissions land here;
/// admission control sheds beyond PASTA_SERVE_QUEUE) feeding per-worker
/// Chase–Lev deques on a persistent thread pool.  A worker prefers its
/// own deque (LIFO, cache-warm), then pulls a batch from the injection
/// queue (keeping one job, spilling the rest into its deque for others
/// to steal), then steals from a random victim (FIFO — the oldest job,
/// which is also the latency-fairest).  Idle workers park on a condvar
/// with a short timeout so transiently stealable work is never missed.
///
/// Isolation: each job executes under a per-job thread budget
/// (ThreadBudgetScope) so intra-kernel parallel_for calls never
/// oversubscribe the machine when thousands of jobs run concurrently,
/// and under a catch-everything guard so an injected kernel fault
/// (PASTA_FAULT kernel.run — chaos testing) fails only its job, never
/// its worker.  membudget::HostOomError gets one retry through the
/// degrade lane (cache emptied, plan built uncached) before the job is
/// journaled as failed — the serving mirror of the PR 6 trial ladder.
///
/// Accounting invariant: every accepted job reaches exactly one
/// terminal state (kDone or kFailed) before drain() returns; shed jobs
/// are refused at submit() and never enter the engine.  The chaos
/// smoke (scripts/check_serve.sh) asserts this end to end.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/deque.hpp"
#include "serve/executor.hpp"
#include "serve/job.hpp"

namespace pasta::serve {

class Scheduler {
  public:
    /// Starts the worker pool immediately.  `executor` must outlive the
    /// scheduler.
    Scheduler(const ServeOptions& options, Executor& executor);

    /// Stops and joins the workers (drains accepted jobs first).
    ~Scheduler();

    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /// Admission control: accepts `job` unless the engine already holds
    /// queue_bound not-yet-running jobs, in which case the job is shed
    /// (returns false, job untouched, counter serve.shed).  An accepted
    /// job is retained by the scheduler until drain().
    bool submit(std::shared_ptr<ServeJob> job);

    /// Blocks until every accepted job is terminal.  Does not stop the
    /// workers; more jobs may be submitted afterwards.
    void drain();

    /// Drains, then stops and joins the worker pool.  Idempotent.
    void stop();

    int workers() const { return static_cast<int>(threads_.size()); }

    /// Monotonic totals since construction.
    struct Stats {
        std::uint64_t submitted = 0;
        std::uint64_t shed = 0;
        std::uint64_t done = 0;
        std::uint64_t failed = 0;
        std::uint64_t stolen = 0;
        std::uint64_t oom_retries = 0;
        std::uint64_t max_queue_depth = 0;
    };
    Stats stats() const;

  private:
    void worker_loop(int worker);
    ServeJob* next_job(int worker, std::uint64_t& steal_state);
    void execute(ServeJob* job, int worker);
    void finish(ServeJob* job, JobState state);
    void note_depth();

    ServeOptions options_;
    Executor& executor_;

    std::vector<std::unique_ptr<StealDeque<ServeJob*>>> deques_;
    std::vector<std::thread> threads_;

    /// Injection queue + all scheduler bookkeeping.
    mutable std::mutex mutex_;
    std::condition_variable work_cv_;   ///< workers park here
    std::condition_variable drain_cv_;  ///< drain()/stop() park here
    std::deque<ServeJob*> injection_;
    /// Keeps accepted jobs alive independent of the submitter.
    std::vector<std::shared_ptr<ServeJob>> retained_;
    bool stopping_ = false;

    /// Jobs accepted but not yet executing (admission bound base).
    std::atomic<std::int64_t> queued_{0};
    /// Jobs accepted but not yet terminal (drain latch).
    std::atomic<std::int64_t> outstanding_{0};

    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> shed_{0};
    std::atomic<std::uint64_t> done_{0};
    std::atomic<std::uint64_t> failed_{0};
    std::atomic<std::uint64_t> stolen_{0};
    std::atomic<std::uint64_t> oom_retries_{0};
    std::atomic<std::uint64_t> max_depth_{0};
};

}  // namespace pasta::serve
