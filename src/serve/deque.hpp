/// \file
/// Chase–Lev work-stealing deque (bounded ring variant).
///
/// Each serving worker owns one: the owner pushes and pops at the
/// bottom (LIFO, cache-warm), thieves steal from the top (FIFO, oldest
/// job first — the fairness the latency tail wants).  The memory
/// ordering follows the C11 formalization of the algorithm (Lê,
/// Pop, Cohen, Nardelli, "Correct and Efficient Work-Stealing for Weak
/// Memory Models", PPoPP'13): the single seq_cst fence in pop and the
/// seq_cst CAS in steal arbitrate the last-element race; everything
/// else is acquire/release.
///
/// The ring is fixed-capacity (power of two): a full deque rejects the
/// push and the scheduler leaves the job on the global injection queue
/// instead — bounded queues are the point of admission control, so
/// growing under pressure would defeat the backpressure story.  T must
/// be trivially copyable (the scheduler stores raw ServeJob pointers;
/// ownership lives in the scheduler's retained list).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pasta::serve {

template <typename T>
class StealDeque {
  public:
    /// Capacity is rounded up to a power of two, minimum 64.
    explicit StealDeque(std::size_t capacity = 1024)
    {
        std::size_t cap = 64;
        while (cap < capacity)
            cap <<= 1;
        ring_ = std::vector<std::atomic<T>>(cap);
        mask_ = cap - 1;
    }

    StealDeque(const StealDeque&) = delete;
    StealDeque& operator=(const StealDeque&) = delete;

    /// Owner only.  False when the ring is full (caller keeps the item).
    bool push_bottom(T item)
    {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed);
        const std::int64_t t = top_.load(std::memory_order_acquire);
        if (b - t >= static_cast<std::int64_t>(ring_.size()))
            return false;
        ring_[static_cast<std::size_t>(b) & mask_].store(
            item, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_release);
        bottom_.store(b + 1, std::memory_order_relaxed);
        return true;
    }

    /// Owner only.  False when empty (or the last element was stolen).
    bool pop_bottom(T& out)
    {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
        bottom_.store(b, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        std::int64_t t = top_.load(std::memory_order_relaxed);
        if (t > b) {
            // Already empty; restore bottom.
            bottom_.store(b + 1, std::memory_order_relaxed);
            return false;
        }
        out = ring_[static_cast<std::size_t>(b) & mask_].load(
            std::memory_order_relaxed);
        if (t == b) {
            // Last element: race the thieves for it via top.
            const bool won = top_.compare_exchange_strong(
                t, t + 1, std::memory_order_seq_cst,
                std::memory_order_relaxed);
            bottom_.store(b + 1, std::memory_order_relaxed);
            return won;
        }
        return true;
    }

    /// Any thread.  False when empty or the steal lost a race (the
    /// caller should pick another victim rather than retry hard).
    bool steal_top(T& out)
    {
        std::int64_t t = top_.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        const std::int64_t b = bottom_.load(std::memory_order_acquire);
        if (t >= b)
            return false;
        T item = ring_[static_cast<std::size_t>(t) & mask_].load(
            std::memory_order_relaxed);
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed))
            return false;
        out = item;
        return true;
    }

    /// Racy size estimate (monitoring only).
    std::size_t size_estimate() const
    {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed);
        const std::int64_t t = top_.load(std::memory_order_relaxed);
        return b > t ? static_cast<std::size_t>(b - t) : 0;
    }

    std::size_t capacity() const { return ring_.size(); }

  private:
    std::vector<std::atomic<T>> ring_;
    std::size_t mask_ = 0;
    /// Owner-written end.  Top is thief-advanced; both only grow.
    std::atomic<std::int64_t> top_{0};
    std::atomic<std::int64_t> bottom_{0};
};

}  // namespace pasta::serve
