#include "io/registry.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/error.hpp"
#include "common/log.hpp"
#include "harness/fault.hpp"
#include "io/binary_io.hpp"
#include "validate/validate.hpp"

namespace pasta {

TensorRegistry::TensorRegistry(std::string cache_dir, double scale)
    : cache_dir_(std::move(cache_dir)), scale_(scale)
{
    PASTA_CHECK_MSG(scale_ > 0 && scale_ <= 1.0,
                    "scale must be in (0, 1]");
}

std::string
TensorRegistry::cache_path(const DatasetSpec& spec) const
{
    if (cache_dir_.empty())
        return {};
    std::ostringstream oss;
    oss << cache_dir_ << "/" << spec.id << "_" << spec.name << "_s"
        << scale_ << ".pstb";
    return oss.str();
}

CooTensor
TensorRegistry::load(const std::string& id_or_name)
{
    const DatasetSpec& spec = find_dataset(id_or_name);
    const std::string path = cache_path(spec);
    if (!path.empty() && std::filesystem::exists(path)) {
        try {
            harness::fault_point("cache.load");
            return read_binary_file(path);
        } catch (const PastaError& e) {
            // Corrupt, truncated, or stale-version entry: drop it so the
            // regenerated tensor replaces it instead of failing again on
            // the next run, then fall through to synthesis.
            PASTA_LOG_WARN << "stale cache " << path << " (" << e.what()
                           << "); deleting and regenerating";
            std::error_code ec;
            std::filesystem::remove(path, ec);
            if (ec) {
                PASTA_LOG_WARN << "cannot delete stale cache " << path
                               << ": " << ec.message();
            }
        }
    }
    CooTensor tensor = synthesize_dataset(spec, scale_);
    // Generators promise sorted duplicate-free output; check it at this
    // boundary (cache loads are covered inside read_binary_file).
    if (validate::convert_checks_enabled())
        validate::validate(tensor).require();
    if (!path.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cache_dir_, ec);
        if (!ec) {
            try {
                write_binary_file(path, tensor);
            } catch (const PastaError& e) {
                PASTA_LOG_WARN << "cannot cache " << path << ": "
                               << e.what();
            }
        }
    }
    return tensor;
}

}  // namespace pasta
