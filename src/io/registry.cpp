#include "io/registry.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "common/error.hpp"
#include "common/log.hpp"
#include "harness/fault.hpp"
#include "io/binary_io.hpp"
#include "validate/validate.hpp"

namespace pasta {

namespace {

/// Per-cache-path locks, shared across all registry instances in the
/// process: concurrent load()s of the same dataset synthesize (or
/// regenerate after corruption) exactly once; the rest wait and read
/// the published file.  Entries are never reclaimed — the table is
/// bounded by the dataset roster, a few dozen paths.
std::mutex&
path_mutex(const std::string& path)
{
    static std::mutex table_mutex;
    static std::unordered_map<std::string, std::unique_ptr<std::mutex>>
        table;
    std::lock_guard<std::mutex> lock(table_mutex);
    auto& slot = table[path];
    if (!slot)
        slot = std::make_unique<std::mutex>();
    return *slot;
}

std::uint64_t
unique_suffix()
{
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

TensorRegistry::TensorRegistry(std::string cache_dir, double scale)
    : cache_dir_(std::move(cache_dir)), scale_(scale)
{
    PASTA_CHECK_MSG(scale_ > 0 && scale_ <= 1.0,
                    "scale must be in (0, 1]");
}

std::string
TensorRegistry::cache_path(const DatasetSpec& spec) const
{
    if (cache_dir_.empty())
        return {};
    std::ostringstream oss;
    oss << cache_dir_ << "/" << spec.id << "_" << spec.name << "_s"
        << scale_ << ".pstb";
    return oss.str();
}

CooTensor
TensorRegistry::load(const std::string& id_or_name)
{
    const DatasetSpec& spec = find_dataset(id_or_name);
    const std::string path = cache_path(spec);
    CooTensor tensor;
    if (path.empty()) {
        tensor = synthesize_dataset(spec, scale_);
    } else {
        // Single flight per path: with the lock held, the read below sees
        // either a fully published file or none — regeneration after a
        // corrupt read cannot race another reader of the same dataset
        // into double synthesis or a torn read of a half-written file.
        std::lock_guard<std::mutex> lock(path_mutex(path));
        if (std::filesystem::exists(path)) {
            try {
                harness::fault_point("cache.load");
                return read_binary_file(path);
            } catch (const PastaError& e) {
                // Corrupt, truncated, or stale-version entry: drop it so
                // the regenerated tensor replaces it instead of failing
                // again on the next run, then fall through to synthesis.
                PASTA_LOG_WARN << "stale cache " << path << " ("
                               << e.what()
                               << "); deleting and regenerating";
                std::error_code ec;
                std::filesystem::remove(path, ec);
                if (ec) {
                    PASTA_LOG_WARN << "cannot delete stale cache " << path
                                   << ": " << ec.message();
                }
            }
        }
        tensor = synthesize_dataset(spec, scale_);
        store(path, tensor);
    }
    // Generators promise sorted duplicate-free output; check it at this
    // boundary (cache loads are covered inside read_binary_file).
    if (validate::convert_checks_enabled())
        validate::validate(tensor).require();
    return tensor;
}

void
TensorRegistry::store(const std::string& path, const CooTensor& tensor)
{
    std::error_code ec;
    std::filesystem::create_directories(cache_dir_, ec);
    if (ec)
        return;
    // Publish atomically: write to a unique temp file in the same
    // directory, then rename over the final path.  A concurrent reader
    // (even in another process, which the path_mutex cannot cover) sees
    // the old file or the new one — never a partial write.
    std::ostringstream tmp;
    tmp << path << ".tmp." << ::getpid() << "." << unique_suffix();
    try {
        write_binary_file(tmp.str(), tensor);
        std::filesystem::rename(tmp.str(), path);
    } catch (const PastaError& e) {
        PASTA_LOG_WARN << "cannot cache " << path << ": " << e.what();
        std::filesystem::remove(tmp.str(), ec);
    } catch (const std::filesystem::filesystem_error& e) {
        PASTA_LOG_WARN << "cannot cache " << path << ": " << e.what();
        std::filesystem::remove(tmp.str(), ec);
    }
}

}  // namespace pasta
