/// \file
/// Disk-backed tensor registry: resolves a dataset id to a tensor, caching
/// generated datasets as PSTB files so repeated bench runs skip synthesis.
#pragma once

#include <string>

#include "core/coo_tensor.hpp"
#include "gen/datasets.hpp"

namespace pasta {

/// Resolves dataset tensors, generating and caching on first use.
class TensorRegistry {
  public:
    /// Creates a registry caching under `cache_dir` (created on demand);
    /// an empty dir disables caching.
    explicit TensorRegistry(std::string cache_dir = ".pasta_cache",
                            double scale = 1e-3);

    /// The generation scale used for cache keys.
    double scale() const { return scale_; }

    /// Loads dataset `id_or_name` ("r3", "choa", "s1", "regS"...),
    /// from cache when present, generating (and caching) otherwise.
    /// Concurrency-safe: same-path loads are single-flighted across all
    /// registry instances in the process (one synthesis, the rest read
    /// the published file), and cache files are published via temp file
    /// + atomic rename so readers in other processes never see a torn
    /// write.
    CooTensor load(const std::string& id_or_name);

    /// Cache file path for a spec (empty when caching is disabled).
    std::string cache_path(const DatasetSpec& spec) const;

  private:
    /// Writes `tensor` to `path` atomically (temp + rename); failures
    /// are logged, not thrown — caching is best-effort.
    void store(const std::string& path, const CooTensor& tensor);

    std::string cache_dir_;
    double scale_;
};

}  // namespace pasta
