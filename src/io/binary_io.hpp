/// \file
/// Compact binary tensor format for fast dataset caching and
/// memory-mapped out-of-core access.
///
/// PSTB v3 layout (little-endian, host-order):
///   magic "PSTB" | u32 version | u64 order | u64 nnz | u32 dims[order] |
///   u64 section_offset[order+1] | u64 header_checksum |
///   zero pad to section_offset[0] |
///   Index indices[0][nnz] ... Index indices[order-1][nnz] |
///   Value values[nnz] | u64 payload_checksum
/// Each section (one mode-major index array per mode, then the value
/// array) starts at a page-aligned (4 KiB) file offset recorded in the
/// header's section table, so a reader can mmap the file and hand out
/// typed pointers directly: loading then costs address space, not RAM.
/// The header checksum (FNV-1a over order/nnz/dims/section table) lets a
/// reader reject a corrupt section table before trusting any offset, and
/// the file size is validated against the header-declared section sizes
/// *up front* — a truncated file fails before any allocation or read,
/// never mid-read with a partial tensor.  The trailing payload checksum
/// covers dims + index arrays + values exactly as v2 did; full reads
/// verify it, while mmap opens skip it by default (verifying would page
/// the whole file in) and offer verify_checksum() for callers that want
/// the end-to-end guarantee.
///
/// v2 files (header + packed sections + trailing checksum, no section
/// table) remain readable through read_binary_file, so pre-existing
/// caches keep working; write_binary_file always emits v3 and the
/// registry regenerates anything older on its usual self-healing path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/coo_tensor.hpp"

namespace pasta {

/// FNV-1a 64-bit over `n` bytes, chainable via `seed`.
std::uint64_t fnv1a64(const void* data, std::size_t n,
                      std::uint64_t seed = 1469598103934665603ULL);

/// Writes `x` to `path` in PSTB v3 format; throws PastaError on IO
/// failure.
void write_binary_file(const std::string& path, const CooTensor& x);

/// Reads a PSTB file (v2 or v3) fully into memory; throws PastaError on
/// IO/format/checksum errors and membudget::HostOomError when the
/// resident tensor would not fit the armed memory budget.
CooTensor read_binary_file(const std::string& path);

/// Streaming concatenation for the out-of-core sweeps: writes the union
/// of `parts` (PSTB v3 files whose dims all equal `dims`, disjoint and
/// globally ordered in list order) to `out_path` as one PSTB v3 file.
/// Sections are copied part by part through mmap and the page cache, so
/// no full tensor is ever resident.
void concat_binary_files(const std::string& out_path,
                         const std::vector<Index>& dims,
                         const std::vector<std::string>& parts);

/// Read-only COO tensor backed by an mmap of a PSTB v3 file.
///
/// Construction validates the header, the section table, and the file
/// size (all up front, via the "io.mmap" fault point), then maps the
/// whole file MAP_PRIVATE/PROT_READ.  Index and value arrays are served
/// straight from the page cache: touching a section pages in only what
/// is accessed, which is what lets the out-of-core kernels in
/// src/core/stream sweep coordinate partitions of a tensor bigger than
/// the memory budget.  Move-only; the mapping is released on
/// destruction.
class MappedCooTensor {
  public:
    /// Maps `path`; throws PastaError on malformed/truncated files or
    /// mmap failure.
    explicit MappedCooTensor(const std::string& path);

    MappedCooTensor(const MappedCooTensor&) = delete;
    MappedCooTensor& operator=(const MappedCooTensor&) = delete;
    MappedCooTensor(MappedCooTensor&& other) noexcept;
    MappedCooTensor& operator=(MappedCooTensor&& other) noexcept;
    ~MappedCooTensor();

    Size order() const { return dims_.size(); }
    const std::vector<Index>& dims() const { return dims_; }
    Index dim(Size mode) const { return dims_[mode]; }
    Size nnz() const { return nnz_; }
    const std::string& path() const { return path_; }

    /// Pointer to one mode's whole index array (nnz entries).
    const Index* mode_indices(Size mode) const;

    /// Pointer to the value array (nnz entries).
    const Value* values() const;

    /// Materializes non-zeros [lo, hi) as an in-memory tensor (governor-
    /// checked).  The slice preserves stream order; it is NOT coalesced
    /// or re-sorted.
    CooTensor slice(Size lo, Size hi) const;

    /// Materializes the whole tensor (governor-checked).
    CooTensor to_coo() const;

    /// Recomputes the trailing payload checksum (pages the whole file
    /// in); true when it matches the stored value.
    bool verify_checksum() const;

    /// Total mapped file size in bytes.
    std::uint64_t file_bytes() const { return map_bytes_; }

  private:
    void unmap() noexcept;

    std::string path_;
    std::vector<Index> dims_;
    Size nnz_ = 0;
    void* map_ = nullptr;
    std::uint64_t map_bytes_ = 0;
    std::vector<std::uint64_t> section_offsets_;  ///< order+1 entries
    std::uint64_t stored_checksum_ = 0;
};

}  // namespace pasta
