/// \file
/// Compact binary tensor format for fast dataset caching.
///
/// Layout (little-endian, host-order):
///   magic "PSTB" | u32 version | u64 order | u64 nnz |
///   u32 dims[order] | u32 indices[order][nnz] | f32 values[nnz] |
///   u64 fnv1a64(dims..values)
/// Mode-major index arrays mirror the in-memory COO layout, so reads and
/// writes are straight memcpy-sized block transfers.  The trailing FNV-1a
/// checksum covers every payload byte after the nnz field: a truncated or
/// bit-flipped cache entry fails loudly (PastaError) instead of feeding a
/// silently corrupt tensor into a multi-hour campaign, and the registry
/// responds by deleting and regenerating the entry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/coo_tensor.hpp"

namespace pasta {

/// FNV-1a 64-bit over `n` bytes, chainable via `seed`.
std::uint64_t fnv1a64(const void* data, std::size_t n,
                      std::uint64_t seed = 1469598103934665603ULL);

/// Writes `x` to `path` in PSTB format; throws PastaError on IO failure.
void write_binary_file(const std::string& path, const CooTensor& x);

/// Reads a PSTB file; throws PastaError on IO/format/checksum errors.
CooTensor read_binary_file(const std::string& path);

}  // namespace pasta
