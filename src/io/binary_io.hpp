/// \file
/// Compact binary tensor format for fast dataset caching.
///
/// Layout (little-endian, host-order):
///   magic "PSTB" | u32 version | u64 order | u64 nnz |
///   u32 dims[order] | u32 indices[order][nnz] | f32 values[nnz]
/// Mode-major index arrays mirror the in-memory COO layout, so reads and
/// writes are straight memcpy-sized block transfers.
#pragma once

#include <string>

#include "core/coo_tensor.hpp"

namespace pasta {

/// Writes `x` to `path` in PSTB format; throws PastaError on IO failure.
void write_binary_file(const std::string& path, const CooTensor& x);

/// Reads a PSTB file; throws PastaError on IO/format errors.
CooTensor read_binary_file(const std::string& path);

}  // namespace pasta
