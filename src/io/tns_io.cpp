#include "io/tns_io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "harness/fault.hpp"

namespace pasta {

namespace {

/// Splits a .tns line into whitespace-separated numeric fields; returns
/// false for blank/comment lines.  `lineno` names the offender in errors.
bool
parse_fields(const std::string& line, std::size_t lineno,
             std::vector<double>& fields)
{
    fields.clear();
    std::istringstream iss(line);
    std::string tok;
    while (iss >> tok) {
        if (tok[0] == '#')
            break;
        try {
            size_t used = 0;
            fields.push_back(std::stod(tok, &used));
            if (used != tok.size())
                throw PastaError("trailing characters in field '" + tok +
                                 "' at line " + std::to_string(lineno));
        } catch (const PastaError&) {
            throw;
        } catch (const std::exception&) {
            throw PastaError("malformed numeric field '" + tok +
                             "' at line " + std::to_string(lineno));
        }
    }
    return !fields.empty();
}

/// Largest coordinate representable: 1-based input must fit Index after
/// the -1 shift, and dims are Index too.
constexpr double kMaxCoordinate =
    static_cast<double>(std::numeric_limits<Index>::max());

}  // namespace

CooTensor
read_tns(std::istream& in)
{
    std::string line;
    std::vector<double> fields;
    std::vector<std::vector<double>> rows;
    std::vector<std::size_t> row_lines;  ///< source line per non-zero row
    std::size_t lineno = 0;
    bool maybe_header = true;
    Size order = 0;
    std::vector<Index> header_dims;

    while (std::getline(in, line)) {
        ++lineno;
        if (!parse_fields(line, lineno, fields))
            continue;
        if (maybe_header && fields.size() == 1 && header_dims.empty()) {
            // ParTI header: the order alone on the first data line.
            const double n = fields[0];
            PASTA_CHECK_MSG(n >= 1 && n <= 16 && n == std::floor(n),
                            "implausible header order " << n << " at line "
                                                        << lineno);
            order = static_cast<Size>(n);
            // Next non-comment line must be the dims.
            bool got_dims = false;
            while (std::getline(in, line)) {
                ++lineno;
                if (!parse_fields(line, lineno, fields))
                    continue;
                PASTA_CHECK_MSG(fields.size() == order,
                                "header dims arity "
                                    << fields.size() << " != order " << order
                                    << " at line " << lineno);
                for (double d : fields) {
                    PASTA_CHECK_MSG(d >= 1 && d == std::floor(d) &&
                                        d <= kMaxCoordinate,
                                    "bad header dimension " << d
                                                            << " at line "
                                                            << lineno);
                    header_dims.push_back(static_cast<Index>(d));
                }
                got_dims = true;
                break;
            }
            PASTA_CHECK_MSG(got_dims, "header order without dims line");
            maybe_header = false;
            continue;
        }
        maybe_header = false;
        PASTA_CHECK_MSG(fields.size() >= 2,
                        "non-zero line needs >= 1 coordinate and a value "
                        "at line "
                            << lineno);
        if (order == 0)
            order = fields.size() - 1;
        PASTA_CHECK_MSG(fields.size() == order + 1,
                        "inconsistent arity: got "
                            << fields.size() - 1 << " coords, expected "
                            << order << " at line " << lineno);
        // Validate while the line number is at hand: coordinates must be
        // integral, 1-based, and fit Index (casting later would silently
        // wrap); values must be finite (a NaN poisons every downstream
        // reduction without ever failing a check).
        for (Size m = 0; m < order; ++m) {
            const double idx = fields[m];
            PASTA_CHECK_MSG(idx >= 1 && idx == std::floor(idx),
                            "bad 1-based coordinate " << idx << " on mode "
                                                      << m << " at line "
                                                      << lineno);
            PASTA_CHECK_MSG(idx <= kMaxCoordinate,
                            "coordinate " << idx << " on mode " << m
                                          << " overflows Index at line "
                                          << lineno);
        }
        PASTA_CHECK_MSG(std::isfinite(fields[order]),
                        "non-finite value " << fields[order] << " at line "
                                            << lineno);
        rows.push_back(fields);
        row_lines.push_back(lineno);
    }

    PASTA_CHECK_MSG(order > 0, "empty .tns input");
    std::vector<Index> dims = header_dims;
    if (dims.empty()) {
        dims.assign(order, 1);
        for (const auto& row : rows)
            for (Size m = 0; m < order; ++m)
                dims[m] = std::max(dims[m], static_cast<Index>(row[m]));
    }

    CooTensor out(dims);
    out.reserve(rows.size());
    Coordinate c(order);
    for (Size r = 0; r < rows.size(); ++r) {
        const auto& row = rows[r];
        for (Size m = 0; m < order; ++m) {
            const double idx = row[m];
            PASTA_CHECK_MSG(idx <= static_cast<double>(dims[m]),
                            "coordinate " << idx << " exceeds dim "
                                          << dims[m] << " on mode " << m
                                          << " at line " << row_lines[r]);
            c[m] = static_cast<Index>(idx) - 1;
        }
        out.append(c, static_cast<Value>(row[order]));
    }
    out.sort_lexicographic();
    out.validate();
    return out;
}

CooTensor
read_tns_file(const std::string& path)
{
    harness::fault_point("io.read");
    std::ifstream in(path);
    PASTA_CHECK_MSG(in.good(), "cannot open " << path);
    return read_tns(in);
}

void
write_tns(std::ostream& out, const CooTensor& x, bool with_header)
{
    if (with_header) {
        out << x.order() << "\n";
        for (Size m = 0; m < x.order(); ++m)
            out << x.dim(m) << (m + 1 < x.order() ? " " : "\n");
    }
    for (Size p = 0; p < x.nnz(); ++p) {
        for (Size m = 0; m < x.order(); ++m)
            out << (x.index(m, p) + 1) << ' ';
        out << x.value(p) << '\n';
    }
}

void
write_tns_file(const std::string& path, const CooTensor& x,
               bool with_header)
{
    std::ofstream out(path);
    PASTA_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
    write_tns(out, x, with_header);
    PASTA_CHECK_MSG(out.good(), "write to " << path << " failed");
}

}  // namespace pasta
