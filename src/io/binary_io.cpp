#include "io/binary_io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/error.hpp"
#include "common/membudget.hpp"
#include "harness/fault.hpp"
#include "validate/validate.hpp"

namespace pasta {

namespace {

constexpr char kMagic[4] = {'P', 'S', 'T', 'B'};
constexpr std::uint32_t kVersionV2 = 2;  ///< packed sections, no table
constexpr std::uint32_t kVersion = 3;    ///< page-aligned section table

/// Section alignment: one page, so an mmap reader gets naturally
/// aligned typed pointers and partition sweeps touch whole pages.
constexpr std::uint64_t kSectionAlign = 4096;

/// Headers can be corrupted too; bound nnz before trusting it with an
/// allocation (the checksums only protect what we managed to read).
constexpr std::uint64_t kMaxPlausibleNnz = 1ULL << 40;

std::uint64_t
align_up(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) / align * align;
}

template <typename T>
void
write_pod(std::ofstream& out, const T& v)
{
    out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void
read_pod(std::ifstream& in, T& v)
{
    in.read(reinterpret_cast<char*>(&v), sizeof(T));
}

/// Parsed and size-validated v3 header: everything a reader must trust
/// before touching a section.
struct HeaderV3 {
    std::vector<Index> dims;
    std::uint64_t nnz = 0;
    std::vector<std::uint64_t> sections;  ///< order+1 offsets
    std::uint64_t payload_end = 0;        ///< offset of payload checksum
};

/// Byte length of the fixed v3 header for `order` modes.
std::uint64_t
header_bytes_v3(std::uint64_t order)
{
    return 4 + 4 + 8 + 8 + 4 * order + 8 * (order + 1) + 8;
}

/// Validates order/nnz/dims/section table against the actual file size.
/// Every check runs before any section is read, so truncation and
/// corrupt section tables fail up front, never mid-read.
HeaderV3
check_header_v3(const std::string& path, std::uint64_t order,
                std::uint64_t nnz, std::vector<Index> dims,
                std::vector<std::uint64_t> sections,
                std::uint64_t file_size)
{
    PASTA_CHECK_MSG(order >= 1 && order <= 16,
                    "implausible order " << order << " in " << path);
    PASTA_CHECK_MSG(nnz <= kMaxPlausibleNnz,
                    "implausible nnz " << nnz << " in " << path
                                       << " (corrupt header?)");
    const std::uint64_t section_bytes = nnz * sizeof(Index);
    const std::uint64_t header_end = header_bytes_v3(order);
    std::uint64_t prev_end = header_end;
    for (std::uint64_t off : sections) {
        PASTA_CHECK_MSG(off % kSectionAlign == 0 && off >= prev_end,
                        "corrupt PSTB section table in "
                            << path << ": offset " << off
                            << " misaligned or overlapping");
        prev_end = off + section_bytes;
        PASTA_CHECK_MSG(prev_end >= off,
                        "corrupt PSTB section table in " << path);
    }
    HeaderV3 h;
    h.payload_end = prev_end;
    // Exact-size check: header promises sections + one trailing
    // checksum word; a short file is truncation, a long one corruption.
    PASTA_CHECK_MSG(
        file_size == prev_end + sizeof(std::uint64_t),
        "truncated PSTB file " << path << ": header promises "
                               << (prev_end + sizeof(std::uint64_t))
                               << " bytes, file has " << file_size
                               << " (refusing to read a partial tensor)");
    h.dims = std::move(dims);
    h.nnz = nnz;
    h.sections = std::move(sections);
    return h;
}

/// v2 body: packed sections right after the header, trailing checksum.
CooTensor
read_body_v2(std::ifstream& in, const std::string& path)
{
    std::uint64_t order = 0;
    std::uint64_t nnz = 0;
    read_pod(in, order);
    read_pod(in, nnz);
    PASTA_CHECK_MSG(in.good() && order >= 1 && order <= 16,
                    "implausible order " << order << " in " << path);
    PASTA_CHECK_MSG(nnz <= kMaxPlausibleNnz,
                    "implausible nnz " << nnz << " in " << path
                                       << " (corrupt header?)");
    std::uint64_t checksum = fnv1a64(nullptr, 0);
    std::vector<Index> dims(order);
    for (auto& d : dims) {
        read_pod(in, d);
        checksum = fnv1a64(&d, sizeof(d), checksum);
    }
    // Before trusting nnz with an allocation, bound it against the bytes
    // actually present: a truncated-but-plausible header must not drive a
    // multi-GB resize only to fail the checksum afterwards.
    const std::streamoff payload_start = in.tellg();
    in.seekg(0, std::ios::end);
    const std::streamoff file_end = in.tellg();
    in.seekg(payload_start, std::ios::beg);
    PASTA_CHECK_MSG(in.good() && payload_start >= 0 &&
                        file_end >= payload_start,
                    "cannot size " << path);
    const std::uint64_t remaining =
        static_cast<std::uint64_t>(file_end - payload_start);
    const std::uint64_t expected =
        nnz * (order * sizeof(Index) + sizeof(Value)) + sizeof(checksum);
    PASTA_CHECK_MSG(remaining >= expected,
                    "truncated PSTB file "
                        << path << ": header promises " << expected
                        << " payload bytes, " << remaining
                        << " present (refusing allocation)");
    membudget::check(membudget::coo_bytes(order, nnz), "binary_io.read");
    CooTensor x(dims);
    x.resize_nnz(nnz);
    for (Size m = 0; m < x.order(); ++m) {
        in.read(reinterpret_cast<char*>(x.mode_indices(m).data()),
                static_cast<std::streamsize>(nnz * sizeof(Index)));
        checksum = fnv1a64(x.mode_indices(m).data(), nnz * sizeof(Index),
                           checksum);
    }
    in.read(reinterpret_cast<char*>(x.values().data()),
            static_cast<std::streamsize>(nnz * sizeof(Value)));
    checksum = fnv1a64(x.values().data(), nnz * sizeof(Value), checksum);
    PASTA_CHECK_MSG(in.good(), "truncated PSTB file " << path);
    std::uint64_t stored = 0;
    read_pod(in, stored);
    PASTA_CHECK_MSG(in.good(), "truncated PSTB file " << path
                                                      << " (no checksum)");
    PASTA_CHECK_MSG(stored == checksum,
                    "checksum mismatch in " << path << " (stored 0x"
                                            << std::hex << stored
                                            << ", computed 0x" << checksum
                                            << std::dec
                                            << "): corrupt cache entry");
    return x;
}

/// Reads and validates a v3 header from an open stream positioned right
/// after the version word.
HeaderV3
read_header_v3(std::ifstream& in, const std::string& path)
{
    std::uint64_t order = 0;
    std::uint64_t nnz = 0;
    read_pod(in, order);
    read_pod(in, nnz);
    PASTA_CHECK_MSG(in.good() && order >= 1 && order <= 16,
                    "implausible order " << order << " in " << path);
    PASTA_CHECK_MSG(nnz <= kMaxPlausibleNnz,
                    "implausible nnz " << nnz << " in " << path
                                       << " (corrupt header?)");
    std::uint64_t hsum = fnv1a64(&order, sizeof(order));
    hsum = fnv1a64(&nnz, sizeof(nnz), hsum);
    std::vector<Index> dims(order);
    for (auto& d : dims) {
        read_pod(in, d);
        hsum = fnv1a64(&d, sizeof(d), hsum);
    }
    std::vector<std::uint64_t> sections(order + 1);
    for (auto& s : sections) {
        read_pod(in, s);
        hsum = fnv1a64(&s, sizeof(s), hsum);
    }
    std::uint64_t stored_hsum = 0;
    read_pod(in, stored_hsum);
    PASTA_CHECK_MSG(in.good(), "truncated PSTB header in " << path);
    PASTA_CHECK_MSG(stored_hsum == hsum,
                    "header checksum mismatch in "
                        << path << ": corrupt section table");
    in.seekg(0, std::ios::end);
    const std::streamoff file_end = in.tellg();
    PASTA_CHECK_MSG(in.good() && file_end >= 0, "cannot size " << path);
    return check_header_v3(path, order, nnz, std::move(dims),
                           std::move(sections),
                           static_cast<std::uint64_t>(file_end));
}

/// v3 body: seek each section from the validated table.
CooTensor
read_body_v3(std::ifstream& in, const std::string& path)
{
    const HeaderV3 h = read_header_v3(in, path);
    const std::uint64_t order = h.dims.size();
    membudget::check(membudget::coo_bytes(order, h.nnz), "binary_io.read");
    std::uint64_t checksum = fnv1a64(nullptr, 0);
    for (const Index& d : h.dims)
        checksum = fnv1a64(&d, sizeof(d), checksum);
    CooTensor x(h.dims);
    x.resize_nnz(h.nnz);
    for (Size m = 0; m < x.order(); ++m) {
        in.seekg(static_cast<std::streamoff>(h.sections[m]),
                 std::ios::beg);
        in.read(reinterpret_cast<char*>(x.mode_indices(m).data()),
                static_cast<std::streamsize>(h.nnz * sizeof(Index)));
        checksum = fnv1a64(x.mode_indices(m).data(),
                           h.nnz * sizeof(Index), checksum);
    }
    in.seekg(static_cast<std::streamoff>(h.sections[order]),
             std::ios::beg);
    in.read(reinterpret_cast<char*>(x.values().data()),
            static_cast<std::streamsize>(h.nnz * sizeof(Value)));
    checksum = fnv1a64(x.values().data(), h.nnz * sizeof(Value), checksum);
    PASTA_CHECK_MSG(in.good(), "cannot read sections of " << path);
    in.seekg(static_cast<std::streamoff>(h.payload_end), std::ios::beg);
    std::uint64_t stored = 0;
    read_pod(in, stored);
    PASTA_CHECK_MSG(in.good() && stored == checksum,
                    "checksum mismatch in " << path << " (stored 0x"
                                            << std::hex << stored
                                            << ", computed 0x" << checksum
                                            << std::dec
                                            << "): corrupt cache entry");
    return x;
}

/// Page-aligned section table for an order x nnz tensor: order index
/// sections then the value section, each starting on a kSectionAlign
/// boundary after the fixed-size header.
std::vector<std::uint64_t>
compute_sections(std::uint64_t order, std::uint64_t nnz)
{
    std::vector<std::uint64_t> sections(order + 1);
    const std::uint64_t section_bytes = nnz * sizeof(Index);
    std::uint64_t cursor = align_up(header_bytes_v3(order), kSectionAlign);
    for (auto& s : sections) {
        s = cursor;
        cursor = align_up(cursor + section_bytes, kSectionAlign);
    }
    return sections;
}

/// Writes the v3 header (magic through header checksum) and chains dims
/// into `payload_checksum`, the seed for the trailing payload FNV.
void
write_header_v3(std::ofstream& out, const std::vector<Index>& dims,
                std::uint64_t nnz,
                const std::vector<std::uint64_t>& sections,
                std::uint64_t& payload_checksum)
{
    const std::uint64_t order = dims.size();
    out.write(kMagic, sizeof(kMagic));
    write_pod(out, kVersion);
    std::uint64_t hsum = fnv1a64(&order, sizeof(order));
    hsum = fnv1a64(&nnz, sizeof(nnz), hsum);
    write_pod(out, order);
    write_pod(out, nnz);
    payload_checksum = fnv1a64(nullptr, 0);
    for (const Index d : dims) {
        write_pod(out, d);
        hsum = fnv1a64(&d, sizeof(d), hsum);
        payload_checksum = fnv1a64(&d, sizeof(d), payload_checksum);
    }
    for (const std::uint64_t s : sections) {
        write_pod(out, s);
        hsum = fnv1a64(&s, sizeof(s), hsum);
    }
    write_pod(out, hsum);
}

/// Zero-fills the stream up to absolute offset `target`.
void
pad_to(std::ofstream& out, std::uint64_t target)
{
    static const char zeros[256] = {};
    auto at = static_cast<std::uint64_t>(out.tellp());
    while (at < target) {
        const std::uint64_t n =
            std::min<std::uint64_t>(sizeof(zeros), target - at);
        out.write(zeros, static_cast<std::streamsize>(n));
        at += n;
    }
}

}  // namespace

std::uint64_t
fnv1a64(const void* data, std::size_t n, std::uint64_t seed)
{
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

void
write_binary_file(const std::string& path, const CooTensor& x)
{
    std::ofstream out(path, std::ios::binary);
    PASTA_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
    const std::uint64_t order = x.order();
    const std::uint64_t nnz = x.nnz();
    const std::vector<std::uint64_t> sections =
        compute_sections(order, nnz);

    std::uint64_t checksum = 0;
    write_header_v3(out, x.dims(), nnz, sections, checksum);
    for (Size m = 0; m < x.order(); ++m) {
        pad_to(out, sections[m]);
        const auto& idx = x.mode_indices(m);
        out.write(reinterpret_cast<const char*>(idx.data()),
                  static_cast<std::streamsize>(nnz * sizeof(Index)));
        checksum = fnv1a64(idx.data(), nnz * sizeof(Index), checksum);
    }
    pad_to(out, sections[order]);
    out.write(reinterpret_cast<const char*>(x.values().data()),
              static_cast<std::streamsize>(nnz * sizeof(Value)));
    checksum = fnv1a64(x.values().data(), nnz * sizeof(Value), checksum);
    write_pod(out, checksum);
    PASTA_CHECK_MSG(out.good(), "write to " << path << " failed");
}

void
concat_binary_files(const std::string& out_path,
                    const std::vector<Index>& dims,
                    const std::vector<std::string>& parts)
{
    const std::uint64_t order = dims.size();
    PASTA_CHECK_MSG(order >= 1, "tensor order must be at least 1");
    std::vector<MappedCooTensor> maps;
    maps.reserve(parts.size());
    std::uint64_t nnz = 0;
    for (const std::string& part : parts) {
        maps.emplace_back(part);
        PASTA_CHECK_MSG(maps.back().dims() == dims,
                        "part " << part
                                << " dims differ from the target tensor");
        nnz += maps.back().nnz();
    }

    std::ofstream out(out_path, std::ios::binary);
    PASTA_CHECK_MSG(out.good(),
                    "cannot open " << out_path << " for writing");
    const std::vector<std::uint64_t> sections =
        compute_sections(order, nnz);
    std::uint64_t checksum = 0;
    write_header_v3(out, dims, nnz, sections, checksum);
    for (std::uint64_t m = 0; m < order; ++m) {
        pad_to(out, sections[m]);
        for (const MappedCooTensor& part : maps) {
            const std::uint64_t bytes = part.nnz() * sizeof(Index);
            out.write(reinterpret_cast<const char*>(part.mode_indices(m)),
                      static_cast<std::streamsize>(bytes));
            checksum = fnv1a64(part.mode_indices(m), bytes, checksum);
        }
    }
    pad_to(out, sections[order]);
    for (const MappedCooTensor& part : maps) {
        const std::uint64_t bytes = part.nnz() * sizeof(Value);
        out.write(reinterpret_cast<const char*>(part.values()),
                  static_cast<std::streamsize>(bytes));
        checksum = fnv1a64(part.values(), bytes, checksum);
    }
    write_pod(out, checksum);
    PASTA_CHECK_MSG(out.good(), "write to " << out_path << " failed");
}

CooTensor
read_binary_file(const std::string& path)
{
    harness::fault_point("io.read");
    std::ifstream in(path, std::ios::binary);
    PASTA_CHECK_MSG(in.good(), "cannot open " << path);
    char magic[4];
    in.read(magic, sizeof(magic));
    PASTA_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, 4) == 0,
                    path << " is not a PSTB file");
    std::uint32_t version = 0;
    read_pod(in, version);
    PASTA_CHECK_MSG(version == kVersionV2 || version == kVersion,
                    "unsupported PSTB version " << version << " in " << path
                                                << " (expected " << kVersionV2
                                                << " or " << kVersion
                                                << ")");
    CooTensor x = version == kVersionV2 ? read_body_v2(in, path)
                                        : read_body_v3(in, path);
    for (Size p = 0; p < x.nnz(); ++p)
        PASTA_CHECK_MSG(std::isfinite(static_cast<double>(x.value(p))),
                        "non-finite value " << x.value(p) << " at non-zero "
                                            << p << " in " << path);
    x.validate();
    if (validate::convert_checks_enabled())
        validate::validate(x).require();
    return x;
}

MappedCooTensor::MappedCooTensor(const std::string& path) : path_(path)
{
    harness::fault_point("io.mmap");
    HeaderV3 header;
    {
        std::ifstream in(path, std::ios::binary);
        PASTA_CHECK_MSG(in.good(), "cannot open " << path);
        char magic[4];
        in.read(magic, sizeof(magic));
        PASTA_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, 4) == 0,
                        path << " is not a PSTB file");
        std::uint32_t version = 0;
        read_pod(in, version);
        PASTA_CHECK_MSG(version == kVersion,
                        "cannot mmap PSTB version "
                            << version << " in " << path << " (version "
                            << kVersion
                            << " with page-aligned sections required; "
                               "rewrite with write_binary_file)");
        header = read_header_v3(in, path);
    }

    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    PASTA_CHECK_MSG(fd >= 0, "cannot open " << path << " for mmap");
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        throw PastaError("cannot stat " + path);
    }
    map_bytes_ = static_cast<std::uint64_t>(st.st_size);
    void* map = ::mmap(nullptr, map_bytes_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    PASTA_CHECK_MSG(map != MAP_FAILED, "mmap of " << path << " failed");
    map_ = map;
    dims_ = std::move(header.dims);
    nnz_ = header.nnz;
    section_offsets_ = std::move(header.sections);
    std::memcpy(&stored_checksum_,
                static_cast<const char*>(map_) + header.payload_end,
                sizeof(stored_checksum_));
}

MappedCooTensor::MappedCooTensor(MappedCooTensor&& other) noexcept
    : path_(std::move(other.path_)),
      dims_(std::move(other.dims_)),
      nnz_(other.nnz_),
      map_(other.map_),
      map_bytes_(other.map_bytes_),
      section_offsets_(std::move(other.section_offsets_)),
      stored_checksum_(other.stored_checksum_)
{
    other.map_ = nullptr;
    other.map_bytes_ = 0;
    other.nnz_ = 0;
}

MappedCooTensor&
MappedCooTensor::operator=(MappedCooTensor&& other) noexcept
{
    if (this != &other) {
        unmap();
        path_ = std::move(other.path_);
        dims_ = std::move(other.dims_);
        nnz_ = other.nnz_;
        map_ = other.map_;
        map_bytes_ = other.map_bytes_;
        section_offsets_ = std::move(other.section_offsets_);
        stored_checksum_ = other.stored_checksum_;
        other.map_ = nullptr;
        other.map_bytes_ = 0;
        other.nnz_ = 0;
    }
    return *this;
}

MappedCooTensor::~MappedCooTensor() { unmap(); }

void
MappedCooTensor::unmap() noexcept
{
    if (map_) {
        ::munmap(map_, map_bytes_);
        map_ = nullptr;
        map_bytes_ = 0;
    }
}

const Index*
MappedCooTensor::mode_indices(Size mode) const
{
    PASTA_CHECK_MSG(mode < order(), "mode " << mode << " out of range");
    return reinterpret_cast<const Index*>(static_cast<const char*>(map_) +
                                          section_offsets_[mode]);
}

const Value*
MappedCooTensor::values() const
{
    return reinterpret_cast<const Value*>(static_cast<const char*>(map_) +
                                          section_offsets_[order()]);
}

CooTensor
MappedCooTensor::slice(Size lo, Size hi) const
{
    PASTA_CHECK_MSG(lo <= hi && hi <= nnz_,
                    "slice [" << lo << ", " << hi << ") out of range for "
                              << nnz_ << " non-zeros");
    const Size n = hi - lo;
    membudget::check(membudget::coo_bytes(order(), n), "mmap.slice");
    CooTensor x(dims_);
    CooBulkFill fill = x.bulk_fill(n);
    for (Size m = 0; m < order(); ++m)
        std::memcpy(fill.modes[m], mode_indices(m) + lo,
                    n * sizeof(Index));
    std::memcpy(fill.values, values() + lo, n * sizeof(Value));
    return x;
}

CooTensor
MappedCooTensor::to_coo() const
{
    return slice(0, nnz_);
}

bool
MappedCooTensor::verify_checksum() const
{
    std::uint64_t checksum = fnv1a64(nullptr, 0);
    for (const Index& d : dims_)
        checksum = fnv1a64(&d, sizeof(d), checksum);
    for (Size m = 0; m < order(); ++m)
        checksum =
            fnv1a64(mode_indices(m), nnz_ * sizeof(Index), checksum);
    checksum = fnv1a64(values(), nnz_ * sizeof(Value), checksum);
    return checksum == stored_checksum_;
}

}  // namespace pasta
