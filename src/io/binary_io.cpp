#include "io/binary_io.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/error.hpp"
#include "harness/fault.hpp"
#include "validate/validate.hpp"

namespace pasta {

namespace {

constexpr char kMagic[4] = {'P', 'S', 'T', 'B'};
constexpr std::uint32_t kVersion = 2;  ///< v2 added the payload checksum

/// Headers can be corrupted too; bound nnz before trusting it with an
/// allocation (the checksum only protects what we managed to read).
constexpr std::uint64_t kMaxPlausibleNnz = 1ULL << 40;

template <typename T>
void
write_pod(std::ofstream& out, const T& v)
{
    out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void
read_pod(std::ifstream& in, T& v)
{
    in.read(reinterpret_cast<char*>(&v), sizeof(T));
}

}  // namespace

std::uint64_t
fnv1a64(const void* data, std::size_t n, std::uint64_t seed)
{
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

void
write_binary_file(const std::string& path, const CooTensor& x)
{
    std::ofstream out(path, std::ios::binary);
    PASTA_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
    out.write(kMagic, sizeof(kMagic));
    write_pod(out, kVersion);
    const std::uint64_t order = x.order();
    const std::uint64_t nnz = x.nnz();
    write_pod(out, order);
    write_pod(out, nnz);
    std::uint64_t checksum = fnv1a64(nullptr, 0);
    for (Size m = 0; m < x.order(); ++m) {
        const Index d = x.dim(m);
        write_pod(out, d);
        checksum = fnv1a64(&d, sizeof(d), checksum);
    }
    for (Size m = 0; m < x.order(); ++m) {
        const auto& idx = x.mode_indices(m);
        out.write(reinterpret_cast<const char*>(idx.data()),
                  static_cast<std::streamsize>(nnz * sizeof(Index)));
        checksum = fnv1a64(idx.data(), nnz * sizeof(Index), checksum);
    }
    out.write(reinterpret_cast<const char*>(x.values().data()),
              static_cast<std::streamsize>(nnz * sizeof(Value)));
    checksum = fnv1a64(x.values().data(), nnz * sizeof(Value), checksum);
    write_pod(out, checksum);
    PASTA_CHECK_MSG(out.good(), "write to " << path << " failed");
}

CooTensor
read_binary_file(const std::string& path)
{
    harness::fault_point("io.read");
    std::ifstream in(path, std::ios::binary);
    PASTA_CHECK_MSG(in.good(), "cannot open " << path);
    char magic[4];
    in.read(magic, sizeof(magic));
    PASTA_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, 4) == 0,
                    path << " is not a PSTB file");
    std::uint32_t version = 0;
    read_pod(in, version);
    PASTA_CHECK_MSG(version == kVersion,
                    "unsupported PSTB version " << version << " in " << path
                                                << " (expected " << kVersion
                                                << ")");
    std::uint64_t order = 0;
    std::uint64_t nnz = 0;
    read_pod(in, order);
    read_pod(in, nnz);
    PASTA_CHECK_MSG(in.good() && order >= 1 && order <= 16,
                    "implausible order " << order << " in " << path);
    PASTA_CHECK_MSG(nnz <= kMaxPlausibleNnz,
                    "implausible nnz " << nnz << " in " << path
                                       << " (corrupt header?)");
    std::uint64_t checksum = fnv1a64(nullptr, 0);
    std::vector<Index> dims(order);
    for (auto& d : dims) {
        read_pod(in, d);
        checksum = fnv1a64(&d, sizeof(d), checksum);
    }
    // Before trusting nnz with an allocation, bound it against the bytes
    // actually present: a truncated-but-plausible header must not drive a
    // multi-GB resize only to fail the checksum afterwards.
    const std::streamoff payload_start = in.tellg();
    in.seekg(0, std::ios::end);
    const std::streamoff file_end = in.tellg();
    in.seekg(payload_start, std::ios::beg);
    PASTA_CHECK_MSG(in.good() && payload_start >= 0 &&
                        file_end >= payload_start,
                    "cannot size " << path);
    const std::uint64_t remaining =
        static_cast<std::uint64_t>(file_end - payload_start);
    const std::uint64_t expected =
        nnz * (order * sizeof(Index) + sizeof(Value)) + sizeof(checksum);
    PASTA_CHECK_MSG(remaining >= expected,
                    "truncated PSTB file "
                        << path << ": header promises " << expected
                        << " payload bytes, " << remaining
                        << " present (refusing allocation)");
    CooTensor x(dims);
    x.resize_nnz(nnz);
    for (Size m = 0; m < x.order(); ++m) {
        in.read(reinterpret_cast<char*>(x.mode_indices(m).data()),
                static_cast<std::streamsize>(nnz * sizeof(Index)));
        checksum = fnv1a64(x.mode_indices(m).data(), nnz * sizeof(Index),
                           checksum);
    }
    in.read(reinterpret_cast<char*>(x.values().data()),
            static_cast<std::streamsize>(nnz * sizeof(Value)));
    checksum = fnv1a64(x.values().data(), nnz * sizeof(Value), checksum);
    PASTA_CHECK_MSG(in.good(), "truncated PSTB file " << path);
    std::uint64_t stored = 0;
    read_pod(in, stored);
    PASTA_CHECK_MSG(in.good(), "truncated PSTB file " << path
                                                      << " (no checksum)");
    PASTA_CHECK_MSG(stored == checksum,
                    "checksum mismatch in " << path << " (stored 0x"
                                            << std::hex << stored
                                            << ", computed 0x" << checksum
                                            << std::dec
                                            << "): corrupt cache entry");
    for (Size p = 0; p < x.nnz(); ++p)
        PASTA_CHECK_MSG(std::isfinite(static_cast<double>(x.value(p))),
                        "non-finite value " << x.value(p) << " at non-zero "
                                            << p << " in " << path);
    x.validate();
    if (validate::convert_checks_enabled())
        validate::validate(x).require();
    return x;
}

}  // namespace pasta
