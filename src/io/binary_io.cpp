#include "io/binary_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace pasta {

namespace {

constexpr char kMagic[4] = {'P', 'S', 'T', 'B'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void
write_pod(std::ofstream& out, const T& v)
{
    out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void
read_pod(std::ifstream& in, T& v)
{
    in.read(reinterpret_cast<char*>(&v), sizeof(T));
}

}  // namespace

void
write_binary_file(const std::string& path, const CooTensor& x)
{
    std::ofstream out(path, std::ios::binary);
    PASTA_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
    out.write(kMagic, sizeof(kMagic));
    write_pod(out, kVersion);
    const std::uint64_t order = x.order();
    const std::uint64_t nnz = x.nnz();
    write_pod(out, order);
    write_pod(out, nnz);
    for (Size m = 0; m < x.order(); ++m)
        write_pod(out, x.dim(m));
    for (Size m = 0; m < x.order(); ++m)
        out.write(
            reinterpret_cast<const char*>(x.mode_indices(m).data()),
            static_cast<std::streamsize>(nnz * sizeof(Index)));
    out.write(reinterpret_cast<const char*>(x.values().data()),
              static_cast<std::streamsize>(nnz * sizeof(Value)));
    PASTA_CHECK_MSG(out.good(), "write to " << path << " failed");
}

CooTensor
read_binary_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    PASTA_CHECK_MSG(in.good(), "cannot open " << path);
    char magic[4];
    in.read(magic, sizeof(magic));
    PASTA_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, 4) == 0,
                    path << " is not a PSTB file");
    std::uint32_t version = 0;
    read_pod(in, version);
    PASTA_CHECK_MSG(version == kVersion,
                    "unsupported PSTB version " << version);
    std::uint64_t order = 0;
    std::uint64_t nnz = 0;
    read_pod(in, order);
    read_pod(in, nnz);
    PASTA_CHECK_MSG(in.good() && order >= 1 && order <= 16,
                    "implausible order " << order);
    std::vector<Index> dims(order);
    for (auto& d : dims)
        read_pod(in, d);
    CooTensor x(dims);
    x.resize_nnz(nnz);
    for (Size m = 0; m < x.order(); ++m)
        in.read(reinterpret_cast<char*>(x.mode_indices(m).data()),
                static_cast<std::streamsize>(nnz * sizeof(Index)));
    in.read(reinterpret_cast<char*>(x.values().data()),
            static_cast<std::streamsize>(nnz * sizeof(Value)));
    PASTA_CHECK_MSG(in.good(), "truncated PSTB file " << path);
    x.validate();
    return x;
}

}  // namespace pasta
