/// \file
/// FROSTT `.tns` text format reader/writer.
///
/// The FROSTT convention (frostt.io): each line holds one non-zero as
/// N whitespace-separated 1-based coordinates followed by the value;
/// `#` starts a comment.  ParTI-style headers are also accepted: an
/// optional first non-comment line with the order N followed by a line of
/// N dimension sizes.  Without a header, dimensions are inferred from the
/// maximum coordinate per mode.
#pragma once

#include <iosfwd>
#include <string>

#include "core/coo_tensor.hpp"

namespace pasta {

/// Reads a tensor from a `.tns` stream; throws PastaError on malformed
/// input.  The result is lexicographically sorted and validated.
CooTensor read_tns(std::istream& in);

/// Reads a tensor from a `.tns` file.
CooTensor read_tns_file(const std::string& path);

/// Writes a tensor in FROSTT format (with a ParTI-style header when
/// `with_header` is set).
void write_tns(std::ostream& out, const CooTensor& x,
               bool with_header = true);

/// Writes a tensor to a `.tns` file.
void write_tns_file(const std::string& path, const CooTensor& x,
                    bool with_header = true);

}  // namespace pasta
