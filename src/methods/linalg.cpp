#include "methods/linalg.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pasta {

std::vector<double>
gram_matrix(const DenseMatrix& a)
{
    const Size r = a.cols();
    std::vector<double> g(r * r, 0.0);
    for (Size i = 0; i < a.rows(); ++i) {
        const Value* row = a.row(i);
        for (Size p = 0; p < r; ++p)
            for (Size q = 0; q < r; ++q)
                g[p * r + q] += static_cast<double>(row[p]) * row[q];
    }
    return g;
}

void
hadamard_inplace(std::vector<double>& target,
                 const std::vector<double>& source)
{
    PASTA_CHECK_MSG(target.size() == source.size(),
                    "hadamard size mismatch");
    for (Size i = 0; i < target.size(); ++i)
        target[i] *= source[i];
}

std::vector<double>
invert_matrix(std::vector<double> a, Size r)
{
    PASTA_CHECK_MSG(a.size() == r * r, "invert_matrix size mismatch");
    std::vector<double> inv(r * r, 0.0);
    for (Size i = 0; i < r; ++i)
        inv[i * r + i] = 1.0;
    for (Size col = 0; col < r; ++col) {
        Size pivot = col;
        for (Size row = col + 1; row < r; ++row)
            if (std::abs(a[row * r + col]) > std::abs(a[pivot * r + col]))
                pivot = row;
        if (std::abs(a[pivot * r + col]) < 1e-12)
            a[pivot * r + col] += 1e-6;  // ridge for rank deficiency
        if (pivot != col) {
            for (Size k = 0; k < r; ++k) {
                std::swap(a[pivot * r + k], a[col * r + k]);
                std::swap(inv[pivot * r + k], inv[col * r + k]);
            }
        }
        const double d = a[col * r + col];
        for (Size k = 0; k < r; ++k) {
            a[col * r + k] /= d;
            inv[col * r + k] /= d;
        }
        for (Size row = 0; row < r; ++row) {
            if (row == col)
                continue;
            const double f = a[row * r + col];
            if (f == 0.0)
                continue;
            for (Size k = 0; k < r; ++k) {
                a[row * r + k] -= f * a[col * r + k];
                inv[row * r + k] -= f * inv[col * r + k];
            }
        }
    }
    return inv;
}

void
matmul_small(const DenseMatrix& lhs, const std::vector<double>& rhs,
             DenseMatrix& out)
{
    const Size r = lhs.cols();
    PASTA_CHECK_MSG(rhs.size() == r * r, "matmul_small size mismatch");
    PASTA_CHECK_MSG(out.rows() == lhs.rows() && out.cols() == r,
                    "matmul_small output shape mismatch");
    for (Size i = 0; i < lhs.rows(); ++i) {
        const Value* in_row = lhs.row(i);
        Value* out_row = out.row(i);
        for (Size q = 0; q < r; ++q) {
            double acc = 0.0;
            for (Size p = 0; p < r; ++p)
                acc += static_cast<double>(in_row[p]) * rhs[p * r + q];
            out_row[q] = static_cast<Value>(acc);
        }
    }
}

void
orthonormalize_columns(DenseMatrix& a)
{
    for (Size c = 0; c < a.cols(); ++c) {
        for (Size prev = 0; prev < c; ++prev) {
            double dot = 0.0;
            for (Size i = 0; i < a.rows(); ++i)
                dot += static_cast<double>(a(i, c)) * a(i, prev);
            for (Size i = 0; i < a.rows(); ++i)
                a(i, c) -= static_cast<Value>(dot) * a(i, prev);
        }
        double norm = 0.0;
        for (Size i = 0; i < a.rows(); ++i)
            norm += static_cast<double>(a(i, c)) * a(i, c);
        norm = std::sqrt(norm);
        if (norm < 1e-12) {
            a(c % a.rows(), c) = 1.0f;
            norm = 1.0;
        }
        for (Size i = 0; i < a.rows(); ++i)
            a(i, c) = static_cast<Value>(a(i, c) / norm);
    }
}

double
frobenius_norm_squared(const CooTensor& x)
{
    double total = 0.0;
    for (Size p = 0; p < x.nnz(); ++p)
        total += static_cast<double>(x.value(p)) * x.value(p);
    return total;
}

std::vector<double>
normalize_columns(DenseMatrix& a)
{
    std::vector<double> norms(a.cols(), 0.0);
    for (Size i = 0; i < a.rows(); ++i)
        for (Size c = 0; c < a.cols(); ++c)
            norms[c] += static_cast<double>(a(i, c)) * a(i, c);
    for (auto& n : norms)
        n = std::sqrt(n);
    for (Size i = 0; i < a.rows(); ++i)
        for (Size c = 0; c < a.cols(); ++c)
            if (norms[c] > 1e-12)
                a(i, c) = static_cast<Value>(a(i, c) / norms[c]);
    return norms;
}

}  // namespace pasta
