/// \file
/// Small dense linear-algebra helpers for the tensor methods: Gram
/// matrices, Hadamard products, Gauss-Jordan inversion, Gram-Schmidt
/// orthonormalization.  R (the decomposition rank) is small — typically
/// 16 — so simple O(R^3) routines suffice and keep the suite free of
/// BLAS/LAPACK dependencies.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "core/coo_tensor.hpp"
#include "core/dense.hpp"

namespace pasta {

/// Returns G = A^T A (cols x cols, double precision, row-major).
std::vector<double> gram_matrix(const DenseMatrix& a);

/// Element-wise (Hadamard) product accumulate: target *= source.
void hadamard_inplace(std::vector<double>& target,
                      const std::vector<double>& source);

/// Inverts an r x r row-major matrix by Gauss-Jordan with partial
/// pivoting; near-singular pivots get a small ridge (the CP-ALS normal
/// equations can be rank-deficient early in the iteration).
std::vector<double> invert_matrix(std::vector<double> a, Size r);

/// target = mttkrp_result x v_inv (I x r times r x r), written into
/// `out` (same shape as mttkrp_result).
void matmul_small(const DenseMatrix& lhs, const std::vector<double>& rhs,
                  DenseMatrix& out);

/// Orthonormalizes the columns of `a` in place (modified Gram-Schmidt);
/// collapsed columns are re-seeded with a canonical basis vector.
void orthonormalize_columns(DenseMatrix& a);

/// Squared Frobenius norm of a sparse tensor's stored values.
double frobenius_norm_squared(const CooTensor& x);

/// Column-wise 2-norms of `a`; normalizes columns in place and returns
/// the norms (CP lambda scaling).
std::vector<double> normalize_columns(DenseMatrix& a);

}  // namespace pasta
