#include "methods/power_method.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "kernels/ttv.hpp"

namespace pasta {

namespace {

double
norm2(const DenseVector& v)
{
    double n = 0.0;
    for (Size i = 0; i < v.size(); ++i)
        n += static_cast<double>(v[i]) * v[i];
    return std::sqrt(n);
}

void
normalize(DenseVector& v)
{
    const double n = norm2(v);
    PASTA_CHECK_MSG(n > 0, "power method hit a zero vector");
    for (Size i = 0; i < v.size(); ++i)
        v[i] = static_cast<Value>(v[i] / n);
}

double
dot(const DenseVector& a, const DenseVector& b)
{
    double d = 0.0;
    for (Size i = 0; i < a.size(); ++i)
        d += static_cast<double>(a[i]) * b[i];
    return d;
}

/// w = X x_2 v x_3 v as a dense length-n vector (two sparse TTVs).
DenseVector
bilinear_contract(const CooTensor& x, const DenseVector& v)
{
    CooTensor first = ttv_coo(x, v, 2);
    CooTensor second = ttv_coo(first, v, 1);
    DenseVector out(v.size(), 0);
    for (Size p = 0; p < second.nnz(); ++p)
        out[second.index(0, p)] = second.value(p);
    return out;
}

/// One implicitly deflated power step:
///   next = (X - sum_c w_c u_c^(o3)) x_2 v x_3 v
///        = X x_2 v x_3 v - sum_c w_c (u_c . v)^2 u_c.
DenseVector
deflated_step(const CooTensor& x,
              const std::vector<TensorComponent>& found,
              const DenseVector& v)
{
    DenseVector next = bilinear_contract(x, v);
    for (const auto& comp : found) {
        const double scale =
            comp.weight * dot(comp.vector, v) * dot(comp.vector, v);
        for (Size i = 0; i < next.size(); ++i)
            next[i] -= static_cast<Value>(scale * comp.vector[i]);
    }
    return next;
}

/// Rayleigh value of the deflated tensor at v.
double
deflated_eigenvalue(const CooTensor& x,
                    const std::vector<TensorComponent>& found,
                    const DenseVector& v)
{
    const DenseVector xv = bilinear_contract(x, v);
    double value = dot(xv, v);
    for (const auto& comp : found) {
        const double uv = dot(comp.vector, v);
        value -= comp.weight * uv * uv * uv;
    }
    return value;
}

}  // namespace

std::vector<TensorComponent>
tensor_power_method(const CooTensor& x, const PowerMethodOptions& options)
{
    PASTA_CHECK_MSG(x.order() == 3,
                    "tensor power method needs a third-order tensor");
    PASTA_CHECK_MSG(x.dim(0) == x.dim(1) && x.dim(1) == x.dim(2),
                    "tensor power method needs a cubical tensor");
    PASTA_CHECK_MSG(options.num_components >= 1, "need >= 1 component");
    const Size n = x.dim(0);

    Rng rng(options.seed);
    std::vector<TensorComponent> found;
    for (Size c = 0; c < options.num_components; ++c) {
        DenseVector best;
        double best_value = -1e300;
        for (Size restart = 0; restart < options.restarts; ++restart) {
            DenseVector v = DenseVector::random(n, rng);
            normalize(v);
            for (Size iter = 0; iter < options.iterations; ++iter) {
                v = deflated_step(x, found, v);
                const double vn = norm2(v);
                if (vn < 1e-12)
                    break;  // deflated tensor vanished along this start
                for (Size i = 0; i < n; ++i)
                    v[i] = static_cast<Value>(v[i] / vn);
            }
            if (norm2(v) < 0.5)
                continue;
            const double value = deflated_eigenvalue(x, found, v);
            if (value > best_value) {
                best_value = value;
                best = v;
            }
        }
        PASTA_CHECK_MSG(best.size() == n,
                        "power method failed to converge on component "
                            << c);
        found.push_back({best, best_value});
    }
    return found;
}

double
symmetric_model_form(const std::vector<TensorComponent>& model,
                     const DenseVector& v)
{
    double total = 0.0;
    for (const auto& comp : model) {
        const double uv = dot(comp.vector, v);
        total += comp.weight * uv * uv * uv;
    }
    return total;
}

}  // namespace pasta
