/// \file
/// Truncated Tucker decomposition by higher-order orthogonal iteration
/// (HOOI), the second complete tensor method from the paper's §VII list,
/// built on the suite's TTM kernel.  Includes the reusable TTM-chain the
/// paper names explicitly ("TTM-chain in Tucker decomposition").
#pragma once

#include <vector>

#include "common/types.hpp"
#include "core/coo_tensor.hpp"
#include "core/dense.hpp"

namespace pasta {

/// Tucker/HOOI configuration.
struct TuckerOptions {
    std::vector<Size> core_dims;  ///< core extent per mode (empty = rank)
    Size rank = 4;                ///< uniform core extent when core_dims empty
    Size max_passes = 8;
    double tolerance = 1e-5;      ///< stop when core norm stalls
    Size power_iterations = 8;    ///< subspace iterations per factor
    std::uint64_t seed = 1;
};

/// Tucker result: X ~= G x_1 U^(1) ... x_N U^(N) with orthonormal U.
struct TuckerResult {
    std::vector<DenseMatrix> factors;  ///< I_m x R_m, orthonormal columns
    CooTensor core;                    ///< R_1 x ... x R_N core (sparse)
    double core_norm = 0;              ///< |G|_F (= |X_hat|_F)
    Size passes = 0;
    std::vector<double> core_norm_history;
};

/// Contracts `x` with every matrix in `mats` along its mode index,
/// skipping `skip_mode` (pass kNoMode to contract all modes).  Each step
/// is one sparse TTM whose semi-sparse result is re-expanded; the chain
/// is ordered by increasing intermediate size.  With `fuse` (default)
/// the endgame — exactly two modes left to contract and both sparse in
/// the sCOO intermediate — runs as one fused two-mode stripe kernel
/// (ttm_scoo_fused2), skipping the to_coo() re-expansion between the
/// final two contractions; `fuse = false` keeps the stepwise chain
/// (bench baseline).
CooTensor ttm_chain(const CooTensor& x,
                    const std::vector<DenseMatrix>& mats,
                    Size skip_mode = kNoMode, bool fuse = true);

/// Runs HOOI on `x`.  Each pass refreshes every factor from the leading
/// left subspace of the mode-m matricization of the TTM-chain projection,
/// via LOBPCG-free subspace power iteration on the implicit Gram.
TuckerResult tucker_hooi(const CooTensor& x,
                         const TuckerOptions& options = {});

}  // namespace pasta
