#include "methods/cpd.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/convert.hpp"
#include "kernels/mttkrp.hpp"
#include "methods/linalg.hpp"

namespace pasta {

CpdResult
cp_als(const CooTensor& x, const CpdOptions& options)
{
    PASTA_CHECK_MSG(options.rank > 0, "rank must be positive");
    PASTA_CHECK_MSG(x.nnz() > 0, "cp_als needs a non-empty tensor");
    const Size n = x.order();
    const Size rank = options.rank;

    CpdResult result;
    Rng rng(options.seed);
    for (Size m = 0; m < n; ++m)
        result.factors.push_back(
            DenseMatrix::random(x.dim(m), rank, rng));
    result.lambdas.assign(rank, 1.0);

    // Pre-convert once when HiCOO MTTKRP is selected.
    HiCooTensor hicoo;
    if (options.mttkrp_format == Format::kHicoo)
        hicoo = coo_to_hicoo(x, options.block_bits);

    // Cached Grams of every factor (updated after each mode sweep).
    std::vector<std::vector<double>> grams(n);
    for (Size m = 0; m < n; ++m)
        grams[m] = gram_matrix(result.factors[m]);

    // Fused MTTKRP-sequence driver (default): the FactorList is built
    // once — every solve writes its factor matrix in place, so the
    // pointers stay valid — and one MTTKRP output buffer per mode is
    // allocated up front and reused across all sweeps (the kernels zero
    // it on entry).  The unfused driver keeps the historical per-mode
    // rebuild + allocation as the BM_CpAls comparison baseline.
    FactorList fused_factors;
    std::vector<DenseMatrix> fused_outs;
    if (options.fused) {
        for (const auto& f : result.factors)
            fused_factors.push_back(&f);
        fused_outs.reserve(n);
        for (Size m = 0; m < n; ++m)
            fused_outs.emplace_back(x.dim(m), rank);
    }
    // Hadamard-product reuse across consecutive mode solves: suffix[m]
    // is the elementwise product of the (pre-update) Grams of modes
    // m..n-1, rebuilt once per sweep; the running prefix folds in each
    // mode's refreshed Gram right after its solve.  V for a mode is then
    // one Hadamard (prefix o suffix[mode+1]) instead of n-1.
    std::vector<std::vector<double>> suffix(n + 1);

    const double norm_x_sq = frobenius_norm_squared(x);
    double prev_fit = 0.0;

    for (Size sweep = 0; sweep < options.max_sweeps; ++sweep) {
        if (options.fused) {
            suffix[n].assign(rank * rank, 1.0);
            for (Size m = n; m-- > 0;) {
                suffix[m] = suffix[m + 1];
                hadamard_inplace(suffix[m], grams[m]);
            }
        }
        std::vector<double> prefix(rank * rank, 1.0);
        DenseMatrix unfused_out;
        const DenseMatrix* last_out = nullptr;
        for (Size mode = 0; mode < n; ++mode) {
            DenseMatrix* mttkrp_out;
            const FactorList* factors;
            FactorList rebuilt;
            if (options.fused) {
                mttkrp_out = &fused_outs[mode];
                factors = &fused_factors;
            } else {
                for (const auto& f : result.factors)
                    rebuilt.push_back(&f);
                unfused_out = DenseMatrix(x.dim(mode), rank);
                mttkrp_out = &unfused_out;
                factors = &rebuilt;
            }
            if (options.mttkrp_format == Format::kHicoo)
                mttkrp_hicoo(hicoo, *factors, mode, *mttkrp_out);
            else
                mttkrp_coo(x, *factors, mode, *mttkrp_out);
            last_out = mttkrp_out;

            // V = Hadamard of the other modes' Grams; U = M V^-1.
            std::vector<double> v;
            if (options.fused) {
                v = prefix;
                hadamard_inplace(v, suffix[mode + 1]);
            } else {
                v.assign(rank * rank, 1.0);
                for (Size m = 0; m < n; ++m) {
                    if (m == mode)
                        continue;
                    hadamard_inplace(v, grams[m]);
                }
            }
            matmul_small(*mttkrp_out, invert_matrix(std::move(v), rank),
                         result.factors[mode]);
            result.lambdas = normalize_columns(result.factors[mode]);
            grams[mode] = gram_matrix(result.factors[mode]);
            hadamard_inplace(prefix, grams[mode]);
        }

        // Fit via the standard CP identity (no reconstruction):
        //   <X, X_hat> = sum_{i,r} M(i,r) lambda_r U^(last)(i,r)
        // where M is the final mode's MTTKRP result computed above
        // (with the *pre-update* factors for the other modes — after the
        // sweep, M corresponds to the current factors).
        const Size last = n - 1;
        double inner = 0.0;
        for (Size i = 0; i < x.dim(last); ++i)
            for (Size r = 0; r < rank; ++r)
                inner += static_cast<double>((*last_out)(i, r)) *
                         result.lambdas[r] * result.factors[last](i, r);
        // After the sweep the running prefix is exactly the Hadamard of
        // every refreshed Gram, which is the h the fit needs.
        const std::vector<double>& h = prefix;
        double model_sq = 0.0;
        for (Size r = 0; r < rank; ++r)
            for (Size s = 0; s < rank; ++s)
                model_sq += result.lambdas[r] * result.lambdas[s] *
                            h[r * rank + s];
        const double residual_sq =
            std::max(0.0, norm_x_sq - 2.0 * inner + model_sq);
        const double fit =
            1.0 - std::sqrt(residual_sq) / std::sqrt(norm_x_sq);
        result.fit_history.push_back(fit);
        result.fit = fit;
        result.sweeps = sweep + 1;
        if (sweep > 0 && std::abs(fit - prev_fit) < options.tolerance)
            break;
        prev_fit = fit;
    }
    return result;
}

double
cpd_value_at(const CpdResult& model, const Coordinate& coords)
{
    PASTA_CHECK_MSG(coords.size() == model.factors.size(),
                    "coordinate arity mismatch");
    const Size rank = model.lambdas.size();
    double total = 0.0;
    for (Size r = 0; r < rank; ++r) {
        double term = model.lambdas[r];
        for (Size m = 0; m < model.factors.size(); ++m)
            term *= model.factors[m](coords[m], r);
        total += term;
    }
    return total;
}

}  // namespace pasta
