#include "methods/cpd.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/convert.hpp"
#include "kernels/mttkrp.hpp"
#include "methods/linalg.hpp"

namespace pasta {

CpdResult
cp_als(const CooTensor& x, const CpdOptions& options)
{
    PASTA_CHECK_MSG(options.rank > 0, "rank must be positive");
    PASTA_CHECK_MSG(x.nnz() > 0, "cp_als needs a non-empty tensor");
    const Size n = x.order();
    const Size rank = options.rank;

    CpdResult result;
    Rng rng(options.seed);
    for (Size m = 0; m < n; ++m)
        result.factors.push_back(
            DenseMatrix::random(x.dim(m), rank, rng));
    result.lambdas.assign(rank, 1.0);

    // Pre-convert once when HiCOO MTTKRP is selected.
    HiCooTensor hicoo;
    if (options.mttkrp_format == Format::kHicoo)
        hicoo = coo_to_hicoo(x, options.block_bits);

    // Cached Grams of every factor (updated after each mode sweep).
    std::vector<std::vector<double>> grams(n);
    for (Size m = 0; m < n; ++m)
        grams[m] = gram_matrix(result.factors[m]);

    const double norm_x_sq = frobenius_norm_squared(x);
    double prev_fit = 0.0;

    for (Size sweep = 0; sweep < options.max_sweeps; ++sweep) {
        DenseMatrix mttkrp_out;
        for (Size mode = 0; mode < n; ++mode) {
            FactorList factors;
            for (const auto& f : result.factors)
                factors.push_back(&f);
            mttkrp_out = DenseMatrix(x.dim(mode), rank);
            if (options.mttkrp_format == Format::kHicoo)
                mttkrp_hicoo(hicoo, factors, mode, mttkrp_out);
            else
                mttkrp_coo(x, factors, mode, mttkrp_out);

            // V = Hadamard of the other modes' Grams; U = M V^-1.
            std::vector<double> v(rank * rank, 1.0);
            for (Size m = 0; m < n; ++m) {
                if (m == mode)
                    continue;
                hadamard_inplace(v, grams[m]);
            }
            matmul_small(mttkrp_out, invert_matrix(std::move(v), rank),
                         result.factors[mode]);
            result.lambdas = normalize_columns(result.factors[mode]);
            grams[mode] = gram_matrix(result.factors[mode]);
        }

        // Fit via the standard CP identity (no reconstruction):
        //   <X, X_hat> = sum_{i,r} M(i,r) lambda_r U^(last)(i,r)
        // where M is the final mode's MTTKRP result computed above
        // (with the *pre-update* factors for the other modes — after the
        // sweep, M corresponds to the current factors).
        const Size last = n - 1;
        double inner = 0.0;
        for (Size i = 0; i < x.dim(last); ++i)
            for (Size r = 0; r < rank; ++r)
                inner += static_cast<double>(mttkrp_out(i, r)) *
                         result.lambdas[r] * result.factors[last](i, r);
        std::vector<double> h(rank * rank, 1.0);
        for (Size m = 0; m < n; ++m)
            hadamard_inplace(h, grams[m]);
        double model_sq = 0.0;
        for (Size r = 0; r < rank; ++r)
            for (Size s = 0; s < rank; ++s)
                model_sq += result.lambdas[r] * result.lambdas[s] *
                            h[r * rank + s];
        const double residual_sq =
            std::max(0.0, norm_x_sq - 2.0 * inner + model_sq);
        const double fit =
            1.0 - std::sqrt(residual_sq) / std::sqrt(norm_x_sq);
        result.fit_history.push_back(fit);
        result.fit = fit;
        result.sweeps = sweep + 1;
        if (sweep > 0 && std::abs(fit - prev_fit) < options.tolerance)
            break;
        prev_fit = fit;
    }
    return result;
}

double
cpd_value_at(const CpdResult& model, const Coordinate& coords)
{
    PASTA_CHECK_MSG(coords.size() == model.factors.size(),
                    "coordinate arity mismatch");
    const Size rank = model.lambdas.size();
    double total = 0.0;
    for (Size r = 0; r < rank; ++r) {
        double term = model.lambdas[r];
        for (Size m = 0; m < model.factors.size(); ++m)
            term *= model.factors[m](coords[m], r);
        total += term;
    }
    return total;
}

}  // namespace pasta
