/// \file
/// Orthogonal tensor decomposition by the robust tensor power method
/// (Anandkumar et al. [19]), the TTV-driven method the paper's §II-C
/// motivates.  Works on symmetric third-order tensors; components are
/// extracted by repeated TTV power iterations with *implicit* deflation —
/// the residual X - sum_c w_c u_c^(o3) is never materialized, so the
/// method scales with nnz(X), not with the dense cube.
#pragma once

#include <cstdint>
#include <vector>

#include "core/coo_tensor.hpp"
#include "core/dense.hpp"

namespace pasta {

/// Power method configuration.
struct PowerMethodOptions {
    Size num_components = 1;
    Size iterations = 30;       ///< power iterations per component
    Size restarts = 3;          ///< random restarts, best kept
    std::uint64_t seed = 1;
};

/// One recovered rank-1 symmetric component w * u o u o u.
struct TensorComponent {
    DenseVector vector;  ///< unit-norm u
    double weight = 0;   ///< w
};

/// Extracts `num_components` components from a symmetric third-order
/// tensor.  Throws PastaError when `x` is not third-order or not
/// cubical.
std::vector<TensorComponent> tensor_power_method(
    const CooTensor& x, const PowerMethodOptions& options = {});

/// Evaluates sum_c w_c (u_c . v)^3 — the symmetric model's cubic form —
/// used to compare recovered components against a planted model.
double symmetric_model_form(const std::vector<TensorComponent>& model,
                            const DenseVector& v);

}  // namespace pasta
