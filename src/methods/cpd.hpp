/// \file
/// CANDECOMP/PARAFAC decomposition by alternating least squares (CP-ALS),
/// one of the "more complete tensor methods" the paper schedules for the
/// suite (§VII).  MTTKRP — the paper's most expensive CPD kernel (§II-E)
/// — dominates each sweep; the format used for it is selectable so the
/// method doubles as an end-to-end format benchmark.
#pragma once

#include <vector>

#include "analysis/cost_model.hpp"
#include "core/coo_tensor.hpp"
#include "core/dense.hpp"

namespace pasta {

/// CP-ALS configuration.
struct CpdOptions {
    Size rank = 16;
    Size max_sweeps = 20;
    double tolerance = 1e-5;     ///< stop when fit improves less than this
    Format mttkrp_format = Format::kCoo;  ///< COO or HiCOO MTTKRP
    unsigned block_bits = 7;     ///< HiCOO block size when selected
    std::uint64_t seed = 1;      ///< factor initialization
    /// MTTKRP-sequence driver: build the FactorList once, keep one
    /// reusable MTTKRP output buffer per mode across sweeps, and reuse
    /// partial Hadamard products (prefix x suffix of the unchanged
    /// modes) between consecutive mode solves.  `false` runs the
    /// historical per-mode-allocation driver (bench baseline).
    bool fused = true;
};

/// CP decomposition result: X ~= sum_r lambda_r u^(1)_r o ... o u^(N)_r.
struct CpdResult {
    std::vector<DenseMatrix> factors;  ///< one I_m x R matrix per mode
    std::vector<double> lambdas;       ///< column scales, length R
    double fit = 0;                    ///< 1 - |X - X_hat| / |X|
    Size sweeps = 0;                   ///< sweeps executed
    std::vector<double> fit_history;   ///< fit after each sweep
};

/// Runs CP-ALS on `x`.  Each sweep performs one MTTKRP per mode plus
/// R x R Gram/Hadamard/inverse updates; the fit is computed exactly from
/// <X, X_hat> and the factor Grams (no dense reconstruction).
CpdResult cp_als(const CooTensor& x, const CpdOptions& options = {});

/// Reconstructs the value of the CP model at one coordinate (tests,
/// small-scale validation).
double cpd_value_at(const CpdResult& model, const Coordinate& coords);

}  // namespace pasta
