#include "methods/tucker.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "kernels/ttm.hpp"
#include "kernels/ttm_scoo.hpp"
#include "methods/linalg.hpp"

namespace pasta {

CooTensor
ttm_chain(const CooTensor& x, const std::vector<DenseMatrix>& mats,
          Size skip_mode, bool fuse)
{
    PASTA_CHECK_MSG(mats.size() == x.order(),
                    "ttm_chain needs one matrix per mode");
    // Contract small-rank modes first: each TTM shrinks (or keeps) the
    // mode extent, so ordering by ascending rank keeps intermediates
    // small.
    std::vector<Size> order;
    for (Size m = 0; m < x.order(); ++m)
        if (m != skip_mode)
            order.push_back(m);
    std::sort(order.begin(), order.end(), [&](Size a, Size b) {
        return mats[a].cols() < mats[b].cols();
    });
    for (Size m : order)
        PASTA_CHECK_MSG(mats[m].rows() == x.dim(m),
                        "ttm_chain matrix rows mismatch on mode " << m);
    if (order.empty())
        return x;

    // First TTM produces a semi-sparse intermediate; later TTMs stay in
    // sCOO (ttm_scoo) while at least two sparse modes remain, avoiding
    // the stripe-volume blowup of expanding back to COO each step.
    ScooTensor semi = ttm_coo(x, mats[order[0]], order[0]);
    for (Size k = 1; k < order.size(); ++k) {
        const Size m = order[k];
        // Fused endgame: when exactly the last two contractions remain
        // and they are exactly the intermediate's two sparse modes,
        // contract both in one stripe sweep and emit the final COO
        // directly — no intermediate sCOO and no to_coo() round trip.
        if (fuse && k + 2 == order.size() &&
            semi.sparse_modes().size() == 2) {
            const Size m2 = order[k + 1];
            const auto& sp = semi.sparse_modes();
            if ((sp[0] == std::min(m, m2) && sp[1] == std::max(m, m2)))
                return ttm_scoo_fused2(semi, mats[m], m, mats[m2], m2);
        }
        if (semi.sparse_modes().size() >= 2) {
            semi = ttm_scoo(semi, mats[m], m);
        } else {
            ScooTensor next = ttm_coo(semi.to_coo(), mats[m], m);
            semi = std::move(next);
        }
    }
    return semi.to_coo();
}

namespace {

/// Leading `rank` left singular directions of the mode-`mode`
/// matricization of `y`, via subspace power iteration on the implicit
/// Gram G = Y_(m) Y_(m)^T (never materialized).
DenseMatrix
leading_subspace(const CooTensor& y, Size mode, Size rank, Size iterations,
                 Rng& rng)
{
    const Size n = y.dim(mode);
    DenseMatrix q = DenseMatrix::random(n, rank, rng);
    orthonormalize_columns(q);
    CooTensor sorted = y;
    sorted.sort_fibers_last(mode);
    for (Size iter = 0; iter < iterations; ++iter) {
        DenseMatrix gq(n, rank, 0);
        Size start = 0;
        while (start < sorted.nnz()) {
            Size end = start + 1;
            auto same_rest = [&](Size a, Size b) {
                for (Size m = 0; m < sorted.order(); ++m) {
                    if (m == mode)
                        continue;
                    if (sorted.index(m, a) != sorted.index(m, b))
                        return false;
                }
                return true;
            };
            while (end < sorted.nnz() && same_rest(start, end))
                ++end;
            for (Size r = 0; r < rank; ++r) {
                double t = 0.0;
                for (Size p = start; p < end; ++p)
                    t += static_cast<double>(sorted.value(p)) *
                         q(sorted.index(mode, p), r);
                for (Size p = start; p < end; ++p)
                    gq(sorted.index(mode, p), r) +=
                        static_cast<Value>(sorted.value(p) * t);
            }
            start = end;
        }
        q = std::move(gq);
        orthonormalize_columns(q);
    }
    return q;
}

}  // namespace

TuckerResult
tucker_hooi(const CooTensor& x, const TuckerOptions& options)
{
    PASTA_CHECK_MSG(x.nnz() > 0, "tucker_hooi needs a non-empty tensor");
    const Size n = x.order();
    std::vector<Size> core_dims = options.core_dims;
    if (core_dims.empty())
        core_dims.assign(n, options.rank);
    PASTA_CHECK_MSG(core_dims.size() == n, "core_dims arity mismatch");
    for (Size m = 0; m < n; ++m) {
        PASTA_CHECK_MSG(core_dims[m] >= 1, "core extent must be >= 1");
        core_dims[m] = std::min<Size>(core_dims[m], x.dim(m));
    }

    TuckerResult result;
    Rng rng(options.seed);
    for (Size m = 0; m < n; ++m) {
        result.factors.push_back(
            DenseMatrix::random(x.dim(m), core_dims[m], rng));
        orthonormalize_columns(result.factors.back());
    }

    double prev_norm = 0.0;
    for (Size pass = 0; pass < options.max_passes; ++pass) {
        for (Size mode = 0; mode < n; ++mode) {
            const CooTensor projected =
                ttm_chain(x, result.factors, mode);
            result.factors[mode] =
                leading_subspace(projected, mode, core_dims[mode],
                                 options.power_iterations, rng);
        }
        result.core = ttm_chain(x, result.factors, kNoMode);
        result.core_norm = std::sqrt(frobenius_norm_squared(result.core));
        result.core_norm_history.push_back(result.core_norm);
        result.passes = pass + 1;
        if (pass > 0 &&
            std::abs(result.core_norm - prev_norm) <
                options.tolerance * std::max(1.0, prev_norm))
            break;
        prev_norm = result.core_norm;
    }
    return result;
}

}  // namespace pasta
