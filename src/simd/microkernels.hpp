/// \file
/// Explicit SIMD micro-kernels over contiguous rank-R value stripes.
///
/// Every primitive has three implementations — portable scalar, AVX2,
/// and AVX-512 — selected by the Isa handle the caller obtained once per
/// kernel invocation from simd::active_isa().  The hot kernels call
/// these per non-zero, so each wrapper is a single predictable switch on
/// a value held in a register; the intrinsic bodies carry GCC target
/// attributes, which lets one translation unit hold all three paths
/// without compiling the whole suite with -mavx*.
///
/// Numerical contract: the element-wise primitives (vfill, vscale,
/// vmul_accumulate, vfma_rows, vaxpy, vadd_inplace, vhadamard, vadd,
/// vsub, vdiv) perform exactly one IEEE multiply and/or add per element
/// in the same order as the scalar loop — no FMA contraction — so their
/// vector results are bit-identical to the scalar path (tests/test_simd
/// enforces this).  The reductions (vdot, vdot_gather) reassociate
/// partial sums across lanes; their results stay within the Higham
/// bounds the validate/ diff oracles already allow for parallel
/// reductions.
#pragma once

#include "common/types.hpp"
#include "simd/simd.hpp"

#if PASTA_SIMD_X86
#include <immintrin.h>
#endif

namespace pasta::simd {

namespace detail {

// fp-contract must stay off inside the vector bodies: avx512f implies
// FMA, and GCC happily contracts a separate _mm512_mul_ps/_mm512_add_ps
// pair into one fused multiply-add, breaking the bit-identity contract
// with the scalar reference path.
#if PASTA_SIMD_X86
#define PASTA_TARGET_AVX2 \
    __attribute__((target("avx2"), optimize("fp-contract=off")))
#define PASTA_TARGET_AVX512 \
    __attribute__((target("avx512f"), optimize("fp-contract=off")))
#endif

// ---- scalar reference implementations ------------------------------
//
// On x86 the scalar bodies are pinned genuinely scalar: no compiler
// auto-vectorization and no FMA contraction.  They are the bit-exact
// reference the vector paths (and the forced PASTA_SIMD=scalar
// baseline) are measured against, so their code must not shift with
// the build's -O/-march flags — under -O3 GCC would SSE-vectorize
// them, and under -march with FMA it would contract a*b+c, changing
// results in the last ulp.  Off x86 there is no alternate path to
// stay identical to, so the attributes are dropped and the compiler
// may optimize freely.
#if PASTA_SIMD_X86 && defined(__GNUC__) && !defined(__clang__)
#define PASTA_SCALAR_REF \
    __attribute__(( \
        optimize("no-tree-vectorize", "no-tree-slp-vectorize", \
                 "fp-contract=off")))
#else
#define PASTA_SCALAR_REF
#endif

PASTA_SCALAR_REF inline void
vfill_scalar(Value* dst, Value v, Size n)
{
    for (Size i = 0; i < n; ++i)
        dst[i] = v;
}

PASTA_SCALAR_REF inline void
vscale_scalar(Value* dst, const Value* src, Value a, Size n)
{
    for (Size i = 0; i < n; ++i)
        dst[i] = a * src[i];
}

PASTA_SCALAR_REF inline void
vmul_accumulate_scalar(Value* acc, const Value* a, Size n)
{
    for (Size i = 0; i < n; ++i)
        acc[i] *= a[i];
}

PASTA_SCALAR_REF inline void
vfma_rows_scalar(Value* acc, const Value* a, const Value* b, Size n)
{
    for (Size i = 0; i < n; ++i)
        acc[i] += a[i] * b[i];
}

PASTA_SCALAR_REF inline void
vaxpy_scalar(Value* y, Value a, const Value* x, Size n)
{
    for (Size i = 0; i < n; ++i)
        y[i] += a * x[i];
}

PASTA_SCALAR_REF inline void
vadd_inplace_scalar(Value* acc, const Value* a, Size n)
{
    for (Size i = 0; i < n; ++i)
        acc[i] += a[i];
}

PASTA_SCALAR_REF inline void
vhadamard_scalar(Value* z, const Value* x, const Value* y, Size n)
{
    for (Size i = 0; i < n; ++i)
        z[i] = x[i] * y[i];
}

PASTA_SCALAR_REF inline void
vadd_scalar(Value* z, const Value* x, const Value* y, Size n)
{
    for (Size i = 0; i < n; ++i)
        z[i] = x[i] + y[i];
}

PASTA_SCALAR_REF inline void
vsub_scalar(Value* z, const Value* x, const Value* y, Size n)
{
    for (Size i = 0; i < n; ++i)
        z[i] = x[i] - y[i];
}

PASTA_SCALAR_REF inline void
vdiv_scalar(Value* z, const Value* x, const Value* y, Size n)
{
    for (Size i = 0; i < n; ++i)
        z[i] = x[i] / y[i];
}

PASTA_SCALAR_REF inline Value
vdot_scalar(const Value* x, const Value* y, Size n)
{
    Value acc = 0;
    for (Size i = 0; i < n; ++i)
        acc += x[i] * y[i];
    return acc;
}

PASTA_SCALAR_REF inline Value
vdot_gather_scalar(const Value* x, const Index* idx, const Value* table,
                   Size n)
{
    Value acc = 0;
    for (Size i = 0; i < n; ++i)
        acc += x[i] * table[idx[i]];
    return acc;
}

#if PASTA_SIMD_X86

// ---- AVX2 (8 x float) ----------------------------------------------
// Tails run the scalar loop; element-wise bodies use separate mul/add
// (never FMA) to preserve bit-identity with the scalar path.

PASTA_TARGET_AVX2 inline void
vfill_avx2(Value* dst, Value v, Size n)
{
    const __m256 vv = _mm256_set1_ps(v);
    Size i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(dst + i, vv);
    for (; i < n; ++i)
        dst[i] = v;
}

PASTA_TARGET_AVX2 inline void
vscale_avx2(Value* dst, const Value* src, Value a, Size n)
{
    const __m256 va = _mm256_set1_ps(a);
    Size i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(dst + i,
                         _mm256_mul_ps(va, _mm256_loadu_ps(src + i)));
    for (; i < n; ++i)
        dst[i] = a * src[i];
}

PASTA_TARGET_AVX2 inline void
vmul_accumulate_avx2(Value* acc, const Value* a, Size n)
{
    Size i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(acc + i,
                         _mm256_mul_ps(_mm256_loadu_ps(acc + i),
                                       _mm256_loadu_ps(a + i)));
    for (; i < n; ++i)
        acc[i] *= a[i];
}

PASTA_TARGET_AVX2 inline void
vfma_rows_avx2(Value* acc, const Value* a, const Value* b, Size n)
{
    Size i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 prod = _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i));
        _mm256_storeu_ps(acc + i,
                         _mm256_add_ps(_mm256_loadu_ps(acc + i), prod));
    }
    for (; i < n; ++i)
        acc[i] += a[i] * b[i];
}

PASTA_TARGET_AVX2 inline void
vaxpy_avx2(Value* y, Value a, const Value* x, Size n)
{
    const __m256 va = _mm256_set1_ps(a);
    Size i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
        _mm256_storeu_ps(y + i,
                         _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
    }
    for (; i < n; ++i)
        y[i] += a * x[i];
}

PASTA_TARGET_AVX2 inline void
vadd_inplace_avx2(Value* acc, const Value* a, Size n)
{
    Size i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(acc + i,
                         _mm256_add_ps(_mm256_loadu_ps(acc + i),
                                       _mm256_loadu_ps(a + i)));
    for (; i < n; ++i)
        acc[i] += a[i];
}

PASTA_TARGET_AVX2 inline void
vhadamard_avx2(Value* z, const Value* x, const Value* y, Size n)
{
    Size i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(z + i, _mm256_mul_ps(_mm256_loadu_ps(x + i),
                                              _mm256_loadu_ps(y + i)));
    for (; i < n; ++i)
        z[i] = x[i] * y[i];
}

PASTA_TARGET_AVX2 inline void
vadd_avx2(Value* z, const Value* x, const Value* y, Size n)
{
    Size i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(z + i, _mm256_add_ps(_mm256_loadu_ps(x + i),
                                              _mm256_loadu_ps(y + i)));
    for (; i < n; ++i)
        z[i] = x[i] + y[i];
}

PASTA_TARGET_AVX2 inline void
vsub_avx2(Value* z, const Value* x, const Value* y, Size n)
{
    Size i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(z + i, _mm256_sub_ps(_mm256_loadu_ps(x + i),
                                              _mm256_loadu_ps(y + i)));
    for (; i < n; ++i)
        z[i] = x[i] - y[i];
}

PASTA_TARGET_AVX2 inline void
vdiv_avx2(Value* z, const Value* x, const Value* y, Size n)
{
    Size i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(z + i, _mm256_div_ps(_mm256_loadu_ps(x + i),
                                              _mm256_loadu_ps(y + i)));
    for (; i < n; ++i)
        z[i] = x[i] / y[i];
}

/// Horizontal sum with a fixed lane order (low lane first) so repeated
/// runs on the same ISA are deterministic.
PASTA_TARGET_AVX2 inline Value
hsum_avx2(__m256 v)
{
    alignas(32) Value lanes[8];
    _mm256_store_ps(lanes, v);
    Value total = 0;
    for (int l = 0; l < 8; ++l)
        total += lanes[l];
    return total;
}

PASTA_TARGET_AVX2 inline Value
vdot_avx2(const Value* x, const Value* y, Size n)
{
    __m256 acc = _mm256_setzero_ps();
    Size i = 0;
    for (; i + 8 <= n; i += 8)
        acc = _mm256_add_ps(acc,
                            _mm256_mul_ps(_mm256_loadu_ps(x + i),
                                          _mm256_loadu_ps(y + i)));
    Value total = hsum_avx2(acc);
    for (; i < n; ++i)
        total += x[i] * y[i];
    return total;
}

PASTA_TARGET_AVX2 inline Value
vdot_gather_avx2(const Value* x, const Index* idx, const Value* table,
                 Size n)
{
    __m256 acc = _mm256_setzero_ps();
    Size i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i vi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(idx + i));
        const __m256 gathered =
            _mm256_i32gather_ps(table, vi, sizeof(Value));
        acc = _mm256_add_ps(acc,
                            _mm256_mul_ps(_mm256_loadu_ps(x + i),
                                          gathered));
    }
    Value total = hsum_avx2(acc);
    for (; i < n; ++i)
        total += x[i] * table[idx[i]];
    return total;
}

// ---- AVX-512 (16 x float) ------------------------------------------
// Tails use masked loads/stores: one code path regardless of remainder.

PASTA_TARGET_AVX512 inline void
vfill_avx512(Value* dst, Value v, Size n)
{
    const __m512 vv = _mm512_set1_ps(v);
    Size i = 0;
    for (; i + 16 <= n; i += 16)
        _mm512_storeu_ps(dst + i, vv);
    if (i < n) {
        const __mmask16 m =
            static_cast<__mmask16>((1u << (n - i)) - 1u);
        _mm512_mask_storeu_ps(dst + i, m, vv);
    }
}

PASTA_TARGET_AVX512 inline void
vscale_avx512(Value* dst, const Value* src, Value a, Size n)
{
    const __m512 va = _mm512_set1_ps(a);
    Size i = 0;
    for (; i + 16 <= n; i += 16)
        _mm512_storeu_ps(dst + i,
                         _mm512_mul_ps(va, _mm512_loadu_ps(src + i)));
    if (i < n) {
        const __mmask16 m =
            static_cast<__mmask16>((1u << (n - i)) - 1u);
        const __m512 s = _mm512_maskz_loadu_ps(m, src + i);
        _mm512_mask_storeu_ps(dst + i, m, _mm512_mul_ps(va, s));
    }
}

PASTA_TARGET_AVX512 inline void
vmul_accumulate_avx512(Value* acc, const Value* a, Size n)
{
    Size i = 0;
    for (; i + 16 <= n; i += 16)
        _mm512_storeu_ps(acc + i,
                         _mm512_mul_ps(_mm512_loadu_ps(acc + i),
                                       _mm512_loadu_ps(a + i)));
    if (i < n) {
        const __mmask16 m =
            static_cast<__mmask16>((1u << (n - i)) - 1u);
        const __m512 va = _mm512_maskz_loadu_ps(m, acc + i);
        const __m512 vb = _mm512_maskz_loadu_ps(m, a + i);
        _mm512_mask_storeu_ps(acc + i, m, _mm512_mul_ps(va, vb));
    }
}

PASTA_TARGET_AVX512 inline void
vfma_rows_avx512(Value* acc, const Value* a, const Value* b, Size n)
{
    Size i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512 prod = _mm512_mul_ps(_mm512_loadu_ps(a + i),
                                          _mm512_loadu_ps(b + i));
        _mm512_storeu_ps(acc + i,
                         _mm512_add_ps(_mm512_loadu_ps(acc + i), prod));
    }
    if (i < n) {
        const __mmask16 m =
            static_cast<__mmask16>((1u << (n - i)) - 1u);
        const __m512 prod =
            _mm512_mul_ps(_mm512_maskz_loadu_ps(m, a + i),
                          _mm512_maskz_loadu_ps(m, b + i));
        const __m512 va = _mm512_maskz_loadu_ps(m, acc + i);
        _mm512_mask_storeu_ps(acc + i, m, _mm512_add_ps(va, prod));
    }
}

PASTA_TARGET_AVX512 inline void
vaxpy_avx512(Value* y, Value a, const Value* x, Size n)
{
    const __m512 va = _mm512_set1_ps(a);
    Size i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512 prod = _mm512_mul_ps(va, _mm512_loadu_ps(x + i));
        _mm512_storeu_ps(y + i,
                         _mm512_add_ps(_mm512_loadu_ps(y + i), prod));
    }
    if (i < n) {
        const __mmask16 m =
            static_cast<__mmask16>((1u << (n - i)) - 1u);
        const __m512 prod =
            _mm512_mul_ps(va, _mm512_maskz_loadu_ps(m, x + i));
        const __m512 vy = _mm512_maskz_loadu_ps(m, y + i);
        _mm512_mask_storeu_ps(y + i, m, _mm512_add_ps(vy, prod));
    }
}

PASTA_TARGET_AVX512 inline void
vadd_inplace_avx512(Value* acc, const Value* a, Size n)
{
    Size i = 0;
    for (; i + 16 <= n; i += 16)
        _mm512_storeu_ps(acc + i,
                         _mm512_add_ps(_mm512_loadu_ps(acc + i),
                                       _mm512_loadu_ps(a + i)));
    if (i < n) {
        const __mmask16 m =
            static_cast<__mmask16>((1u << (n - i)) - 1u);
        const __m512 va = _mm512_maskz_loadu_ps(m, acc + i);
        const __m512 vb = _mm512_maskz_loadu_ps(m, a + i);
        _mm512_mask_storeu_ps(acc + i, m, _mm512_add_ps(va, vb));
    }
}

PASTA_TARGET_AVX512 inline void
vhadamard_avx512(Value* z, const Value* x, const Value* y, Size n)
{
    Size i = 0;
    for (; i + 16 <= n; i += 16)
        _mm512_storeu_ps(z + i, _mm512_mul_ps(_mm512_loadu_ps(x + i),
                                              _mm512_loadu_ps(y + i)));
    if (i < n) {
        const __mmask16 m =
            static_cast<__mmask16>((1u << (n - i)) - 1u);
        _mm512_mask_storeu_ps(
            z + i, m,
            _mm512_mul_ps(_mm512_maskz_loadu_ps(m, x + i),
                          _mm512_maskz_loadu_ps(m, y + i)));
    }
}

PASTA_TARGET_AVX512 inline void
vadd_avx512(Value* z, const Value* x, const Value* y, Size n)
{
    Size i = 0;
    for (; i + 16 <= n; i += 16)
        _mm512_storeu_ps(z + i, _mm512_add_ps(_mm512_loadu_ps(x + i),
                                              _mm512_loadu_ps(y + i)));
    if (i < n) {
        const __mmask16 m =
            static_cast<__mmask16>((1u << (n - i)) - 1u);
        _mm512_mask_storeu_ps(
            z + i, m,
            _mm512_add_ps(_mm512_maskz_loadu_ps(m, x + i),
                          _mm512_maskz_loadu_ps(m, y + i)));
    }
}

PASTA_TARGET_AVX512 inline void
vsub_avx512(Value* z, const Value* x, const Value* y, Size n)
{
    Size i = 0;
    for (; i + 16 <= n; i += 16)
        _mm512_storeu_ps(z + i, _mm512_sub_ps(_mm512_loadu_ps(x + i),
                                              _mm512_loadu_ps(y + i)));
    if (i < n) {
        const __mmask16 m =
            static_cast<__mmask16>((1u << (n - i)) - 1u);
        _mm512_mask_storeu_ps(
            z + i, m,
            _mm512_sub_ps(_mm512_maskz_loadu_ps(m, x + i),
                          _mm512_maskz_loadu_ps(m, y + i)));
    }
}

PASTA_TARGET_AVX512 inline void
vdiv_avx512(Value* z, const Value* x, const Value* y, Size n)
{
    Size i = 0;
    for (; i + 16 <= n; i += 16)
        _mm512_storeu_ps(z + i, _mm512_div_ps(_mm512_loadu_ps(x + i),
                                              _mm512_loadu_ps(y + i)));
    // Masked-divide tails would fault-free divide by zero in the dead
    // lanes; run them scalar instead.
    for (; i < n; ++i)
        z[i] = x[i] / y[i];
}

PASTA_TARGET_AVX512 inline Value
hsum_avx512(__m512 v)
{
    alignas(64) Value lanes[16];
    _mm512_store_ps(lanes, v);
    Value total = 0;
    for (int l = 0; l < 16; ++l)
        total += lanes[l];
    return total;
}

PASTA_TARGET_AVX512 inline Value
vdot_avx512(const Value* x, const Value* y, Size n)
{
    __m512 acc = _mm512_setzero_ps();
    Size i = 0;
    for (; i + 16 <= n; i += 16)
        acc = _mm512_add_ps(acc,
                            _mm512_mul_ps(_mm512_loadu_ps(x + i),
                                          _mm512_loadu_ps(y + i)));
    Value total = hsum_avx512(acc);
    for (; i < n; ++i)
        total += x[i] * y[i];
    return total;
}

PASTA_TARGET_AVX512 inline Value
vdot_gather_avx512(const Value* x, const Index* idx, const Value* table,
                   Size n)
{
    __m512 acc = _mm512_setzero_ps();
    Size i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512i vi = _mm512_loadu_si512(
            reinterpret_cast<const void*>(idx + i));
        // Masked full-lane gather: the zero source operand keeps the
        // "old value" defined (the plain gather leaves it undefined and
        // trips -Wmaybe-uninitialized inside the GCC intrinsic header).
        const __m512 gathered = _mm512_mask_i32gather_ps(
            _mm512_setzero_ps(), 0xffff, vi, table, sizeof(Value));
        acc = _mm512_add_ps(acc,
                            _mm512_mul_ps(_mm512_loadu_ps(x + i),
                                          gathered));
    }
    Value total = hsum_avx512(acc);
    for (; i < n; ++i)
        total += x[i] * table[idx[i]];
    return total;
}

#endif  // PASTA_SIMD_X86

}  // namespace detail

// ---- dispatched entry points ---------------------------------------
// Each is a switch over an Isa value the caller hoisted out of its
// loop; the branch predicts perfectly and the intrinsic bodies inline
// into the case arms.

/// dst[i] = v.
inline void
vfill(Isa isa, Value* dst, Value v, Size n)
{
#if PASTA_SIMD_X86
    switch (isa) {
      case Isa::kAvx512:
        detail::vfill_avx512(dst, v, n);
        return;
      case Isa::kAvx2:
        detail::vfill_avx2(dst, v, n);
        return;
      default:
        break;
    }
#endif
    (void)isa;
    detail::vfill_scalar(dst, v, n);
}

/// dst[i] = a * src[i] (fused fill + first mode multiply in MTTKRP).
inline void
vscale(Isa isa, Value* dst, const Value* src, Value a, Size n)
{
#if PASTA_SIMD_X86
    switch (isa) {
      case Isa::kAvx512:
        detail::vscale_avx512(dst, src, a, n);
        return;
      case Isa::kAvx2:
        detail::vscale_avx2(dst, src, a, n);
        return;
      default:
        break;
    }
#endif
    (void)isa;
    detail::vscale_scalar(dst, src, a, n);
}

/// acc[i] *= a[i] (the Khatri-Rao partial-product step of MTTKRP).
inline void
vmul_accumulate(Isa isa, Value* acc, const Value* a, Size n)
{
#if PASTA_SIMD_X86
    switch (isa) {
      case Isa::kAvx512:
        detail::vmul_accumulate_avx512(acc, a, n);
        return;
      case Isa::kAvx2:
        detail::vmul_accumulate_avx2(acc, a, n);
        return;
      default:
        break;
    }
#endif
    (void)isa;
    detail::vmul_accumulate_scalar(acc, a, n);
}

/// acc[i] += a[i] * b[i] (CSF subtree merge: child partial x factor row).
inline void
vfma_rows(Isa isa, Value* acc, const Value* a, const Value* b, Size n)
{
#if PASTA_SIMD_X86
    switch (isa) {
      case Isa::kAvx512:
        detail::vfma_rows_avx512(acc, a, b, n);
        return;
      case Isa::kAvx2:
        detail::vfma_rows_avx2(acc, a, b, n);
        return;
      default:
        break;
    }
#endif
    (void)isa;
    detail::vfma_rows_scalar(acc, a, b, n);
}

/// y[i] += a * x[i] (TTM stripe accumulate).
inline void
vaxpy(Isa isa, Value* y, Value a, const Value* x, Size n)
{
#if PASTA_SIMD_X86
    switch (isa) {
      case Isa::kAvx512:
        detail::vaxpy_avx512(y, a, x, n);
        return;
      case Isa::kAvx2:
        detail::vaxpy_avx2(y, a, x, n);
        return;
      default:
        break;
    }
#endif
    (void)isa;
    detail::vaxpy_scalar(y, a, x, n);
}

/// acc[i] += a[i] (run accumulation, owner-partition output update).
inline void
vadd_inplace(Isa isa, Value* acc, const Value* a, Size n)
{
#if PASTA_SIMD_X86
    switch (isa) {
      case Isa::kAvx512:
        detail::vadd_inplace_avx512(acc, a, n);
        return;
      case Isa::kAvx2:
        detail::vadd_inplace_avx2(acc, a, n);
        return;
      default:
        break;
    }
#endif
    (void)isa;
    detail::vadd_inplace_scalar(acc, a, n);
}

/// z[i] = x[i] * y[i] (TEW multiply over matched value streams).
inline void
vhadamard(Isa isa, Value* z, const Value* x, const Value* y, Size n)
{
#if PASTA_SIMD_X86
    switch (isa) {
      case Isa::kAvx512:
        detail::vhadamard_avx512(z, x, y, n);
        return;
      case Isa::kAvx2:
        detail::vhadamard_avx2(z, x, y, n);
        return;
      default:
        break;
    }
#endif
    (void)isa;
    detail::vhadamard_scalar(z, x, y, n);
}

/// z[i] = x[i] + y[i].
inline void
vadd(Isa isa, Value* z, const Value* x, const Value* y, Size n)
{
#if PASTA_SIMD_X86
    switch (isa) {
      case Isa::kAvx512:
        detail::vadd_avx512(z, x, y, n);
        return;
      case Isa::kAvx2:
        detail::vadd_avx2(z, x, y, n);
        return;
      default:
        break;
    }
#endif
    (void)isa;
    detail::vadd_scalar(z, x, y, n);
}

/// z[i] = x[i] - y[i].
inline void
vsub(Isa isa, Value* z, const Value* x, const Value* y, Size n)
{
#if PASTA_SIMD_X86
    switch (isa) {
      case Isa::kAvx512:
        detail::vsub_avx512(z, x, y, n);
        return;
      case Isa::kAvx2:
        detail::vsub_avx2(z, x, y, n);
        return;
      default:
        break;
    }
#endif
    (void)isa;
    detail::vsub_scalar(z, x, y, n);
}

/// z[i] = x[i] / y[i].
inline void
vdiv(Isa isa, Value* z, const Value* x, const Value* y, Size n)
{
#if PASTA_SIMD_X86
    switch (isa) {
      case Isa::kAvx512:
        detail::vdiv_avx512(z, x, y, n);
        return;
      case Isa::kAvx2:
        detail::vdiv_avx2(z, x, y, n);
        return;
      default:
        break;
    }
#endif
    (void)isa;
    detail::vdiv_scalar(z, x, y, n);
}

/// sum_i x[i] * y[i].  Lane partial sums reassociate; deterministic for
/// a fixed ISA, bounded by the Higham forward-error model.
inline Value
vdot(Isa isa, const Value* x, const Value* y, Size n)
{
#if PASTA_SIMD_X86
    switch (isa) {
      case Isa::kAvx512:
        return detail::vdot_avx512(x, y, n);
      case Isa::kAvx2:
        return detail::vdot_avx2(x, y, n);
      default:
        break;
    }
#endif
    (void)isa;
    return detail::vdot_scalar(x, y, n);
}

/// sum_i x[i] * table[idx[i]] (TTV fiber dot with gathered vector
/// entries).  Same reassociation contract as vdot.
inline Value
vdot_gather(Isa isa, const Value* x, const Index* idx,
            const Value* table, Size n)
{
#if PASTA_SIMD_X86
    switch (isa) {
      case Isa::kAvx512:
        return detail::vdot_gather_avx512(x, idx, table, n);
      case Isa::kAvx2:
        return detail::vdot_gather_avx2(x, idx, table, n);
      default:
        break;
    }
#endif
    (void)isa;
    return detail::vdot_gather_scalar(x, idx, table, n);
}

}  // namespace pasta::simd
