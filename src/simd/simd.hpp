/// \file
/// Runtime SIMD dispatch for the rank-loop micro-kernels.
///
/// The per-non-zero inner loops of MTTKRP, TTV, TTM, TEW, and the CSF
/// walks iterate over contiguous rank-R value stripes; PR 5's roofline
/// columns showed every one of them sitting well below machine balance
/// with scalar code that merely hoped `#pragma omp simd` would fire.
/// This layer makes the vector path explicit: src/simd/microkernels.hpp
/// holds AVX-512/AVX2 intrinsic implementations of each primitive next
/// to a portable scalar fallback, and this header decides — once per
/// process — which implementation every kernel invocation uses.
///
/// Selection order:
///   1. $PASTA_SIMD=auto|avx512|avx2|scalar.  `auto` (or unset) picks
///      the widest ISA the CPU reports; forcing an ISA the CPU lacks
///      throws PastaError (strict env validation, like PASTA_VALIDATE).
///   2. Tests and benches may override with set_isa(); the override must
///      name a supported ISA.
///
/// The chosen path is observable: every kernel calls note_kernel(),
/// which stamps the "simd.isa" decision label and the "simd.width"
/// high-water counter into the PR 5 registry, so the ISA a trial ran
/// with lands in every CSV/journal row (variant suffix "_avx2" etc.).
///
/// Software prefetch: the gather-heavy streams (factor rows selected by
/// non-zero indices, TTV vector gathers) issue __builtin_prefetch
/// `prefetch_distance()` non-zeros ahead; the distance is tunable via
/// $PASTA_SIMD_PREFETCH (default 8, 0 disables) and kernels report the
/// issued prefetches under the "simd.prefetch" counter.
#pragma once

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "common/types.hpp"
#include "obs/counters.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define PASTA_SIMD_X86 1
#else
#define PASTA_SIMD_X86 0
#endif

namespace pasta::simd {

/// Instruction-set level of a micro-kernel implementation.
enum class Isa { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

inline const char*
isa_name(Isa isa)
{
    switch (isa) {
      case Isa::kScalar:
        return "scalar";
      case Isa::kAvx2:
        return "avx2";
      case Isa::kAvx512:
        return "avx512";
    }
    return "?";
}

/// Value lanes per vector register (Value = float).
inline Size
isa_lanes(Isa isa)
{
    switch (isa) {
      case Isa::kScalar:
        return 1;
      case Isa::kAvx2:
        return 8;
      case Isa::kAvx512:
        return 16;
    }
    return 1;
}

/// True when the running CPU can execute `isa`.  Scalar always can.
inline bool
isa_supported(Isa isa)
{
#if PASTA_SIMD_X86
    if (isa == Isa::kAvx2)
        return __builtin_cpu_supports("avx2");
    if (isa == Isa::kAvx512)
        // avx512f covers every intrinsic the micro-kernels use
        // (512-bit fp math + masked loads/stores).
        return __builtin_cpu_supports("avx512f");
    return true;
#else
    return isa == Isa::kScalar;
#endif
}

/// Widest ISA the CPU supports.
inline Isa
best_supported_isa()
{
    if (isa_supported(Isa::kAvx512))
        return Isa::kAvx512;
    if (isa_supported(Isa::kAvx2))
        return Isa::kAvx2;
    return Isa::kScalar;
}

/// Parses one PASTA_SIMD value ("auto"/""/null = auto-detect).  Throws
/// PastaError for unknown names and for ISAs the CPU cannot execute.
inline Isa
parse_isa(const char* text)
{
    if (text == nullptr || *text == '\0' ||
        std::strcmp(text, "auto") == 0)
        return best_supported_isa();
    Isa isa;
    if (std::strcmp(text, "scalar") == 0)
        isa = Isa::kScalar;
    else if (std::strcmp(text, "avx2") == 0)
        isa = Isa::kAvx2;
    else if (std::strcmp(text, "avx512") == 0)
        isa = Isa::kAvx512;
    else
        PASTA_CHECK_MSG(false, "PASTA_SIMD='" << text
                                              << "' is not one of "
                                                 "auto|avx512|avx2|scalar");
    PASTA_CHECK_MSG(isa_supported(isa),
                    "PASTA_SIMD=" << isa_name(isa)
                                  << " requested but this CPU does not "
                                     "support it");
    return isa;
}

namespace detail {
// -1 = not yet resolved; otherwise static_cast<int>(Isa).
inline std::atomic<int> g_isa{-1};
inline std::atomic<long> g_prefetch{-1};
}  // namespace detail

/// The process-wide active ISA: resolved from $PASTA_SIMD + cpuid on
/// first use, then cached.  Kernels read it once per invocation and pass
/// it down into their inner loops.
inline Isa
active_isa()
{
    int v = detail::g_isa.load(std::memory_order_relaxed);
    if (v < 0) {
        const Isa resolved = parse_isa(std::getenv("PASTA_SIMD"));
        v = static_cast<int>(resolved);
        detail::g_isa.store(v, std::memory_order_relaxed);
    }
    return static_cast<Isa>(v);
}

/// Overrides the active ISA (tests, BM_RankLoop forced-dispatch sweeps).
/// The override must be executable on this CPU.
inline void
set_isa(Isa isa)
{
    PASTA_CHECK_MSG(isa_supported(isa),
                    "set_isa(" << isa_name(isa)
                               << "): unsupported on this CPU");
    detail::g_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
}

/// Forgets the cached ISA so the next active_isa() re-reads PASTA_SIMD
/// (tests that exercise the env parsing).
inline void
reset_isa_cache()
{
    detail::g_isa.store(-1, std::memory_order_relaxed);
}

/// How many non-zeros ahead the gather-heavy kernels prefetch factor
/// rows / vector entries ($PASTA_SIMD_PREFETCH, default 8; 0 disables).
inline Size
prefetch_distance()
{
    long v = detail::g_prefetch.load(std::memory_order_relaxed);
    if (v < 0) {
        const char* s = std::getenv("PASTA_SIMD_PREFETCH");
        if (s == nullptr || *s == '\0') {
            v = 8;
        } else {
            char* end = nullptr;
            v = std::strtol(s, &end, 10);
            PASTA_CHECK_MSG(end != s && *end == '\0' && v >= 0 &&
                                v <= 4096,
                            "PASTA_SIMD_PREFETCH='"
                                << s
                                << "' is not an integer in [0, 4096]");
        }
        detail::g_prefetch.store(v, std::memory_order_relaxed);
    }
    return static_cast<Size>(v);
}

/// Override + cache-reset for tests.
inline void
set_prefetch_distance(Size d)
{
    detail::g_prefetch.store(static_cast<long>(d),
                             std::memory_order_relaxed);
}

inline void
reset_prefetch_cache()
{
    detail::g_prefetch.store(-1, std::memory_order_relaxed);
}

/// Issues a read prefetch for the cache line at `p` (no-op target hint
/// on ISAs without one; compiles to prefetcht0 on x86).
inline void
prefetch_read(const void* p)
{
    __builtin_prefetch(p, 0, 3);
}

/// Stamps the active SIMD path into the counter registry: the
/// "simd.isa" decision label (the bench harness appends it to the trial
/// variant, e.g. "atomic_avx2") and the "simd.width" high-water lanes
/// counter.  Call once per kernel invocation; gated like all counters.
inline Isa
note_kernel()
{
    const Isa isa = active_isa();
    if (obs::counters_enabled()) {
        obs::set_label("simd.isa", isa_name(isa));
        obs::record_max("simd.width", isa_lanes(isa));
    }
    return isa;
}

}  // namespace pasta::simd
