#include "harness/lease.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/fsutil.hpp"
#include "common/log.hpp"

namespace pasta::harness {

namespace {

double
now_wall_seconds()
{
    return std::chrono::duration<double>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

}  // namespace

std::string
lease_path(const std::string& dir, const std::string& shard)
{
    return dir + "/" + shard + ".lease";
}

bool
read_lease(const std::string& path, LeaseInfo& info)
{
    struct stat st {};
    if (::stat(path.c_str(), &st) != 0)
        return false;

    FILE* f = std::fopen(path.c_str(), "r");
    if (!f)
        return false;
    char buf[256] = {0};
    const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    buf[n] = '\0';

    long pid = 0;
    if (std::sscanf(buf, "pid %ld", &pid) != 1 || pid <= 0)
        return false;

    info.pid = pid;
    // ESRCH is the only "definitely dead" answer; EPERM means the pid
    // exists but belongs to someone else — treat as alive.
    info.owner_alive = ::kill(static_cast<pid_t>(pid), 0) == 0 ||
                       errno != ESRCH;
    const double mtime = static_cast<double>(st.st_mtime);
    info.age_seconds = now_wall_seconds() - mtime;
    return true;
}

bool
lease_stale(const LeaseInfo& info, double ttl_seconds)
{
    return !info.owner_alive || info.age_seconds > ttl_seconds;
}

namespace {

/// Removes a stale lease with rename-aside arbitration.  Returns true
/// when this caller (not a racer) removed it.
bool
reap_stale(const std::string& path)
{
    const std::string aside =
        path + ".reap." + std::to_string(::getpid());
    if (std::rename(path.c_str(), aside.c_str()) != 0)
        return false;  // a racing reclaimer won
    ::unlink(aside.c_str());
    fsutil::fsync_parent_dir(path);
    return true;
}

}  // namespace

bool
try_claim_lease(const std::string& dir, const std::string& shard,
                double ttl_seconds)
{
    const std::string path = lease_path(dir, shard);
    for (int attempt = 0; attempt < 2; ++attempt) {
        const int fd = ::open(path.c_str(),
                              O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC,
                              0644);
        if (fd >= 0) {
            char record[128];
            const int len = std::snprintf(
                record, sizeof(record), "pid %ld\nclaimed %.3f\n",
                static_cast<long>(::getpid()), now_wall_seconds());
            ssize_t written = 0;
            if (len > 0)
                written = ::write(fd, record, static_cast<size_t>(len));
            const bool ok = written == len && fsutil::fsync_fd(fd);
            ::close(fd);
            if (!ok) {
                // A claim that cannot be recorded durably is no claim:
                // a crash would leave an unreadable lease that blocks
                // the shard until TTL expiry.
                ::unlink(path.c_str());
                PASTA_LOG_WARN << "lease " << path
                               << ": claim record write failed";
                return false;
            }
            fsutil::fsync_parent_dir(path);
            return true;
        }
        if (errno != EEXIST)
            return false;

        LeaseInfo info;
        if (read_lease(path, info) && !lease_stale(info, ttl_seconds))
            return false;  // live owner
        // Stale (or unreadable — a crashed claim): reap and retry the
        // O_EXCL create once.  Losing the reap race means someone else
        // is mid-claim; let them have it.
        if (!reap_stale(path))
            return false;
    }
    return false;
}

void
release_lease(const std::string& dir, const std::string& shard)
{
    const std::string path = lease_path(dir, shard);
    if (::unlink(path.c_str()) == 0)
        fsutil::fsync_parent_dir(path);
}

void
refresh_lease(const std::string& dir, const std::string& shard)
{
    // futimens(NULL) = set both timestamps to now.
    const std::string path = lease_path(dir, shard);
    const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
    if (fd < 0)
        return;
    ::futimens(fd, nullptr);
    ::close(fd);
}

bool
reclaim_lease_if_stale(const std::string& dir, const std::string& shard,
                       double ttl_seconds)
{
    const std::string path = lease_path(dir, shard);
    LeaseInfo info;
    if (!read_lease(path, info))
        return false;
    if (!lease_stale(info, ttl_seconds))
        return false;
    return reap_stale(path);
}

}  // namespace pasta::harness
