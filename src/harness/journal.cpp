#include "harness/journal.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/log.hpp"

namespace pasta::harness {

namespace {

/// Minimal JSON string escaping; tensor ids and error strings are ASCII
/// but error messages can contain quotes/backslashes from paths.
std::string
escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/// Pull-parser over one flat JSON object line.  Only what the journal
/// emits is supported: string, number, and bool values.
class FlatJsonReader {
  public:
    explicit FlatJsonReader(const std::string& text) : text_(text) {}

    bool parse(std::map<std::string, std::string>& strings,
               std::map<std::string, double>& numbers,
               std::map<std::string, bool>& bools)
    {
        skip_ws();
        if (!consume('{'))
            return false;
        skip_ws();
        if (consume('}'))
            return at_end();
        for (;;) {
            std::string k;
            if (!parse_string(k))
                return false;
            skip_ws();
            if (!consume(':'))
                return false;
            skip_ws();
            if (peek() == '"') {
                std::string v;
                if (!parse_string(v))
                    return false;
                strings[k] = v;
            } else if (text_.compare(pos_, 4, "true") == 0) {
                bools[k] = true;
                pos_ += 4;
            } else if (text_.compare(pos_, 5, "false") == 0) {
                bools[k] = false;
                pos_ += 5;
            } else {
                char* end = nullptr;
                const double v = std::strtod(text_.c_str() + pos_, &end);
                if (end == text_.c_str() + pos_)
                    return false;
                numbers[k] = v;
                pos_ = static_cast<std::size_t>(end - text_.c_str());
            }
            skip_ws();
            if (consume(','))
                skip_ws();
            else
                break;
        }
        if (!consume('}'))
            return false;
        return at_end();
    }

  private:
    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    bool consume(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    void skip_ws()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool at_end()
    {
        skip_ws();
        return pos_ == text_.size();
    }

    bool parse_string(std::string& out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return false;
                const char e = text_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        return false;
                    unsigned v = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        v <<= 4;
                        if (h >= '0' && h <= '9')
                            v |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            v |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            v |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return false;
                    }
                    out += static_cast<char>(v & 0x7F);
                    break;
                  }
                  default: return false;
                }
            } else {
                out += c;
            }
        }
        return false;  // unterminated (torn line)
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace

std::string
to_json_line(const JournalEntry& entry)
{
    std::ostringstream oss;
    oss.precision(17);
    oss << "{\"tensor\":\"" << escape(entry.tensor_id) << "\""
        << ",\"kernel\":\"" << escape(entry.kernel) << "\""
        << ",\"format\":\"" << escape(entry.format) << "\""
        << ",\"ok\":" << (entry.ok ? "true" : "false")
        << ",\"seconds\":" << entry.seconds << ",\"flops\":" << entry.flops
        << ",\"bytes\":" << entry.bytes << ",\"attempts\":" << entry.attempts
        << ",\"error\":\"" << escape(entry.error) << "\""
        << ",\"class\":\"" << escape(entry.failure_class) << "\""
        << ",\"variant\":\"" << escape(entry.variant) << "\""
        << ",\"obs_flops\":" << entry.obs_flops
        << ",\"obs_bytes\":" << entry.obs_bytes
        << ",\"mem_peak\":" << entry.mem_peak
        << ",\"partitions_done\":" << entry.partitions_done
        << ",\"partitions_total\":" << entry.partitions_total << "}";
    return oss.str();
}

bool
parse_json_line(const std::string& line, JournalEntry& entry)
{
    std::map<std::string, std::string> strings;
    std::map<std::string, double> numbers;
    std::map<std::string, bool> bools;
    FlatJsonReader reader(line);
    if (!reader.parse(strings, numbers, bools))
        return false;
    if (!strings.count("tensor") || !strings.count("kernel") ||
        !strings.count("format") || !bools.count("ok"))
        return false;
    entry.tensor_id = strings["tensor"];
    entry.kernel = strings["kernel"];
    entry.format = strings["format"];
    entry.ok = bools["ok"];
    entry.seconds = numbers.count("seconds") ? numbers["seconds"] : 0.0;
    entry.flops = numbers.count("flops") ? numbers["flops"] : 0.0;
    entry.bytes = numbers.count("bytes") ? numbers["bytes"] : 0.0;
    entry.attempts =
        numbers.count("attempts") ? static_cast<int>(numbers["attempts"]) : 0;
    entry.error = strings.count("error") ? strings["error"] : "";
    entry.failure_class = strings.count("class") ? strings["class"] : "";
    entry.variant = strings.count("variant") ? strings["variant"] : "";
    entry.obs_flops = numbers.count("obs_flops") ? numbers["obs_flops"] : 0.0;
    entry.obs_bytes = numbers.count("obs_bytes") ? numbers["obs_bytes"] : 0.0;
    entry.mem_peak = numbers.count("mem_peak") ? numbers["mem_peak"] : 0.0;
    entry.partitions_done =
        numbers.count("partitions_done")
            ? static_cast<int>(numbers["partitions_done"])
            : 0;
    entry.partitions_total =
        numbers.count("partitions_total")
            ? static_cast<int>(numbers["partitions_total"])
            : 0;
    return true;
}

RunJournal::RunJournal(std::string path) : path_(std::move(path))
{
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path parent = fs::path(path_).parent_path();
    if (!parent.empty())
        fs::create_directories(parent, ec);

    std::ifstream in(path_);
    if (!in.good())
        return;  // fresh journal
    std::string line;
    std::size_t line_no = 0;
    std::size_t torn = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        JournalEntry entry;
        if (!parse_json_line(line, entry)) {
            ++torn;
            PASTA_LOG_WARN << "journal " << path_ << ": skipping "
                           << "unparsable line " << line_no
                           << " (torn write from a killed run?)";
            continue;
        }
        entries_[key(entry.tensor_id, entry.kernel, entry.format)] = entry;
    }
    if (!entries_.empty()) {
        PASTA_LOG_INFO << "journal " << path_ << ": replayed "
                       << entries_.size() << " trial(s)"
                       << (torn ? " (torn lines skipped)" : "");
    }
}

std::string
RunJournal::key(const std::string& tensor_id, const std::string& kernel,
                const std::string& format)
{
    return tensor_id + "\x1f" + kernel + "\x1f" + format;
}

const JournalEntry*
RunJournal::find(const std::string& tensor_id, const std::string& kernel,
                 const std::string& format) const
{
    auto it = entries_.find(key(tensor_id, kernel, format));
    return it == entries_.end() ? nullptr : &it->second;
}

bool
RunJournal::has_ok(const std::string& tensor_id, const std::string& kernel,
                   const std::string& format) const
{
    const JournalEntry* entry = find(tensor_id, kernel, format);
    return entry && entry->ok;
}

void
RunJournal::append(const JournalEntry& entry)
{
    if (!enabled())
        return;
    entries_[key(entry.tensor_id, entry.kernel, entry.format)] = entry;
    std::ofstream out(path_, std::ios::app);
    if (!out.good()) {
        PASTA_LOG_WARN << "journal " << path_ << ": cannot append";
        return;
    }
    out << to_json_line(entry) << "\n";
    out.flush();
}

}  // namespace pasta::harness
