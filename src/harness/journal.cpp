#include "harness/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/fsutil.hpp"
#include "common/log.hpp"

namespace pasta::harness {

namespace {

/// Minimal JSON string escaping; tensor ids and error strings are ASCII
/// but error messages can contain quotes/backslashes from paths.
std::string
escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/// Pull-parser over one flat JSON object line.  Only what the journal
/// emits is supported: string, number, and bool values.
class FlatJsonReader {
  public:
    explicit FlatJsonReader(const std::string& text) : text_(text) {}

    bool parse(std::map<std::string, std::string>& strings,
               std::map<std::string, double>& numbers,
               std::map<std::string, bool>& bools)
    {
        skip_ws();
        if (!consume('{'))
            return false;
        skip_ws();
        if (consume('}'))
            return at_end();
        for (;;) {
            std::string k;
            if (!parse_string(k))
                return false;
            skip_ws();
            if (!consume(':'))
                return false;
            skip_ws();
            if (peek() == '"') {
                std::string v;
                if (!parse_string(v))
                    return false;
                strings[k] = v;
            } else if (text_.compare(pos_, 4, "true") == 0) {
                bools[k] = true;
                pos_ += 4;
            } else if (text_.compare(pos_, 5, "false") == 0) {
                bools[k] = false;
                pos_ += 5;
            } else {
                char* end = nullptr;
                const double v = std::strtod(text_.c_str() + pos_, &end);
                if (end == text_.c_str() + pos_)
                    return false;
                numbers[k] = v;
                pos_ = static_cast<std::size_t>(end - text_.c_str());
            }
            skip_ws();
            if (consume(','))
                skip_ws();
            else
                break;
        }
        if (!consume('}'))
            return false;
        return at_end();
    }

  private:
    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    bool consume(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    void skip_ws()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool at_end()
    {
        skip_ws();
        return pos_ == text_.size();
    }

    bool parse_string(std::string& out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return false;
                const char e = text_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        return false;
                    unsigned v = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        v <<= 4;
                        if (h >= '0' && h <= '9')
                            v |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            v |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            v |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return false;
                    }
                    out += static_cast<char>(v & 0x7F);
                    break;
                  }
                  default: return false;
                }
            } else {
                out += c;
            }
        }
        return false;  // unterminated (torn line)
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace

std::string
to_json_line(const JournalEntry& entry)
{
    std::ostringstream oss;
    oss.precision(17);
    oss << "{\"tensor\":\"" << escape(entry.tensor_id) << "\""
        << ",\"kernel\":\"" << escape(entry.kernel) << "\""
        << ",\"format\":\"" << escape(entry.format) << "\""
        << ",\"ok\":" << (entry.ok ? "true" : "false")
        << ",\"seconds\":" << entry.seconds << ",\"flops\":" << entry.flops
        << ",\"bytes\":" << entry.bytes << ",\"attempts\":" << entry.attempts
        << ",\"error\":\"" << escape(entry.error) << "\""
        << ",\"class\":\"" << escape(entry.failure_class) << "\""
        << ",\"variant\":\"" << escape(entry.variant) << "\""
        << ",\"obs_flops\":" << entry.obs_flops
        << ",\"obs_bytes\":" << entry.obs_bytes
        << ",\"mem_peak\":" << entry.mem_peak
        << ",\"partitions_done\":" << entry.partitions_done
        << ",\"partitions_total\":" << entry.partitions_total;
    // Optional field: omitted when empty so unsharded journal lines stay
    // byte-identical to pre-campaign ones.
    if (!entry.shard.empty())
        oss << ",\"shard\":\"" << escape(entry.shard) << "\"";
    oss << "}";
    return oss.str();
}

bool
parse_json_line(const std::string& line, JournalEntry& entry)
{
    std::map<std::string, std::string> strings;
    std::map<std::string, double> numbers;
    std::map<std::string, bool> bools;
    FlatJsonReader reader(line);
    if (!reader.parse(strings, numbers, bools))
        return false;
    if (!strings.count("tensor") || !strings.count("kernel") ||
        !strings.count("format") || !bools.count("ok"))
        return false;
    entry.tensor_id = strings["tensor"];
    entry.kernel = strings["kernel"];
    entry.format = strings["format"];
    entry.ok = bools["ok"];
    entry.seconds = numbers.count("seconds") ? numbers["seconds"] : 0.0;
    entry.flops = numbers.count("flops") ? numbers["flops"] : 0.0;
    entry.bytes = numbers.count("bytes") ? numbers["bytes"] : 0.0;
    entry.attempts =
        numbers.count("attempts") ? static_cast<int>(numbers["attempts"]) : 0;
    entry.error = strings.count("error") ? strings["error"] : "";
    entry.failure_class = strings.count("class") ? strings["class"] : "";
    entry.variant = strings.count("variant") ? strings["variant"] : "";
    entry.obs_flops = numbers.count("obs_flops") ? numbers["obs_flops"] : 0.0;
    entry.obs_bytes = numbers.count("obs_bytes") ? numbers["obs_bytes"] : 0.0;
    entry.mem_peak = numbers.count("mem_peak") ? numbers["mem_peak"] : 0.0;
    entry.partitions_done =
        numbers.count("partitions_done")
            ? static_cast<int>(numbers["partitions_done"])
            : 0;
    entry.partitions_total =
        numbers.count("partitions_total")
            ? static_cast<int>(numbers["partitions_total"])
            : 0;
    entry.shard = strings.count("shard") ? strings["shard"] : "";
    return true;
}

namespace {

/// $PASTA_JOURNAL_FSYNC: fsync every Nth append (default 1 = every
/// line); 0 disables the fsync (write + close durability only).
int
fsync_batch_from_env()
{
    const char* s = std::getenv("PASTA_JOURNAL_FSYNC");
    if (!s || !*s)
        return 1;
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    PASTA_CHECK_MSG(*end == '\0' && v >= 0 && v <= 1000000,
                    "PASTA_JOURNAL_FSYNC='"
                        << s << "' must be an integer in [0, 1000000]");
    return static_cast<int>(v);
}

}  // namespace

RunJournal::RunJournal(std::string path)
    : path_(std::move(path)), fsync_batch_(fsync_batch_from_env())
{
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path parent = fs::path(path_).parent_path();
    if (!parent.empty())
        fs::create_directories(parent, ec);

    // Replay with manual line splitting so the byte offset of the last
    // intact line is known: a torn final line (no terminating newline,
    // or unparsable — the SIGKILL-mid-append case) is *truncated off*
    // so the resumed run appends from a clean line boundary.
    std::string text;
    {
        std::ifstream in(path_, std::ios::binary);
        if (!in.good())
            return;  // fresh journal
        std::ostringstream buf;
        buf << in.rdbuf();
        text = buf.str();
    }
    std::size_t line_no = 0;
    std::size_t torn = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        const bool terminated = nl != std::string::npos;
        if (!terminated)
            nl = text.size();
        const std::string line = text.substr(pos, nl - pos);
        const std::size_t line_start = pos;
        pos = terminated ? nl + 1 : text.size();
        ++line_no;
        if (line.empty())
            continue;
        JournalEntry entry;
        const bool parsed = parse_json_line(line, entry);
        if (parsed && terminated) {
            entries_[key(entry.tensor_id, entry.kernel, entry.format,
                         entry.shard)] = entry;
            continue;
        }
        if (pos >= text.size()) {
            // Torn final line: drop it from the file so the next append
            // starts a fresh line instead of gluing onto the fragment.
            PASTA_LOG_WARN << "journal " << path_
                           << ": truncating torn final line " << line_no
                           << " (" << text.size() - line_start
                           << " byte(s) from a killed writer)";
            fs::resize_file(path_, line_start, ec);
            if (ec)
                PASTA_LOG_WARN << "journal " << path_
                               << ": truncation failed: " << ec.message();
            else
                fsutil::fsync_path(path_);
            break;
        }
        ++torn;
        PASTA_LOG_WARN << "journal " << path_ << ": skipping "
                       << "unparsable line " << line_no
                       << " (torn write from a killed run?)";
    }
    if (!entries_.empty()) {
        PASTA_LOG_INFO << "journal " << path_ << ": replayed "
                       << entries_.size() << " trial(s)"
                       << (torn ? " (torn lines skipped)" : "");
    }
}

RunJournal::RunJournal(RunJournal&& other) noexcept
    : path_(std::move(other.path_)),
      entries_(std::move(other.entries_)),
      fd_(other.fd_),
      fsync_batch_(other.fsync_batch_),
      unsynced_(other.unsynced_)
{
    other.fd_ = -1;
    other.path_.clear();
    other.unsynced_ = 0;
}

RunJournal&
RunJournal::operator=(RunJournal&& other) noexcept
{
    if (this != &other) {
        close_fd();
        path_ = std::move(other.path_);
        entries_ = std::move(other.entries_);
        fd_ = other.fd_;
        fsync_batch_ = other.fsync_batch_;
        unsynced_ = other.unsynced_;
        other.fd_ = -1;
        other.path_.clear();
        other.unsynced_ = 0;
    }
    return *this;
}

RunJournal::~RunJournal() { close_fd(); }

void
RunJournal::close_fd()
{
    if (fd_ >= 0) {
        if (unsynced_ > 0)
            fsutil::fsync_fd(fd_);
        ::close(fd_);
        fd_ = -1;
        unsynced_ = 0;
    }
}

std::string
RunJournal::key(const std::string& tensor_id, const std::string& kernel,
                const std::string& format, const std::string& shard)
{
    return tensor_id + "\x1f" + kernel + "\x1f" + format + "\x1f" + shard;
}

const JournalEntry*
RunJournal::find(const std::string& tensor_id, const std::string& kernel,
                 const std::string& format,
                 const std::string& shard) const
{
    auto it = entries_.find(key(tensor_id, kernel, format, shard));
    return it == entries_.end() ? nullptr : &it->second;
}

bool
RunJournal::has_ok(const std::string& tensor_id, const std::string& kernel,
                   const std::string& format,
                   const std::string& shard) const
{
    const JournalEntry* entry = find(tensor_id, kernel, format, shard);
    return entry && entry->ok;
}

void
RunJournal::append(const JournalEntry& entry)
{
    if (!enabled())
        return;
    entries_[key(entry.tensor_id, entry.kernel, entry.format,
                 entry.shard)] = entry;
    if (fd_ < 0) {
        fd_ = ::open(path_.c_str(),
                     O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
        if (fd_ < 0) {
            PASTA_LOG_WARN << "journal " << path_ << ": cannot append";
            return;
        }
    }
    // One write() per line: O_APPEND makes the line land atomically at
    // the end even when several shard writers share a file by mistake.
    const std::string line = to_json_line(entry) + "\n";
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n = ::write(fd_, line.data() + off,
                                  line.size() - off);
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0) {
            PASTA_LOG_WARN << "journal " << path_ << ": append failed";
            return;
        }
        off += static_cast<std::size_t>(n);
    }
    ++unsynced_;
    if (fsync_batch_ > 0 && unsynced_ >= fsync_batch_) {
        fsutil::fsync_fd(fd_);
        unsynced_ = 0;
    }
}

void
RunJournal::flush()
{
    if (fd_ >= 0 && unsynced_ > 0) {
        fsutil::fsync_fd(fd_);
        unsynced_ = 0;
    }
}

}  // namespace pasta::harness
