#include "harness/fault.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"

namespace pasta::harness {

namespace {

/// SplitMix64: tiny, seedable, and good enough for fire/no-fire draws.
std::uint64_t
splitmix64(std::uint64_t& state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

double
uniform01(std::uint64_t& state)
{
    return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

FaultAction
parse_action(const std::string& name, const std::string& rule)
{
    if (name == "throw")
        return FaultAction::kThrow;
    if (name == "oom")
        return FaultAction::kOom;
    if (name == "hang")
        return FaultAction::kHang;
    throw PastaError("fault spec: unknown action '" + name + "' in rule '" +
                     rule + "' (expected throw|oom|hang)");
}

}  // namespace

const std::vector<std::string>&
known_fault_points()
{
    static const std::vector<std::string> points = {
        "io.read", "cache.load", "alloc", "kernel.run",
        "mem.reserve", "io.mmap", "proc.spawn"};
    return points;
}

FaultSpec
parse_fault_spec(const std::string& spec)
{
    FaultSpec parsed;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string rule = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (rule.empty()) {
            if (spec.empty())
                break;
            throw PastaError("fault spec: empty rule in '" + spec + "'");
        }

        FaultRule r;
        // Optional trailing @N hit trigger.
        const std::size_t atp = rule.find('@');
        if (atp != std::string::npos) {
            const std::string n = rule.substr(atp + 1);
            char* end = nullptr;
            r.at = std::strtoull(n.c_str(), &end, 10);
            if (n.empty() || *end != '\0' || r.at == 0)
                throw PastaError("fault spec: bad hit index '@" + n +
                                 "' in rule '" + rule + "'");
            rule.erase(atp);
        }

        const std::size_t c1 = rule.find(':');
        if (c1 == std::string::npos)
            throw PastaError("fault spec: rule '" + rule +
                             "' lacks an action (point:action[:p][@N])");
        r.point = rule.substr(0, c1);
        bool known = false;
        for (const auto& p : known_fault_points())
            known = known || p == r.point;
        if (!known)
            throw PastaError("fault spec: unknown injection point '" +
                             r.point + "' in rule '" + rule + "'");

        const std::size_t c2 = rule.find(':', c1 + 1);
        r.action = parse_action(
            rule.substr(c1 + 1, c2 == std::string::npos ? std::string::npos
                                                        : c2 - c1 - 1),
            rule);
        if (c2 != std::string::npos) {
            const std::string p = rule.substr(c2 + 1);
            char* end = nullptr;
            r.probability = std::strtod(p.c_str(), &end);
            if (p.empty() || *end != '\0' || !(r.probability >= 0.0) ||
                r.probability > 1.0)
                throw PastaError("fault spec: probability '" + p +
                                 "' in rule '" + rule +
                                 "' must be in [0, 1]");
        }
        parsed.rules.push_back(std::move(r));
    }
    return parsed;
}

struct FaultInjector::Impl {
    mutable std::mutex mutex;
    std::atomic<bool> enabled{false};
    std::map<std::string, std::vector<FaultRule>> rules;
    std::map<std::string, std::uint64_t> counters;
    std::uint64_t rng_state = 42;
};

FaultInjector::Impl&
FaultInjector::impl() const
{
    static Impl impl;
    return impl;
}

FaultInjector&
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::configure(const FaultSpec& spec, std::uint64_t seed)
{
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    im.rules.clear();
    im.counters.clear();
    im.rng_state = seed;
    for (const auto& rule : spec.rules)
        im.rules[rule.point].push_back(rule);
    im.enabled.store(!im.rules.empty(), std::memory_order_release);
}

void
FaultInjector::configure_from_env()
{
    const char* spec = std::getenv("PASTA_FAULT");
    if (!spec || !*spec)
        return;
    FaultSpec parsed = parse_fault_spec(spec);
    double hang_s = 30.0;
    if (const char* h = std::getenv("PASTA_FAULT_HANG_S")) {
        char* end = nullptr;
        const double v = std::strtod(h, &end);
        if (*h && *end == '\0' && v > 0)
            hang_s = v;
    }
    for (auto& rule : parsed.rules)
        rule.hang_seconds = hang_s;
    std::uint64_t seed = 42;
    if (const char* s = std::getenv("PASTA_FAULT_SEED"))
        seed = std::strtoull(s, nullptr, 10);
    configure(parsed, seed);
    PASTA_LOG_WARN << "fault injection armed: PASTA_FAULT=" << spec
                   << " (seed " << seed << ")";
}

void
FaultInjector::clear()
{
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    im.rules.clear();
    im.counters.clear();
    im.enabled.store(false, std::memory_order_release);
}

bool
FaultInjector::enabled() const
{
    return impl().enabled.load(std::memory_order_acquire);
}

void
FaultInjector::hit(const char* point)
{
    Impl& im = impl();
    FaultAction action{};
    double hang_seconds = 0;
    bool fire = false;
    {
        std::lock_guard<std::mutex> lock(im.mutex);
        const std::uint64_t count = ++im.counters[point];
        auto it = im.rules.find(point);
        if (it == im.rules.end())
            return;
        for (const auto& rule : it->second) {
            if (rule.at != 0 ? count == rule.at
                             : uniform01(im.rng_state) < rule.probability) {
                fire = true;
                action = rule.action;
                hang_seconds = rule.hang_seconds;
                break;
            }
        }
    }
    if (!fire)
        return;
    switch (action) {
      case FaultAction::kThrow:
        PASTA_LOG_WARN << "fault injection: throwing at " << point;
        throw PastaError(std::string("injected fault at ") + point);
      case FaultAction::kOom:
        PASTA_LOG_WARN << "fault injection: OOM at " << point;
        throw std::bad_alloc();
      case FaultAction::kHang: {
        PASTA_LOG_WARN << "fault injection: hanging " << hang_seconds
                       << " s at " << point;
        // Sleep in short slices against a monotonic deadline so a huge
        // hang cannot oversleep from wall-clock adjustments.
        Deadline deadline(hang_seconds);
        while (!deadline.expired())
            std::this_thread::sleep_for(std::chrono::milliseconds(
                static_cast<long>(
                    std::min(0.05, deadline.remaining_seconds()) * 1000) +
                1));
        break;
      }
    }
}

std::uint64_t
FaultInjector::hits(const std::string& point) const
{
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    auto it = im.counters.find(point);
    return it == im.counters.end() ? 0 : it->second;
}

}  // namespace pasta::harness
