#include "harness/trial.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/membudget.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "validate/validate.hpp"

namespace pasta::harness {

namespace {

double
env_double(const char* name, double fallback, double lo, double hi)
{
    const char* s = std::getenv(name);
    if (!s || !*s)
        return fallback;
    char* end = nullptr;
    const double v = std::strtod(s, &end);
    PASTA_CHECK_MSG(*end == '\0' && v >= lo && v <= hi,
                    name << "='" << s << "' must be a number in [" << lo
                         << ", " << hi << "]");
    return v;
}

long
env_long(const char* name, long fallback, long lo, long hi)
{
    const char* s = std::getenv(name);
    if (!s || !*s)
        return fallback;
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    PASTA_CHECK_MSG(*end == '\0' && v >= lo && v <= hi,
                    name << "='" << s << "' must be an integer in [" << lo
                         << ", " << hi << "]");
    return v;
}

/// Shared between the watchdog owner and a (possibly abandoned) worker.
struct AttemptState {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;
    bool validation = false;
    bool oom = false;
    double seconds = 0.0;
    std::string error;

    void finish(bool is_ok, double secs, std::string err,
                bool is_validation = false, bool is_oom = false)
    {
        std::lock_guard<std::mutex> lock(mutex);
        done = true;
        ok = is_ok;
        validation = is_validation;
        oom = is_oom;
        seconds = secs;
        error = std::move(err);
        cv.notify_all();
    }

    bool wait_for(double timeout_seconds)
    {
        std::unique_lock<std::mutex> lock(mutex);
        return cv.wait_for(lock,
                           std::chrono::duration<double>(timeout_seconds),
                           [this] { return done; });
    }
};

/// One attempt of the body, inline or under a watchdog thread.
/// Returns false when the watchdog abandoned the attempt.
/// HostOomError must be caught before PastaError (it derives from it) in
/// both attempt paths, or the degradable class would be misfiled as a
/// plain error and the retry would never arm degraded mode.
bool
run_attempt(const std::function<double()>& body, double timeout_seconds,
            bool& ok, bool& validation, bool& oom, double& seconds,
            std::string& error)
{
    if (timeout_seconds <= 0) {
        try {
            seconds = body();
            ok = true;
        } catch (const validate::ValidationError& e) {
            ok = false;
            validation = true;
            error = e.what();
        } catch (const membudget::HostOomError& e) {
            ok = false;
            oom = true;
            error = e.what();
        } catch (const PastaError& e) {
            ok = false;
            error = e.what();
        } catch (const std::bad_alloc&) {
            ok = false;
            oom = true;
            error = "out of memory (std::bad_alloc)";
        } catch (const std::exception& e) {
            ok = false;
            error = e.what();
        }
        return true;
    }

    auto state = std::make_shared<AttemptState>();
    std::thread worker([state, body] {
        try {
            const double s = body();
            state->finish(true, s, {});
        } catch (const validate::ValidationError& e) {
            state->finish(false, 0, e.what(), true);
        } catch (const membudget::HostOomError& e) {
            state->finish(false, 0, e.what(), false, true);
        } catch (const PastaError& e) {
            state->finish(false, 0, e.what());
        } catch (const std::bad_alloc&) {
            state->finish(false, 0, "out of memory (std::bad_alloc)",
                          false, true);
        } catch (const std::exception& e) {
            state->finish(false, 0, e.what());
        } catch (...) {
            state->finish(false, 0, "unknown exception");
        }
    });
    if (!state->wait_for(timeout_seconds)) {
        // Abandon: the worker keeps `state` (and the body's captures)
        // alive via shared_ptr; nothing here is touched again.
        worker.detach();
        return false;
    }
    worker.join();
    std::lock_guard<std::mutex> lock(state->mutex);
    ok = state->ok;
    validation = state->validation;
    oom = state->oom;
    seconds = state->seconds;
    error = state->error;
    return true;
}

}  // namespace

TrialPolicy
TrialPolicy::from_env()
{
    TrialPolicy policy;
    policy.timeout_seconds =
        env_double("PASTA_TRIAL_TIMEOUT", policy.timeout_seconds, 0, 1e6);
    policy.max_attempts = static_cast<int>(
        env_long("PASTA_TRIAL_RETRIES", policy.max_attempts, 1, 100));
    return policy;
}

TrialResult
run_guarded_trial(const std::string& label,
                  const std::function<double()>& body,
                  const TrialPolicy& policy)
{
    TrialResult result;
    const int max_attempts = policy.max_attempts < 1 ? 1
                                                     : policy.max_attempts;
    double backoff = policy.backoff_initial_s;
    // Each trial decides its own memory routing afresh; a previous
    // trial's OOM degradation must not leak into this one.
    membudget::MemGovernor::instance().set_degraded(false);
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        // One span per attempt, named by the trial: the trace's top-level
        // structure mirrors the journal's (tensor, kernel, format) rows.
        obs::SpanScope span(label);
        result.attempts = attempt;
        bool ok = false;
        bool validation = false;
        bool oom = false;
        double seconds = 0;
        std::string error;
        if (!run_attempt(body, policy.timeout_seconds, ok, validation, oom,
                         seconds, error)) {
            std::ostringstream oss;
            oss << "watchdog timeout after " << policy.timeout_seconds
                << " s";
            result.error = oss.str();
            result.skipped = true;
            result.timed_out = true;
            obs::metrics::counter_add("trial.failed", 1);
            PASTA_LOG_WARN << label << ": " << result.error
                           << "; trial skipped";
            return result;
        }
        if (ok) {
            result.ok = true;
            result.oom = false;
            result.seconds = seconds;
            result.error.clear();
            obs::metrics::counter_add("trial.ok", 1);
            obs::metrics::hist_record(
                "trial.ms",
                static_cast<std::uint64_t>(seconds * 1e3));
            return result;
        }
        result.error = error;
        result.oom = oom;
        if (oom && attempt < max_attempts) {
            // Degradable failure: arm degraded mode so the retry's
            // budget-aware paths pick streaming/smaller chunks instead of
            // walking into the same budget wall.
            membudget::MemGovernor::instance().set_degraded(true);
            PASTA_LOG_WARN << label << ": memory budget exceeded ("
                           << error
                           << "); retrying with streaming/smaller chunks";
        }
        if (validation) {
            // Deterministic wrong answer: retrying re-runs the same
            // kernel on the same data and fails the same check.
            result.skipped = true;
            result.validation = true;
            obs::metrics::counter_add("trial.failed", 1);
            PASTA_LOG_WARN << label << ": validation failure (" << error
                           << "); trial skipped";
            return result;
        }
        if (attempt < max_attempts) {
            PASTA_LOG_WARN << label << ": attempt " << attempt << "/"
                           << max_attempts << " failed (" << error
                           << "); retrying in " << backoff << " s";
            std::this_thread::sleep_for(
                std::chrono::duration<double>(backoff));
            backoff = std::min(backoff * 2, policy.backoff_max_s);
        }
    }
    result.skipped = true;
    obs::metrics::counter_add("trial.failed", 1);
    PASTA_LOG_WARN << label << ": giving up after " << result.attempts
                   << " attempts (" << result.error << ")";
    return result;
}

}  // namespace pasta::harness
