/// \file
/// Deterministic fault injection for the benchmark harness.
///
/// Long suite campaigns fail partially, not atomically: a corrupt cache
/// entry, an OOM during factor allocation, or one hung kernel must not
/// discard hundreds of completed measurements.  Every guard the harness
/// grows (retry, watchdog, cache regeneration) is only trustworthy if it
/// can be exercised, so production code is instrumented with *named
/// injection points* that are zero-cost no-ops unless a fault spec is
/// active:
///
///   io.read     entering a tensor file read (.tns / .pstb)
///   cache.load  entering a .pasta_cache lookup in TensorRegistry
///   alloc       entering large per-tensor allocations (trial context)
///   kernel.run  entering one guarded (tensor, kernel, format) trial
///   mem.reserve entering a memory-governor reservation (membudget)
///   io.mmap     entering a MappedCooTensor mmap open (binary_io)
///   proc.spawn  entering a campaign worker fork/exec (supervisor) —
///               lets the respawn/backoff ladder run without real
///               crashes
///
/// A spec is a comma-separated rule list, configured via $PASTA_FAULT:
///
///   PASTA_FAULT=io.read:throw:0.1,kernel.run:hang@3
///
/// Each rule is `point:action[:probability][@N]`.  Actions: `throw`
/// (PastaError), `oom` (std::bad_alloc), `hang` (sleep past any sane
/// watchdog; duration from $PASTA_FAULT_HANG_S, default 30 s).  A
/// `:p` suffix fires with probability p from a SplitMix64 stream seeded
/// by $PASTA_FAULT_SEED (default 42) — deterministic across reruns —
/// while `@N` fires on exactly the Nth hit of that point.  With neither,
/// the rule always fires.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pasta::harness {

/// What an armed rule does when it fires.
enum class FaultAction { kThrow, kOom, kHang };

/// One parsed injection rule.
struct FaultRule {
    std::string point;
    FaultAction action = FaultAction::kThrow;
    double probability = 1.0;     ///< fire chance per hit (when `at` == 0)
    std::uint64_t at = 0;         ///< 1-based hit index to fire on; 0 = off
    double hang_seconds = 30.0;   ///< sleep length for kHang
};

/// A full spec: zero or more rules over the known injection points.
struct FaultSpec {
    std::vector<FaultRule> rules;
};

/// Parses a `point:action[:p][@N]` rule list.  Throws PastaError on
/// unknown points/actions, malformed probabilities, or empty rules.
FaultSpec parse_fault_spec(const std::string& spec);

/// The names this build instruments; parse_fault_spec rejects others.
const std::vector<std::string>& known_fault_points();

/// Process-wide injector.  Disabled (all points free) until configured.
class FaultInjector {
  public:
    static FaultInjector& instance();

    /// Arms `spec`; the probability stream restarts from `seed`.
    void configure(const FaultSpec& spec, std::uint64_t seed = 42);

    /// Arms from $PASTA_FAULT / $PASTA_FAULT_SEED / $PASTA_FAULT_HANG_S;
    /// no-op when $PASTA_FAULT is unset or empty.
    void configure_from_env();

    /// Disarms everything and zeroes hit counters.
    void clear();

    /// True when at least one rule is armed.
    bool enabled() const;

    /// Registers one arrival at `point`; may throw PastaError or
    /// std::bad_alloc, or sleep (hang), per the armed rules.
    void hit(const char* point);

    /// Arrivals seen at `point` since the last configure/clear.
    std::uint64_t hits(const std::string& point) const;

  private:
    FaultInjector() = default;
    struct Impl;
    Impl& impl() const;
};

/// The instrumentation call production code places at each named point.
/// Zero branch-plus-load cost when no spec is armed.
inline void
fault_point(const char* point)
{
    FaultInjector& injector = FaultInjector::instance();
    if (injector.enabled())
        injector.hit(point);
}

}  // namespace pasta::harness
