#include "harness/campaign.hpp"

#include <csignal>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/fsutil.hpp"
#include "common/log.hpp"
#include "common/membudget.hpp"
#include "harness/fault.hpp"
#include "harness/lease.hpp"
#include "obs/trace.hpp"

namespace pasta::harness {

namespace {

namespace fs = std::filesystem;

/// The same SplitMix64 the PR 1 fault injector draws from — chaos kill
/// selection shares its seed ($PASTA_FAULT_SEED) so a chaos campaign is
/// reproducible alongside an armed fault spec.
std::uint64_t
splitmix64(std::uint64_t& state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

long
env_long(const char* name, long fallback, long lo, long hi)
{
    const char* s = std::getenv(name);
    if (!s || !*s)
        return fallback;
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    PASTA_CHECK_MSG(*end == '\0' && v >= lo && v <= hi,
                    name << "='" << s << "' must be an integer in [" << lo
                         << ", " << hi << "]");
    return v;
}

double
now_wall_seconds()
{
    return std::chrono::duration<double>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

double
now_steady_seconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

// ---- campaign directory layout -------------------------------------

std::string
leases_dir(const std::string& dir)
{
    return dir + "/leases";
}

std::string
done_marker(const std::string& dir, const std::string& shard)
{
    return dir + "/done/" + shard + ".done";
}

std::string
failed_marker(const std::string& dir, const std::string& shard)
{
    return dir + "/failed/" + shard + ".failed";
}

std::string
heartbeat_path(const std::string& dir, long pid)
{
    return dir + "/hb/" + std::to_string(pid) + ".hb";
}

std::string
claim_note_path(const std::string& dir, long pid)
{
    return dir + "/claims/" + std::to_string(pid) + ".shard";
}

std::string
shard_journal_path(const std::string& dir, const std::string& shard)
{
    return dir + "/journal." + shard + ".jsonl";
}

std::string
shard_metrics_path(const std::string& dir, const std::string& shard)
{
    return dir + "/metrics." + shard + ".jsonl";
}

std::string
shard_trace_path(const std::string& dir, const std::string& shard)
{
    return dir + "/trace." + shard + ".json";
}

void
make_campaign_dirs(const std::string& dir)
{
    std::error_code ec;
    for (const char* sub : {"", "/leases", "/done", "/failed", "/hb",
                            "/claims"})
        fs::create_directories(dir + sub, ec);
    PASTA_CHECK_MSG(fs::is_directory(dir),
                    "cannot create campaign dir " << dir);
}

bool
marker_exists(const std::string& path)
{
    std::error_code ec;
    return fs::exists(path, ec);
}

/// Creates/refreshes a zero-length timestamp file (heartbeats).
void
touch_file(const std::string& path)
{
    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0)
        return;
    ::futimens(fd, nullptr);
    ::close(fd);
}

/// Seconds since `path`'s mtime, or a negative value when it is absent.
double
file_age_seconds(const std::string& path)
{
    struct stat st {};
    if (::stat(path.c_str(), &st) != 0)
        return -1.0;
    return now_wall_seconds() - static_cast<double>(st.st_mtime);
}

std::string
read_small_file(const std::string& path)
{
    std::ifstream in(path);
    if (!in.good())
        return {};
    std::string text;
    std::getline(in, text);
    return text;
}

// ---- drain signal plumbing -----------------------------------------

volatile std::sig_atomic_t g_drain_signal = 0;

void
drain_handler(int)
{
    g_drain_signal = 1;
}

}  // namespace

CampaignOptions
CampaignOptions::from_env()
{
    CampaignOptions opts;
    opts.workers =
        static_cast<int>(env_long("PASTA_SHARDS", opts.workers, 1, 256));
    opts.chaos_kills =
        static_cast<int>(env_long("PASTA_CHAOS", 0, 0, 100000));
    if (const char* s = std::getenv("PASTA_FAULT_SEED"))
        opts.chaos_seed = std::strtoull(s, nullptr, 10);
    return opts;
}

const char*
exit_class_name(ExitClass c)
{
    switch (c) {
      case ExitClass::kClean: return "clean";
      case ExitClass::kNoWork: return "no_work";
      case ExitClass::kFailure: return "failure";
      case ExitClass::kOom: return "oom";
      case ExitClass::kSignal: return "signal";
      case ExitClass::kTimeout: return "timeout";
      case ExitClass::kChaos: return "chaos";
    }
    return "?";
}

ExitClass
classify_exit(int wait_status, bool killed_for_timeout,
              bool killed_for_chaos)
{
    if (WIFEXITED(wait_status)) {
        switch (WEXITSTATUS(wait_status)) {
          case kWorkerExitClean: return ExitClass::kClean;
          case kWorkerExitNoWork: return ExitClass::kNoWork;
          case kWorkerExitOom: return ExitClass::kOom;
          default: return ExitClass::kFailure;
        }
    }
    if (WIFSIGNALED(wait_status)) {
        if (killed_for_timeout)
            return ExitClass::kTimeout;
        if (killed_for_chaos)
            return ExitClass::kChaos;
        return ExitClass::kSignal;
    }
    return ExitClass::kFailure;
}

// ---- worker side ----------------------------------------------------

namespace {

/// RAII heartbeat: refreshes hb/<pid>.hb and the shard lease every
/// interval from a helper thread until stopped.  A SIGKILL stops the
/// refreshes implicitly — which is exactly the watchdog's signal.
class Heartbeat {
  public:
    Heartbeat(std::string dir, std::string shard, double interval_s)
        : dir_(std::move(dir)), shard_(std::move(shard))
    {
        touch_file(heartbeat_path(dir_, ::getpid()));
        thread_ = std::thread([this, interval_s] {
            const auto tick =
                std::chrono::duration<double>(interval_s);
            while (!stop_.load(std::memory_order_acquire)) {
                touch_file(heartbeat_path(dir_, ::getpid()));
                refresh_lease(leases_dir(dir_), shard_);
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait_for(lock, tick, [this] {
                    return stop_.load(std::memory_order_acquire);
                });
            }
        });
    }

    ~Heartbeat()
    {
        stop_.store(true, std::memory_order_release);
        cv_.notify_all();
        if (thread_.joinable())
            thread_.join();
    }

  private:
    std::string dir_;
    std::string shard_;
    std::atomic<bool> stop_{false};
    std::mutex mutex_;
    std::condition_variable cv_;
    std::thread thread_;
};

/// Fills the entry's identity fields from the shard spec when the body
/// left them blank.
void
stamp_entry(JournalEntry& entry, const ShardSpec& spec)
{
    if (entry.tensor_id.empty())
        entry.tensor_id = spec.tensor;
    if (entry.kernel.empty())
        entry.kernel = spec.kernel;
    if (entry.format.empty())
        entry.format = spec.format;
    if (entry.shard.empty())
        entry.shard = spec.name;
}

}  // namespace

int
run_worker_once(const CampaignOptions& opts,
                const std::vector<ShardSpec>& shards,
                const ShardBody& body)
{
    PASTA_CHECK_MSG(!opts.dir.empty(), "campaign dir not set");
    PASTA_CHECK_MSG(body, "worker needs a shard body");
    make_campaign_dirs(opts.dir);
    if (shards.empty())
        return kWorkerExitNoWork;

    // Start the scan at pid % n so racing workers fan out over the
    // shard list instead of all contending for shard 0's lease.
    const std::size_t n = shards.size();
    const std::size_t start =
        static_cast<std::size_t>(::getpid()) % n;
    for (std::size_t i = 0; i < n; ++i) {
        const ShardSpec& spec = shards[(start + i) % n];
        PASTA_CHECK_MSG(!spec.name.empty(), "shard with empty name");
        if (marker_exists(done_marker(opts.dir, spec.name)) ||
            marker_exists(failed_marker(opts.dir, spec.name)))
            continue;
        if (!try_claim_lease(leases_dir(opts.dir), spec.name,
                             opts.lease_ttl_s))
            continue;
        // Claim-vs-done race: a predecessor may have published the done
        // marker after our check but before its lease lapsed.
        if (marker_exists(done_marker(opts.dir, spec.name))) {
            release_lease(leases_dir(opts.dir), spec.name);
            continue;
        }

        // Tell the supervisor which shard this pid carries (exit
        // attribution for retry accounting), then heartbeat and run.
        fsutil::write_file_durable(
            claim_note_path(opts.dir, ::getpid()), spec.name + "\n");
        Heartbeat heartbeat(opts.dir, spec.name,
                            opts.heartbeat_interval_s);
        RunJournal journal(shard_journal_path(opts.dir, spec.name));

        // Per-shard heartbeat exporter: the env selects arming and
        // interval, the path is this shard's own file so the supervisor
        // can tail/aggregate per shard.  Metrics are zeroed first so a
        // fork-mode child never exports counters inherited from the
        // parent — summing per-shard last-snapshots must count each
        // shard exactly once.
        obs::metrics::ExporterOptions mopts =
            obs::metrics::ExporterOptions::from_env();
        if (mopts.armed()) {
            obs::metrics::reset_metrics();
            mopts.path = shard_metrics_path(opts.dir, spec.name);
            obs::metrics::start_exporter(mopts, spec.name);
        }

        int exit_code = kWorkerExitFailure;
        JournalEntry entry;
        try {
            obs::SpanScope span("campaign.shard." + spec.name);
            entry = body(spec);
            stamp_entry(entry, spec);
            journal.append(entry);
            journal.flush();
            // The trial counter moves only after its journal line is
            // durable, and the final metrics snapshot lands before the
            // done marker: a kill anywhere in between re-runs the shard
            // and both the journal merge and the last-snapshot
            // aggregation fold the duplicate the same way.
            obs::metrics::counter_add("campaign.trial.ok", 1);
            obs::metrics::stop_exporter();
            // Order matters: journal line first, then the durable done
            // marker.  A kill between the two re-runs the shard and the
            // merge folds the duplicate; the reverse order could mark a
            // shard done whose measurement never hit the disk.
            fsutil::write_file_durable(done_marker(opts.dir, spec.name),
                                       "done\n");
            exit_code = kWorkerExitClean;
        } catch (const std::bad_alloc&) {
            entry = JournalEntry{};
            stamp_entry(entry, spec);
            entry.error = "out of memory (std::bad_alloc)";
            entry.failure_class = "oom";
            journal.append(entry);
            journal.flush();
            obs::metrics::counter_add("campaign.trial.failed", 1);
            obs::metrics::stop_exporter();
            exit_code = kWorkerExitOom;
        } catch (const std::exception& e) {
            const bool oom =
                dynamic_cast<const membudget::HostOomError*>(&e) !=
                nullptr;
            entry = JournalEntry{};
            stamp_entry(entry, spec);
            entry.error = e.what();
            entry.failure_class = oom ? "oom" : "error";
            journal.append(entry);
            journal.flush();
            obs::metrics::counter_add("campaign.trial.failed", 1);
            obs::metrics::stop_exporter();
            exit_code = oom ? kWorkerExitOom : kWorkerExitFailure;
        }
        // Per-process trace export (write mode: a rerun after a kill
        // replaces the partial trace).  The supervisor merges these
        // onto one clock-aligned timeline at campaign end.
        if (obs::spans_enabled())
            obs::write_chrome_trace(
                shard_trace_path(opts.dir, spec.name));
        release_lease(leases_dir(opts.dir), spec.name);
        return exit_code;
    }
    return kWorkerExitNoWork;
}

// ---- supervisor -----------------------------------------------------

struct Supervisor::WorkerProc {
    double spawn_wall = 0;       ///< for heartbeat grace before first beat
    bool killed_timeout = false;
    bool killed_chaos = false;
};

Supervisor::Supervisor(CampaignOptions opts, std::vector<ShardSpec> shards,
                       ShardBody body)
    : opts_(std::move(opts)), shards_(std::move(shards)),
      body_(std::move(body))
{
}

CampaignReport
Supervisor::run()
{
    PASTA_CHECK_MSG(!opts_.dir.empty(), "campaign dir not set");
    PASTA_CHECK_MSG(!opts_.worker_argv.empty() || body_,
                    "fork-only campaigns need a shard body");
    make_campaign_dirs(opts_.dir);
    std::map<std::string, const ShardSpec*> by_name;
    for (const ShardSpec& s : shards_) {
        PASTA_CHECK_MSG(!s.name.empty(), "shard with empty name");
        PASTA_CHECK_MSG(by_name.emplace(s.name, &s).second,
                        "duplicate shard name " << s.name);
    }

    CampaignReport report;
    report.shards_total = shards_.size();

    // Telemetry plumbing.  Exec-mode supervisors heartbeat their own
    // metrics file alongside the per-shard worker files; fork-only
    // supervisors (tests) must instead make sure NO exporter thread is
    // alive before forking — a child forked while the exporter holds
    // the registry mutex would deadlock on its first counter.
    const obs::metrics::ExporterOptions menv =
        obs::metrics::ExporterOptions::from_env();
    const bool metrics_armed = menv.armed();
    const std::string campaign_metrics =
        opts_.dir + "/metrics.campaign.jsonl";
    if (opts_.worker_argv.empty()) {
        obs::metrics::stop_exporter();
    } else if (metrics_armed) {
        obs::metrics::ExporterOptions sopts = menv;
        sopts.path = opts_.dir + "/metrics.supervisor.jsonl";
        obs::metrics::start_exporter(sopts, "supervisor");
    }
    // Aggregate the shard heartbeats about once per exporter interval.
    const int agg_ticks =
        metrics_armed
            ? std::max(1, static_cast<int>(menv.interval_s /
                                           opts_.poll_interval_s))
            : 0;

    // SIGTERM/SIGINT request a graceful drain; handlers are restored on
    // every exit path from this function.
    g_drain_signal = 0;
    struct sigaction old_term {}, old_int {};
    const bool hooked = opts_.install_signal_handlers;
    if (hooked) {
        struct sigaction sa {};
        sa.sa_handler = drain_handler;
        sigemptyset(&sa.sa_mask);
        ::sigaction(SIGTERM, &sa, &old_term);
        ::sigaction(SIGINT, &sa, &old_int);
    }

    std::map<pid_t, WorkerProc> active;
    std::map<std::string, int> retries;
    double backoff = opts_.backoff_initial_s;
    double next_spawn_steady = 0;
    int consecutive_spawn_failures = 0;
    std::uint64_t chaos_rng = opts_.chaos_seed;
    int chaos_left = opts_.chaos_kills;
    int next_chaos_tick =
        chaos_left > 0
            ? 2 + static_cast<int>(splitmix64(chaos_rng) % 8)
            : -1;
    int tick = 0;

    const auto spawn_worker = [&]() -> bool {
        try {
            fault_point("proc.spawn");
        } catch (const std::exception& e) {
            ++report.spawn_faults;
            ++consecutive_spawn_failures;
            next_spawn_steady = now_steady_seconds() + backoff;
            backoff = std::min(backoff * 2, opts_.backoff_max_s);
            PASTA_LOG_WARN << "campaign: worker spawn fault ("
                           << e.what() << "); backing off";
            return false;
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            ++consecutive_spawn_failures;
            next_spawn_steady = now_steady_seconds() + backoff;
            backoff = std::min(backoff * 2, opts_.backoff_max_s);
            PASTA_LOG_WARN << "campaign: fork failed ("
                           << std::strerror(errno) << "); backing off";
            return false;
        }
        if (pid == 0) {
            // Child: shed the supervisor's drain handlers, then either
            // exec the worker binary or run one shard right here.
            ::signal(SIGTERM, SIG_DFL);
            ::signal(SIGINT, SIG_DFL);
            if (!opts_.worker_argv.empty()) {
                std::vector<char*> argv;
                argv.reserve(opts_.worker_argv.size() + 1);
                for (const std::string& a : opts_.worker_argv)
                    argv.push_back(const_cast<char*>(a.c_str()));
                argv.push_back(nullptr);
                ::execv(argv[0], argv.data());
                std::fprintf(stderr, "campaign worker exec %s: %s\n",
                             argv[0], std::strerror(errno));
                ::_exit(127);
            }
            int code = kWorkerExitFailure;
            try {
                code = run_worker_once(opts_, shards_, body_);
            } catch (const std::exception& e) {
                std::fprintf(stderr, "campaign worker: %s\n", e.what());
                code = kWorkerExitFailure;
            }
            ::_exit(code);
        }
        active[pid] = WorkerProc{now_wall_seconds(), false, false};
        ++report.spawns;
        return true;
    };

    const std::string ldir = leases_dir(opts_.dir);
    for (;;) {
        // Durable truth: done/failed markers on disk.
        Size done = 0, failed = 0;
        Size claimable = 0;
        for (const ShardSpec& s : shards_) {
            if (marker_exists(done_marker(opts_.dir, s.name))) {
                ++done;
                continue;
            }
            if (marker_exists(failed_marker(opts_.dir, s.name))) {
                ++failed;
                continue;
            }
            LeaseInfo info;
            if (!read_lease(lease_path(ldir, s.name), info) ||
                lease_stale(info, opts_.lease_ttl_s))
                ++claimable;
        }
        const Size remaining = report.shards_total - done - failed;
        report.shards_done = done;
        report.shards_failed = failed;
        report.shards_remaining = remaining;

        const bool draining = drain_requested_ || g_drain_signal != 0;
        if (remaining == 0 && active.empty())
            break;
        if (draining && active.empty()) {
            report.drained = true;
            break;
        }

        // Keep the pool filled — but never spawn more workers than
        // there are claimable shards (extra workers would just churn
        // through no_work exits), and respect the crash backoff.
        if (!draining) {
            while (static_cast<int>(active.size()) < opts_.workers &&
                   claimable > 0 &&
                   now_steady_seconds() >= next_spawn_steady) {
                if (!spawn_worker())
                    break;
                --claimable;
            }
        }

        // Heartbeat watchdog: a worker whose beat file went stale is
        // wedged (SIGSTOP, uninterruptible sleep) — SIGKILL it and let
        // the retry ladder take over.
        for (auto& [pid, proc] : active) {
            if (proc.killed_timeout || proc.killed_chaos)
                continue;
            const double hb_age =
                file_age_seconds(heartbeat_path(opts_.dir, pid));
            const double age = hb_age >= 0
                                   ? hb_age
                                   : now_wall_seconds() - proc.spawn_wall;
            if (age > opts_.heartbeat_timeout_s) {
                PASTA_LOG_WARN << "campaign: worker " << pid
                               << " heartbeat stale (" << age
                               << " s); killing";
                proc.killed_timeout = true;
                ::kill(pid, SIGKILL);
            }
        }

        // Chaos: SIGKILL a randomly chosen worker that is mid-trial
        // (holds a claim note), proving the reclaim/respawn ladder.
        if (chaos_left > 0 && tick >= next_chaos_tick) {
            std::vector<pid_t> eligible;
            for (const auto& [pid, proc] : active)
                if (!proc.killed_timeout && !proc.killed_chaos &&
                    marker_exists(claim_note_path(opts_.dir, pid)))
                    eligible.push_back(pid);
            if (!eligible.empty()) {
                const pid_t victim = eligible[static_cast<std::size_t>(
                    splitmix64(chaos_rng) % eligible.size())];
                PASTA_LOG_WARN << "campaign: chaos SIGKILL of worker "
                               << victim << " ("
                               << chaos_left - 1 << " kill(s) left)";
                active[victim].killed_chaos = true;
                ::kill(victim, SIGKILL);
                obs::record_span("campaign.chaos_kill",
                                 obs::trace_now_ns(), 0);
                obs::metrics::counter_add("campaign.chaos_kills", 1);
                ++report.chaos_kills_sent;
                --chaos_left;
                next_chaos_tick =
                    tick + 2 +
                    static_cast<int>(splitmix64(chaos_rng) % 8);
            }
        }

        // Reap exits.
        for (;;) {
            int status = 0;
            const pid_t pid = ::waitpid(-1, &status, WNOHANG);
            if (pid <= 0)
                break;
            const auto it = active.find(pid);
            if (it == active.end())
                continue;
            const WorkerProc proc = it->second;
            active.erase(it);

            const std::string note = claim_note_path(opts_.dir, pid);
            const std::string shard = read_small_file(note);
            ::unlink(note.c_str());
            ::unlink(heartbeat_path(opts_.dir, pid).c_str());
            // A dead owner's lease is stale by definition; reap it now
            // instead of waiting for a claimer to notice.
            if (!shard.empty())
                reclaim_lease_if_stale(ldir, shard, opts_.lease_ttl_s);

            const ExitClass cls = classify_exit(
                status, proc.killed_timeout, proc.killed_chaos);
            switch (cls) {
              case ExitClass::kClean:
                ++report.exits_clean;
                consecutive_spawn_failures = 0;
                backoff = opts_.backoff_initial_s;
                break;
              case ExitClass::kNoWork:
                ++report.exits_nowork;
                // Benign, but don't spin respawning into a claim race.
                next_spawn_steady =
                    now_steady_seconds() + 2 * opts_.poll_interval_s;
                break;
              case ExitClass::kChaos:
                // Our own bullet: respawn, no retry charge.
                ++report.exits_signal;
                ++report.respawns;
                obs::record_span("campaign.respawn",
                                 obs::trace_now_ns(), 0);
                obs::metrics::counter_add("campaign.respawns", 1);
                break;
              default: {
                if (cls == ExitClass::kFailure)
                    ++report.exits_failure;
                else if (cls == ExitClass::kOom)
                    ++report.exits_oom;
                else if (cls == ExitClass::kTimeout)
                    ++report.exits_timeout;
                else
                    ++report.exits_signal;
                ++report.respawns;
                obs::record_span("campaign.respawn",
                                 obs::trace_now_ns(), 0);
                obs::metrics::counter_add("campaign.respawns", 1);
                next_spawn_steady = now_steady_seconds() + backoff;
                backoff = std::min(backoff * 2, opts_.backoff_max_s);
                const bool done_anyway =
                    !shard.empty() &&
                    marker_exists(done_marker(opts_.dir, shard));
                if (!shard.empty() && !done_anyway) {
                    const int used = ++retries[shard];
                    PASTA_LOG_WARN
                        << "campaign: shard " << shard << " attempt "
                        << used << "/" << opts_.shard_retry_budget
                        << " ended as " << exit_class_name(cls);
                    if (used >= opts_.shard_retry_budget) {
                        // Terminal: durable failed marker plus a
                        // journal line so the merge records the loss.
                        fsutil::write_file_durable(
                            failed_marker(opts_.dir, shard),
                            std::string(exit_class_name(cls)) + "\n");
                        const auto spec_it = by_name.find(shard);
                        if (spec_it != by_name.end()) {
                            RunJournal sj(shard_journal_path(
                                opts_.dir, "_supervisor"));
                            JournalEntry entry;
                            stamp_entry(entry, *spec_it->second);
                            entry.attempts = used;
                            entry.error =
                                std::string("retry budget exhausted (") +
                                exit_class_name(cls) + ")";
                            entry.failure_class =
                                cls == ExitClass::kTimeout ? "timeout"
                                : cls == ExitClass::kOom   ? "oom"
                                                           : "error";
                            sj.append(entry);
                            sj.flush();
                        }
                    }
                }
                break;
              }
            }
        }

        // Live campaign-wide aggregate: tail every shard heartbeat into
        // one summed/merged snapshot, itself an appended heartbeat.
        if (agg_ticks > 0 && tick % agg_ticks == 0)
            report.metrics = aggregate_campaign_metrics(
                opts_.dir, campaign_metrics);

        if (opts_.tick_hook)
            opts_.tick_hook(tick);
        std::this_thread::sleep_for(
            std::chrono::duration<double>(opts_.poll_interval_s));
        ++tick;
    }

    if (hooked) {
        ::sigaction(SIGTERM, &old_term, nullptr);
        ::sigaction(SIGINT, &old_int, nullptr);
    }

    // Journal the remainder as resumable: the durable shard list a
    // rerun (same campaign dir) will pick up.
    const std::string resume = opts_.dir + "/resume.list";
    if (report.shards_remaining > 0) {
        std::string names;
        for (const ShardSpec& s : shards_)
            if (!marker_exists(done_marker(opts_.dir, s.name)) &&
                !marker_exists(failed_marker(opts_.dir, s.name)))
                names += s.name + "\n";
        fsutil::write_file_durable(resume, names);
        PASTA_LOG_WARN << "campaign: drained with "
                       << report.shards_remaining
                       << " shard(s) unfinished; see " << resume;
    } else {
        ::unlink(resume.c_str());
    }

    report.merge = merge_journal_shards(
        opts_.dir, opts_.dir + "/journal.merged.jsonl");

    // Final telemetry: stop the supervisor's own heartbeat (its last
    // snapshot joins the aggregate), fold every shard heartbeat into
    // one closing campaign snapshot, and merge the per-process traces
    // onto one clock-aligned timeline.
    if (metrics_armed) {
        obs::metrics::stop_exporter();
        report.metrics = aggregate_campaign_metrics(
            opts_.dir, campaign_metrics);
    }
    if (obs::spans_enabled())
        obs::write_chrome_trace(opts_.dir + "/trace.supervisor.json");
    report.trace_merged = merge_campaign_traces(
        opts_.dir, opts_.dir + "/campaign.trace.json");

    PASTA_LOG_INFO << "campaign: " << report.shards_done << "/"
                   << report.shards_total << " shard(s) done, "
                   << report.shards_failed << " failed, "
                   << report.merge.entries << " merged journal entries ("
                   << report.merge.duplicates << " duplicate(s) folded)";
    if (metrics_armed) {
        PASTA_LOG_INFO << "campaign: aggregated "
                       << report.metrics.shard_files
                       << " metrics heartbeat(s) into "
                       << campaign_metrics;
    }
    return report;
}

// ---- merge ----------------------------------------------------------

MergeStats
merge_journal_shards(const std::string& dir,
                     const std::string& merged_path)
{
    MergeStats stats;
    const std::string merged_name =
        fs::path(merged_path).filename().string();

    // Exactly-once selection per (tensor, kernel, format, shard) key:
    // a successful entry beats any progress/failure line for the same
    // key; among non-ok lines the furthest partition progress wins
    // (then last-read, matching the journal's own last-wins replay).
    std::map<std::string, JournalEntry> best;
    std::vector<std::string> shard_files;
    for (const auto& ent : fs::directory_iterator(dir)) {
        if (!ent.is_regular_file())
            continue;
        const std::string name = ent.path().filename().string();
        if (name.rfind("journal.", 0) != 0 || name == merged_name ||
            name.size() < 6 ||
            name.compare(name.size() - 6, 6, ".jsonl") != 0)
            continue;
        shard_files.push_back(ent.path().string());
    }
    std::sort(shard_files.begin(), shard_files.end());
    stats.shard_files = shard_files.size();

    for (const std::string& path : shard_files) {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty())
                continue;
            JournalEntry entry;
            if (!parse_json_line(line, entry))
                continue;  // torn shard tail; the shard rerun covers it
            ++stats.lines;
            const std::string key =
                RunJournal::key(entry.tensor_id, entry.kernel,
                                entry.format, entry.shard);
            const auto it = best.find(key);
            if (it == best.end()) {
                best.emplace(key, std::move(entry));
                continue;
            }
            JournalEntry& held = it->second;
            const bool replace =
                entry.ok != held.ok
                    ? entry.ok
                    : entry.partitions_done >= held.partitions_done;
            if (replace)
                held = std::move(entry);
        }
    }

    std::string out;
    for (const auto& [key, entry] : best) {
        (void)key;
        out += to_json_line(entry);
        out += "\n";
    }
    fsutil::write_file_durable(merged_path, out);
    stats.entries = best.size();
    stats.duplicates = stats.lines - stats.entries;
    return stats;
}

MetricsAggregate
aggregate_campaign_metrics(const std::string& dir,
                           const std::string& out_path)
{
    MetricsAggregate agg;
    const std::string out_name = fs::path(out_path).filename().string();
    std::vector<std::string> files;
    std::error_code ec;
    for (const auto& ent : fs::directory_iterator(dir, ec)) {
        if (!ent.is_regular_file())
            continue;
        const std::string name = ent.path().filename().string();
        if (name.rfind("metrics.", 0) != 0 || name == out_name ||
            name.size() < 6 ||
            name.compare(name.size() - 6, 6, ".jsonl") != 0)
            continue;
        files.push_back(ent.path().string());
    }
    std::sort(files.begin(), files.end());

    std::vector<obs::metrics::MetricsSnapshot> snaps;
    for (const std::string& path : files) {
        obs::metrics::MetricsSnapshot snap;
        // The newest complete heartbeat is the exporter's truth; a file
        // holding only a torn tail (worker killed mid-first-write)
        // simply contributes nothing this round.
        if (obs::metrics::load_last_snapshot(path, snap))
            snaps.push_back(std::move(snap));
    }
    agg.shard_files = snaps.size();
    agg.merged = obs::metrics::merge_snapshots(snaps, "campaign");
    agg.merged.ts = now_wall_seconds();

    std::string line = obs::metrics::snapshot_to_json(agg.merged);
    line += '\n';
    const int fd = ::open(out_path.c_str(),
                          O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (fd >= 0) {
        ssize_t off = 0;
        while (off < static_cast<ssize_t>(line.size())) {
            const ssize_t n =
                ::write(fd, line.data() + off,
                        line.size() - static_cast<std::size_t>(off));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                break;
            }
            off += n;
        }
        ::fsync(fd);
        ::close(fd);
    } else {
        PASTA_LOG_WARN << "campaign: cannot append aggregate to "
                       << out_path << ": " << std::strerror(errno);
    }
    return agg;
}

bool
merge_campaign_traces(const std::string& dir, const std::string& out_path)
{
    const std::string out_name = fs::path(out_path).filename().string();
    std::vector<obs::TraceMergeInput> inputs;
    std::error_code ec;
    for (const auto& ent : fs::directory_iterator(dir, ec)) {
        if (!ent.is_regular_file())
            continue;
        const std::string name = ent.path().filename().string();
        if (name.rfind("trace.", 0) != 0 || name == out_name ||
            name.size() < 5 ||
            name.compare(name.size() - 5, 5, ".json") != 0)
            continue;
        // trace.<shard>.json -> the shard name labels the pid track.
        obs::TraceMergeInput input;
        input.path = ent.path().string();
        input.label = name.substr(6, name.size() - 6 - 5);
        inputs.push_back(std::move(input));
    }
    if (inputs.empty())
        return false;  // spans were never armed; nothing to merge
    std::sort(inputs.begin(), inputs.end(),
              [](const obs::TraceMergeInput& a,
                 const obs::TraceMergeInput& b) { return a.path < b.path; });
    return obs::merge_chrome_traces(inputs, out_path);
}

}  // namespace pasta::harness
