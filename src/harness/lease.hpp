/// \file
/// Crash-safe filesystem leases for campaign shard claiming.
///
/// A lease is one file per shard in a shared lease directory.  Claiming
/// is O_CREAT|O_EXCL — the kernel arbitrates, so exactly one process
/// wins a shard even when several workers race — and the claim record
/// (owner pid, claim wall-clock) is fsync'd before the claim counts, so
/// a claim that survives a crash is always readable.  Liveness rides on
/// the file's mtime: the owner refreshes it from its heartbeat loop,
/// and a lease is *stale* once its owner pid is gone (SIGKILL, OOM
/// kill) or its mtime is older than the TTL (a SIGSTOP'd or wedged
/// owner).  Reclaiming a stale lease is itself race-free: the reclaimer
/// first rename(2)s the lease aside — rename is atomic, one reclaimer
/// wins, the losers see ENOENT and fall back to a normal claim attempt.
///
/// The protocol never needs flock()/fcntl locks (which silently vanish
/// on some shared filesystems); everything reduces to O_EXCL create and
/// rename, the two primitives with crash-safe semantics everywhere.
#pragma once

#include <string>

namespace pasta::harness {

/// Parsed contents + liveness of one lease file.
struct LeaseInfo {
    long pid = 0;             ///< owner pid from the claim record
    bool owner_alive = false; ///< kill(pid, 0) succeeded (or EPERM)
    double age_seconds = 0;   ///< now - mtime (heartbeat freshness)
};

/// The lease file path for `shard` under `dir`.
std::string lease_path(const std::string& dir, const std::string& shard);

/// Reads and parses a lease file; false when absent or unreadable.
bool read_lease(const std::string& path, LeaseInfo& info);

/// A lease is stale when its owner is dead or its heartbeat-refreshed
/// mtime is older than `ttl_seconds`.
bool lease_stale(const LeaseInfo& info, double ttl_seconds);

/// Atomically claims `shard` for the calling process: removes a stale
/// lease first (rename-aside, one winner), then O_EXCL-creates the
/// lease with an fsync'd claim record.  Returns false when another live
/// owner holds it (or a racing claimer won).
bool try_claim_lease(const std::string& dir, const std::string& shard,
                     double ttl_seconds);

/// Releases a lease the caller owns (unlink + dir fsync).  Removing a
/// lease that is already gone is not an error.
void release_lease(const std::string& dir, const std::string& shard);

/// Bumps the lease mtime to now — the owner's heartbeat.  No-op when
/// the lease is gone (e.g. a supervisor already reaped it).
void refresh_lease(const std::string& dir, const std::string& shard);

/// Removes `shard`'s lease if (and only if) it is stale under
/// `ttl_seconds`; returns true when a stale lease was reaped.  Used by
/// the supervisor to free the shard of a worker it just reaped.
bool reclaim_lease_if_stale(const std::string& dir,
                            const std::string& shard, double ttl_seconds);

}  // namespace pasta::harness
