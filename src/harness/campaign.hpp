/// \file
/// Crash-isolated campaign supervisor: shards a campaign's trial set
/// across a pool of worker *processes*, so a segfault, OOM-kill, or
/// hung kernel costs one shard's attempt instead of the whole run.
///
/// Roles and protocol
/// ------------------
/// The supervisor owns a campaign directory and a list of ShardSpecs
/// (one trial or one partition-range of an out-of-core sweep each).  It
/// keeps up to `workers` children alive; each child claims *one* shard
/// through a crash-safe filesystem lease (src/harness/lease), runs it,
/// journals the outcome to its own `journal.<shard>.jsonl` (fsync'd per
/// line), publishes a durable `done/<shard>.done` marker, releases the
/// lease, and exits 0.  Workers are spawned either by fork+exec of
/// `worker_argv` (the pasta_campaign driver re-execs itself with
/// `--worker`; full isolation, safe with OpenMP) or — when `worker_argv`
/// is empty — by plain fork running `body` in the child (tests).
///
/// Crash ladder
/// ------------
/// - SIGKILL'd / crashed worker: its lease goes stale (owner pid dead),
///   any later worker reclaims the shard; the supervisor also reaps the
///   lease immediately on reaping the child.  Duplicate journal lines
///   from a shard that was re-run after a kill-after-finish are folded
///   by the exactly-once merge.
/// - Wedged worker (SIGSTOP, D-state): the heartbeat file it refreshes
///   every `heartbeat_interval_s` goes stale; after
///   `heartbeat_timeout_s` the supervisor SIGKILLs it and classifies
///   the exit as a timeout.
/// - Every non-clean exit (nonzero, signal, timeout, worker-reported
///   host-OOM exit code) charges the shard's retry budget and the
///   worker is respawned under capped exponential backoff; a shard that
///   exhausts the budget gets a durable `failed/<shard>.failed` marker
///   plus a terminal journal entry, and the campaign continues.
/// - SIGTERM/SIGINT (or request_drain()): stop spawning, let in-flight
///   shards finish, write the remaining shard names to `resume.list`,
///   and return with `drained` set — rerunning the same campaign
///   directory picks up exactly the unfinished shards.
///
/// Chaos mode
/// ----------
/// `chaos_kills` > 0 (armed from $PASTA_CHAOS by the driver) makes the
/// supervisor itself SIGKILL that many randomly chosen workers
/// *mid-trial* (only workers holding a claimed shard are eligible),
/// using the same SplitMix64 stream the PR 1 fault injector uses,
/// seeded by `chaos_seed` ($PASTA_FAULT_SEED).  Chaos kills exercise
/// the full lease-reclaim/respawn ladder but do not charge retry
/// budgets — the supervisor knows it pulled the trigger.
///
/// Exit classification
/// -------------------
///   clean    exit(0)    shard finished (done marker is the proof)
///   no_work  exit(75)   nothing claimable right now (benign)
///   failure  exit(!=0)  body threw; worker journaled the error first
///   oom      exit(77)   body hit HostOomError/bad_alloc terminally
///   signal   signaled   crash (or chaos kill — counted separately)
///   timeout  signaled   supervisor watchdog killed a stale heartbeat
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "harness/journal.hpp"
#include "obs/metrics.hpp"

namespace pasta::harness {

/// Worker exit codes of the campaign protocol (75 = EX_TEMPFAIL-ish
/// "no work", 77 = EX_NOPERM-adjacent "out of memory"; both chosen to
/// stay clear of shells' 126/127/128+n conventions).
constexpr int kWorkerExitClean = 0;
constexpr int kWorkerExitFailure = 1;
constexpr int kWorkerExitNoWork = 75;
constexpr int kWorkerExitOom = 77;

/// One unit of claimable work: a (tensor, kernel, format) trial or one
/// partition range of an out-of-core sweep.
struct ShardSpec {
    std::string name;    ///< unique, filesystem-safe (claim/journal key)
    std::string tensor;  ///< journal identity fields
    std::string kernel;
    std::string format;
};

/// Runs one shard inside a worker process and returns the journal entry
/// to record.  Throwing reports the shard as failed (HostOomError /
/// bad_alloc exit with kWorkerExitOom, anything else with
/// kWorkerExitFailure).
using ShardBody = std::function<JournalEntry(const ShardSpec&)>;

/// Supervisor knobs.  The env-facing ones (PASTA_SHARDS worker count,
/// PASTA_CHAOS kill count, PASTA_FAULT_SEED chaos seed) load via
/// from_env(); the rest are code-level tuning with safe defaults.
struct CampaignOptions {
    std::string dir;            ///< campaign state directory (required)
    int workers = 2;            ///< max live worker processes
    double lease_ttl_s = 30.0;  ///< lease staleness horizon
    double heartbeat_interval_s = 0.2;
    double heartbeat_timeout_s = 10.0;  ///< stale heartbeat -> SIGKILL
    double poll_interval_s = 0.05;      ///< supervisor tick
    int shard_retry_budget = 3;  ///< non-clean exits allowed per shard
    double backoff_initial_s = 0.1;  ///< respawn backoff after a crash
    double backoff_max_s = 2.0;      ///< exponential cap
    int chaos_kills = 0;             ///< SIGKILLs to deal mid-trial
    std::uint64_t chaos_seed = 42;   ///< SplitMix64 seed (PR 1 RNG)
    /// Non-empty: fork+exec this argv for each worker (the exec'd
    /// process must call run_worker_once and exit with its result).
    /// Empty: fork only and run `body` directly in the child.
    std::vector<std::string> worker_argv;
    bool install_signal_handlers = true;  ///< SIGTERM/SIGINT -> drain
    /// Test hook, called once per supervisor tick (after reaping).
    std::function<void(int tick)> tick_hook;

    /// Reads PASTA_SHARDS / PASTA_CHAOS / PASTA_FAULT_SEED; malformed
    /// values throw PastaError (same strictness as the bench env).
    static CampaignOptions from_env();
};

/// How one worker exit was classified.
enum class ExitClass {
    kClean,
    kNoWork,
    kFailure,
    kOom,
    kSignal,
    kTimeout,
    kChaos,
};

const char* exit_class_name(ExitClass c);

/// Classifies a waitpid status; `killed_for_timeout` / `killed_for_chaos`
/// record that the supervisor itself sent the fatal signal.
ExitClass classify_exit(int wait_status, bool killed_for_timeout,
                        bool killed_for_chaos);

/// What merging the per-shard journals produced.
struct MergeStats {
    std::size_t shard_files = 0;  ///< journal.<shard>.jsonl files read
    std::size_t lines = 0;        ///< parsable lines across all shards
    std::size_t entries = 0;      ///< unique (t, k, f, shard) entries out
    std::size_t duplicates = 0;   ///< lines folded by exactly-once dedup
};

/// Merges every `journal.*.jsonl` under `dir` into `merged_path`
/// (durably: tmp + fsync + rename + dir fsync) with exactly-once dedup
/// on the (tensor, kernel, format, shard) key: a successful entry beats
/// progress/failure entries for the same key, later duplicates fold
/// away, and output is sorted by key so two merges of the same shards
/// are byte-identical.
MergeStats merge_journal_shards(const std::string& dir,
                                const std::string& merged_path);

/// What aggregating the per-shard metrics heartbeats produced.
struct MetricsAggregate {
    std::size_t shard_files = 0;  ///< metrics.*.jsonl files aggregated
    obs::metrics::MetricsSnapshot merged;
};

/// Tails every `metrics.*.jsonl` under `dir` (excluding the output
/// file's own name): the LAST parseable snapshot of each heartbeat is
/// taken as that exporter's current truth, the snapshots are merged
/// (counters summed, gauges maxed, histograms merged), and one
/// aggregated line is appended to `out_path` — itself a tailable
/// campaign-wide heartbeat.  Because each worker process restarts its
/// per-shard exporter from zeroed (fresh-process) metrics, summing
/// last-snapshots counts each shard's work exactly once even across
/// chaos kills and reruns.
MetricsAggregate aggregate_campaign_metrics(const std::string& dir,
                                            const std::string& out_path);

/// Merges every per-process `trace.*.json` under `dir` (excluding the
/// output's own name) into one clock-aligned `out_path` via
/// obs::merge_chrome_traces, labelling each input's pid track with the
/// shard name from its filename.  False when no input traces exist.
bool merge_campaign_traces(const std::string& dir,
                           const std::string& out_path);

/// Campaign outcome counters (one supervisor run).
struct CampaignReport {
    Size shards_total = 0;
    Size shards_done = 0;       ///< durable done markers present
    Size shards_failed = 0;     ///< retry budget exhausted
    Size shards_remaining = 0;  ///< neither (only after a drain)
    int spawns = 0;             ///< workers forked
    int respawns = 0;           ///< spawns replacing a non-clean exit
    int spawn_faults = 0;       ///< proc.spawn fault-point firings
    int chaos_kills_sent = 0;
    int exits_clean = 0;
    int exits_nowork = 0;
    int exits_failure = 0;
    int exits_oom = 0;
    int exits_signal = 0;
    int exits_timeout = 0;
    bool drained = false;  ///< stopped early on SIGTERM/SIGINT/drain
    MergeStats merge;
    /// Telemetry side-channel (populated when PASTA_METRICS is armed /
    /// spans were recorded; zero-valued otherwise).
    MetricsAggregate metrics;
    bool trace_merged = false;  ///< campaign.trace.json written

    bool complete() const
    {
        return shards_remaining == 0 && shards_failed == 0;
    }
};

/// The campaign supervisor.  Construct with the shard list and (for
/// fork-only mode) the shard body, then run() to completion or drain.
class Supervisor {
  public:
    Supervisor(CampaignOptions opts, std::vector<ShardSpec> shards,
               ShardBody body = {});

    /// Runs the campaign: spawn/watchdog/reap loop, then the journal
    /// merge.  Returns the outcome report; throws only for setup errors
    /// (unwritable campaign dir, empty shard names).
    CampaignReport run();

    /// Asks the running loop to drain (same path as SIGTERM).  Safe to
    /// call from the tick hook.
    void request_drain() { drain_requested_ = true; }

  private:
    struct WorkerProc;
    struct RunState;

    CampaignOptions opts_;
    std::vector<ShardSpec> shards_;
    ShardBody body_;
    volatile bool drain_requested_ = false;
};

/// Worker entry point: claims one shard (skipping done/failed markers,
/// reclaiming stale leases), heartbeats while running `body`, journals
/// the outcome durably, publishes the done marker, releases the lease,
/// and returns the exit code to _exit with.  Returns kWorkerExitNoWork
/// when nothing was claimable.
int run_worker_once(const CampaignOptions& opts,
                    const std::vector<ShardSpec>& shards,
                    const ShardBody& body);

}  // namespace pasta::harness
