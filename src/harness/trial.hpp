/// \file
/// Guarded trial execution: one (tensor, kernel, format, mode) benchmark
/// trial runs under a monotonic watchdog timeout and a capped-backoff
/// retry loop, and failure comes back as data instead of unwinding the
/// whole suite.
///
/// Contract for the trial body: it returns the measured seconds for the
/// trial and may throw PastaError / std::bad_alloc (both treated as
/// transient and retried) or any std::exception (reported, retried).
/// When a watchdog is armed the body runs on a worker thread; if the
/// deadline passes, the attempt is abandoned — the worker is detached
/// and may still be running — so the body must only touch state it owns
/// or shares via shared_ptr, never references to the caller's stack.
#pragma once

#include <functional>
#include <string>

namespace pasta::harness {

/// Retry/timeout policy for guarded trials, env-overridable:
///   PASTA_TRIAL_TIMEOUT  watchdog seconds per attempt (0 = no watchdog,
///                        trial runs inline on the calling thread)
///   PASTA_TRIAL_RETRIES  max attempts per trial (default 3)
struct TrialPolicy {
    double timeout_seconds = 0.0;
    int max_attempts = 3;
    double backoff_initial_s = 0.05;  ///< sleep before the 2nd attempt
    double backoff_max_s = 2.0;       ///< exponential backoff cap

    /// Policy from the environment; malformed values throw PastaError.
    static TrialPolicy from_env();
};

/// Structured outcome of one guarded trial.
struct TrialResult {
    bool ok = false;        ///< trial produced a measurement
    bool skipped = false;   ///< abandoned: timed out or retries exhausted
    bool timed_out = false; ///< skipped specifically by the watchdog
    bool validation = false; ///< failed a structural/differential check
    bool oom = false;       ///< last failure was a membudget::HostOomError
    std::string error;      ///< last failure message when !ok
    int attempts = 0;       ///< attempts actually made
    double seconds = 0.0;   ///< trial body's return value when ok
};

/// Runs `body` under `policy`.  Never throws for trial failures; the
/// returned TrialResult carries success or the last error.  A watchdog
/// timeout is terminal (no retry — a hung kernel will hang again), and so
/// is a validate::ValidationError (deterministic: the same wrong answer
/// would come back on every retry); other thrown errors are retried with
/// capped exponential backoff.
///
/// membudget::HostOomError is *degradable*: before the retry the governor
/// is switched to degraded mode, so budget-aware paths (the stream
/// kernels' *_budgeted entry points) pick streaming/smaller chunks on the
/// next attempt instead of re-running the in-memory route into the same
/// wall.  Degraded mode is reset at every trial entry.
TrialResult run_guarded_trial(const std::string& label,
                              const std::function<double()>& body,
                              const TrialPolicy& policy);

}  // namespace pasta::harness
