/// \file
/// Append-only run journal: checkpoint/resume for suite campaigns.
///
/// Every completed (tensor, kernel, format) trial is appended as one
/// JSON line and made durable, so a killed run loses at most the trial
/// in flight.  Appends go through a POSIX descriptor and fsync by
/// default after every line ($PASTA_JOURNAL_FSYNC=N batches the fsync
/// to every Nth line, 0 disables it; flush() forces one).  A re-invoked
/// figure binary reloads the journal and skips trials that already
/// succeeded; failed entries are kept for the record but retried on the
/// next run.  The loader tolerates a torn trailing line (the kill
/// case) by *truncating* it off the file — the resume then appends from
/// a clean line boundary — and skips unparsable interior lines with a
/// warning rather than aborting the campaign.
///
/// Line format (flat JSON, string/number/bool fields only):
///   {"tensor":"r1","kernel":"TTV","format":"COO","ok":true,
///    "seconds":1.25e-4,"flops":4.2e6,"bytes":8.1e6,"attempts":1,
///    "error":"","class":""}
#pragma once

#include <cstddef>
#include <map>
#include <string>

namespace pasta::harness {

/// One journaled trial outcome.
struct JournalEntry {
    std::string tensor_id;
    std::string kernel;
    std::string format;
    bool ok = false;
    double seconds = 0;
    double flops = 0;
    double bytes = 0;
    int attempts = 0;
    std::string error;
    /// Failure class: "" (success), "error", "timeout", or "validation".
    /// Serialized as the optional "class" field; absent in pre-PR-2
    /// journals, which parse as "".
    std::string failure_class;
    /// Observability channel (PASTA_TRACE=counters|full): the variant
    /// label the kernel reported and the trial's counter-derived flop and
    /// byte deltas.  All optional — absent fields parse as ""/0, so older
    /// journals stay loadable.
    std::string variant;
    double obs_flops = 0;
    double obs_bytes = 0;
    /// Bounded-memory channel: the trial's peak governor-reserved bytes
    /// and, for out-of-core sweeps, the partition progress — a killed
    /// trial's journal line says how far it got, and the checkpointed
    /// rerun resumes from there.  Optional like the obs fields.
    double mem_peak = 0;
    int partitions_done = 0;
    int partitions_total = 0;
    /// Campaign channel: the shard this entry was produced under (e.g.
    /// a partition-range shard "s1.MTTKRP.p0-8").  Distinguishes the
    /// pieces of one sharded sweep in the merged journal; empty (and
    /// absent from the serialized line) for unsharded trials.
    std::string shard;
};

/// Serializes an entry as one JSON line (no trailing newline).
std::string to_json_line(const JournalEntry& entry);

/// Parses a journal line; returns false (and logs nothing) on torn or
/// malformed input so the loader can skip it.
bool parse_json_line(const std::string& line, JournalEntry& entry);

/// Append-only JSONL journal keyed by (tensor, kernel, format, shard);
/// the last line for a key wins on reload.
class RunJournal {
  public:
    /// A disabled journal: has() is always false, append() is a no-op.
    RunJournal() = default;

    /// Opens (creating parent directories) and replays `path`,
    /// truncating a torn final line left by a killed writer.
    explicit RunJournal(std::string path);

    RunJournal(const RunJournal&) = delete;
    RunJournal& operator=(const RunJournal&) = delete;
    RunJournal(RunJournal&& other) noexcept;
    RunJournal& operator=(RunJournal&& other) noexcept;
    ~RunJournal();

    bool enabled() const { return !path_.empty(); }
    const std::string& path() const { return path_; }

    /// Entries replayed from disk at open (after last-wins dedup).
    std::size_t size() const { return entries_.size(); }

    /// The entry for a key, or nullptr.  The three-argument form looks
    /// up unsharded entries (shard "").
    const JournalEntry* find(const std::string& tensor_id,
                             const std::string& kernel,
                             const std::string& format,
                             const std::string& shard = "") const;

    /// True when the key has a *successful* entry (the resume filter).
    bool has_ok(const std::string& tensor_id, const std::string& kernel,
                const std::string& format,
                const std::string& shard = "") const;

    /// Appends one entry and (per the fsync policy) makes it durable.
    void append(const JournalEntry& entry);

    /// Forces any batched lines to disk (write + fsync).  No-op when
    /// everything already synced or the journal is disabled.
    void flush();

    /// Dedup key over the serialized identity fields; shared with the
    /// campaign journal merge.
    static std::string key(const std::string& tensor_id,
                           const std::string& kernel,
                           const std::string& format,
                           const std::string& shard = "");

  private:
    void close_fd();

    std::string path_;
    std::map<std::string, JournalEntry> entries_;
    int fd_ = -1;           ///< lazily opened O_APPEND descriptor
    int fsync_batch_ = 1;   ///< fsync every Nth append; 0 = never
    int unsynced_ = 0;      ///< appends since the last fsync
};

}  // namespace pasta::harness
