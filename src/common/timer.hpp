/// \file
/// Wall-clock timing utilities used by the benchmark harness.
///
/// The paper runs every kernel five times and reports the average runtime
/// (§V-A2); TimedRuns encapsulates that protocol so every bench binary uses
/// the same measurement discipline.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <limits>

namespace pasta {

/// Simple wall-clock stopwatch.
class Timer {
  public:
    /// Starts (or restarts) the stopwatch.
    void start() { begin_ = Clock::now(); }

    /// Returns seconds elapsed since the last start().
    double elapsed_seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - begin_).count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point begin_{Clock::now()};
};

/// Monotonic deadline built on the same steady clock as Timer; the
/// harness watchdog and fault-injection hangs use it so wall-clock
/// adjustments can never extend (or cut short) a timeout.
class Deadline {
  public:
    /// A deadline `seconds` from now; non-positive means already expired.
    explicit Deadline(double seconds)
        : end_(std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(seconds < 0 ? 0 : seconds)))
    {
    }

    bool expired() const { return std::chrono::steady_clock::now() >= end_; }

    /// Seconds left; never negative.
    double remaining_seconds() const
    {
        const auto left = end_ - std::chrono::steady_clock::now();
        const double s = std::chrono::duration<double>(left).count();
        return s > 0 ? s : 0.0;
    }

  private:
    std::chrono::steady_clock::time_point end_;
};

/// Aggregated timing statistics over repeated runs.
struct RunStats {
    double mean_seconds = 0.0;
    double min_seconds = 0.0;
    double max_seconds = 0.0;
    std::size_t runs = 0;
};

/// Runs `fn` `runs` times (after `warmups` untimed warm-up runs) and
/// returns the per-run timing statistics.  This matches the paper's
/// measurement protocol of averaging five timed executions.  Template so
/// the measured callable is invoked directly, without a type-erased
/// dispatch inside the timed window.
template <typename Fn>
RunStats
timed_runs(Fn fn, std::size_t runs = 5, std::size_t warmups = 1)
{
    for (std::size_t i = 0; i < warmups; ++i)
        fn();

    RunStats stats;
    stats.runs = runs;
    stats.min_seconds = std::numeric_limits<double>::infinity();
    stats.max_seconds = 0.0;
    double total = 0.0;
    Timer timer;
    for (std::size_t i = 0; i < runs; ++i) {
        timer.start();
        fn();
        double t = timer.elapsed_seconds();
        total += t;
        stats.min_seconds = std::min(stats.min_seconds, t);
        stats.max_seconds = std::max(stats.max_seconds, t);
    }
    stats.mean_seconds = runs > 0 ? total / static_cast<double>(runs) : 0.0;
    return stats;
}

}  // namespace pasta
