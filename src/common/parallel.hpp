/// \file
/// Thin parallel runtime over OpenMP.
///
/// The paper's CPU kernels are OpenMP-parallel with configurable schedules
/// (§V-A2).  This wrapper keeps the scheduling decision explicit at each
/// call site, exposes the atomic update the COO-MTTKRP algorithm relies on,
/// and lets tests pin the thread count for deterministic runs.
#pragma once

#include <cstddef>
#include <functional>

#include "common/types.hpp"

namespace pasta {

/// OpenMP loop schedule choices used by the kernels.
enum class Schedule { kStatic, kDynamic, kGuided };

/// Returns the number of threads parallel_for will use.
int num_threads();

/// Overrides the worker count (0 restores the OpenMP default).
void set_num_threads(int n);

/// Runs `body(i)` for i in [begin, end) in parallel with the requested
/// schedule.  `chunk` of 0 uses the schedule's default chunking.
void parallel_for(Size begin, Size end, Schedule schedule,
                  const std::function<void(Size)>& body, Size chunk = 0);

/// Runs `body(first, last)` over contiguous index ranges, one call per
/// chunk, in parallel.  Lower overhead than per-index dispatch; used by the
/// streaming kernels (TEW, TS) where the body is a few flops.
void parallel_for_ranges(Size begin, Size end,
                         const std::function<void(Size, Size)>& body);

/// Atomically adds `delta` to `*target` (the paper's "omp atomic" /
/// "atomicAdd" used to protect the MTTKRP output matrix).
void atomic_add(Value* target, Value delta);

/// Parallel sum reduction of `term(i)` over [begin, end).
double parallel_sum(Size begin, Size end,
                    const std::function<double(Size)>& term);

}  // namespace pasta
