/// \file
/// Zero-overhead parallel runtime over OpenMP.
///
/// The paper's CPU kernels are OpenMP-parallel with configurable schedules
/// (§V-A2).  This layer is a set of header-only templates: each entry point
/// takes its callable by value as a template parameter, so the body inlines
/// into the OpenMP loop and the hot path compiles down to a plain
/// `#pragma omp parallel for` — no type-erased dispatch per index.  The
/// scheduling decision stays explicit at each call site, and tests can pin
/// the thread count for deterministic runs.
#pragma once

#include <omp.h>

#include <algorithm>
#include <cstddef>

#include "common/types.hpp"

namespace pasta {

/// OpenMP loop schedule choices used by the kernels.
enum class Schedule { kStatic, kDynamic, kGuided };

/// Returns the number of threads parallel_for will use.  Three guards
/// stack on top of the OpenMP default: the process-wide override
/// (set_num_threads), the calling thread's budget (ThreadBudgetScope),
/// and a nested-region check — a parallel_for issued from *inside*
/// another parallel_for (or any OpenMP parallel region) returns 1 and
/// degrades to serial.  Without the last two, a serving worker pool
/// whose jobs each call parallel_for would oversubscribe the machine
/// with up to threads² workers.
int num_threads();

/// Overrides the worker count (0 restores the OpenMP default).
void set_num_threads(int n);

/// The calling thread's worker budget: a cap on num_threads() that
/// binds only on this thread (0 = uncapped).  A serving worker arms it
/// once per job so intra-kernel parallel_for calls share the machine
/// with the other concurrently-running jobs instead of each claiming a
/// full OpenMP team.
int thread_budget();

/// Sets the calling thread's budget (0 removes it).  Values are clamped
/// at 1 from below by num_threads(), never above the OpenMP default.
void set_thread_budget(int n);

/// RAII per-thread budget: arms `n` for the scope, restores the
/// previous budget on exit.  The intended spelling at job boundaries.
class ThreadBudgetScope {
  public:
    explicit ThreadBudgetScope(int n) : prev_(thread_budget())
    {
        set_thread_budget(n);
    }
    ThreadBudgetScope(const ThreadBudgetScope&) = delete;
    ThreadBudgetScope& operator=(const ThreadBudgetScope&) = delete;
    ~ThreadBudgetScope() { set_thread_budget(prev_); }

  private:
    int prev_;
};

/// Id of the calling worker inside a parallel region, in
/// [0, num_threads()); 0 outside any region.  Kernels that keep
/// per-thread private buffers (privatized MTTKRP, CSF scratch) index
/// them with this — worker identity, unlike chunk identity, is stable
/// under every schedule.
inline int
worker_id()
{
    return omp_get_thread_num();
}

/// Runs `body(i)` for i in [begin, end) in parallel with the requested
/// schedule.  `chunk` of 0 uses the schedule's default chunking.
template <typename Body>
void
parallel_for(Size begin, Size end, Schedule schedule, Body body,
             Size chunk = 0)
{
    if (begin >= end)
        return;
    const auto b = static_cast<long long>(begin);
    const auto e = static_cast<long long>(end);
    const int nt = num_threads();
    const auto c = static_cast<long long>(chunk);
    switch (schedule) {
      case Schedule::kStatic:
#pragma omp parallel for num_threads(nt) schedule(static)
        for (long long i = b; i < e; ++i)
            body(static_cast<Size>(i));
        break;
      case Schedule::kDynamic:
        if (c > 0) {
#pragma omp parallel for num_threads(nt) schedule(dynamic, c)
            for (long long i = b; i < e; ++i)
                body(static_cast<Size>(i));
        } else {
#pragma omp parallel for num_threads(nt) schedule(dynamic)
            for (long long i = b; i < e; ++i)
                body(static_cast<Size>(i));
        }
        break;
      case Schedule::kGuided:
#pragma omp parallel for num_threads(nt) schedule(guided)
        for (long long i = b; i < e; ++i)
            body(static_cast<Size>(i));
        break;
    }
}

/// Runs `body(first, last)` over contiguous index ranges, one call per
/// chunk, in parallel.  Lower overhead than per-index dispatch; used by the
/// streaming kernels (TEW, TS) where the body is a few flops.
template <typename Body>
void
parallel_for_ranges(Size begin, Size end, Body body)
{
    if (begin >= end)
        return;
    const Size total = end - begin;
    const int nt = num_threads();
    const Size chunks = std::min<Size>(static_cast<Size>(nt), total);
    const Size per = (total + chunks - 1) / chunks;
#pragma omp parallel for num_threads(nt) schedule(static)
    for (long long c = 0; c < static_cast<long long>(chunks); ++c) {
        const Size first = begin + static_cast<Size>(c) * per;
        const Size last = std::min(end, first + per);
        if (first < last)
            body(first, last);
    }
}

/// Like parallel_for_ranges, but the body also receives the id of the
/// worker executing the chunk: `body(worker, first, last)`.  The worker id
/// — not the chunk id — is the safe key for private buffers: should the
/// runtime deliver fewer threads than requested, one worker may execute
/// several chunks, and chunk-keyed buffers would alias.
template <typename Body>
void
parallel_for_worker_ranges(Size begin, Size end, Body body)
{
    if (begin >= end)
        return;
    const Size total = end - begin;
    const int nt = num_threads();
    const Size chunks = std::min<Size>(static_cast<Size>(nt), total);
    const Size per = (total + chunks - 1) / chunks;
#pragma omp parallel for num_threads(nt) schedule(static)
    for (long long c = 0; c < static_cast<long long>(chunks); ++c) {
        const Size first = begin + static_cast<Size>(c) * per;
        const Size last = std::min(end, first + per);
        if (first < last)
            body(worker_id(), first, last);
    }
}

/// Atomically adds `delta` to `*target` (the paper's "omp atomic" /
/// "atomicAdd" used to protect the MTTKRP output matrix).
inline void
atomic_add(Value* target, Value delta)
{
#pragma omp atomic
    *target += delta;
}

/// Parallel sum reduction of `term(i)` over [begin, end).
template <typename Term>
double
parallel_sum(Size begin, Size end, Term term)
{
    double total = 0.0;
    const auto b = static_cast<long long>(begin);
    const auto e = static_cast<long long>(end);
    const int nt = num_threads();
#pragma omp parallel for num_threads(nt) schedule(static) reduction(+ : total)
    for (long long i = b; i < e; ++i)
        total += term(static_cast<Size>(i));
    return total;
}

}  // namespace pasta
