/// \file
/// Deterministic random number generation.
///
/// Reproducibility is one of the paper's explicit benchmark-design goals
/// (§I: "completeness, diversity, extendibility, reproducibility"), so all
/// randomness in the suite — synthetic generators, test tensors, matrix
/// initialization — flows through this seeded generator.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace pasta {

/// Small, fast, seedable PRNG (xoshiro256**).  We implement it directly
/// rather than using std::mt19937 so that streams are cheap to split and
/// the generated datasets are stable across standard libraries.
class Rng {
  public:
    /// Seeds the generator; identical seeds give identical streams.
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /// Returns the next 64 random bits.
    std::uint64_t next_u64();

    /// Returns a uniformly distributed integer in [0, bound).
    std::uint64_t next_below(std::uint64_t bound);

    /// Returns a uniformly distributed Index in [0, bound).
    Index next_index(Index bound);

    /// Returns a uniform double in [0, 1).
    double next_double();

    /// Returns a uniform float in [0, 1).
    float next_float();

    /// Returns true with probability `p`.
    bool next_bernoulli(double p);

    /// Returns a new generator whose stream is decorrelated from this one.
    /// Used to hand independent streams to parallel workers.
    Rng split();

  private:
    std::uint64_t state_[4];
};

}  // namespace pasta
