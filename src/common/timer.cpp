#include "common/timer.hpp"

#include <algorithm>
#include <limits>

namespace pasta {

RunStats
timed_runs(const std::function<void()>& fn, std::size_t runs,
           std::size_t warmups)
{
    for (std::size_t i = 0; i < warmups; ++i)
        fn();

    RunStats stats;
    stats.runs = runs;
    stats.min_seconds = std::numeric_limits<double>::infinity();
    stats.max_seconds = 0.0;
    double total = 0.0;
    Timer timer;
    for (std::size_t i = 0; i < runs; ++i) {
        timer.start();
        fn();
        double t = timer.elapsed_seconds();
        total += t;
        stats.min_seconds = std::min(stats.min_seconds, t);
        stats.max_seconds = std::max(stats.max_seconds, t);
    }
    stats.mean_seconds = runs > 0 ? total / static_cast<double>(runs) : 0.0;
    return stats;
}

}  // namespace pasta
