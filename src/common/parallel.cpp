#include "common/parallel.hpp"

#include <atomic>

namespace pasta {

namespace {

std::atomic<int> g_thread_override{0};

/// Per-thread cap armed by ThreadBudgetScope (0 = uncapped).  Plain
/// thread_local: only the owning thread ever reads or writes it.
thread_local int t_thread_budget = 0;

}  // namespace

int
num_threads()
{
    // Nested parallelism guard: a parallel_for issued from inside an
    // OpenMP parallel region must not open a second team — two
    // concurrent jobs doing so would put threads² workers on the
    // machine.  Degrade to serial instead.
    if (omp_in_parallel())
        return 1;
    int n = g_thread_override.load(std::memory_order_relaxed);
    if (n <= 0)
        n = omp_get_max_threads();
    const int budget = t_thread_budget;
    if (budget > 0 && budget < n)
        n = budget;
    return n < 1 ? 1 : n;
}

void
set_num_threads(int n)
{
    g_thread_override.store(n, std::memory_order_relaxed);
}

int
thread_budget()
{
    return t_thread_budget;
}

void
set_thread_budget(int n)
{
    t_thread_budget = n > 0 ? n : 0;
}

}  // namespace pasta
