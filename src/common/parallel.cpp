#include "common/parallel.hpp"

#include <atomic>

namespace pasta {

namespace {

std::atomic<int> g_thread_override{0};

}  // namespace

int
num_threads()
{
    int n = g_thread_override.load(std::memory_order_relaxed);
    return n > 0 ? n : omp_get_max_threads();
}

void
set_num_threads(int n)
{
    g_thread_override.store(n, std::memory_order_relaxed);
}

}  // namespace pasta
