#include "common/parallel.hpp"

#include <omp.h>

#include <algorithm>
#include <atomic>

namespace pasta {

namespace {

std::atomic<int> g_thread_override{0};

int
effective_threads()
{
    int n = g_thread_override.load(std::memory_order_relaxed);
    return n > 0 ? n : omp_get_max_threads();
}

}  // namespace

int
num_threads()
{
    return effective_threads();
}

void
set_num_threads(int n)
{
    g_thread_override.store(n, std::memory_order_relaxed);
}

void
parallel_for(Size begin, Size end, Schedule schedule,
             const std::function<void(Size)>& body, Size chunk)
{
    if (begin >= end)
        return;
    const auto b = static_cast<long long>(begin);
    const auto e = static_cast<long long>(end);
    const int nt = effective_threads();
    const auto c = static_cast<long long>(chunk);
    switch (schedule) {
      case Schedule::kStatic:
#pragma omp parallel for num_threads(nt) schedule(static)
        for (long long i = b; i < e; ++i)
            body(static_cast<Size>(i));
        break;
      case Schedule::kDynamic:
        if (c > 0) {
#pragma omp parallel for num_threads(nt) schedule(dynamic, 64)
            for (long long i = b; i < e; ++i)
                body(static_cast<Size>(i));
        } else {
#pragma omp parallel for num_threads(nt) schedule(dynamic)
            for (long long i = b; i < e; ++i)
                body(static_cast<Size>(i));
        }
        break;
      case Schedule::kGuided:
#pragma omp parallel for num_threads(nt) schedule(guided)
        for (long long i = b; i < e; ++i)
            body(static_cast<Size>(i));
        break;
    }
}

void
parallel_for_ranges(Size begin, Size end,
                    const std::function<void(Size, Size)>& body)
{
    if (begin >= end)
        return;
    const Size total = end - begin;
    const int nt = effective_threads();
    const Size chunks = std::min<Size>(static_cast<Size>(nt), total);
    const Size per = (total + chunks - 1) / chunks;
#pragma omp parallel for num_threads(nt) schedule(static)
    for (long long c = 0; c < static_cast<long long>(chunks); ++c) {
        const Size first = begin + static_cast<Size>(c) * per;
        const Size last = std::min(end, first + per);
        if (first < last)
            body(first, last);
    }
}

void
atomic_add(Value* target, Value delta)
{
#pragma omp atomic
    *target += delta;
}

double
parallel_sum(Size begin, Size end, const std::function<double(Size)>& term)
{
    double total = 0.0;
    const auto b = static_cast<long long>(begin);
    const auto e = static_cast<long long>(end);
    const int nt = effective_threads();
#pragma omp parallel for num_threads(nt) schedule(static) reduction(+ : total)
    for (long long i = b; i < e; ++i)
        total += term(static_cast<Size>(i));
    return total;
}

}  // namespace pasta
