/// \file
/// Fundamental scalar and index types shared by every PASTA++ module.
///
/// The paper (Table I) fixes the data-type conventions the whole suite is
/// analyzed under: 32-bit indices, single-precision (32-bit) floating-point
/// values, and 8-bit element indices inside HiCOO blocks.  We centralize
/// those choices here so the cost model in `analysis/` and the formats in
/// `core/` can never drift apart.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace pasta {

/// Coordinate index along one tensor mode (paper: 32-bit indices).
using Index = std::uint32_t;

/// Element index inside a HiCOO block (paper: 8-bit element indices).
using EIndex = std::uint8_t;

/// Block index of a HiCOO block along one mode (32-bit like COO indices).
using BIndex = std::uint32_t;

/// Non-zero value (paper: single-precision floating point).
using Value = float;

/// Count of non-zeros, fibers, or blocks.  Tensors in the paper reach 144M
/// non-zeros, and index arithmetic over products of dimensions overflows
/// 32 bits, so counts are 64-bit.
using Size = std::size_t;

/// A full coordinate of one non-zero: one Index per mode.
using Coordinate = std::vector<Index>;

/// Number of bytes of one COO coordinate component or value (both 32-bit).
inline constexpr Size kIndexBytes = sizeof(Index);
inline constexpr Size kValueBytes = sizeof(Value);
inline constexpr Size kEIndexBytes = sizeof(EIndex);

/// Sentinel for "no mode selected".
inline constexpr Size kNoMode = std::numeric_limits<Size>::max();

/// Largest representable coordinate.
inline constexpr Index kMaxIndex = std::numeric_limits<Index>::max();

}  // namespace pasta
