#include "common/fsutil.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "common/error.hpp"

namespace pasta::fsutil {

bool
fsync_fd(int fd)
{
    if (fd < 0)
        return false;
    int rc;
    do {
        rc = ::fsync(fd);
    } while (rc != 0 && errno == EINTR);
    return rc == 0;
}

bool
fsync_path(const std::string& path)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return false;
    const bool ok = fsync_fd(fd);
    ::close(fd);
    return ok;
}

bool
fsync_parent_dir(const std::string& path)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::path dir(path);
    if (!fs::is_directory(dir, ec)) {
        dir = dir.parent_path();
        if (dir.empty())
            dir = ".";
    }
    // O_DIRECTORY guards against a racing replacement by a plain file.
    const int fd =
        ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0)
        return false;
    const bool ok = fsync_fd(fd);
    ::close(fd);
    return ok;
}

void
write_file_durable(const std::string& path, const std::string& contents)
{
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    PASTA_CHECK_MSG(fd >= 0, "cannot open " << tmp << " for writing");
    std::size_t off = 0;
    while (off < contents.size()) {
        const ssize_t n =
            ::write(fd, contents.data() + off, contents.size() - off);
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0) {
            ::close(fd);
            ::unlink(tmp.c_str());
            throw PastaError("write to " + tmp + " failed");
        }
        off += static_cast<std::size_t>(n);
    }
    const bool synced = fsync_fd(fd);
    ::close(fd);
    if (!synced) {
        ::unlink(tmp.c_str());
        throw PastaError("fsync of " + tmp + " failed");
    }
    PASTA_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                    "cannot publish " << path);
    fsync_parent_dir(path);
}

}  // namespace pasta::fsutil
