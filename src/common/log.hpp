/// \file
/// Minimal leveled logging used by drivers, generators, and the bench
/// harness.  Kernels themselves never log (they are timed).
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace pasta {

/// Severity levels, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

namespace detail {

/// The global threshold.  An inline atomic so the PASTA_LOG level check
/// is a single relaxed load at every call site.
inline std::atomic<LogLevel> g_log_threshold{LogLevel::kInfo};

}  // namespace detail

/// Returns the global threshold; messages below it are dropped.
/// Thread-safe (relaxed atomic load).
inline LogLevel
log_threshold()
{
    return detail::g_log_threshold.load(std::memory_order_relaxed);
}

/// Sets the global threshold.  Thread-safe: callable from any thread at
/// any time; concurrent loggers observe the new level on their next
/// message.
inline void
set_log_threshold(LogLevel level)
{
    detail::g_log_threshold.store(level, std::memory_order_relaxed);
}

/// Applies $PASTA_LOG ("debug"/"info"/"warn"/"error") to the global
/// threshold; unknown or unset values leave it untouched.  Drivers call
/// this once at startup so long suite runs can be quieted.
void set_log_threshold_from_env();

/// Emits one line to stderr with a level prefix.  Thread-safe.
void log_message(LogLevel level, const std::string& message);

namespace detail {

/// Builds one log line and emits it on destruction.
class LogLine {
  public:
    explicit LogLine(LogLevel level) : level_(level) {}
    LogLine(const LogLine&) = delete;
    LogLine& operator=(const LogLine&) = delete;
    ~LogLine() { log_message(level_, stream_.str()); }

    template <typename T>
    LogLine& operator<<(const T& v)
    {
        stream_ << v;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream stream_;
};

}  // namespace detail

// Statement form: `PASTA_LOG_INFO << "...";`.  The empty-braces true
// branch swallows the whole statement (message operands are never
// evaluated) when the level is below the threshold.
#define PASTA_LOG(level)                                                     \
    if (::pasta::LogLevel::level < ::pasta::log_threshold()) {               \
    } else                                                                   \
        ::pasta::detail::LogLine(::pasta::LogLevel::level)

#define PASTA_LOG_DEBUG PASTA_LOG(kDebug)
#define PASTA_LOG_INFO PASTA_LOG(kInfo)
#define PASTA_LOG_WARN PASTA_LOG(kWarn)
#define PASTA_LOG_ERROR PASTA_LOG(kError)

}  // namespace pasta
