/// \file
/// Morton (Z-order) encoding of multi-mode block coordinates.
///
/// HiCOO sorts tensor blocks in Morton order (paper §III-D1: "data locality
/// is enhanced due to blocking and Morton order sorting implied by the
/// HiCOO format").  The encoding interleaves the bits of the per-mode block
/// indices so that nearby blocks in the tensor stay nearby in memory.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace pasta {

/// 128-bit Morton key: enough for 4 modes x 32-bit block indices.
struct MortonKey {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    friend bool operator<(const MortonKey& a, const MortonKey& b)
    {
        return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
    }
    friend bool operator==(const MortonKey& a, const MortonKey& b)
    {
        return a.hi == b.hi && a.lo == b.lo;
    }
};

/// Interleaves the bits of `coords[0..order)` (little-endian bit 0 of mode 0
/// first) into a 128-bit Morton key.  Works for any order >= 1; for order
/// above 4, higher bits that overflow 128 bits are dropped, which only
/// weakens locality, never correctness (the key is used for sorting only).
inline MortonKey
morton_encode(const Index* coords, Size order)
{
    MortonKey key;
    if (order == 0)
        return key;
    // bit position b of mode m lands at interleaved position b*order + m.
    for (Size bit = 0; bit < 32; ++bit) {
        for (Size m = 0; m < order; ++m) {
            const std::uint64_t src = (coords[m] >> bit) & 1ULL;
            const Size pos = bit * order + m;
            if (pos < 64)
                key.lo |= src << pos;
            else if (pos < 128)
                key.hi |= src << (pos - 64);
        }
    }
    return key;
}

/// Convenience overload.
inline MortonKey
morton_encode(const Coordinate& coords)
{
    return morton_encode(coords.data(), coords.size());
}

}  // namespace pasta
