#include "common/membudget.hpp"

#include <cstdlib>
#include <sstream>

#include "common/log.hpp"
#include "harness/fault.hpp"
#include "obs/counters.hpp"

namespace pasta::membudget {

namespace {

/// Parses "$PASTA_MEM_BYTES": a non-negative integer with an optional
/// K/M/G binary suffix (case-insensitive).  Throws PastaError on
/// malformed input; returns 0 for "0" (unlimited).
std::uint64_t
parse_mem_bytes(const char* text)
{
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    std::uint64_t scale = 1;
    if (*end == 'k' || *end == 'K')
        scale = 1ULL << 10, ++end;
    else if (*end == 'm' || *end == 'M')
        scale = 1ULL << 20, ++end;
    else if (*end == 'g' || *end == 'G')
        scale = 1ULL << 30, ++end;
    PASTA_CHECK_MSG(*text && *end == '\0' &&
                        v <= (~0ULL) / scale,
                    "PASTA_MEM_BYTES='" << text
                                        << "' must be a byte count with an "
                                           "optional K/M/G suffix");
    return static_cast<std::uint64_t>(v) * scale;
}

}  // namespace

MemGovernor&
MemGovernor::instance()
{
    static MemGovernor governor;
    return governor;
}

void
MemGovernor::configure(std::uint64_t budget_bytes)
{
    budget_.store(budget_bytes, std::memory_order_relaxed);
    degraded_.store(false, std::memory_order_relaxed);
    if (budget_bytes != 0)
        PASTA_LOG_INFO << "memory governor armed: budget " << budget_bytes
                       << " bytes";
}

void
MemGovernor::configure_from_env()
{
    const char* s = std::getenv("PASTA_MEM_BYTES");
    if (!s || !*s)
        return;
    configure(parse_mem_bytes(s));
}

void
MemGovernor::note_peak(std::uint64_t level) const
{
    std::uint64_t seen = peak_.load(std::memory_order_relaxed);
    while (level > seen &&
           !peak_.compare_exchange_weak(seen, level,
                                        std::memory_order_relaxed))
        ;
    obs::record_max("mem.peak", level);
}

void
MemGovernor::reserve(std::uint64_t bytes, const char* what)
{
    harness::fault_point("mem.reserve");
    const std::uint64_t limit = budget();
    std::uint64_t current = reserved_.load(std::memory_order_relaxed);
    for (;;) {
        const std::uint64_t next = current + bytes;
        if (limit != 0 && (next > limit || next < current)) {
            std::ostringstream oss;
            oss << "memory budget exceeded reserving " << bytes
                << " bytes for " << what << ": " << current << " of "
                << limit << " bytes already reserved (PASTA_MEM_BYTES)";
            throw HostOomError(oss.str());
        }
        if (reserved_.compare_exchange_weak(current, next,
                                            std::memory_order_relaxed))
            break;
    }
    note_peak(current + bytes);
    obs::add("mem.reserved", bytes);
}

bool
MemGovernor::try_reserve(std::uint64_t bytes, const char* what)
{
    const std::uint64_t limit = budget();
    std::uint64_t current = reserved_.load(std::memory_order_relaxed);
    for (;;) {
        const std::uint64_t next = current + bytes;
        if (limit != 0 && (next > limit || next < current)) {
            PASTA_LOG_DEBUG << "memory governor: " << what << " needs "
                            << bytes << " bytes, " << (limit - current)
                            << " available; declining";
            return false;
        }
        if (reserved_.compare_exchange_weak(current, next,
                                            std::memory_order_relaxed))
            break;
    }
    note_peak(current + bytes);
    obs::add("mem.reserved", bytes);
    return true;
}

void
MemGovernor::release(std::uint64_t bytes)
{
    std::uint64_t current = reserved_.load(std::memory_order_relaxed);
    for (;;) {
        const std::uint64_t next = current >= bytes ? current - bytes : 0;
        if (reserved_.compare_exchange_weak(current, next,
                                            std::memory_order_relaxed))
            break;
    }
}

bool
MemGovernor::would_fit(std::uint64_t bytes) const
{
    const std::uint64_t limit = budget();
    if (limit == 0)
        return true;
    const std::uint64_t current = reserved_.load(std::memory_order_relaxed);
    return current + bytes >= current && current + bytes <= limit;
}

void
MemGovernor::check(std::uint64_t bytes, const char* what) const
{
    const std::uint64_t current = reserved_.load(std::memory_order_relaxed);
    const std::uint64_t limit = budget();
    if (limit != 0 && (current + bytes < current || current + bytes > limit)) {
        std::ostringstream oss;
        oss << "memory budget exceeded: " << what << " needs " << bytes
            << " bytes with " << current << " of " << limit
            << " already reserved (PASTA_MEM_BYTES)";
        throw HostOomError(oss.str());
    }
    // Only a granted probe is a prospective peak; a rejected working set
    // never materializes, so recording it would break peak <= budget.
    note_peak(current + bytes);
}

void
MemGovernor::reset_peak()
{
    peak_.store(reserved_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
}

}  // namespace pasta::membudget
