#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace pasta {

namespace {

std::mutex g_log_mutex;

const char*
level_tag(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kError: return "error";
    }
    return "?";
}

}  // namespace

void
set_log_threshold_from_env()
{
    const char* s = std::getenv("PASTA_LOG");
    if (!s)
        return;
    const std::string v(s);
    if (v == "debug")
        set_log_threshold(LogLevel::kDebug);
    else if (v == "info")
        set_log_threshold(LogLevel::kInfo);
    else if (v == "warn")
        set_log_threshold(LogLevel::kWarn);
    else if (v == "error")
        set_log_threshold(LogLevel::kError);
}

void
log_message(LogLevel level, const std::string& message)
{
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "[pasta %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace pasta
