#include "common/rng.hpp"

#include "common/error.hpp"

namespace pasta {

namespace {

/// SplitMix64, used to expand the seed into the xoshiro state.
std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto& w : state_)
        w = splitmix64(s);
}

std::uint64_t
Rng::next_u64()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::next_below(std::uint64_t bound)
{
    PASTA_ASSERT(bound > 0);
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next_u64();
        if (r >= threshold)
            return r % bound;
    }
}

Index
Rng::next_index(Index bound)
{
    return static_cast<Index>(next_below(bound));
}

double
Rng::next_double()
{
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float
Rng::next_float()
{
    return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
}

bool
Rng::next_bernoulli(double p)
{
    return next_double() < p;
}

Rng
Rng::split()
{
    return Rng(next_u64());
}

}  // namespace pasta
