/// \file
/// Process-wide memory governor: bounded-memory execution for tensors
/// bigger than RAM.
///
/// Every format and kernel in the suite historically assumed the whole
/// tensor resident, so a FROSTT-scale input died with an uncatchable
/// bad_alloc.  The governor turns that cliff into a policy decision: a
/// budget is armed via $PASTA_MEM_BYTES, large working sets *reserve*
/// against it before allocating, and a reservation that would exceed the
/// budget raises HostOomError — a catchable, classifiable sibling of the
/// simulated GPU's DeviceOomError — instead of letting the allocator
/// abort the campaign.  Callers with a streaming alternative (the
/// src/core/stream out-of-core kernels) treat the rejection as a routing
/// signal; the trial harness treats it as a *degradable* failure class
/// and retries once in degraded mode (membudget::degraded() == true), in
/// which budget-aware paths must pick streaming/smaller chunks.
///
/// Accounting model.  The governor meters *scoped working sets*, not
/// every byte the allocator hands out: the reservation API is explicit
/// (reserve/release or the RAII MemReservation), and the instrumented
/// choke points are the places campaigns actually die — tensor loads and
/// materialization (io/binary_io), conversion staging (core/convert),
/// sort scratch (core/sort_radix), merge scratch (core/merge), CSF pool
/// builds, dense factor allocation, privatized MTTKRP buffers, and the
/// out-of-core chunk buffers (core/stream).  Long-lived tensors are
/// metered while being materialized; lightweight `check()` probes guard
/// the remaining bulk resizes.  High-water marks are exported through
/// the PR-5 counter registry ("mem.peak" via record_max, "mem.reserved"
/// as a running total of granted bytes) and through peak() for the
/// bench harness's per-trial mem_peak column.
///
/// Thread safety: all mutators are atomic; reserve/release may be called
/// from any thread.  The fault point "mem.reserve" (PASTA_FAULT) fires
/// inside reserve() so chaos tests can exercise every consumer.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace pasta::membudget {

/// Thrown when a reservation would exceed the armed budget.  Derives
/// from PastaError so existing guards catch it; the trial harness
/// classifies it separately ("oom", degradable) and retries once in
/// degraded mode before journaling a terminal failure.
class HostOomError : public PastaError {
  public:
    explicit HostOomError(const std::string& what) : PastaError(what) {}
};

/// Process-wide tracking allocator / reservation ledger.  Disabled
/// (budget 0 = unlimited) until configured; all operations still track
/// reserved/peak so reports work without a budget.
class MemGovernor {
  public:
    static MemGovernor& instance();

    /// Arms a budget in bytes (0 disarms: reservations always succeed).
    /// Resets the degraded flag; reserved/peak are left untouched so a
    /// reconfiguration mid-run cannot corrupt the ledger.
    void configure(std::uint64_t budget_bytes);

    /// Arms from $PASTA_MEM_BYTES (plain bytes, or with a K/M/G binary
    /// suffix, e.g. "512M").  No-op when unset or empty; malformed
    /// values throw PastaError (strict env validation).
    void configure_from_env();

    /// The armed budget in bytes; 0 means unlimited.
    std::uint64_t budget() const
    {
        return budget_.load(std::memory_order_relaxed);
    }

    /// True when a finite budget is armed.
    bool enabled() const { return budget() != 0; }

    /// Claims `bytes` for `what`; throws HostOomError naming the
    /// reservation when the budget would be exceeded.  Fires the
    /// "mem.reserve" fault point first so PASTA_FAULT can chaos-test
    /// every consumer.
    void reserve(std::uint64_t bytes, const char* what);

    /// Like reserve() but returns false instead of throwing (routing
    /// probes: "does the in-memory path fit?").  Does not fire the
    /// fault point — probes are decisions, not commitments.
    bool try_reserve(std::uint64_t bytes, const char* what);

    /// Returns `bytes` to the ledger (never throws; clamps at zero so a
    /// double release cannot underflow into a bogus huge reservation).
    void release(std::uint64_t bytes);

    /// Probes whether `bytes` more would fit right now, without
    /// reserving.  Always true when no budget is armed.
    bool would_fit(std::uint64_t bytes) const;

    /// Checks that `bytes` more would fit and records the prospective
    /// peak, without holding a reservation: the guard used at bulk
    /// resize choke points where the allocation's lifetime is owned by
    /// a container.  Throws HostOomError when it would not fit.
    void check(std::uint64_t bytes, const char* what) const;

    /// Currently reserved bytes.
    std::uint64_t reserved() const
    {
        return reserved_.load(std::memory_order_relaxed);
    }

    /// High-water mark of reserved() (plus check() probes) since the
    /// last reset_peak().
    std::uint64_t peak() const
    {
        return peak_.load(std::memory_order_relaxed);
    }

    /// Restarts peak tracking from the current reserved level (the
    /// bench harness calls this per trial for the mem_peak column).
    void reset_peak();

    /// Degraded mode: armed by the trial harness after a HostOomError
    /// so the retry's budget-aware paths choose streaming/smaller
    /// chunks instead of re-attempting the in-memory route.
    void set_degraded(bool on)
    {
        degraded_.store(on, std::memory_order_relaxed);
    }
    bool degraded() const
    {
        return degraded_.load(std::memory_order_relaxed);
    }

  private:
    MemGovernor() = default;
    void note_peak(std::uint64_t level) const;

    std::atomic<std::uint64_t> budget_{0};
    std::atomic<std::uint64_t> reserved_{0};
    mutable std::atomic<std::uint64_t> peak_{0};
    std::atomic<bool> degraded_{false};
};

/// RAII reservation: claims in the constructor, returns in the
/// destructor.  Movable, not copyable; an empty (default) reservation
/// releases nothing.
class MemReservation {
  public:
    MemReservation() = default;

    /// Reserves `bytes` (throws HostOomError over budget).
    MemReservation(std::uint64_t bytes, const char* what)
        : bytes_(bytes)
    {
        MemGovernor::instance().reserve(bytes, what);
    }

    MemReservation(const MemReservation&) = delete;
    MemReservation& operator=(const MemReservation&) = delete;

    MemReservation(MemReservation&& other) noexcept : bytes_(other.bytes_)
    {
        other.bytes_ = 0;
    }
    MemReservation& operator=(MemReservation&& other) noexcept
    {
        if (this != &other) {
            release();
            bytes_ = other.bytes_;
            other.bytes_ = 0;
        }
        return *this;
    }

    ~MemReservation() { release(); }

    /// Bytes currently held (0 after release/move-from).
    std::uint64_t bytes() const { return bytes_; }

    /// Returns the bytes early.
    void release()
    {
        if (bytes_ != 0) {
            MemGovernor::instance().release(bytes_);
            bytes_ = 0;
        }
    }

  private:
    std::uint64_t bytes_ = 0;
};

/// Footprint of a COO tensor's arrays: nnz x (order index columns + one
/// value column), 4 bytes each (paper Table I conventions).
inline std::uint64_t
coo_bytes(std::uint64_t order, std::uint64_t nnz)
{
    return nnz * (order + 1) * 4;
}

/// Convenience forwarders to the process-wide governor.
inline void
reserve(std::uint64_t bytes, const char* what)
{
    MemGovernor::instance().reserve(bytes, what);
}

inline void
release(std::uint64_t bytes)
{
    MemGovernor::instance().release(bytes);
}

inline void
check(std::uint64_t bytes, const char* what)
{
    MemGovernor::instance().check(bytes, what);
}

inline bool
would_fit(std::uint64_t bytes)
{
    return MemGovernor::instance().would_fit(bytes);
}

inline bool
degraded()
{
    return MemGovernor::instance().degraded();
}

}  // namespace pasta::membudget
