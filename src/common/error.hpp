/// \file
/// Error handling for PASTA++.
///
/// Following the gem5 fatal()/panic() split: user-caused conditions (bad
/// file, mismatched shapes passed to a kernel) throw PastaError, which a
/// driver can catch and report; internal invariant violations use
/// PASTA_ASSERT and abort, because they indicate a bug in the suite itself.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pasta {

/// Exception thrown for user-level errors: malformed input files,
/// shape mismatches, out-of-range modes, and similar recoverable problems.
class PastaError : public std::runtime_error {
  public:
    explicit PastaError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);

}  // namespace detail

/// Throws PastaError when `cond` is false, reporting the failed expression.
#define PASTA_CHECK(cond)                                                    \
    do {                                                                     \
        if (!(cond)) {                                                       \
            std::ostringstream pasta_oss_;                                   \
            pasta_oss_ << "check failed: " #cond " (" << __FILE__ << ":"     \
                       << __LINE__ << ")";                                   \
            throw ::pasta::PastaError(pasta_oss_.str());                     \
        }                                                                    \
    } while (0)

/// Throws PastaError when `cond` is false, with a streamed message, e.g.
///   PASTA_CHECK_MSG(mode < order(), "mode " << mode << " out of range");
#define PASTA_CHECK_MSG(cond, msg)                                           \
    do {                                                                     \
        if (!(cond)) {                                                       \
            std::ostringstream pasta_oss_;                                   \
            pasta_oss_ << msg << " [" #cond " at " << __FILE__ << ":"        \
                       << __LINE__ << "]";                                   \
            throw ::pasta::PastaError(pasta_oss_.str());                     \
        }                                                                    \
    } while (0)

/// Internal invariant check; aborts on failure (a bug in PASTA++ itself).
#define PASTA_ASSERT(expr)                                                   \
    do {                                                                     \
        if (!(expr))                                                         \
            ::pasta::detail::assert_fail(#expr, __FILE__, __LINE__, "");     \
    } while (0)

/// Internal invariant check with an explanatory message.
#define PASTA_ASSERT_MSG(expr, msg)                                          \
    do {                                                                     \
        if (!(expr))                                                         \
            ::pasta::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));  \
    } while (0)

}  // namespace pasta
