/// \file
/// Small POSIX filesystem durability helpers shared by the journal, the
/// stream checkpoints, and the campaign lease/marker files.
///
/// The crash model these serve: a worker process can be SIGKILL'd (or
/// the host can lose power) between any two syscalls, and the state
/// files the supervisor resumes from must either be absent or complete.
/// The standard recipe is write-temp + fsync(file) + rename + fsync(dir);
/// the directory fsync is the step that makes the *rename itself*
/// durable — without it a power loss can resurrect the old name.
#pragma once

#include <string>

namespace pasta::fsutil {

/// fsync(2) an open descriptor; returns false (never throws) on failure
/// so callers on best-effort paths can log and continue.
bool fsync_fd(int fd);

/// Opens `path` read-only, fsyncs it, closes.  Returns false when the
/// file cannot be opened or synced.
bool fsync_path(const std::string& path);

/// fsyncs the directory containing `path` (or `path` itself when it is
/// a directory), making a completed rename/unlink/create in it durable.
/// Returns false when the directory cannot be opened or synced.
bool fsync_parent_dir(const std::string& path);

/// Durable small-file write: temp file + fsync + rename + parent-dir
/// fsync.  Throws PastaError when any step fails (these files are tiny
/// control records — a failed write is a real error, not best-effort).
void write_file_durable(const std::string& path,
                        const std::string& contents);

}  // namespace pasta::fsutil
