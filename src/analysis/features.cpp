#include "analysis/features.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "common/error.hpp"
#include "core/convert.hpp"
#include "core/fibers.hpp"

namespace pasta {

TensorFeatures
extract_features(const CooTensor& x, unsigned block_bits)
{
    TensorFeatures features;
    features.order = x.order();
    features.nnz = x.nnz();
    double capacity = 1.0;
    for (Index d : x.dims())
        capacity *= static_cast<double>(d);
    features.density =
        capacity > 0 ? static_cast<double>(x.nnz()) / capacity : 0;

    for (Size mode = 0; mode < x.order(); ++mode) {
        ModeFeatures mf;
        mf.dim = x.dim(mode);
        if (x.nnz() > 0) {
            CooTensor sorted = x;
            sorted.sort_fibers_last(mode);
            const FiberPartition fibers = compute_fibers(sorted, mode);
            mf.num_fibers = fibers.num_fibers();
            mf.max_fiber_nnz = fibers.max_fiber_length();
            mf.mean_fiber_nnz =
                static_cast<double>(x.nnz()) /
                static_cast<double>(std::max<Size>(1, mf.num_fibers));
            double var = 0.0;
            for (Size f = 0; f < fibers.num_fibers(); ++f) {
                const double d =
                    static_cast<double>(fibers.fiber_length(f)) -
                    mf.mean_fiber_nnz;
                var += d * d;
            }
            if (mf.num_fibers > 0) {
                var /= static_cast<double>(mf.num_fibers);
                mf.cv_fiber_nnz = mf.mean_fiber_nnz > 0
                                      ? std::sqrt(var) / mf.mean_fiber_nnz
                                      : 0;
            }
            std::unordered_set<Index> used(x.mode_indices(mode).begin(),
                                           x.mode_indices(mode).end());
            mf.used_indices = used.size();
        }
        features.modes.push_back(mf);
    }

    if (x.nnz() > 0) {
        const HiCooTensor h = coo_to_hicoo(x, block_bits);
        features.hicoo_blocks = h.num_blocks();
        features.mean_block_nnz = h.mean_block_nnz();
        features.max_block_nnz = h.max_block_nnz();

        double mean = 0.0;
        for (Value v : x.values())
            mean += v;
        mean /= static_cast<double>(x.nnz());
        double var = 0.0;
        for (Value v : x.values()) {
            const double d = static_cast<double>(v) - mean;
            var += d * d;
        }
        features.value_mean = mean;
        features.value_std =
            std::sqrt(var / static_cast<double>(x.nnz()));
    }
    return features;
}

std::string
features_report(const TensorFeatures& features)
{
    std::ostringstream oss;
    oss << "order " << features.order << ", nnz " << features.nnz
        << ", density " << features.density << "\n";
    for (Size m = 0; m < features.modes.size(); ++m) {
        const ModeFeatures& mf = features.modes[m];
        oss << "  mode " << m << ": dim " << mf.dim << ", fibers "
            << mf.num_fibers << " (mean " << mf.mean_fiber_nnz << ", max "
            << mf.max_fiber_nnz << ", cv " << mf.cv_fiber_nnz
            << "), used " << mf.used_indices << "\n";
    }
    oss << "  hicoo: " << features.hicoo_blocks << " blocks, mean "
        << features.mean_block_nnz << " nnz/block, max "
        << features.max_block_nnz << "\n";
    oss << "  values: mean " << features.value_mean << ", std "
        << features.value_std;
    return oss.str();
}

namespace {

double
log_ratio(double a, double b)
{
    const double lo = 1e-300;
    return std::abs(std::log10(std::max(a, lo)) -
                    std::log10(std::max(b, lo)));
}

}  // namespace

double
features_distance(const TensorFeatures& a, const TensorFeatures& b)
{
    PASTA_CHECK_MSG(a.order == b.order,
                    "features_distance: order mismatch");
    double total = log_ratio(a.density, b.density);
    for (Size m = 0; m < a.order; ++m)
        total += log_ratio(a.modes[m].mean_fiber_nnz,
                           b.modes[m].mean_fiber_nnz);
    total += log_ratio(a.mean_block_nnz, b.mean_block_nnz);
    return total / static_cast<double>(a.order + 2);
}

}  // namespace pasta
