#include "analysis/cost_model.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/convert.hpp"
#include "core/fibers.hpp"

namespace pasta {

const char*
kernel_name(Kernel k)
{
    switch (k) {
      case Kernel::kTew: return "TEW";
      case Kernel::kTs: return "TS";
      case Kernel::kTtv: return "TTV";
      case Kernel::kTtm: return "TTM";
      case Kernel::kMttkrp: return "MTTKRP";
    }
    return "?";
}

const char*
format_name(Format f)
{
    return f == Format::kCoo ? "COO" : "HiCOO";
}

TensorStats
compute_stats(const CooTensor& x, Size mode, unsigned block_bits)
{
    TensorStats stats;
    stats.order = x.order();
    stats.nnz = x.nnz();
    stats.block_size = Index{1} << block_bits;
    if (mode != kNoMode) {
        CooTensor sorted = x;
        sorted.sort_fibers_last(mode);
        stats.num_fibers = compute_fibers(sorted, mode).num_fibers();
    }
    stats.num_blocks = coo_to_hicoo(x, block_bits).num_blocks();
    return stats;
}

KernelCost
kernel_cost(Kernel kernel, Format format, const TensorStats& stats,
            Size rank)
{
    PASTA_CHECK_MSG(stats.order >= 1 && stats.nnz >= 1,
                    "cost model needs a non-empty tensor");
    const double m = static_cast<double>(stats.nnz);
    const double mf = static_cast<double>(stats.num_fibers);
    const double nb = static_cast<double>(stats.num_blocks);
    const double n = static_cast<double>(stats.order);
    const double r = static_cast<double>(rank);
    const double block = static_cast<double>(stats.block_size);

    KernelCost cost;
    switch (kernel) {
      case Kernel::kTew:
        // Three value streams; identical for COO and HiCOO.
        cost.flops = m;
        cost.bytes = 12 * m;
        break;
      case Kernel::kTs:
        // Two value streams.
        cost.flops = m;
        cost.bytes = 8 * m;
        break;
      case Kernel::kTtv:
        PASTA_CHECK_MSG(stats.num_fibers > 0,
                        "TTV cost needs fiber stats");
        cost.flops = 2 * m;
        cost.bytes = 12 * m + 12 * mf;
        break;
      case Kernel::kTtm:
        PASTA_CHECK_MSG(stats.num_fibers > 0,
                        "TTM cost needs fiber stats");
        cost.flops = 2 * m * r;
        cost.bytes = format == Format::kCoo
                         ? 4 * m * r + 4 * mf * r + 8 * m + 16 * mf
                         : 4 * m * r + 4 * mf * r + 8 * m + 8 * mf;
        break;
      case Kernel::kMttkrp:
        cost.flops = n * m * r;
        if (format == Format::kCoo) {
            // Table I: 12MR + 16M at N=3 -> 4NMR + 4(N+1)M.
            cost.bytes = 4 * n * m * r + 4 * (n + 1) * m;
        } else {
            PASTA_CHECK_MSG(stats.num_blocks > 0,
                            "HiCOO MTTKRP cost needs block stats");
            // Table I: 12R min{n_b M_B, M} + 7M + 20 n_b at N=3
            //   -> 4NR min{n_b B, M} + (4+N)M + (4N+8) n_b.
            cost.bytes = 4 * n * r * std::min(nb * block, m) +
                         (4 + n) * m + (4 * n + 8) * nb;
        }
        break;
    }
    return cost;
}

double
gflops(double flops, double seconds)
{
    return seconds > 0 ? flops / seconds / 1e9 : 0.0;
}

}  // namespace pasta
