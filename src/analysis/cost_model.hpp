/// \file
/// Table I cost model: work, upper-bound memory access, and operational
/// intensity of every kernel/format pair, generalized from the paper's
/// third-order cubical analysis to arbitrary order.
///
/// All quantities follow Table I's conventions: 32-bit indices, 32-bit
/// values, M non-zeros, M_F mode fibers (I << M_F << M), HiCOO block count
/// n_b with block edge B.  Memory access is the irregular-access upper
/// bound; real runs may beat it via cache reuse (the paper's above-100%
/// efficiencies).
#pragma once

#include <string>

#include "common/types.hpp"
#include "core/coo_tensor.hpp"

namespace pasta {

/// The five benchmark kernels.
enum class Kernel { kTew, kTs, kTtv, kTtm, kMttkrp };

/// The two formats Table I analyzes.
enum class Format { kCoo, kHicoo };

const char* kernel_name(Kernel k);
const char* format_name(Format f);

/// Structural statistics of one tensor feeding the cost formulas.
struct TensorStats {
    Size order = 0;       ///< N
    Size nnz = 0;         ///< M
    Size num_fibers = 0;  ///< M_F for the analyzed mode (TTV/TTM)
    Size num_blocks = 0;  ///< n_b (HiCOO)
    Index block_size = 128;  ///< B (HiCOO edge)
};

/// Computes TensorStats for `x`: M_F for mode `mode` (averaging is up to
/// the caller; pass kNoMode to skip fiber counting) and the HiCOO block
/// count at 2^block_bits.
TensorStats compute_stats(const CooTensor& x, Size mode,
                          unsigned block_bits = 7);

/// Work and memory traffic of one kernel invocation.
struct KernelCost {
    double flops = 0;
    double bytes = 0;

    /// Operational intensity (#Flops / #Bytes).
    double oi() const { return bytes > 0 ? flops / bytes : 0.0; }
};

/// Evaluates the Table I formulas.  `rank` is R for TTM/MTTKRP (ignored
/// by the others).
KernelCost kernel_cost(Kernel kernel, Format format,
                       const TensorStats& stats, Size rank = 16);

/// GFLOPS given flops and measured seconds.
double gflops(double flops, double seconds);

}  // namespace pasta
