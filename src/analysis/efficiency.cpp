#include "analysis/efficiency.hpp"

#include <algorithm>
#include <limits>

#include "roofline/roofline.hpp"

namespace pasta {

double
run_gflops(const MeasuredRun& run)
{
    return gflops(run.cost.flops, run.seconds);
}

double
run_roofline_gflops(const MeasuredRun& run, const MachineSpec& spec)
{
    return roofline_performance_gflops(spec, run.cost.oi());
}

double
run_efficiency(const MeasuredRun& run, const MachineSpec& spec)
{
    const double roof = run_roofline_gflops(run, spec);
    return roof > 0 ? run_gflops(run) / roof : 0.0;
}

double
run_ai(const MeasuredRun& run)
{
    if (run.obs_flops > 0 && run.obs_bytes > 0)
        return run.obs_flops / run.obs_bytes;
    return run.cost.oi();
}

double
run_roofline_pct(const MeasuredRun& run, const MachineSpec& spec)
{
    const double ai = run_ai(run);
    if (ai <= 0)
        return 0.0;
    const double roof = roofline_performance_gflops(spec, ai);
    return roof > 0 ? 100.0 * run_gflops(run) / roof : 0.0;
}

EfficiencySummary
summarize(const std::vector<MeasuredRun>& runs, Kernel kernel,
          Format format, const MachineSpec& spec)
{
    EfficiencySummary summary;
    summary.kernel = kernel;
    summary.format = format;
    summary.min_gflops = std::numeric_limits<double>::infinity();
    double total_gflops = 0;
    double total_eff = 0;
    for (const auto& run : runs) {
        if (run.kernel != kernel || run.format != format)
            continue;
        const double g = run_gflops(run);
        total_gflops += g;
        total_eff += run_efficiency(run, spec);
        summary.min_gflops = std::min(summary.min_gflops, g);
        summary.max_gflops = std::max(summary.max_gflops, g);
        ++summary.runs;
    }
    if (summary.runs > 0) {
        summary.mean_gflops =
            total_gflops / static_cast<double>(summary.runs);
        summary.mean_efficiency =
            total_eff / static_cast<double>(summary.runs);
    } else {
        summary.min_gflops = 0;
    }
    return summary;
}

}  // namespace pasta
