/// \file
/// Tensor feature extraction (paper Observation 5: "Extracting features
/// from real tensors as a basis to create more complete synthetic
/// tensors would be very helpful for sparse tensor research").
///
/// Collects the structural statistics that drive kernel behavior — per-
/// mode fiber counts and skew, HiCOO block population, value moments —
/// both for characterizing datasets and for checking that generated
/// stand-ins match the regimes of the tensors they replace.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/coo_tensor.hpp"

namespace pasta {

/// Fiber statistics of one mode.
struct ModeFeatures {
    Index dim = 0;               ///< mode extent
    Size num_fibers = 0;         ///< M_F of this mode
    Size max_fiber_nnz = 0;      ///< longest fiber (load imbalance)
    double mean_fiber_nnz = 0;   ///< M / M_F
    double cv_fiber_nnz = 0;     ///< coefficient of variation of lengths
    Size used_indices = 0;       ///< distinct indices with >= 1 non-zero
};

/// Full structural profile of a sparse tensor.
struct TensorFeatures {
    Size order = 0;
    Size nnz = 0;
    double density = 0;
    std::vector<ModeFeatures> modes;
    Size hicoo_blocks = 0;        ///< n_b at the given block size
    double mean_block_nnz = 0;    ///< HiCOO compressibility indicator
    Size max_block_nnz = 0;
    double value_mean = 0;
    double value_std = 0;
};

/// Extracts features of `x` (HiCOO stats at edge 2^block_bits).
TensorFeatures extract_features(const CooTensor& x,
                                unsigned block_bits = 7);

/// Multi-line human-readable report.
std::string features_report(const TensorFeatures& features);

/// Relative difference of two feature profiles on the regime-defining
/// axes (density order of magnitude, fiber-length means, block density);
/// small values mean the tensors exercise kernels the same way.  Used by
/// tests to check stand-in fidelity.
double features_distance(const TensorFeatures& a, const TensorFeatures& b);

}  // namespace pasta
