/// \file
/// Performance-efficiency accounting (paper §V-C, Observations 1-3).
///
/// Efficiency (the paper's "performance efficiency" / "bandwidth
/// efficiency") is measured GFLOPS over the kernel's Roofline performance
/// on the platform — OI x ERT-DRAM bandwidth.  Values above 100% are
/// legitimate and diagnostic: the working set fit in cache (Observation 2).
#pragma once

#include <string>
#include <vector>

#include "analysis/cost_model.hpp"
#include "roofline/machine.hpp"

namespace pasta {

/// One measured kernel execution on one tensor.
struct MeasuredRun {
    std::string tensor_id;
    Kernel kernel = Kernel::kTew;
    Format format = Format::kCoo;
    double seconds = 0;        ///< mean kernel time
    KernelCost cost;           ///< Table I work/traffic for this tensor
    /// Observability channel (zero when PASTA_TRACE left counters off):
    /// the variant label the kernel reported and the trial's
    /// counter-derived flop/byte totals.
    std::string variant;
    double obs_flops = 0;
    double obs_bytes = 0;
    /// Peak bytes the memory governor saw reserved/probed during the
    /// trial (0 when the trial predates the governor or never touched a
    /// budgeted allocation).  Feeds the mem_peak CSV column.
    double mem_peak = 0;
};

/// Measured GFLOPS of a run.
double run_gflops(const MeasuredRun& run);

/// Roofline GFLOPS of a run on `spec` (OI x ERT-DRAM bandwidth).
double run_roofline_gflops(const MeasuredRun& run, const MachineSpec& spec);

/// Efficiency of a run on `spec`, as a fraction (1.0 = 100%).
double run_efficiency(const MeasuredRun& run, const MachineSpec& spec);

/// Arithmetic intensity of a run: the counter-derived ratio
/// obs_flops/obs_bytes when the trial recorded counters, else the Table I
/// model's OI.  Counter totals accumulate over warmups and repeats, but
/// AI is a ratio and therefore repetition-invariant.
double run_ai(const MeasuredRun& run);

/// Percent of the Roofline ceiling achieved at run_ai(run): measured
/// GFLOPS over min(peak, AI x ERT-DRAM bandwidth), x100.  Zero when the
/// run carries no usable AI or time.
double run_roofline_pct(const MeasuredRun& run, const MachineSpec& spec);

/// Aggregate statistics the paper's observations quote.
struct EfficiencySummary {
    Kernel kernel = Kernel::kTew;
    Format format = Format::kCoo;
    double mean_gflops = 0;
    double min_gflops = 0;
    double max_gflops = 0;
    double mean_efficiency = 0;
    std::size_t runs = 0;
};

/// Summarizes all runs of one (kernel, format) pair on `spec`.
EfficiencySummary summarize(const std::vector<MeasuredRun>& runs,
                            Kernel kernel, Format format,
                            const MachineSpec& spec);

}  // namespace pasta
