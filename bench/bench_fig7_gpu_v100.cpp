/// \file
/// Regenerates Figure 7: the five kernels on the simulated Tesla V100
/// (DGX-1V) — larger L2, higher bandwidth, and the improved atomics that
/// let MTTKRP exceed its roofline in the paper (Observation 2).
#include <cstdio>

#include "bench_common.hpp"
#include "gpusim/timing_model.hpp"

using namespace pasta;

int
main()
{
    bench::BenchOptions options = bench::options_from_env();
    options.journal_stem = "fig7_gpu_v100";
    std::printf("Figure 7 (simulated Tesla V100 / DGX-1V), scale %g\n",
                options.scale);
    const auto suite = bench::load_suite(options);
    const auto result =
        bench::run_gpu_suite(suite, gpusim::tesla_v100(), options);
    bench::print_figure("Figure 7: five kernels on DGX-1V (simulated)",
                        result.runs, dgx_1v());
    bench::print_averages(result.runs, dgx_1v());
    bench::print_failure_summary(result);
    bench::maybe_export_csv("fig7_gpu_v100", result, dgx_1v());
    return 0;
}
