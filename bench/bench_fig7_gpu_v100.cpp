/// \file
/// Regenerates Figure 7: the five kernels on the simulated Tesla V100
/// (DGX-1V) — larger L2, higher bandwidth, and the improved atomics that
/// let MTTKRP exceed its roofline in the paper (Observation 2).
#include <cstdio>

#include "bench_common.hpp"
#include "gpusim/timing_model.hpp"

using namespace pasta;

int
main()
{
    const bench::BenchOptions options = bench::options_from_env();
    std::printf("Figure 7 (simulated Tesla V100 / DGX-1V), scale %g\n",
                options.scale);
    const auto suite = bench::load_suite(options);
    const auto runs =
        bench::run_gpu_suite(suite, gpusim::tesla_v100(), options);
    bench::print_figure("Figure 7: five kernels on DGX-1V (simulated)",
                        runs, dgx_1v());
    bench::print_averages(runs, dgx_1v());
    bench::maybe_export_csv("fig7_gpu_v100", runs, dgx_1v());
    return 0;
}
