/// \file
/// Format-extension ablations: the CSF format the paper schedules as the
/// next suite addition (§VII) compared against COO/HiCOO/gHiCOO, and the
/// index-reordering effect on HiCOO block density and MTTKRP time that
/// Table I's "data reuse ... from reordering techniques" remark predicts.
#include <cstdio>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/convert.hpp"
#include "core/csf_tensor.hpp"
#include "core/fcoo_tensor.hpp"
#include "core/reorder.hpp"
#include "kernels/csf_kernels.hpp"
#include "kernels/fcoo_kernels.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/ttv.hpp"

using namespace pasta;

namespace {

void
compare_formats(const std::string& name, const CooTensor& x, Size rank,
                Size runs, unsigned block_bits)
{
    std::printf("\n== formats on %s (%s) ==\n", name.c_str(),
                x.describe().c_str());
    Rng rng(1);
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < x.order(); ++m)
        mats.push_back(DenseMatrix::random(x.dim(m), rank, rng));
    FactorList factors;
    for (const auto& m : mats)
        factors.push_back(&m);
    DenseMatrix out(x.dim(0), rank);
    DenseVector v = DenseVector::random(x.dim(x.order() - 1), rng);

    std::printf("%-10s %12s %14s %12s\n", "format", "storage KB",
                "MTTKRP(0) ms", "TTV(last) ms");
    {
        CooTtvPlan plan = ttv_plan_coo(x, x.order() - 1);
        CooTensor tout = plan.out_pattern;
        const RunStats tm = timed_runs(
            [&] { mttkrp_coo(x, factors, 0, out); }, runs);
        const RunStats tv = timed_runs(
            [&] { ttv_exec_coo(plan, v, tout); }, runs);
        std::printf("%-10s %12.1f %14.3f %12.3f\n", "COO",
                    x.storage_bytes() / 1024.0, tm.mean_seconds * 1e3,
                    tv.mean_seconds * 1e3);
    }
    {
        const HiCooTensor h = coo_to_hicoo(x, block_bits);
        HicooTtvPlan plan =
            ttv_plan_hicoo(x, x.order() - 1, block_bits);
        HiCooTensor tout = plan.out_pattern;
        const RunStats tm = timed_runs(
            [&] { mttkrp_hicoo(h, factors, 0, out); }, runs);
        const RunStats tv = timed_runs(
            [&] { ttv_exec_hicoo(plan, v, tout); }, runs);
        std::printf("%-10s %12.1f %14.3f %12.3f\n", "HiCOO",
                    h.storage_bytes() / 1024.0, tm.mean_seconds * 1e3,
                    tv.mean_seconds * 1e3);
    }
    {
        // CSF rooted at mode 0 for MTTKRP; leaf-ordered for TTV.
        const CsfTensor c = CsfTensor::from_coo(x);
        const RunStats tm = timed_runs(
            [&] { mttkrp_csf(c, factors, 0, out); }, runs);
        const RunStats tv = timed_runs(
            [&] {
                CooTensor r = ttv_csf(c, v, x.order() - 1);
                (void)r;
            },
            runs);
        std::printf("%-10s %12.1f %14.3f %12.3f\n", "CSF",
                    c.storage_bytes() / 1024.0, tm.mean_seconds * 1e3,
                    tv.mean_seconds * 1e3);
    }
    {
        std::vector<bool> mask(x.order(), true);
        mask[x.order() - 1] = false;
        const GHiCooTensor g = coo_to_ghicoo(x, mask, block_bits);
        std::printf("%-10s %12.1f %14s %12s\n", "gHiCOO",
                    g.storage_bytes() / 1024.0, "-", "-");
    }
    {
        // F-COO is computation-specific: one instance per mode.
        const FcooTensor f = FcooTensor::build(x, x.order() - 1);
        const RunStats tv = timed_runs(
            [&] {
                CooTensor out = ttv_fcoo(f, v);
                (void)out;
            },
            runs);
        std::printf("%-10s %12.1f %14s %12.3f\n", "F-COO",
                    f.storage_bytes() / 1024.0, "-",
                    tv.mean_seconds * 1e3);
    }
}

void
reorder_ablation(const std::string& name, const CooTensor& x, Size rank,
                 Size runs, unsigned block_bits)
{
    std::printf("\n== reordering on %s ==\n", name.c_str());
    std::printf("%-10s %10s %14s %14s\n", "labeling", "blocks",
                "HiCOO KB", "MTTKRP ms");
    Rng rng(2);
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < x.order(); ++m)
        mats.push_back(DenseMatrix::random(x.dim(m), rank, rng));
    FactorList factors;
    for (const auto& m : mats)
        factors.push_back(&m);

    const struct {
        const char* label;
        CooTensor tensor;
    } variants[] = {
        {"original", x},
        {"random",
         [&] {
             CooTensor t = x;
             for (Size m = 0; m < x.order(); ++m) {
                 Rng r2(100 + m);
                 t = relabel_mode(t, m, random_relabeling(x.dim(m), r2));
             }
             return t;
         }()},
        {"degree", degree_reorder(x)},
    };
    for (const auto& variant : variants) {
        const HiCooTensor h = coo_to_hicoo(variant.tensor, block_bits);
        DenseMatrix out(x.dim(0), rank);
        const RunStats tm = timed_runs(
            [&] { mttkrp_hicoo(h, factors, 0, out); }, runs);
        std::printf("%-10s %10zu %14.1f %14.3f\n", variant.label,
                    h.num_blocks(), h.storage_bytes() / 1024.0,
                    tm.mean_seconds * 1e3);
    }
}

}  // namespace

int
main()
{
    const bench::BenchOptions options = bench::options_from_env();
    std::printf("format extension ablations (CSF + reordering), "
                "scale %g\n",
                options.scale);
    for (const char* id : {"regS", "irrM", "choa"}) {
        const CooTensor x =
            synthesize_dataset(find_dataset(id), options.scale);
        compare_formats(id, x, options.rank, options.runs,
                        options.block_bits);
        reorder_ablation(id, x, options.rank, options.runs,
                         options.block_bits);
    }
    return 0;
}
