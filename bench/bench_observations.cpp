/// \file
/// Regenerates the five observations of §V-C as quantitative checks:
///   1. performance diversity across kernels/formats/datasets,
///   2. cases above/below the Roofline line (cache residency),
///   3. non-streaming kernel efficiency across platforms,
///   4. HiCOO vs COO per kernel (CPU and GPU-simulated),
///   5. real vs synthetic dataset behavior.
#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "bench_common.hpp"
#include "gpusim/timing_model.hpp"

using namespace pasta;
using bench::BenchOptions;

namespace {

double
mean_gflops(const std::vector<MeasuredRun>& runs, Kernel k, Format f,
            bool synthetic_only, bool real_only)
{
    double total = 0;
    int n = 0;
    for (const auto& run : runs) {
        if (run.kernel != k || run.format != f)
            continue;
        const bool synthetic = run.tensor_id[0] == 's';
        if (synthetic_only && !synthetic)
            continue;
        if (real_only && synthetic)
            continue;
        total += run_gflops(run);
        ++n;
    }
    return n > 0 ? total / n : 0.0;
}

void
observation1(const std::vector<MeasuredRun>& runs)
{
    std::printf("\n== Observation 1: performance is diverse and hard to "
                "predict ==\n");
    double lo = 1e30;
    double hi = 0;
    std::string lo_id;
    std::string hi_id;
    for (const auto& run : runs) {
        const double g = run_gflops(run);
        if (g <= 0)
            continue;
        if (g < lo) {
            lo = g;
            lo_id = std::string(kernel_name(run.kernel)) + "/" +
                    format_name(run.format) + " on " + run.tensor_id;
        }
        if (g > hi) {
            hi = g;
            hi_id = std::string(kernel_name(run.kernel)) + "/" +
                    format_name(run.format) + " on " + run.tensor_id;
        }
    }
    std::printf("  range: %.3f GFLOPS (%s) to %.3f GFLOPS (%s): %.0fx "
                "spread\n",
                lo, lo_id.c_str(), hi, hi_id.c_str(), hi / lo);
    std::printf("  per-kernel COO means: TEW %.2f, TS %.2f, TTV %.2f, "
                "TTM %.2f, MTTKRP %.2f GFLOPS\n",
                mean_gflops(runs, Kernel::kTew, Format::kCoo, false, false),
                mean_gflops(runs, Kernel::kTs, Format::kCoo, false, false),
                mean_gflops(runs, Kernel::kTtv, Format::kCoo, false, false),
                mean_gflops(runs, Kernel::kTtm, Format::kCoo, false, false),
                mean_gflops(runs, Kernel::kMttkrp, Format::kCoo, false,
                            false));
}

void
observation2(const std::vector<MeasuredRun>& runs,
             const MachineSpec& platform)
{
    std::printf("\n== Observation 2: most cases below the Roofline; "
                "small/cache-resident cases above ==\n");
    int above = 0;
    int below = 0;
    std::printf("  cases above the %s Roofline line:\n",
                platform.name.c_str());
    for (const auto& run : runs) {
        const double eff = run_efficiency(run, platform);
        if (eff > 1.0) {
            ++above;
            if (above <= 12)
                std::printf("    %-7s %-6s %-8s eff %.0f%%\n",
                            kernel_name(run.kernel),
                            format_name(run.format),
                            run.tensor_id.c_str(), eff * 100);
        } else {
            ++below;
        }
    }
    std::printf("  %d above vs %d below (above-roofline cases indicate "
                "LLC-resident working sets)\n",
                above, below);
}

void
observation3(const std::vector<MeasuredRun>& runs,
             const MachineSpec& platform)
{
    std::printf("\n== Observation 3: non-streaming kernel efficiency on "
                "%s ==\n",
                platform.name.c_str());
    for (Kernel k : {Kernel::kTtv, Kernel::kTtm, Kernel::kMttkrp}) {
        const auto coo = summarize(runs, k, Format::kCoo, platform);
        const auto hic = summarize(runs, k, Format::kHicoo, platform);
        std::printf("  %-7s mean efficiency: COO %3.0f%%  HiCOO %3.0f%%\n",
                    kernel_name(k), 100 * coo.mean_efficiency,
                    100 * hic.mean_efficiency);
    }
}

void
observation4(const std::vector<MeasuredRun>& cpu_runs,
             const std::vector<MeasuredRun>& gpu_runs)
{
    std::printf("\n== Observation 4: HiCOO vs COO ==\n");
    std::printf("  %-9s %18s %18s\n", "kernel", "CPU HiCOO/COO",
                "GPU-sim HiCOO/COO");
    for (Kernel k : {Kernel::kTew, Kernel::kTs, Kernel::kTtv,
                     Kernel::kTtm, Kernel::kMttkrp}) {
        const double cpu_ratio =
            mean_gflops(cpu_runs, k, Format::kHicoo, false, false) /
            mean_gflops(cpu_runs, k, Format::kCoo, false, false);
        const double gpu_ratio =
            mean_gflops(gpu_runs, k, Format::kHicoo, false, false) /
            mean_gflops(gpu_runs, k, Format::kCoo, false, false);
        std::printf("  %-9s %17.2fx %17.2fx\n", kernel_name(k), cpu_ratio,
                    gpu_ratio);
    }
    std::printf("  (paper: HiCOO >= COO for TEW/TS/TTV on CPU; "
                "HiCOO-MTTKRP < COO-MTTKRP on GPU from block-level load "
                "imbalance)\n");
}

void
observation5(const std::vector<MeasuredRun>& runs)
{
    std::printf("\n== Observation 5: real vs synthetic datasets ==\n");
    std::printf("  %-9s %16s %16s\n", "kernel", "real mean GF/s",
                "synth mean GF/s");
    for (Kernel k : {Kernel::kTew, Kernel::kTs, Kernel::kTtv,
                     Kernel::kTtm, Kernel::kMttkrp}) {
        std::printf("  %-9s %16.3f %16.3f\n", kernel_name(k),
                    mean_gflops(runs, k, Format::kCoo, false, true),
                    mean_gflops(runs, k, Format::kCoo, true, false));
    }
    std::printf("  (similar scales across datasets support using "
                "synthetic tensors for benchmarking)\n");
}

}  // namespace

int
main()
{
    BenchOptions options = bench::options_from_env();
    options.journal_stem = "observations";
    std::printf("Observations harness, scale %g\n", options.scale);
    const auto suite = bench::load_suite(options);

    std::printf("\nrunning CPU suite...\n");
    const auto cpu = bench::run_cpu_suite(suite, options);
    std::printf("running simulated-GPU suite (P100)...\n");
    const auto gpu =
        bench::run_gpu_suite(suite, gpusim::tesla_p100(), options);
    const auto& cpu_runs = cpu.runs;
    const auto& gpu_runs = gpu.runs;

    observation1(cpu_runs);
    observation2(cpu_runs, bluesky());
    observation3(cpu_runs, bluesky());
    observation3(cpu_runs, wingtip());
    observation3(gpu_runs, dgx_1p());
    observation4(cpu_runs, gpu_runs);
    observation5(cpu_runs);
    bench::print_failure_summary(cpu);
    bench::print_failure_summary(gpu);
    return 0;
}
