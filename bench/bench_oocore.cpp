/// \file
/// Bounded-memory (out-of-core) campaign driver.
///
/// Exercises the memory-governor + streaming-kernel stack end to end:
/// a Table II dataset is synthesized, written as PSTB v3, mapped
/// read-only (address space, not RAM), and the budgeted MTTKRP / TTV /
/// coalesce entry points run under the guarded-trial harness with
/// $PASTA_MEM_BYTES armed.  With a budget below the tensor footprint
/// every kernel degrades to its partition-sweep variant; the table the
/// binary prints and the JSONL journal both carry the routing variant
/// (e.g. "mttkrp_stream_p16"), the partition progress, and the trial's
/// peak governor-metered bytes.
///
/// The MTTKRP trial checkpoints per partition (PSCK file in the cache
/// dir) and journals per-partition progress lines, so killing the binary
/// mid-sweep and rerunning it resumes at the last completed partition —
/// scripts/check_oocore.sh asserts exactly that.
///
/// Extra environment (on top of the bench_common set):
///   PASTA_OOCORE_DATASET  Table II id/name to synthesize (default "s1")
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "common/log.hpp"
#include "common/membudget.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/stream.hpp"
#include "harness/journal.hpp"
#include "harness/trial.hpp"
#include "io/binary_io.hpp"

namespace {

using namespace pasta;

/// One row of the report table.
struct OocoreRow {
    std::string kernel;
    std::string variant;
    Size partitions = 0;
    Size resumed_from = 0;
    double seconds = 0;
    double mem_peak = 0;
    std::string status;
};

/// Journals a per-partition progress line (last-wins keyed on the trial,
/// so the terminal success line replaces it).  A killed run leaves the
/// latest of these as the trial's journal state.
void
journal_progress(harness::RunJournal& journal, const std::string& id,
                 const char* kernel, Size done, Size total)
{
    if (!journal.enabled())
        return;
    harness::JournalEntry entry;
    entry.tensor_id = id;
    entry.kernel = kernel;
    entry.format = "OOC";
    entry.ok = false;
    entry.error = "in progress";
    entry.failure_class = "progress";
    entry.partitions_done = static_cast<int>(done);
    entry.partitions_total = static_cast<int>(total);
    entry.mem_peak = static_cast<double>(
        membudget::MemGovernor::instance().peak());
    journal.append(entry);
}

/// Runs one guarded out-of-core trial and records it in the journal and
/// the report table.  `body` performs the sweep and fills `decision`.
void
run_oocore_trial(harness::RunJournal& journal,
                 const harness::TrialPolicy& policy, const std::string& id,
                 const char* kernel,
                 const std::shared_ptr<stream::StreamDecision>& decision,
                 std::vector<OocoreRow>& rows,
                 const std::function<double()>& body)
{
    if (journal.enabled()) {
        const harness::JournalEntry* done = journal.find(id, kernel, "OOC");
        if (done && done->ok) {
            rows.push_back({kernel, done->variant,
                            static_cast<Size>(done->partitions_total), 0,
                            done->seconds, done->mem_peak, "journaled"});
            return;
        }
    }

    membudget::MemGovernor::instance().reset_peak();
    const harness::TrialResult trial = harness::run_guarded_trial(
        std::string(kernel) + "/OOC on " + id, body, policy);
    const double mem_peak =
        static_cast<double>(membudget::MemGovernor::instance().peak());

    harness::JournalEntry entry;
    entry.tensor_id = id;
    entry.kernel = kernel;
    entry.format = "OOC";
    entry.ok = trial.ok;
    entry.seconds = trial.seconds;
    entry.attempts = trial.attempts;
    entry.error = trial.error;
    entry.failure_class = trial.ok          ? ""
                          : trial.timed_out ? "timeout"
                          : trial.oom       ? "oom"
                                            : "error";
    entry.variant = decision->variant;
    entry.mem_peak = mem_peak;
    entry.partitions_done =
        static_cast<int>(trial.ok ? decision->partitions : 0);
    entry.partitions_total = static_cast<int>(decision->partitions);
    journal.append(entry);

    rows.push_back({kernel, decision->variant, decision->partitions,
                    decision->resumed_from, trial.seconds, mem_peak,
                    trial.ok ? "ok" : entry.failure_class});
}

}  // namespace

int
main()
{
    using namespace pasta;
    const bench::BenchOptions options = bench::options_from_env();

    const char* dataset_env = std::getenv("PASTA_OOCORE_DATASET");
    const DatasetSpec& spec =
        find_dataset(dataset_env && *dataset_env ? dataset_env : "s1");

    std::error_code ec;
    std::filesystem::create_directories(options.cache_dir, ec);
    const std::string stem = options.cache_dir + "/oocore_" + spec.id;

    // Synthesize once and persist as PSTB v3; reruns (the resume case)
    // reuse the file so the mapped view is byte-stable across kills.
    const std::string tensor_path = stem + ".pstb";
    if (!std::filesystem::exists(tensor_path)) {
        PASTA_LOG_INFO << "oocore: synthesizing " << spec.id << " at scale "
                       << options.scale;
        write_binary_file(tensor_path,
                          synthesize_dataset(spec, options.scale));
    }
    MappedCooTensor mapped(tensor_path);
    std::printf("oocore dataset %s: order %zu, %zu nnz, %zu file bytes, "
                "budget %llu bytes%s\n",
                spec.id.c_str(), mapped.order(), mapped.nnz(),
                mapped.file_bytes(),
                static_cast<unsigned long long>(
                    membudget::MemGovernor::instance().budget()),
                membudget::MemGovernor::instance().enabled()
                    ? ""
                    : " (unlimited; set PASTA_MEM_BYTES to force "
                      "streaming)");

    harness::RunJournal journal;
    if (options.journal_enabled)
        journal = harness::RunJournal(stem + ".journal.jsonl");

    const harness::TrialPolicy& policy = options.trial_policy;
    std::vector<OocoreRow> rows;
    const std::string& id = spec.id;

    // ---- MTTKRP (mode 0), checkpointed per partition ----
    {
        auto decision = std::make_shared<stream::StreamDecision>();
        run_oocore_trial(
            journal, policy, id, "MTTKRP", decision, rows,
            [&, decision] {
                Rng rng(23);
                std::vector<DenseMatrix> mats;
                for (Size m = 0; m < mapped.order(); ++m)
                    mats.push_back(DenseMatrix::random(mapped.dim(m),
                                                       options.rank, rng));
                FactorList factors;
                for (const auto& m : mats)
                    factors.push_back(&m);
                DenseMatrix out(mapped.dim(0), options.rank);
                stream::StreamOptions sopts;
                sopts.checkpoint_path = stem + ".mttkrp.ckpt";
                sopts.progress = [&](Size done, Size total) {
                    journal_progress(journal, id, "MTTKRP", done, total);
                };
                Timer timer;
                timer.start();
                *decision = stream::mttkrp_coo_budgeted(mapped, factors, 0,
                                                        out, sopts);
                return timer.elapsed_seconds();
            });
        // The sweep finished; the next run must start fresh.
        std::filesystem::remove(stem + ".mttkrp.ckpt", ec);
    }

    // ---- TTV (contract the last mode) ----
    {
        auto decision = std::make_shared<stream::StreamDecision>();
        run_oocore_trial(
            journal, policy, id, "TTV", decision, rows, [&, decision] {
                const Size mode = mapped.order() - 1;
                Rng rng(31);
                DenseVector v = DenseVector::random(mapped.dim(mode), rng);
                CooTensor out;
                stream::StreamOptions sopts;
                sopts.progress = [&](Size done, Size total) {
                    journal_progress(journal, id, "TTV", done, total);
                };
                Timer timer;
                timer.start();
                *decision =
                    stream::ttv_coo_budgeted(mapped, v, mode, out, sopts);
                return timer.elapsed_seconds();
            });
    }

    // ---- Streamed coalesce to a fresh PSTB v3 file ----
    {
        auto decision = std::make_shared<stream::StreamDecision>();
        const std::string out_path = stem + ".coalesced.pstb";
        run_oocore_trial(
            journal, policy, id, "COALESCE", decision, rows,
            [&, decision, out_path] {
                stream::StreamOptions sopts;
                sopts.progress = [&](Size done, Size total) {
                    journal_progress(journal, id, "COALESCE", done, total);
                };
                Timer timer;
                timer.start();
                *decision =
                    stream::coalesce_budgeted(mapped, out_path, sopts);
                return timer.elapsed_seconds();
            });
        std::filesystem::remove(out_path, ec);
    }

    std::printf("\n%-10s %-22s %10s %8s %12s %14s %-10s\n", "kernel",
                "variant", "partitions", "resumed", "seconds", "mem_peak",
                "status");
    for (const auto& row : rows)
        std::printf("%-10s %-22s %10zu %8zu %12.6f %14.0f %-10s\n",
                    row.kernel.c_str(), row.variant.c_str(),
                    row.partitions, row.resumed_from, row.seconds,
                    row.mem_peak, row.status.c_str());

    bool failed = false;
    for (const auto& row : rows)
        failed = failed || (row.status != "ok" && row.status != "journaled");
    return failed ? 1 : 0;
}
