/// \file
/// Crash-isolated campaign driver (`pasta_campaign`).
///
/// Shards a small out-of-core campaign — per-dataset TTV and COALESCE
/// trials plus the MTTKRP partition sweep split into partition-range
/// shards — across a pool of fork+exec'd worker processes supervised by
/// harness::Supervisor.  Each worker claims one shard through a
/// crash-safe lease, journals to its own `journal.<shard>.jsonl`, and
/// exits; the supervisor respawns crashed workers under a retry budget
/// and merges the shard journals into `journal.merged.jsonl` with
/// exactly-once dedup at the end.
///
/// Invocation:
///   pasta_campaign            supervisor (spawns workers = itself)
///   pasta_campaign --worker   claim + run ONE shard, then exit (the
///                             supervisor re-execs this; not for hand use)
///
/// Environment (on top of the bench_common set):
///   PASTA_CAMPAIGN_DIR       campaign state dir (default
///                            <cache_dir>/campaign)
///   PASTA_CAMPAIGN_DATASETS  comma-separated Table II ids (default "s1")
///   PASTA_SHARDS             worker process count (default 2)
///   PASTA_CHAOS              SIGKILLs to deal to random mid-trial
///                            workers (default 0); seeded by
///                            $PASTA_FAULT_SEED
///   PASTA_CAMPAIGN_DELAY_MS  artificial per-shard delay before the
///                            kernel runs (default 0) — widens the
///                            mid-trial window so chaos kills land
///   PASTA_METRICS            <path>[,interval_ms] — arm the live metrics
///                            heartbeat.  Each worker additionally
///                            exports to <dir>/metrics.<shard>.jsonl and
///                            the supervisor tails those into
///                            <dir>/metrics.campaign.jsonl (counters
///                            summed, gauges maxed, histograms merged);
///                            with PASTA_TRACE=spans/full the per-worker
///                            traces are merged into
///                            <dir>/campaign.trace.json on one epoch
///                            clock (see scripts/metrics_summary.py)
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/log.hpp"
#include "common/membudget.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/stream.hpp"
#include "harness/campaign.hpp"
#include "io/binary_io.hpp"

namespace {

using namespace pasta;

std::string
campaign_dir(const bench::BenchOptions& options)
{
    const char* s = std::getenv("PASTA_CAMPAIGN_DIR");
    if (s && *s)
        return s;
    return options.cache_dir + "/campaign";
}

std::vector<std::string>
campaign_datasets()
{
    const char* s = std::getenv("PASTA_CAMPAIGN_DATASETS");
    std::string list = s && *s ? s : "s1";
    std::vector<std::string> ids;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string id =
            list.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        if (!id.empty())
            ids.push_back(id);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return ids;
}

long
delay_ms_from_env()
{
    const char* s = std::getenv("PASTA_CAMPAIGN_DELAY_MS");
    if (!s || !*s)
        return 0;
    return std::strtol(s, nullptr, 10);
}

std::string
tensor_stem(const bench::BenchOptions& options, const std::string& id)
{
    return options.cache_dir + "/campaign_" + id;
}

/// Synthesizes the dataset's PSTB v3 file if absent (idempotent: the
/// supervisor does this up front; workers only ever map the file).
void
ensure_tensor_file(const bench::BenchOptions& options,
                   const std::string& id)
{
    const std::string path = tensor_stem(options, id) + ".pstb";
    std::error_code ec;
    std::filesystem::create_directories(options.cache_dir, ec);
    if (std::filesystem::exists(path))
        return;
    const DatasetSpec& spec = find_dataset(id);
    PASTA_LOG_INFO << "campaign: synthesizing " << id << " at scale "
                   << options.scale;
    write_binary_file(path, synthesize_dataset(spec, options.scale));
}

/// The campaign's shard list.  Deterministic given the same environment
/// and cache contents — supervisor and exec'd workers each call this and
/// must agree (the MTTKRP partition plan is a pure function of the
/// mapped file and the memory budget, both shared).
std::vector<harness::ShardSpec>
build_shards(const bench::BenchOptions& options)
{
    std::vector<harness::ShardSpec> shards;
    for (const std::string& id : campaign_datasets()) {
        ensure_tensor_file(options, id);
        MappedCooTensor mapped(tensor_stem(options, id) + ".pstb");

        // Split the MTTKRP sweep over mode 0 into up to 4 contiguous
        // partition-range shards; ranges cover [0, P) exactly once.
        const Size parts = stream::mttkrp_partition_count(mapped, 0);
        const Size ranges = std::min<Size>(4, parts);
        const Size step = (parts + ranges - 1) / ranges;
        for (Size lo = 0; lo < parts; lo += step) {
            const Size hi = std::min(lo + step, parts);
            shards.push_back({id + ".MTTKRP.p" + std::to_string(lo) + "-" +
                                  std::to_string(hi),
                              id, "MTTKRP", "OOC"});
        }
        shards.push_back({id + ".TTV", id, "TTV", "OOC"});
        shards.push_back({id + ".COALESCE", id, "COALESCE", "OOC"});
    }
    return shards;
}

/// Parses the "p<lo>-<hi>" suffix of an MTTKRP range shard name.
bool
parse_range(const std::string& name, Size& lo, Size& hi)
{
    const std::size_t p = name.rfind(".p");
    if (p == std::string::npos)
        return false;
    unsigned long a = 0, b = 0;
    if (std::sscanf(name.c_str() + p, ".p%lu-%lu", &a, &b) != 2)
        return false;
    lo = static_cast<Size>(a);
    hi = static_cast<Size>(b);
    return true;
}

/// Runs one shard's kernel and returns its journal entry.  Everything
/// here executes inside a worker process — a crash costs one attempt.
harness::JournalEntry
run_shard(const bench::BenchOptions& options, const std::string& dir,
          const harness::ShardSpec& spec)
{
    const long delay = delay_ms_from_env();
    if (delay > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));

    MappedCooTensor mapped(tensor_stem(options, spec.tensor) + ".pstb");
    membudget::MemGovernor::instance().reset_peak();

    stream::StreamDecision decision;
    Timer timer;
    timer.start();
    if (spec.kernel == "MTTKRP") {
        Size lo = 0, hi = 0;
        PASTA_CHECK_MSG(parse_range(spec.name, lo, hi),
                        "bad MTTKRP shard name " << spec.name);
        Rng rng(23);
        std::vector<DenseMatrix> mats;
        for (Size m = 0; m < mapped.order(); ++m)
            mats.push_back(
                DenseMatrix::random(mapped.dim(m), options.rank, rng));
        FactorList factors;
        for (const auto& m : mats)
            factors.push_back(&m);
        DenseMatrix out(mapped.dim(0), options.rank);
        stream::StreamOptions sopts;
        sopts.part_begin = lo;
        sopts.part_end = hi;
        // Per-shard checkpoint: a respawned attempt resumes at the last
        // completed partition of *this range*.
        sopts.checkpoint_path = dir + "/" + spec.name + ".ckpt";
        decision = stream::mttkrp_coo_stream(mapped, factors, 0, out, sopts);
        std::error_code ec;
        std::filesystem::remove(sopts.checkpoint_path, ec);
    } else if (spec.kernel == "TTV") {
        const Size mode = mapped.order() - 1;
        Rng rng(31);
        DenseVector v = DenseVector::random(mapped.dim(mode), rng);
        CooTensor out;
        decision = stream::ttv_coo_budgeted(mapped, v, mode, out);
    } else if (spec.kernel == "COALESCE") {
        const std::string out_path = dir + "/" + spec.name + ".pstb";
        decision = stream::coalesce_budgeted(mapped, out_path);
        std::error_code ec;
        std::filesystem::remove(out_path, ec);
    } else {
        PASTA_CHECK_MSG(false, "unknown campaign kernel " << spec.kernel);
    }

    harness::JournalEntry entry;
    entry.ok = true;
    entry.seconds = timer.elapsed_seconds();
    entry.attempts = 1;
    entry.variant = decision.variant;
    entry.partitions_done = static_cast<int>(decision.partitions);
    entry.partitions_total = static_cast<int>(decision.partitions);
    entry.mem_peak =
        static_cast<double>(membudget::MemGovernor::instance().peak());
    return entry;
}

std::string
self_exe_path(const char* argv0)
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace pasta;
    const bench::BenchOptions options = bench::options_from_env();
    const std::string dir = campaign_dir(options);

    harness::CampaignOptions copts = harness::CampaignOptions::from_env();
    copts.dir = dir;

    const bool worker_mode = argc > 1 && std::strcmp(argv[1], "--worker") == 0;
    const std::vector<harness::ShardSpec> shards = build_shards(options);
    const harness::ShardBody body =
        [&](const harness::ShardSpec& spec) {
            return run_shard(options, dir, spec);
        };

    if (worker_mode)
        return harness::run_worker_once(copts, shards, body);

    copts.worker_argv = {self_exe_path(argv[0]), "--worker"};
    std::printf("campaign dir %s: %zu shard(s), %d worker(s), %d chaos "
                "kill(s)\n",
                dir.c_str(), shards.size(), copts.workers,
                copts.chaos_kills);

    harness::Supervisor supervisor(copts, shards, body);
    const harness::CampaignReport report = supervisor.run();

    std::printf("\nshards: %zu done, %zu failed, %zu remaining of %zu\n",
                report.shards_done, report.shards_failed,
                report.shards_remaining, report.shards_total);
    std::printf("workers: %d spawned, %d respawned, %d spawn fault(s)\n",
                report.spawns, report.respawns, report.spawn_faults);
    std::printf("exits: %d clean, %d no-work, %d failure, %d oom, "
                "%d signal, %d timeout; %d chaos kill(s) sent\n",
                report.exits_clean, report.exits_nowork,
                report.exits_failure, report.exits_oom,
                report.exits_signal, report.exits_timeout,
                report.chaos_kills_sent);
    std::printf("merge: %zu shard file(s), %zu line(s) -> %zu entries "
                "(%zu duplicate(s) folded) in %s/journal.merged.jsonl\n",
                report.merge.shard_files, report.merge.lines,
                report.merge.entries, report.merge.duplicates, dir.c_str());
    if (report.metrics.shard_files > 0)
        std::printf("metrics: %zu heartbeat file(s) aggregated -> "
                    "%s/metrics.campaign.jsonl (trial.ok=%llu "
                    "trial.failed=%llu)\n",
                    report.metrics.shard_files, dir.c_str(),
                    static_cast<unsigned long long>(
                        report.metrics.merged.counter("campaign.trial.ok")),
                    static_cast<unsigned long long>(
                        report.metrics.merged.counter(
                            "campaign.trial.failed")));
    if (report.trace_merged)
        std::printf("trace: merged per-worker traces -> "
                    "%s/campaign.trace.json\n",
                    dir.c_str());
    if (report.drained)
        std::printf("drained: resume with the same campaign dir "
                    "(%s/resume.list)\n",
                    dir.c_str());
    return report.complete() ? 0 : 1;
}
