/// \file
/// Regenerates Figure 4: single-precision performance of the five kernels
/// in COO and HiCOO over all 30 Table II tensors with the Bluesky
/// Roofline line.
///
/// Substitution note (DESIGN.md): kernels are *measured on this host*
/// running the identical reference implementations; the Roofline line
/// comes from the Bluesky descriptor, so the per-tensor/per-kernel shape
/// (who wins, where tensors exceed the roofline) is reproduced while
/// absolute GFLOPS reflect the host.
#include <cstdio>

#include "bench_common.hpp"

using namespace pasta;

int
main()
{
    bench::BenchOptions options = bench::options_from_env();
    options.journal_stem = "fig4_cpu_bluesky";
    std::printf("Figure 4 (CPU, Bluesky roofline), scale %g, %zu runs, "
                "R=%zu, B=%u\n",
                options.scale, options.runs, options.rank,
                1u << options.block_bits);
    const auto suite = bench::load_suite(options);
    const auto result = bench::run_cpu_suite(suite, options);
    bench::print_figure("Figure 4: five kernels on CPU (Bluesky)",
                        result.runs, bluesky());
    bench::print_averages(result.runs, bluesky());
    bench::print_failure_summary(result);
    bench::maybe_export_csv("fig4_cpu_bluesky", result, bluesky());
    return 0;
}
