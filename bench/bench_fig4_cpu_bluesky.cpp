/// \file
/// Regenerates Figure 4: single-precision performance of the five kernels
/// in COO and HiCOO over all 30 Table II tensors with the Bluesky
/// Roofline line.
///
/// Substitution note (DESIGN.md): kernels are *measured on this host*
/// running the identical reference implementations; the Roofline line
/// comes from the Bluesky descriptor, so the per-tensor/per-kernel shape
/// (who wins, where tensors exceed the roofline) is reproduced while
/// absolute GFLOPS reflect the host.
#include <cstdio>

#include "bench_common.hpp"

using namespace pasta;

int
main()
{
    const bench::BenchOptions options = bench::options_from_env();
    std::printf("Figure 4 (CPU, Bluesky roofline), scale %g, %zu runs, "
                "R=%zu, B=%u\n",
                options.scale, options.runs, options.rank,
                1u << options.block_bits);
    const auto suite = bench::load_suite(options);
    const auto runs = bench::run_cpu_suite(suite, options);
    bench::print_figure("Figure 4: five kernels on CPU (Bluesky)", runs,
                        bluesky());
    bench::print_averages(runs, bluesky());
    bench::maybe_export_csv("fig4_cpu_bluesky", runs, bluesky());
    return 0;
}
