/// \file
/// google-benchmark micro sweeps over the five kernels: non-zero count,
/// rank, block size, and format, on power-law tensors.  Complements the
/// table/figure harnesses with statistically managed per-kernel timings.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "common/rng.hpp"
#include "core/convert.hpp"
#include "gen/powerlaw.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/tew.hpp"
#include "kernels/ts.hpp"
#include "kernels/ttm.hpp"
#include "kernels/ttv.hpp"
#include "methods/cpd.hpp"
#include "methods/tucker.hpp"
#include "simd/microkernels.hpp"

namespace {

using namespace pasta;

CooTensor
bench_tensor(Size nnz)
{
    PowerLawConfig config;
    config.dims = {1u << 16, 1u << 16, 128};
    config.nnz = nnz;
    config.uniform_mode = {false, false, true};
    config.seed = 42;
    return generate_powerlaw(config);
}

/// Deterministically shuffled copy: sort benchmarks must not start from
/// already-ordered input or they measure the pre-sorted fast path.
CooTensor
shuffled_tensor(Size nnz)
{
    CooTensor x = bench_tensor(nnz);
    std::vector<Size> perm(x.nnz());
    std::iota(perm.begin(), perm.end(), 0);
    std::shuffle(perm.begin(), perm.end(), std::mt19937(12345));
    x.apply_permutation(perm);
    return x;
}

/// Rate counter in FLOP/s; bench_smoke.sh divides by 1e9 for GFLOPs.
void
set_flops(benchmark::State& state, double flops_per_iter)
{
    state.counters["flops"] = benchmark::Counter(
        flops_per_iter * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

void
BM_TewCoo(benchmark::State& state)
{
    const CooTensor x = bench_tensor(static_cast<Size>(state.range(0)));
    Rng rng(1);
    CooTensor y = x;
    for (auto& v : y.values())
        v = rng.next_float();
    CooTensor z = x;
    for (auto _ : state) {
        tew_values(EwOp::kAdd, x.values().data(), y.values().data(),
                   z.values().data(), x.nnz());
        benchmark::DoNotOptimize(z.values().data());
    }
    state.SetItemsProcessed(state.iterations() * x.nnz());
    state.SetBytesProcessed(state.iterations() * 12 * x.nnz());
}
BENCHMARK(BM_TewCoo)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

/// Second operand for general TEW with a controlled pattern overlap:
/// reuses `pct` percent of x's coordinates and draws the remainder from
/// an independent power-law stream (values always fresh).
CooTensor
overlap_operand(const CooTensor& x, unsigned pct)
{
    PowerLawConfig config;
    config.dims = {1u << 16, 1u << 16, 128};
    config.nnz = x.nnz();
    config.uniform_mode = {false, false, true};
    config.seed = 43;
    const CooTensor fresh = generate_powerlaw(config);
    Rng rng(6);
    CooTensor y(x.dims());
    const Size shared = x.nnz() * pct / 100;
    for (Size p = 0; p < shared; ++p)
        y.append(x.coordinate(p), rng.next_float() + 0.5f);
    for (Size p = shared; p < x.nnz(); ++p)
        y.append(fresh.coordinate(p), rng.next_float() + 0.5f);
    y.canonicalize(DuplicatePolicy::kSum);
    return y;
}

/// General-pattern TEW through the parallel merge engine, swept over the
/// fraction of coordinates the two patterns share (Arg(1), percent).
/// The label records the comparison path the engine picked.
void
BM_TewCooGeneral(benchmark::State& state)
{
    const CooTensor x = bench_tensor(static_cast<Size>(state.range(0)));
    const CooTensor y =
        overlap_operand(x, static_cast<unsigned>(state.range(1)));
    merge::MergePath path = merge::MergePath::kMerged64Key;
    Size out_nnz = 0;
    for (auto _ : state) {
        CooTensor z = tew_coo_general(x, y, EwOp::kAdd, &path);
        out_nnz = z.nnz();
        benchmark::DoNotOptimize(z.values().data());
    }
    state.SetLabel(merge::merge_path_name(path));
    state.counters["out_nnz"] = static_cast<double>(out_nnz);
    state.SetItemsProcessed(state.iterations() * (x.nnz() + y.nnz()));
}
BENCHMARK(BM_TewCooGeneral)
    ->Args({1 << 15, 0})
    ->Args({1 << 15, 50})
    ->Args({1 << 15, 100})
    ->Args({1 << 18, 50});

/// Serial two-pointer reference on the same workload: the baseline the
/// merge engine is measured against (items/s ratio = speedup).
void
BM_TewCooGeneralSerial(benchmark::State& state)
{
    const CooTensor x = bench_tensor(static_cast<Size>(state.range(0)));
    const CooTensor y =
        overlap_operand(x, static_cast<unsigned>(state.range(1)));
    for (auto _ : state) {
        CooTensor z = tew_coo_general_serial(x, y, EwOp::kAdd);
        benchmark::DoNotOptimize(z.values().data());
    }
    state.SetLabel("serial-2ptr");
    state.SetItemsProcessed(state.iterations() * (x.nnz() + y.nnz()));
}
BENCHMARK(BM_TewCooGeneralSerial)
    ->Args({1 << 15, 50})
    ->Args({1 << 18, 50});

void
BM_TsCoo(benchmark::State& state)
{
    const CooTensor x = bench_tensor(static_cast<Size>(state.range(0)));
    CooTensor y = x;
    for (auto _ : state) {
        ts_values(TsOp::kMul, x.values().data(), y.values().data(),
                  x.nnz(), 1.0001f);
        benchmark::DoNotOptimize(y.values().data());
    }
    state.SetItemsProcessed(state.iterations() * x.nnz());
    state.SetBytesProcessed(state.iterations() * 8 * x.nnz());
}
BENCHMARK(BM_TsCoo)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

void
BM_TtvCoo(benchmark::State& state)
{
    const CooTensor x = bench_tensor(static_cast<Size>(state.range(0)));
    Rng rng(2);
    DenseVector v = DenseVector::random(x.dim(2), rng);
    CooTtvPlan plan = ttv_plan_coo(x, 2);
    CooTensor out = plan.out_pattern;
    for (auto _ : state) {
        ttv_exec_coo(plan, v, out);
        benchmark::DoNotOptimize(out.values().data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * x.nnz());
}
BENCHMARK(BM_TtvCoo)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

/// Plan construction cost (sort + fiber detection + bulk-filled output
/// pattern): the pre-processing side of TTV the merge-engine PR moved
/// from per-fiber appends to count/scan/fill.
void
BM_TtvPlanBuild(benchmark::State& state)
{
    const CooTensor x = bench_tensor(static_cast<Size>(state.range(0)));
    Size fibers = 0;
    for (auto _ : state) {
        CooTtvPlan plan = ttv_plan_coo(x, 2);
        fibers = plan.fibers.num_fibers();
        benchmark::DoNotOptimize(plan.out_pattern.values().data());
    }
    state.counters["fibers"] = static_cast<double>(fibers);
    state.SetItemsProcessed(state.iterations() * x.nnz());
}
BENCHMARK(BM_TtvPlanBuild)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

void
BM_TtvHicoo(benchmark::State& state)
{
    const CooTensor x = bench_tensor(static_cast<Size>(state.range(0)));
    Rng rng(2);
    DenseVector v = DenseVector::random(x.dim(2), rng);
    HicooTtvPlan plan = ttv_plan_hicoo(x, 2);
    HiCooTensor out = plan.out_pattern;
    for (auto _ : state) {
        ttv_exec_hicoo(plan, v, out);
        benchmark::DoNotOptimize(out.values().data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * x.nnz());
}
BENCHMARK(BM_TtvHicoo)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

void
BM_TtmCooRankSweep(benchmark::State& state)
{
    const CooTensor x = bench_tensor(1 << 15);
    const Size rank = static_cast<Size>(state.range(0));
    Rng rng(3);
    DenseMatrix u = DenseMatrix::random(x.dim(2), rank, rng);
    CooTtmPlan plan = ttm_plan_coo(x, 2, rank);
    ScooTensor out = plan.out_pattern;
    for (auto _ : state) {
        ttm_exec_coo(plan, u, out);
        benchmark::DoNotOptimize(out.values().data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * x.nnz() * rank);
}
BENCHMARK(BM_TtmCooRankSweep)->Arg(4)->Arg(16)->Arg(64);

void
BM_MttkrpCoo(benchmark::State& state)
{
    const CooTensor x = bench_tensor(static_cast<Size>(state.range(0)));
    Rng rng(4);
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < x.order(); ++m)
        mats.push_back(DenseMatrix::random(x.dim(m), 16, rng));
    FactorList factors = {&mats[0], &mats[1], &mats[2]};
    DenseMatrix out(x.dim(0), 16);
    MttkrpVariant variant = MttkrpVariant::kAtomic;
    for (auto _ : state) {
        variant = mttkrp_coo(x, factors, 0, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetLabel(mttkrp_variant_name(variant));
    state.SetItemsProcessed(state.iterations() * 3 * x.nnz() * 16);
    set_flops(state, 3.0 * static_cast<double>(x.nnz()) * 16);
}
BENCHMARK(BM_MttkrpCoo)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

/// Crossover ablation: sweep the output-mode dimension at fixed nnz so
/// the auto-dispatch flips from privatized (small I_mode) to atomic
/// (replicated buffers too large / too sparse in output rows).  The
/// label records the variant mttkrp_coo_pick chose at each point.
void
BM_MttkrpCooDimSweep(benchmark::State& state)
{
    const Index dim0 = Index{1} << static_cast<unsigned>(state.range(0));
    PowerLawConfig config;
    config.dims = {dim0, 1u << 12, 128};
    config.nnz = 1 << 15;
    config.uniform_mode = {false, false, true};
    config.seed = 42;
    const CooTensor x = generate_powerlaw(config);
    Rng rng(4);
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < x.order(); ++m)
        mats.push_back(DenseMatrix::random(x.dim(m), 16, rng));
    FactorList factors = {&mats[0], &mats[1], &mats[2]};
    DenseMatrix out(x.dim(0), 16);
    MttkrpVariant variant = MttkrpVariant::kAtomic;
    for (auto _ : state) {
        variant = mttkrp_coo(x, factors, 0, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetLabel(mttkrp_variant_name(variant));
    state.SetItemsProcessed(state.iterations() * 3 * x.nnz() * 16);
    set_flops(state, 3.0 * static_cast<double>(x.nnz()) * 16);
}
BENCHMARK(BM_MttkrpCooDimSweep)->Arg(8)->Arg(12)->Arg(16)->Arg(20)->Arg(24);

void
BM_MttkrpHicooBlockSweep(benchmark::State& state)
{
    const CooTensor x = bench_tensor(1 << 15);
    const unsigned bits = static_cast<unsigned>(state.range(0));
    const HiCooTensor h = coo_to_hicoo(x, bits);
    Rng rng(5);
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < x.order(); ++m)
        mats.push_back(DenseMatrix::random(x.dim(m), 16, rng));
    FactorList factors = {&mats[0], &mats[1], &mats[2]};
    DenseMatrix out(x.dim(0), 16);
    MttkrpVariant variant = MttkrpVariant::kAtomic;
    for (auto _ : state) {
        variant = mttkrp_hicoo(h, factors, 0, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetLabel(mttkrp_variant_name(variant));
    state.SetItemsProcessed(state.iterations() * 3 * x.nnz() * 16);
    state.counters["blocks"] = static_cast<double>(h.num_blocks());
    set_flops(state, 3.0 * static_cast<double>(x.nnz()) * 16);
}
BENCHMARK(BM_MttkrpHicooBlockSweep)->Arg(3)->Arg(5)->Arg(7)->Arg(8);

void
BM_CooSortLex(benchmark::State& state)
{
    const CooTensor shuffled =
        shuffled_tensor(static_cast<Size>(state.range(0)));
    for (auto _ : state) {
        state.PauseTiming();
        CooTensor work = shuffled;
        state.ResumeTiming();
        work.sort_lexicographic();
        benchmark::DoNotOptimize(work.values().data());
    }
    state.SetItemsProcessed(state.iterations() * shuffled.nnz());
}
BENCHMARK(BM_CooSortLex)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

void
BM_CooSortMorton(benchmark::State& state)
{
    const CooTensor shuffled =
        shuffled_tensor(static_cast<Size>(state.range(0)));
    for (auto _ : state) {
        state.PauseTiming();
        CooTensor work = shuffled;
        state.ResumeTiming();
        work.sort_morton(7);
        benchmark::DoNotOptimize(work.values().data());
    }
    state.SetItemsProcessed(state.iterations() * shuffled.nnz());
}
BENCHMARK(BM_CooSortMorton)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

/// Restores the process-wide SIMD dispatch decision on scope exit so a
/// forced-ISA sweep cannot leak into later benchmarks.
struct ScopedIsa {
    explicit ScopedIsa(simd::Isa isa) : prev(simd::active_isa())
    {
        simd::set_isa(isa);
    }
    ~ScopedIsa() { simd::set_isa(prev); }
    simd::Isa prev;
};

/// Contiguous rank-loop stripe throughput under forced SIMD dispatch:
/// the MTTKRP inner pattern (acc_row += a_row * b_row over rank-R
/// stripes at scattered row addresses).  Arg(0) = rank, Arg(1) = ISA
/// (0 scalar, 1 avx2, 2 avx512); unsupported ISAs are skipped.  The
/// scalar-vs-avx2 items/s ratio at a given rank is the vector speedup.
void
BM_RankLoop(benchmark::State& state)
{
    const Size rank = static_cast<Size>(state.range(0));
    const auto isa = static_cast<simd::Isa>(state.range(1));
    if (!simd::isa_supported(isa)) {
        state.SkipWithError("ISA not supported on this CPU");
        return;
    }
    ScopedIsa guard(isa);
    const Size rows = 1 << 10;
    const Size stripes = 1 << 15;
    Rng rng(7);
    std::vector<Value> ta(rows * rank), tb(rows * rank);
    std::vector<Value> acc(rows * rank, 0);
    for (auto& v : ta)
        v = rng.next_float();
    for (auto& v : tb)
        v = rng.next_float();
    std::vector<Index> ia(stripes), ib(stripes), iacc(stripes);
    for (Size i = 0; i < stripes; ++i) {
        ia[i] = rng.next_index(rows);
        ib[i] = rng.next_index(rows);
        iacc[i] = rng.next_index(rows);
    }
    for (auto _ : state) {
        for (Size i = 0; i < stripes; ++i)
            simd::vfma_rows(isa, acc.data() + iacc[i] * rank,
                            ta.data() + ia[i] * rank,
                            tb.data() + ib[i] * rank, rank);
        benchmark::DoNotOptimize(acc.data());
    }
    state.SetLabel(simd::isa_name(isa));
    state.SetItemsProcessed(state.iterations() * stripes * rank);
    set_flops(state, 2.0 * static_cast<double>(stripes) *
                         static_cast<double>(rank));
}
BENCHMARK(BM_RankLoop)
    ->ArgsProduct({{8, 16, 32, 64}, {0, 1, 2}});

/// Gathered rank-loop throughput: the TTV inner pattern (fiber dot of
/// contiguous values against vector entries addressed through an index
/// array).  Same Arg layout as BM_RankLoop.
void
BM_RankLoopGather(benchmark::State& state)
{
    const Size rank = static_cast<Size>(state.range(0));
    const auto isa = static_cast<simd::Isa>(state.range(1));
    if (!simd::isa_supported(isa)) {
        state.SkipWithError("ISA not supported on this CPU");
        return;
    }
    ScopedIsa guard(isa);
    const Size table_size = 1 << 12;
    const Size n = Size{1} << 15;
    const Size fibers = n / rank;
    Rng rng(8);
    std::vector<Value> x(n), table(table_size);
    for (auto& v : x)
        v = rng.next_float();
    for (auto& v : table)
        v = rng.next_float();
    std::vector<Index> idx(n);
    for (auto& i : idx)
        i = rng.next_index(table_size);
    std::vector<Value> out(fibers, 0);
    for (auto _ : state) {
        for (Size f = 0; f < fibers; ++f)
            out[f] = simd::vdot_gather(isa, x.data() + f * rank,
                                       idx.data() + f * rank,
                                       table.data(), rank);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetLabel(simd::isa_name(isa));
    state.SetItemsProcessed(state.iterations() * fibers * rank);
    set_flops(state, 2.0 * static_cast<double>(fibers) *
                         static_cast<double>(rank));
}
BENCHMARK(BM_RankLoopGather)
    ->ArgsProduct({{8, 16, 32, 64}, {0, 1, 2}});

/// Whole CP-ALS runs, fused MTTKRP-sequence driver (Arg 1) against the
/// historical per-mode-allocation driver (Arg 0).  Fixed sweep count
/// (tolerance 0) so both sides do identical numerical work.
void
BM_CpAls(benchmark::State& state)
{
    const CooTensor x = bench_tensor(1 << 13);
    CpdOptions options;
    options.rank = 16;
    options.max_sweeps = 3;
    options.tolerance = 0.0;
    options.fused = state.range(0) != 0;
    double fit = 0.0;
    for (auto _ : state) {
        CpdResult r = cp_als(x, options);
        fit = r.fit_history.back();
        benchmark::DoNotOptimize(r.factors.data());
    }
    state.SetLabel(options.fused ? "fused" : "unfused");
    state.counters["fit"] = fit;
    state.SetItemsProcessed(state.iterations() * options.max_sweeps *
                            x.order() * 3 * x.nnz() * options.rank);
}
BENCHMARK(BM_CpAls)->Arg(0)->Arg(1);

/// Full TTM chains (the Tucker core contraction), fused two-mode
/// endgame (Arg 1) against the stepwise sCOO chain (Arg 0).  Order-4
/// with uniformly large modes: the final two contractions then run over
/// mostly-singleton fibers, where the stepwise chain must materialize
/// and sort a stripe-expanded COO intermediate — the case the fused
/// kernel exists for.  (With a small trailing mode the intermediate
/// collapses and stepwise wins; see DESIGN.md.)
void
BM_TuckerChain(benchmark::State& state)
{
    Rng rng(9);
    const CooTensor x = CooTensor::random(
        {1u << 12, 1u << 12, 1u << 12, 1u << 12}, 1 << 13, rng);
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < x.order(); ++m)
        mats.push_back(DenseMatrix::random(x.dim(m), 8, rng));
    const bool fuse = state.range(0) != 0;
    Size out_nnz = 0;
    for (auto _ : state) {
        CooTensor core = ttm_chain(x, mats, kNoMode, fuse);
        out_nnz = core.nnz();
        benchmark::DoNotOptimize(core.values().data());
    }
    state.SetLabel(fuse ? "fused" : "stepwise");
    state.counters["out_nnz"] = static_cast<double>(out_nnz);
    state.SetItemsProcessed(state.iterations() * x.nnz());
}
BENCHMARK(BM_TuckerChain)->Arg(0)->Arg(1);

void
BM_CooToHicooConversion(benchmark::State& state)
{
    const CooTensor x = bench_tensor(static_cast<Size>(state.range(0)));
    for (auto _ : state) {
        HiCooTensor h = coo_to_hicoo(x, 7);
        benchmark::DoNotOptimize(h.nnz());
    }
    state.SetItemsProcessed(state.iterations() * x.nnz());
}
BENCHMARK(BM_CooToHicooConversion)->Arg(1 << 12)->Arg(1 << 15);

}  // namespace
