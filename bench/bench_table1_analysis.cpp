/// \file
/// Regenerates Table I: work (#Flops), upper-bound memory access
/// (#Bytes), and operational intensity of every kernel for a third-order
/// cubical tensor, in COO and HiCOO — first symbolically (the paper's
/// M/M_F formulas) and then actualized on a generated tensor so the
/// min{n_b B, M} term is exercised with real block statistics.
#include <cstdio>

#include "bench_common.hpp"
#include "core/convert.hpp"
#include "gen/datasets.hpp"

using namespace pasta;

namespace {

void
print_row(const char* name, const TensorStats& stats, Kernel kernel,
          Size rank)
{
    const KernelCost coo = kernel_cost(kernel, Format::kCoo, stats, rank);
    const KernelCost hicoo =
        kernel_cost(kernel, Format::kHicoo, stats, rank);
    std::printf("%-8s %14.0f %18.0f %18.0f %10.4f %10.4f\n", name,
                coo.flops, coo.bytes, hicoo.bytes, coo.oi(), hicoo.oi());
}

void
print_table(const char* title, const TensorStats& stats, Size rank)
{
    std::printf("\n%s\n", title);
    std::printf("  (M = %zu, M_F = %zu, n_b = %zu, B = %u, R = %zu)\n",
                stats.nnz, stats.num_fibers, stats.num_blocks,
                stats.block_size, rank);
    std::printf("%-8s %14s %18s %18s %10s %10s\n", "Kernel", "Work",
                "COO Bytes", "HiCOO Bytes", "COO OI", "HiCOO OI");
    print_row("TEW", stats, Kernel::kTew, rank);
    print_row("TS", stats, Kernel::kTs, rank);
    print_row("TTV", stats, Kernel::kTtv, rank);
    print_row("TTM", stats, Kernel::kTtm, rank);
    print_row("MTTKRP", stats, Kernel::kMttkrp, rank);
}

}  // namespace

int
main()
{
    const bench::BenchOptions options = bench::options_from_env();

    // Symbolic instance matching the paper's assumptions
    // (I << M_F << M, third-order cubical).
    TensorStats paper;
    paper.order = 3;
    paper.nnz = 10'000'000;
    paper.num_fibers = 1'000'000;
    paper.num_blocks = 200'000;
    paper.block_size = 128;
    print_table("Table I (symbolic, paper assumptions):", paper,
                options.rank);
    std::printf("\npaper's OI column: TEW 1/12=%.4f, TS 1/8=%.4f, "
                "TTV ~1/6=%.4f, TTM ~1/2=%.4f, MTTKRP ~1/4=%.4f\n",
                1.0 / 12, 1.0 / 8, 1.0 / 6, 0.5, 0.25);

    // Actualized on a generated catalog tensor.
    const CooTensor x =
        synthesize_dataset(find_dataset("regS"), options.scale);
    TensorStats real = compute_stats(x, 0, options.block_bits);
    print_table("Table I (actualized on generated regS, mode 0):", real,
                options.rank);
    return 0;
}
