/// \file
/// Regenerates Figure 5: the Figure 4 protocol against the Wingtip
/// (4-socket Haswell) platform descriptor.  The paper's Wingtip findings
/// are NUMA-driven (Observation 3: non-streaming kernels lose efficiency
/// on 4 sockets); with a single measured host the series shape follows
/// the measurement while the roofline and efficiency columns use the
/// Wingtip descriptor, whose lower ERT-DRAM fraction encodes the NUMA
/// penalty.
#include <cstdio>

#include "bench_common.hpp"

using namespace pasta;

int
main()
{
    bench::BenchOptions options = bench::options_from_env();
    options.journal_stem = "fig5_cpu_wingtip";
    std::printf("Figure 5 (CPU, Wingtip roofline), scale %g, %zu runs\n",
                options.scale, options.runs);
    const auto suite = bench::load_suite(options);
    const auto result = bench::run_cpu_suite(suite, options);
    bench::print_figure("Figure 5: five kernels on CPU (Wingtip)",
                        result.runs, wingtip());
    bench::print_averages(result.runs, wingtip());
    bench::print_failure_summary(result);
    bench::maybe_export_csv("fig5_cpu_wingtip", result, wingtip());
    return 0;
}
