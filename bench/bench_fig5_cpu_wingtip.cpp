/// \file
/// Regenerates Figure 5: the Figure 4 protocol against the Wingtip
/// (4-socket Haswell) platform descriptor.  The paper's Wingtip findings
/// are NUMA-driven (Observation 3: non-streaming kernels lose efficiency
/// on 4 sockets); with a single measured host the series shape follows
/// the measurement while the roofline and efficiency columns use the
/// Wingtip descriptor, whose lower ERT-DRAM fraction encodes the NUMA
/// penalty.
#include <cstdio>

#include "bench_common.hpp"

using namespace pasta;

int
main()
{
    const bench::BenchOptions options = bench::options_from_env();
    std::printf("Figure 5 (CPU, Wingtip roofline), scale %g, %zu runs\n",
                options.scale, options.runs);
    const auto suite = bench::load_suite(options);
    const auto runs = bench::run_cpu_suite(suite, options);
    bench::print_figure("Figure 5: five kernels on CPU (Wingtip)", runs,
                        wingtip());
    bench::print_averages(runs, wingtip());
    bench::maybe_export_csv("fig5_cpu_wingtip", runs, wingtip());
    return 0;
}
