/// \file
/// Shared machinery for the table/figure benchmark binaries.
///
/// Every figure binary (Figs. 4-7) runs the same protocol the paper
/// describes in §V-A2: each kernel five times (configurable), the mean
/// taken, and TTV/TTM/MTTKRP additionally averaged across all tensor
/// modes; TEW uses addition and TS multiplication as representatives,
/// R = 16, HiCOO block size 128.
///
/// A full campaign is hundreds of trials per binary, so the suites run
/// through the src/harness robustness layer: every (tensor, kernel,
/// format) trial executes under a watchdog/retry guard
/// (harness::run_guarded_trial), failures are collected instead of
/// propagated, and completed trials are checkpointed to a JSONL journal
/// under the cache dir so a killed run resumes where it left off.
#pragma once

#include <string>
#include <vector>

#include "analysis/cost_model.hpp"
#include "analysis/efficiency.hpp"
#include "gen/datasets.hpp"
#include "gpusim/timing_model.hpp"
#include "harness/trial.hpp"
#include "roofline/machine.hpp"

namespace pasta::bench {

/// Global options, overridable through environment variables:
///   PASTA_SCALE          dataset scale (fraction of paper nnz), 5e-4
///   PASTA_RUNS           timed repetitions per kernel, default 3
///   PASTA_CACHE          dataset cache dir, default ".pasta_cache"
///   PASTA_TRIAL_TIMEOUT  per-trial watchdog seconds (0 = inline, no
///                        watchdog; defaults to 60 when PASTA_FAULT
///                        contains a hang rule)
///   PASTA_TRIAL_RETRIES  attempts per trial (default 3)
///   PASTA_JOURNAL        "0" disables checkpoint/resume journaling
///   PASTA_VALIDATE       off|convert|kernel|full structural and
///                        differential checking (see src/validate)
///   PASTA_TRACE          off|counters|spans|full instrumentation (see
///                        src/obs): counters feed the obs_* CSV columns
///                        and the journal, spans feed the Chrome trace
///   PASTA_TRACE_DIR      where trace.json/spans.jsonl land (falls back
///                        to PASTA_CSV_DIR, then ".")
///   PASTA_METRICS        <path>[,interval_ms] live metrics heartbeat:
///                        a background thread appends one JSON snapshot
///                        of the always-on metrics registry (counters,
///                        gauges, latency histograms) per interval
///                        (default 1000 ms) — tail it mid-run or render
///                        with scripts/metrics_summary.py
///   PASTA_MEM_BYTES      memory budget (suffixes K/M/G accepted) armed
///                        into the src/common/membudget governor: trials
///                        whose working set would exceed it degrade to
///                        the out-of-core streaming kernels (src/core/
///                        stream) and retry instead of dying
/// Malformed numeric values throw PastaError instead of silently
/// producing 0 runs or undefined behavior.
struct BenchOptions {
    double scale = 5e-4;
    std::size_t runs = 3;
    Size rank = 16;                  ///< paper §V-A2
    unsigned block_bits = 7;         ///< HiCOO B = 128
    std::string cache_dir = ".pasta_cache";
    std::string journal_stem;        ///< figure binaries set this; empty
                                     ///< disables journaling
    bool journal_enabled = true;     ///< PASTA_JOURNAL != "0"
    harness::TrialPolicy trial_policy;
};

/// Reads BenchOptions from the environment (validating numeric values),
/// applies $PASTA_LOG, and arms fault injection from $PASTA_FAULT.
BenchOptions options_from_env();

/// One trial (or whole tensor, kernel "*") that failed or was skipped.
struct TrialFailure {
    std::string tensor_id;
    std::string kernel;   ///< kernel_name() or "*" for a whole tensor
    std::string format;   ///< format_name() or "*"
    std::string error;
    bool timed_out = false;
    int attempts = 0;
    std::string failure_class;  ///< "timeout", "validation", "oom", or
                                ///< "error"
};

/// Partial results of a suite: successful measurements plus a failure
/// summary; skipped trials never abort the campaign.
struct SuiteResult {
    std::vector<MeasuredRun> runs;
    std::vector<TrialFailure> failures;
    std::size_t resumed = 0;  ///< trials restored from the journal

    bool complete() const { return failures.empty(); }
};

/// Loads (generating + caching as needed) the full 30-tensor Table II
/// suite at the configured scale.  Unloadable tensors are skipped with
/// a warning after retries rather than aborting the suite.
std::vector<NamedTensor> load_suite(const BenchOptions& options);

/// Measures all five kernels x {COO, HiCOO} on the host CPU for every
/// tensor; one MeasuredRun per (tensor, kernel, format), times averaged
/// over runs and modes.  Failed/hung trials land in `failures`.
SuiteResult run_cpu_suite(const std::vector<NamedTensor>& suite,
                          const BenchOptions& options);

/// Same protocol on the simulated GPU: kernels execute through the SIMT
/// simulator and seconds come from the analytical device timing model.
SuiteResult run_gpu_suite(const std::vector<NamedTensor>& suite,
                          const gpusim::DeviceSpec& device,
                          const BenchOptions& options);

/// Prints one paper-figure block: per kernel, the GFLOPS series over all
/// tensors for COO and HiCOO plus the red "Roofline performance" line.
/// Missing series cells (skipped trials) render as "skip".
void print_figure(const std::string& title,
                  const std::vector<MeasuredRun>& runs,
                  const MachineSpec& platform);

/// Prints the Observation 1/3-style per-kernel averages.
void print_averages(const std::vector<MeasuredRun>& runs,
                    const MachineSpec& platform);

/// Prints resumed-trial count and the skipped/failed-trial table; "all
/// trials completed" when the suite is complete.
void print_failure_summary(const SuiteResult& result);

/// Writes the full run series as CSV (tensor, kernel, format, seconds,
/// gflops, roofline_gflops, efficiency, variant, obs_flops, obs_bytes,
/// obs_ai, roofline_pct, mem_peak) for external plotting.  The last five columns
/// come from the PASTA_TRACE counter registry and are ""/0 when the
/// trial ran with counters off; roofline_pct then falls back to the
/// Table I model's OI.  Figure binaries call this automatically when
/// PASTA_CSV_DIR is set.
void export_csv(const std::string& path,
                const std::vector<MeasuredRun>& runs,
                const MachineSpec& platform);

/// Writes the failure summary as CSV (tensor, kernel, format, class,
/// timed_out, attempts, error), where class is "timeout", "validation",
/// "oom", or "error".
void export_failures_csv(const std::string& path,
                         const std::vector<TrialFailure>& failures);

/// Exports to $PASTA_CSV_DIR/<stem>.csv when the variable is set.
void maybe_export_csv(const std::string& stem,
                      const std::vector<MeasuredRun>& runs,
                      const MachineSpec& platform);

/// SuiteResult convenience: <stem>.csv for successful trials and (when
/// any exist) <stem>_failures.csv for the failure summary.
void maybe_export_csv(const std::string& stem, const SuiteResult& result,
                      const MachineSpec& platform);

/// When PASTA_TRACE arms spans, writes <stem>.trace.json (Chrome
/// trace-event JSON, Perfetto-loadable) and <stem>.spans.jsonl into
/// $PASTA_TRACE_DIR (falling back to $PASTA_CSV_DIR, then ".").  The
/// suite runners call this after each campaign; no-op with spans off.
void maybe_export_trace(const std::string& stem);

}  // namespace pasta::bench
