/// \file
/// Shared machinery for the table/figure benchmark binaries.
///
/// Every figure binary (Figs. 4-7) runs the same protocol the paper
/// describes in §V-A2: each kernel five times (configurable), the mean
/// taken, and TTV/TTM/MTTKRP additionally averaged across all tensor
/// modes; TEW uses addition and TS multiplication as representatives,
/// R = 16, HiCOO block size 128.
#pragma once

#include <string>
#include <vector>

#include "analysis/cost_model.hpp"
#include "analysis/efficiency.hpp"
#include "gen/datasets.hpp"
#include "gpusim/timing_model.hpp"
#include "roofline/machine.hpp"

namespace pasta::bench {

/// Global options, overridable through environment variables:
///   PASTA_SCALE  dataset scale (fraction of paper nnz), default 5e-4
///   PASTA_RUNS   timed repetitions per kernel, default 3 (paper: 5)
///   PASTA_CACHE  dataset cache dir, default ".pasta_cache"
struct BenchOptions {
    double scale = 5e-4;
    std::size_t runs = 3;
    Size rank = 16;                  ///< paper §V-A2
    unsigned block_bits = 7;         ///< HiCOO B = 128
    std::string cache_dir = ".pasta_cache";
};

/// Reads BenchOptions from the environment.
BenchOptions options_from_env();

/// Loads (generating + caching as needed) the full 30-tensor Table II
/// suite at the configured scale.
std::vector<NamedTensor> load_suite(const BenchOptions& options);

/// Measures all five kernels x {COO, HiCOO} on the host CPU for every
/// tensor; one MeasuredRun per (tensor, kernel, format), times averaged
/// over runs and modes.
std::vector<MeasuredRun> run_cpu_suite(const std::vector<NamedTensor>& suite,
                                       const BenchOptions& options);

/// Same protocol on the simulated GPU: kernels execute through the SIMT
/// simulator and seconds come from the analytical device timing model.
std::vector<MeasuredRun> run_gpu_suite(const std::vector<NamedTensor>& suite,
                                       const gpusim::DeviceSpec& device,
                                       const BenchOptions& options);

/// Prints one paper-figure block: per kernel, the GFLOPS series over all
/// tensors for COO and HiCOO plus the red "Roofline performance" line.
void print_figure(const std::string& title,
                  const std::vector<MeasuredRun>& runs,
                  const MachineSpec& platform);

/// Prints the Observation 1/3-style per-kernel averages.
void print_averages(const std::vector<MeasuredRun>& runs,
                    const MachineSpec& platform);

/// Writes the full run series as CSV (tensor, kernel, format, seconds,
/// gflops, roofline_gflops, efficiency) for external plotting.  Figure
/// binaries call this automatically when PASTA_CSV_DIR is set.
void export_csv(const std::string& path,
                const std::vector<MeasuredRun>& runs,
                const MachineSpec& platform);

/// Exports to $PASTA_CSV_DIR/<stem>.csv when the variable is set.
void maybe_export_csv(const std::string& stem,
                      const std::vector<MeasuredRun>& runs,
                      const MachineSpec& platform);

}  // namespace pasta::bench
