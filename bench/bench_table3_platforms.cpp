/// \file
/// Regenerates Table III: the four paper platform parameter rows, plus a
/// measured row for the host this suite actually runs on (characterized
/// by the ERT micro-kernels).
#include <cstdio>

#include "bench_common.hpp"
#include "roofline/ert.hpp"
#include "roofline/machine.hpp"

using namespace pasta;

namespace {

void
print_spec(const MachineSpec& spec)
{
    std::printf("%-10s %-9s %8.2f %7d %10.1f %8.1f %9.1f %10.1f %9.1f\n",
                spec.name.c_str(), spec.microarch.c_str(), spec.freq_ghz,
                spec.cores, spec.peak_sp_gflops, spec.llc_mb,
                spec.mem_bw_gbs, spec.ert_dram_gbs, spec.ert_llc_gbs);
}

}  // namespace

int
main()
{
    std::printf("Table III platform parameters "
                "(+ ERT-obtainable bandwidths used by Fig. 3)\n");
    std::printf("%-10s %-9s %8s %7s %10s %8s %9s %10s %9s\n", "Platform",
                "Microarch", "GHz", "Cores", "PeakGF/s", "LLC MB",
                "BW GB/s", "ERT-DRAM", "ERT-LLC");
    for (const auto& spec : paper_platforms())
        print_spec(spec);

    std::printf("\nmeasuring this host with ERT micro-kernels "
                "(STREAM-style sweep)...\n");
    ErtOptions ert_options;
    ert_options.max_bytes = 128 * 1024 * 1024;
    ert_options.seconds_per_point = 0.03;
    const ErtResult ert = run_ert(ert_options);
    MachineSpec host = host_machine_spec(ert);
    print_spec(host);
    std::printf("\nhost attainable peak (FMA chain): %.1f GFLOPS\n",
                ert.peak_gflops);
    return 0;
}
