/// \file
/// Design-choice ablations called out in DESIGN.md §3:
///   1. HiCOO block size B sweep (storage + MTTKRP time; paper fixes 128),
///   2. gHiCOO: compressing vs. not compressing the product mode for TTV,
///   3. COO sort order (lexicographic vs. Morton) effect on MTTKRP,
///   4. MTTKRP parallel schedule (static/dynamic/guided).
#include <cstdio>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/convert.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/ttv.hpp"

using namespace pasta;

namespace {

void
ablate_block_size(const CooTensor& x, const FactorList& factors,
                  Size rank, Size runs)
{
    std::printf("\n== Ablation 1: HiCOO block size (paper fixes B=128) "
                "==\n");
    std::printf("%6s %12s %10s %14s %14s\n", "B", "storage KB", "blocks",
                "nnz/block", "MTTKRP ms");
    DenseMatrix out(x.dim(0), rank);
    for (unsigned bits = 2; bits <= 8; ++bits) {
        const HiCooTensor h = coo_to_hicoo(x, bits);
        const RunStats t = timed_runs(
            [&] { mttkrp_hicoo(h, factors, 0, out); }, runs);
        std::printf("%6u %12.1f %10zu %14.2f %14.3f\n", 1u << bits,
                    h.storage_bytes() / 1024.0, h.num_blocks(),
                    h.mean_block_nnz(), t.mean_seconds * 1e3);
    }
}

void
ablate_ghicoo_mode_choice(const CooTensor& x, Size runs,
                          unsigned block_bits)
{
    std::printf("\n== Ablation 2: gHiCOO product-mode compression for "
                "TTV ==\n");
    std::printf("(leaving the product mode uncompressed is what lets "
                "HiCOO-TTV run race-free; compare storage)\n");
    std::printf("%-28s %12s %10s\n", "variant", "storage KB", "TTV ms");
    Rng rng(3);
    const Size mode = x.order() - 1;
    DenseVector v = DenseVector::random(x.dim(mode), rng);
    {
        HicooTtvPlan plan = ttv_plan_hicoo(x, mode, block_bits);
        HiCooTensor out = plan.out_pattern;
        const RunStats t = timed_runs(
            [&] { ttv_exec_hicoo(plan, v, out); }, runs);
        std::printf("%-28s %12.1f %10.3f\n",
                    "product mode uncompressed",
                    plan.input.storage_bytes() / 1024.0,
                    t.mean_seconds * 1e3);
    }
    {
        // All modes compressed: storage of the full HiCOO form (TTV then
        // requires block-aware decoding; we report the storage trade).
        const HiCooTensor h = coo_to_hicoo(x, block_bits);
        std::printf("%-28s %12.1f %10s\n", "all modes compressed",
                    h.storage_bytes() / 1024.0, "n/a");
    }
    std::printf("%-28s %12.1f\n", "plain COO",
                x.storage_bytes() / 1024.0);
}

void
ablate_sort_order(const CooTensor& x, const FactorList& factors, Size rank,
                  Size runs)
{
    std::printf("\n== Ablation 3: COO non-zero ordering for MTTKRP ==\n");
    std::printf("%-16s %14s\n", "ordering", "MTTKRP ms");
    DenseMatrix out(x.dim(0), rank);
    {
        CooTensor lex = x;
        lex.sort_lexicographic();
        const RunStats t = timed_runs(
            [&] { mttkrp_coo(lex, factors, 0, out); }, runs);
        std::printf("%-16s %14.3f\n", "lexicographic",
                    t.mean_seconds * 1e3);
    }
    {
        CooTensor morton = x;
        morton.sort_morton(7);
        const RunStats t = timed_runs(
            [&] { mttkrp_coo(morton, factors, 0, out); }, runs);
        std::printf("%-16s %14.3f\n", "morton(B=128)",
                    t.mean_seconds * 1e3);
    }
}

void
ablate_schedule(const CooTensor& x, const FactorList& factors, Size rank,
                Size runs)
{
    std::printf("\n== Ablation 4: OpenMP schedule for COO-MTTKRP ==\n");
    std::printf("%-10s %14s\n", "schedule", "MTTKRP ms");
    DenseMatrix out(x.dim(0), rank);
    const struct {
        const char* name;
        Schedule schedule;
    } schedules[] = {{"static", Schedule::kStatic},
                     {"dynamic", Schedule::kDynamic},
                     {"guided", Schedule::kGuided}};
    for (const auto& s : schedules) {
        const RunStats t = timed_runs(
            [&] { mttkrp_coo(x, factors, 0, out, s.schedule); }, runs);
        std::printf("%-10s %14.3f\n", s.name, t.mean_seconds * 1e3);
    }
}

void
ablate_output_protection(const CooTensor& x, const FactorList& factors,
                         Size rank, Size runs)
{
    // §III-D: the reference suite uses atomics and skips privatization;
    // quantify what that choice costs (or saves).
    std::printf("\n== Ablation 5: MTTKRP output protection ==\n");
    std::printf("%-14s %14s\n", "strategy", "MTTKRP ms");
    DenseMatrix out(x.dim(0), rank);
    {
        const RunStats t = timed_runs(
            [&] { mttkrp_coo(x, factors, 0, out); }, runs);
        std::printf("%-14s %14.3f\n", "atomic", t.mean_seconds * 1e3);
    }
    {
        const RunStats t = timed_runs(
            [&] { mttkrp_coo_privatized(x, factors, 0, out); }, runs);
        std::printf("%-14s %14.3f\n", "privatized",
                    t.mean_seconds * 1e3);
    }
    {
        const RunStats t = timed_runs(
            [&] { mttkrp_coo_seq(x, factors, 0, out); }, runs);
        std::printf("%-14s %14.3f\n", "sequential",
                    t.mean_seconds * 1e3);
    }
}

}  // namespace

int
main()
{
    const bench::BenchOptions options = bench::options_from_env();
    std::printf("HiCOO design ablations, scale %g\n", options.scale);
    const CooTensor x =
        synthesize_dataset(find_dataset("irrM"), options.scale);
    std::printf("tensor: %s\n", x.describe().c_str());

    Rng rng(1);
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < x.order(); ++m)
        mats.push_back(DenseMatrix::random(x.dim(m), options.rank, rng));
    FactorList factors;
    for (const auto& m : mats)
        factors.push_back(&m);

    ablate_block_size(x, factors, options.rank, options.runs);
    ablate_ghicoo_mode_choice(x, options.runs, options.block_bits);
    ablate_sort_order(x, factors, options.rank, options.runs);
    ablate_schedule(x, factors, options.rank, options.runs);
    ablate_output_protection(x, factors, options.rank, options.runs);
    return 0;
}
