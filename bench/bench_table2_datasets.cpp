/// \file
/// Regenerates Table II: the real (stand-in) and synthetic tensor
/// inventories — paper-published shape next to the generated shape at the
/// configured scale, with densities.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "io/registry.hpp"

using namespace pasta;

namespace {

std::string
dims_string(const std::vector<Index>& dims)
{
    std::string s;
    for (Size m = 0; m < dims.size(); ++m) {
        s += std::to_string(dims[m]);
        if (m + 1 < dims.size())
            s += "x";
    }
    return s;
}

double
density(const std::vector<Index>& dims, double nnz)
{
    double cap = 1.0;
    for (Index d : dims)
        cap *= static_cast<double>(d);
    return nnz / cap;
}

void
print_table(const char* title, const std::vector<DatasetSpec>& table,
            TensorRegistry& registry)
{
    std::printf("\n%s\n", title);
    std::printf("%-4s %-9s %-5s %-28s %10s %9s | %-22s %9s %9s\n", "No.",
                "Tensor", "Order", "Paper dims", "PaperNnz", "PaperDen",
                "Generated dims", "GenNnz", "GenDen");
    for (const auto& spec : table) {
        const CooTensor t = registry.load(spec.id);
        std::printf(
            "%-4s %-9s %-5zu %-28s %10.3g %9.2e | %-22s %9zu %9.2e\n",
            spec.id.c_str(), spec.name.c_str(), spec.order(),
            dims_string(spec.paper_dims).c_str(), spec.paper_nnz,
            density(spec.paper_dims, spec.paper_nnz),
            dims_string(t.dims()).c_str(), t.nnz(),
            density(t.dims(), static_cast<double>(t.nnz())));
    }
}

}  // namespace

int
main()
{
    const bench::BenchOptions options = bench::options_from_env();
    TensorRegistry registry(options.cache_dir, options.scale);
    std::printf("Table II at scale %g (real tensors are power-law "
                "stand-ins; see DESIGN.md substitutions)\n",
                options.scale);
    print_table("(a) real tensors (stand-ins)", real_dataset_table(),
                registry);
    print_table("(b) synthetic tensors", synthetic_dataset_table(),
                registry);
    return 0;
}
