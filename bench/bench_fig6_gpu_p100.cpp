/// \file
/// Regenerates Figure 6: the five kernels on the simulated Tesla P100
/// (DGX-1P).  Kernels execute through the SIMT simulator (real outputs,
/// real fiber/block work distributions) and seconds come from the
/// analytical device timing model parameterized by Table III.
#include <cstdio>

#include "bench_common.hpp"
#include "gpusim/timing_model.hpp"

using namespace pasta;

int
main()
{
    bench::BenchOptions options = bench::options_from_env();
    options.journal_stem = "fig6_gpu_p100";
    std::printf("Figure 6 (simulated Tesla P100 / DGX-1P), scale %g\n",
                options.scale);
    const auto suite = bench::load_suite(options);
    const auto result =
        bench::run_gpu_suite(suite, gpusim::tesla_p100(), options);
    bench::print_figure("Figure 6: five kernels on DGX-1P (simulated)",
                        result.runs, dgx_1p());
    bench::print_averages(result.runs, dgx_1p());
    bench::print_failure_summary(result);
    bench::maybe_export_csv("fig6_gpu_p100", result, dgx_1p());
    return 0;
}
