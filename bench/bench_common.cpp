#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/convert.hpp"
#include "gpusim/gpu_kernels.hpp"
#include "io/registry.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/tew.hpp"
#include "kernels/ts.hpp"
#include "kernels/ttm.hpp"
#include "kernels/ttv.hpp"
#include "roofline/roofline.hpp"

namespace pasta::bench {

BenchOptions
options_from_env()
{
    BenchOptions options;
    if (const char* s = std::getenv("PASTA_SCALE"))
        options.scale = std::atof(s);
    if (const char* s = std::getenv("PASTA_RUNS"))
        options.runs = std::strtoul(s, nullptr, 10);
    if (const char* s = std::getenv("PASTA_CACHE"))
        options.cache_dir = s;
    return options;
}

std::vector<NamedTensor>
load_suite(const BenchOptions& options)
{
    TensorRegistry registry(options.cache_dir, options.scale);
    std::vector<NamedTensor> suite;
    for (const auto* table :
         {&real_dataset_table(), &synthetic_dataset_table()}) {
        for (const auto& spec : *table)
            suite.push_back({spec.id, spec.name, registry.load(spec.id)});
    }
    return suite;
}

namespace {

/// Builds a same-pattern sibling with refreshed values (TEW operand).
CooTensor
sibling(const CooTensor& x, std::uint64_t seed)
{
    Rng rng(seed);
    CooTensor y = x;
    for (auto& v : y.values())
        v = rng.next_float() + 0.5f;
    return y;
}

/// Per-tensor measurement context shared by the CPU and GPU paths.
struct TensorContext {
    const NamedTensor* entry = nullptr;
    CooTensor y;                  ///< TEW sibling
    HiCooTensor hx;               ///< HiCOO form of x
    HiCooTensor hy;               ///< HiCOO form of y
    std::vector<DenseMatrix> mats;  ///< MTTKRP factors
    DenseMatrix mttkrp_out;       ///< widest output buffer

    FactorList factors() const
    {
        FactorList list;
        for (const auto& m : mats)
            list.push_back(&m);
        return list;
    }
};

TensorContext
make_context(const NamedTensor& entry, const BenchOptions& options)
{
    TensorContext ctx;
    ctx.entry = &entry;
    ctx.y = sibling(entry.tensor, 17);
    ctx.hx = coo_to_hicoo(entry.tensor, options.block_bits);
    ctx.hy = coo_to_hicoo(ctx.y, options.block_bits);
    Rng rng(23);
    Index widest = 0;
    for (Size m = 0; m < entry.tensor.order(); ++m) {
        ctx.mats.push_back(
            DenseMatrix::random(entry.tensor.dim(m), options.rank, rng));
        widest = std::max(widest, entry.tensor.dim(m));
    }
    ctx.mttkrp_out = DenseMatrix(widest, options.rank);
    return ctx;
}

MeasuredRun
make_run(const NamedTensor& entry, Kernel kernel, Format format,
         double seconds, const KernelCost& cost)
{
    MeasuredRun run;
    run.tensor_id = entry.id;
    run.kernel = kernel;
    run.format = format;
    run.seconds = seconds;
    run.cost = cost;
    return run;
}

/// Mode-independent stats (TEW/TS/MTTKRP).
TensorStats
base_stats(const CooTensor& x, const HiCooTensor& hx)
{
    TensorStats stats;
    stats.order = x.order();
    stats.nnz = x.nnz();
    stats.num_blocks = hx.num_blocks();
    stats.block_size = hx.block_size();
    return stats;
}

}  // namespace

std::vector<MeasuredRun>
run_cpu_suite(const std::vector<NamedTensor>& suite,
              const BenchOptions& options)
{
    std::vector<MeasuredRun> runs;
    for (const auto& entry : suite) {
        PASTA_LOG_INFO << "cpu suite: " << entry.id << " ("
                       << entry.tensor.describe() << ")";
        TensorContext ctx = make_context(entry, options);
        const CooTensor& x = entry.tensor;
        const TensorStats stats0 = base_stats(x, ctx.hx);

        // ---- TEW (addition as representative, §V-A2) ----
        {
            CooTensor z = x;
            const RunStats t = timed_runs(
                [&] {
                    tew_values(EwOp::kAdd, x.values().data(),
                               ctx.y.values().data(), z.values().data(),
                               x.nnz());
                },
                options.runs);
            runs.push_back(make_run(
                entry, Kernel::kTew, Format::kCoo, t.mean_seconds,
                kernel_cost(Kernel::kTew, Format::kCoo, stats0)));
            HiCooTensor hz = ctx.hx;
            const RunStats th = timed_runs(
                [&] {
                    tew_values(EwOp::kAdd, ctx.hx.values().data(),
                               ctx.hy.values().data(),
                               hz.values().data(), ctx.hx.nnz());
                },
                options.runs);
            runs.push_back(make_run(
                entry, Kernel::kTew, Format::kHicoo, th.mean_seconds,
                kernel_cost(Kernel::kTew, Format::kHicoo, stats0)));
        }

        // ---- TS (multiplication as representative) ----
        {
            CooTensor out = x;
            const RunStats t = timed_runs(
                [&] {
                    ts_values(TsOp::kMul, x.values().data(),
                              out.values().data(), x.nnz(), 1.0009f);
                },
                options.runs);
            runs.push_back(make_run(
                entry, Kernel::kTs, Format::kCoo, t.mean_seconds,
                kernel_cost(Kernel::kTs, Format::kCoo, stats0)));
            HiCooTensor hout = ctx.hx;
            const RunStats th = timed_runs(
                [&] {
                    ts_values(TsOp::kMul, ctx.hx.values().data(),
                              hout.values().data(), ctx.hx.nnz(),
                              1.0009f);
                },
                options.runs);
            runs.push_back(make_run(
                entry, Kernel::kTs, Format::kHicoo, th.mean_seconds,
                kernel_cost(Kernel::kTs, Format::kHicoo, stats0)));
        }

        // ---- TTV / TTM / MTTKRP: averaged over all modes ----
        double ttv_coo_s = 0;
        double ttv_hicoo_s = 0;
        double ttm_coo_s = 0;
        double ttm_hicoo_s = 0;
        double mttkrp_coo_s = 0;
        double mttkrp_hicoo_s = 0;
        KernelCost ttv_coo_c;
        KernelCost ttv_hicoo_c;
        KernelCost ttm_coo_c;
        KernelCost ttm_hicoo_c;
        const Size order = x.order();
        for (Size mode = 0; mode < order; ++mode) {
            Rng rng(31 + mode);
            DenseVector v = DenseVector::random(x.dim(mode), rng);
            const DenseMatrix& u = ctx.mats[mode];

            CooTtvPlan tvp = ttv_plan_coo(x, mode);
            TensorStats stats = stats0;
            stats.num_fibers = tvp.fibers.num_fibers();
            {
                CooTensor out = tvp.out_pattern;
                const RunStats t = timed_runs(
                    [&] { ttv_exec_coo(tvp, v, out); }, options.runs);
                ttv_coo_s += t.mean_seconds;
                const KernelCost c =
                    kernel_cost(Kernel::kTtv, Format::kCoo, stats);
                ttv_coo_c.flops += c.flops / order;
                ttv_coo_c.bytes += c.bytes / order;
            }
            {
                HicooTtvPlan plan =
                    ttv_plan_hicoo(x, mode, options.block_bits);
                HiCooTensor out = plan.out_pattern;
                const RunStats t = timed_runs(
                    [&] { ttv_exec_hicoo(plan, v, out); }, options.runs);
                ttv_hicoo_s += t.mean_seconds;
                const KernelCost c =
                    kernel_cost(Kernel::kTtv, Format::kHicoo, stats);
                ttv_hicoo_c.flops += c.flops / order;
                ttv_hicoo_c.bytes += c.bytes / order;
            }
            {
                CooTtmPlan plan = ttm_plan_coo(x, mode, options.rank);
                ScooTensor out = plan.out_pattern;
                const RunStats t = timed_runs(
                    [&] { ttm_exec_coo(plan, u, out); }, options.runs);
                ttm_coo_s += t.mean_seconds;
                const KernelCost c = kernel_cost(Kernel::kTtm,
                                                 Format::kCoo, stats,
                                                 options.rank);
                ttm_coo_c.flops += c.flops / order;
                ttm_coo_c.bytes += c.bytes / order;
            }
            {
                HicooTtmPlan plan = ttm_plan_hicoo(x, mode, options.rank,
                                                   options.block_bits);
                SHiCooTensor out = plan.out_pattern;
                const RunStats t = timed_runs(
                    [&] { ttm_exec_hicoo(plan, u, out); }, options.runs);
                ttm_hicoo_s += t.mean_seconds;
                const KernelCost c = kernel_cost(Kernel::kTtm,
                                                 Format::kHicoo, stats,
                                                 options.rank);
                ttm_hicoo_c.flops += c.flops / order;
                ttm_hicoo_c.bytes += c.bytes / order;
            }
            {
                FactorList factors = ctx.factors();
                DenseMatrix out(x.dim(mode), options.rank);
                const RunStats t = timed_runs(
                    [&] { mttkrp_coo(x, factors, mode, out); },
                    options.runs);
                mttkrp_coo_s += t.mean_seconds;
                const RunStats th = timed_runs(
                    [&] { mttkrp_hicoo(ctx.hx, factors, mode, out); },
                    options.runs);
                mttkrp_hicoo_s += th.mean_seconds;
            }
        }
        const double n = static_cast<double>(order);
        runs.push_back(make_run(entry, Kernel::kTtv, Format::kCoo,
                                ttv_coo_s / n, ttv_coo_c));
        runs.push_back(make_run(entry, Kernel::kTtv, Format::kHicoo,
                                ttv_hicoo_s / n, ttv_hicoo_c));
        runs.push_back(make_run(entry, Kernel::kTtm, Format::kCoo,
                                ttm_coo_s / n, ttm_coo_c));
        runs.push_back(make_run(entry, Kernel::kTtm, Format::kHicoo,
                                ttm_hicoo_s / n, ttm_hicoo_c));
        runs.push_back(make_run(
            entry, Kernel::kMttkrp, Format::kCoo, mttkrp_coo_s / n,
            kernel_cost(Kernel::kMttkrp, Format::kCoo, stats0,
                        options.rank)));
        runs.push_back(make_run(
            entry, Kernel::kMttkrp, Format::kHicoo, mttkrp_hicoo_s / n,
            kernel_cost(Kernel::kMttkrp, Format::kHicoo, stats0,
                        options.rank)));
    }
    return runs;
}

std::vector<MeasuredRun>
run_gpu_suite(const std::vector<NamedTensor>& suite,
              const gpusim::DeviceSpec& device, const BenchOptions& options)
{
    using namespace gpusim;
    std::vector<MeasuredRun> runs;
    for (const auto& entry : suite) {
        PASTA_LOG_INFO << "gpu suite (" << device.name
                       << "): " << entry.id;
        TensorContext ctx = make_context(entry, options);
        const CooTensor& x = entry.tensor;
        const TensorStats stats0 = base_stats(x, ctx.hx);

        // TEW / TS: one launch each per format.
        {
            CooTensor z = x;
            LaunchProfile p = tew_gpu_coo(x, ctx.y, EwOp::kAdd, z);
            runs.push_back(make_run(
                entry, Kernel::kTew, Format::kCoo,
                estimate_seconds(device, p),
                kernel_cost(Kernel::kTew, Format::kCoo, stats0)));
            HiCooTensor hz = ctx.hx;
            LaunchProfile ph =
                tew_gpu_hicoo(ctx.hx, ctx.hy, EwOp::kAdd, hz);
            runs.push_back(make_run(
                entry, Kernel::kTew, Format::kHicoo,
                estimate_seconds(device, ph),
                kernel_cost(Kernel::kTew, Format::kHicoo, stats0)));
        }
        {
            CooTensor out = x;
            LaunchProfile p = ts_gpu_coo(x, TsOp::kMul, 1.0009f, out);
            runs.push_back(make_run(
                entry, Kernel::kTs, Format::kCoo,
                estimate_seconds(device, p),
                kernel_cost(Kernel::kTs, Format::kCoo, stats0)));
            HiCooTensor hout = ctx.hx;
            LaunchProfile ph =
                ts_gpu_hicoo(ctx.hx, TsOp::kMul, 1.0009f, hout);
            runs.push_back(make_run(
                entry, Kernel::kTs, Format::kHicoo,
                estimate_seconds(device, ph),
                kernel_cost(Kernel::kTs, Format::kHicoo, stats0)));
        }

        // TTV / TTM / MTTKRP averaged across modes.
        const Size order = x.order();
        double sec[3][2] = {{0, 0}, {0, 0}, {0, 0}};
        KernelCost cost[3][2];
        for (Size mode = 0; mode < order; ++mode) {
            Rng rng(31 + mode);
            DenseVector v = DenseVector::random(x.dim(mode), rng);
            const DenseMatrix& u = ctx.mats[mode];
            TensorStats stats = stats0;

            CooTtvPlan tvp = ttv_plan_coo(x, mode);
            stats.num_fibers = tvp.fibers.num_fibers();
            {
                CooTensor out = tvp.out_pattern;
                LaunchProfile p = ttv_gpu_coo(tvp, v, out);
                sec[0][0] += estimate_seconds(device, p);
                const KernelCost c =
                    kernel_cost(Kernel::kTtv, Format::kCoo, stats);
                cost[0][0].flops += c.flops / order;
                cost[0][0].bytes += c.bytes / order;
            }
            {
                HicooTtvPlan plan =
                    ttv_plan_hicoo(x, mode, options.block_bits);
                HiCooTensor out = plan.out_pattern;
                LaunchProfile p = ttv_gpu_hicoo(plan, v, out);
                sec[0][1] += estimate_seconds(device, p);
                const KernelCost c =
                    kernel_cost(Kernel::kTtv, Format::kHicoo, stats);
                cost[0][1].flops += c.flops / order;
                cost[0][1].bytes += c.bytes / order;
            }
            {
                CooTtmPlan plan = ttm_plan_coo(x, mode, options.rank);
                ScooTensor out = plan.out_pattern;
                LaunchProfile p = ttm_gpu_coo(plan, u, out);
                sec[1][0] += estimate_seconds(device, p);
                const KernelCost c = kernel_cost(Kernel::kTtm,
                                                 Format::kCoo, stats,
                                                 options.rank);
                cost[1][0].flops += c.flops / order;
                cost[1][0].bytes += c.bytes / order;
            }
            {
                HicooTtmPlan plan = ttm_plan_hicoo(x, mode, options.rank,
                                                   options.block_bits);
                SHiCooTensor out = plan.out_pattern;
                LaunchProfile p = ttm_gpu_hicoo(plan, u, out);
                sec[1][1] += estimate_seconds(device, p);
                const KernelCost c = kernel_cost(Kernel::kTtm,
                                                 Format::kHicoo, stats,
                                                 options.rank);
                cost[1][1].flops += c.flops / order;
                cost[1][1].bytes += c.bytes / order;
            }
            {
                FactorList factors = ctx.factors();
                DenseMatrix out(x.dim(mode), options.rank);
                LaunchProfile p = mttkrp_gpu_coo(x, factors, mode, out);
                sec[2][0] += estimate_seconds(device, p);
                LaunchProfile ph =
                    mttkrp_gpu_hicoo(ctx.hx, factors, mode, out);
                sec[2][1] += estimate_seconds(device, ph);
            }
        }
        const double n = static_cast<double>(order);
        cost[2][0] = kernel_cost(Kernel::kMttkrp, Format::kCoo, stats0,
                                 options.rank);
        cost[2][1] = kernel_cost(Kernel::kMttkrp, Format::kHicoo, stats0,
                                 options.rank);
        const Kernel kernels[3] = {Kernel::kTtv, Kernel::kTtm,
                                   Kernel::kMttkrp};
        for (int k = 0; k < 3; ++k) {
            runs.push_back(make_run(entry, kernels[k], Format::kCoo,
                                    sec[k][0] / n, cost[k][0]));
            runs.push_back(make_run(entry, kernels[k], Format::kHicoo,
                                    sec[k][1] / n, cost[k][1]));
        }
    }
    return runs;
}

void
print_figure(const std::string& title, const std::vector<MeasuredRun>& runs,
             const MachineSpec& platform)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("(GFLOPS per tensor; 'roof' is the paper's red Roofline "
                "performance line: OI x ERT-DRAM bandwidth of %s)\n",
                platform.name.c_str());
    const Kernel kernels[5] = {Kernel::kTew, Kernel::kTs, Kernel::kTtv,
                               Kernel::kTtm, Kernel::kMttkrp};
    for (Kernel kernel : kernels) {
        std::printf("\n-- %s --\n", kernel_name(kernel));
        std::printf("%-10s %12s %12s %12s %8s %8s\n", "tensor",
                    "COO GFLOPS", "HiCOO GFLOPS", "roof GFLOPS",
                    "COO eff", "HiC eff");
        // Collect per-tensor rows preserving suite order.
        std::vector<std::string> ids;
        for (const auto& run : runs) {
            if (run.kernel != kernel || run.format != Format::kCoo)
                continue;
            ids.push_back(run.tensor_id);
        }
        for (const auto& id : ids) {
            const MeasuredRun* coo = nullptr;
            const MeasuredRun* hicoo = nullptr;
            for (const auto& run : runs) {
                if (run.kernel != kernel || run.tensor_id != id)
                    continue;
                (run.format == Format::kCoo ? coo : hicoo) = &run;
            }
            if (!coo || !hicoo)
                continue;
            const double roof = run_roofline_gflops(*coo, platform);
            std::printf("%-10s %12.3f %12.3f %12.3f %7.0f%% %7.0f%%\n",
                        id.c_str(), run_gflops(*coo), run_gflops(*hicoo),
                        roof, 100.0 * run_efficiency(*coo, platform),
                        100.0 * run_efficiency(*hicoo, platform));
        }
    }
}

void
export_csv(const std::string& path, const std::vector<MeasuredRun>& runs,
           const MachineSpec& platform)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
        PASTA_LOG_WARN << "cannot write CSV " << path;
        return;
    }
    std::fprintf(f,
                 "tensor,kernel,format,seconds,gflops,roofline_gflops,"
                 "efficiency\n");
    for (const auto& run : runs) {
        std::fprintf(f, "%s,%s,%s,%.9g,%.6g,%.6g,%.6g\n",
                     run.tensor_id.c_str(), kernel_name(run.kernel),
                     format_name(run.format), run.seconds,
                     run_gflops(run),
                     run_roofline_gflops(run, platform),
                     run_efficiency(run, platform));
    }
    std::fclose(f);
    PASTA_LOG_INFO << "wrote " << path;
}

void
maybe_export_csv(const std::string& stem,
                 const std::vector<MeasuredRun>& runs,
                 const MachineSpec& platform)
{
    const char* dir = std::getenv("PASTA_CSV_DIR");
    if (!dir || !*dir)
        return;
    export_csv(std::string(dir) + "/" + stem + ".csv", runs, platform);
}

void
print_averages(const std::vector<MeasuredRun>& runs,
               const MachineSpec& platform)
{
    std::printf("\n-- per-kernel averages on %s --\n",
                platform.name.c_str());
    std::printf("%-8s %-7s %12s %12s %12s %10s\n", "kernel", "format",
                "mean GFLOPS", "min", "max", "mean eff");
    const Kernel kernels[5] = {Kernel::kTew, Kernel::kTs, Kernel::kTtv,
                               Kernel::kTtm, Kernel::kMttkrp};
    for (Kernel kernel : kernels) {
        for (Format format : {Format::kCoo, Format::kHicoo}) {
            const EfficiencySummary s =
                summarize(runs, kernel, format, platform);
            std::printf("%-8s %-7s %12.3f %12.3f %12.3f %9.0f%%\n",
                        kernel_name(kernel), format_name(format),
                        s.mean_gflops, s.min_gflops, s.max_gflops,
                        100.0 * s.mean_efficiency);
        }
    }
}

}  // namespace pasta::bench
